//! Tabular labelling with decision-stump LFs on a Census-like dataset.
//!
//! Tabular data changes two things versus text (paper §3.3 and §4.2): the
//! user's LFs are decision stumps `x_j ≶ v → y` anchored at the query
//! instance's own feature values, and the ADP sampler runs with α = 0.99 —
//! stumps give only coarse supervision, so the AL model's uncertainty
//! dominates query selection. This example shows both, plus the ConFusion
//! hand-off from label model to AL model as the budget grows.
//!
//! Run with: `cargo run --release --example tabular_census`

use activedp_repro::core::{ActiveDpSession, SessionConfig};
use activedp_repro::data::{generate, DatasetId, Scale};

fn main() {
    let data = generate(DatasetId::Census, Scale::Tiny, 3).expect("dataset generates");
    println!(
        "Census-like income dataset: {} train instances, {} features, class balance {:.2}/{:.2}\n",
        data.train.len(),
        data.train.features.ncols(),
        data.train.class_balance()[0],
        data.train.class_balance()[1],
    );

    // α = 0.99: the paper's tabular setting.
    let config = SessionConfig::paper_defaults(false, 3);
    assert!((config.alpha - 0.99).abs() < 1e-12);
    let mut session = ActiveDpSession::new(data, config).expect("session builds");

    println!("budget  LFs  selected  τ      coverage  label acc  test acc");
    for block in 0..6 {
        session.run(10).expect("session runs");
        let report = session.evaluate_downstream().expect("evaluation succeeds");
        println!(
            "{:>5}  {:>4}  {:>8}  {:.3}  {:>7.1}%  {:>8.1}%  {:>7.1}%",
            (block + 1) * 10,
            session.lfs().len(),
            report.n_selected,
            report.threshold.unwrap_or(f64::NAN),
            report.label_coverage * 100.0,
            report.label_accuracy.unwrap_or(0.0) * 100.0,
            report.test_accuracy * 100.0,
        );
    }

    println!("\nFirst few decision stumps the simulated user returned:");
    for (j, lf) in session.lfs().iter().take(8).enumerate() {
        println!("  λ{:<2} {}", j + 1, lf.describe(None));
    }

    // Show the pseudo-labelled set that trains the AL model (§3.1): each
    // query instance paired with its LF's vote.
    let n_pseudo = session.pseudo_labelled().count();
    println!("\npseudo-labelled AL training set: {n_pseudo} instances");
}
