//! Spam detection walkthrough: the paper's running example, end to end.
//!
//! Builds a Youtube-comment-spam-like corpus, then narrates an ActiveDP
//! session the way Figure 1 does: each printed iteration shows the query
//! the sampler picked, the comment text, the keyword LF the simulated user
//! wrote, and the pseudo-label the framework inferred from it. At the end
//! the LF portfolio is dumped with LabelPick's verdicts, mirroring Figure 2.
//!
//! Run with: `cargo run --release --example spam_detection`

use activedp_repro::core::{ActiveDpSession, SessionConfig};
use activedp_repro::data::{generate, DatasetId, Scale};
use activedp_repro::lf::LabelMatrix;

fn main() {
    let data = generate(DatasetId::Youtube, Scale::Tiny, 11)
        .expect("dataset generates")
        .into_shared();
    let vocab = data.vocab.as_ref().expect("text dataset has a vocabulary");
    println!(
        "Youtube-like spam corpus: {} unlabeled comments, vocabulary of {} words\n",
        data.train.len(),
        vocab.len()
    );

    let config = SessionConfig::paper_defaults(true, 11);
    let mut session = ActiveDpSession::new(data.clone(), config).expect("session builds");

    println!("-- training phase (Figure 1, left) --");
    let texts = data
        .train
        .texts
        .as_ref()
        .expect("text dataset keeps raw docs");
    for _ in 0..30 {
        let outcome = session.step().expect("step succeeds");
        let (Some(query), Some(lf)) = (outcome.query, outcome.lf.as_ref()) else {
            continue;
        };
        if outcome.iteration <= 5 {
            let mut excerpt: String = texts[query].chars().take(48).collect();
            if texts[query].len() > 48 {
                excerpt.push('…');
            }
            let (_, pseudo) = session
                .pseudo_labelled()
                .last()
                .expect("LF was just recorded");
            println!(
                "iter {:>2}: inspected \"{excerpt}\"\n         user wrote LF {} => pseudo-label {} ({})",
                outcome.iteration,
                lf.describe(Some(vocab)),
                pseudo,
                if pseudo == 1 { "SPAM" } else { "HAM" },
            );
        }
    }

    println!("\n-- LF portfolio after 30 iterations (Figure 2 view) --");
    let lfs = session.lfs().to_vec();
    let selected: std::collections::HashSet<usize> = session.selected().iter().copied().collect();
    let valid_matrix = LabelMatrix::from_lfs(&lfs, &data.valid);
    for (j, lf) in lfs.iter().enumerate().take(12) {
        let acc = valid_matrix
            .lf_accuracy(j, &data.valid.labels)
            .map_or("  n/a".to_string(), |a| format!("{a:.3}"));
        println!(
            "  λ{:<2} {:<24} valid acc {acc}  cov {:.3}  [{}]",
            j + 1,
            lf.describe(Some(vocab)),
            valid_matrix.lf_coverage(j),
            if selected.contains(&j) {
                "kept by LabelPick"
            } else {
                "pruned"
            },
        );
    }
    if lfs.len() > 12 {
        println!("  … and {} more", lfs.len() - 12);
    }

    println!("\n-- inference phase (Figure 1, right) --");
    let report = session.evaluate_downstream().expect("evaluation succeeds");
    println!(
        "ConFusion threshold τ = {:.3}; {}/{} LFs selected",
        report.threshold.unwrap_or(f64::NAN),
        report.n_selected,
        session.lfs().len()
    );
    println!(
        "labels: {:.1}% coverage at {:.1}% accuracy",
        report.label_coverage * 100.0,
        report.label_accuracy.unwrap_or(0.0) * 100.0
    );
    println!(
        "downstream spam classifier test accuracy: {:.1}%",
        report.test_accuracy * 100.0
    );
}
