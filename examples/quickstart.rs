//! Quickstart: the ActiveDP workflow of paper Figure 1 in ~40 lines.
//!
//! Generates a small Youtube-spam-like dataset, runs the interactive loop
//! for 40 iterations with the simulated user, and prints what happened at
//! each stage: the query instances, the label functions the "user" wrote,
//! LabelPick's selection, the tuned ConFusion threshold, and the downstream
//! model's test accuracy.
//!
//! Run with: `cargo run --release --example quickstart`

use activedp_repro::core::Engine;
use activedp_repro::data::{generate, DatasetId, Scale};

fn main() {
    // A small instance of the Youtube spam dataset (Table 2, scaled down).
    let data = generate(DatasetId::Youtube, Scale::Tiny, 7)
        .expect("dataset generates")
        .into_shared();
    println!(
        "dataset: {} — {} train / {} valid / {} test",
        data.name(),
        data.train.len(),
        data.valid.len(),
        data.test.len()
    );

    // The builder starts from the paper's configuration for the dataset's
    // modality (here text: ADP sampler with α = 0.5, triplet label model,
    // LabelPick + ConFusion enabled) and validates at build time. The
    // engine owns a handle to the dataset, so the `data` Arc stays usable
    // below.
    let mut session = Engine::builder(data.clone())
        .seed(7)
        .build()
        .expect("engine builds");

    // Training phase (Figure 1, left): each step picks a query instance,
    // asks the user for an LF, and refits both models.
    for _ in 0..40 {
        let outcome = session.step().expect("step succeeds");
        if let (Some(query), Some(lf)) = (outcome.query, &outcome.lf) {
            if outcome.iteration % 10 == 0 {
                println!(
                    "iter {:>3}: query #{query:<4} -> LF {:<22} ({} LFs, {} selected)",
                    outcome.iteration,
                    lf.describe(data.vocab.as_ref()),
                    outcome.n_lfs,
                    outcome.n_selected,
                );
            }
        }
    }

    // Inference phase (Figure 1, right): ConFusion aggregates the label
    // model and the AL model under a validation-tuned threshold, and the
    // downstream classifier trains on the aggregated labels.
    let report = session.evaluate_downstream().expect("evaluation succeeds");
    println!();
    println!(
        "confidence threshold τ  : {:.3}",
        report.threshold.unwrap_or(f64::NAN)
    );
    println!(
        "label coverage          : {:.1}%",
        report.label_coverage * 100.0
    );
    if let Some(acc) = report.label_accuracy {
        println!("aggregated label quality: {:.1}%", acc * 100.0);
    }
    println!(
        "downstream test accuracy: {:.1}%",
        report.test_accuracy * 100.0
    );
}
