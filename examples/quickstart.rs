//! Quickstart: the ActiveDP workflow of paper Figure 1 in ~40 lines.
//!
//! Generates a small Youtube-spam-like dataset, runs the interactive loop
//! for 40 iterations with the simulated user, and prints what happened at
//! each stage: the query instances, the label functions the "user" wrote,
//! LabelPick's selection, the tuned ConFusion threshold, and the downstream
//! model's test accuracy.
//!
//! Run with: `cargo run --release --example quickstart`

use activedp_repro::core::{Engine, ScenarioSpec};
use activedp_repro::data::{DatasetId, DatasetSpec, Scale};

fn main() {
    // A complete run as one plain-data description: a small instance of
    // the Youtube spam dataset (Table 2, scaled down), the paper's
    // configuration for its modality (text: ADP sampler with α = 0.5,
    // triplet label model, LabelPick + ConFusion enabled), the paper's
    // one-query-per-refit schedule, and a 40-query budget. The spec
    // serializes (`to_bytes()` / the serving layer's JSON) and fully
    // determines the trajectory.
    let mut spec = ScenarioSpec::new(DatasetSpec {
        id: DatasetId::Youtube,
        scale: Scale::Tiny,
        seed: 7,
    });
    spec.session.seed = 7;
    spec.budget = 40;

    // The one true constructor: spec → engine (the dataset regenerates
    // from the spec's provenance; `Engine::builder(data)` remains the
    // ergonomic layer over the same assembly).
    let mut session = Engine::from_spec(spec).expect("engine builds");
    let data = session.shared_data();
    println!(
        "dataset: {} — {} train / {} valid / {} test",
        data.name(),
        data.train.len(),
        data.valid.len(),
        data.test.len()
    );

    // Training phase (Figure 1, left): spend the budget under the spec's
    // schedule. Each iteration picks a query instance, asks the user for
    // an LF, and (at each schedule boundary — here every query) refits
    // both models.
    for outcome in session.run_schedule().expect("schedule runs") {
        if let (Some(query), Some(lf)) = (outcome.query, &outcome.lf) {
            if outcome.iteration % 10 == 0 {
                println!(
                    "iter {:>3}: query #{query:<4} -> LF {:<22} ({} LFs, {} selected)",
                    outcome.iteration,
                    lf.describe(data.vocab.as_ref()),
                    outcome.n_lfs,
                    outcome.n_selected,
                );
            }
        }
    }

    // Inference phase (Figure 1, right): ConFusion aggregates the label
    // model and the AL model under a validation-tuned threshold, and the
    // downstream classifier trains on the aggregated labels.
    let report = session.evaluate_downstream().expect("evaluation succeeds");
    println!();
    println!(
        "confidence threshold τ  : {:.3}",
        report.threshold.unwrap_or(f64::NAN)
    );
    println!(
        "label coverage          : {:.1}%",
        report.label_coverage * 100.0
    );
    if let Some(acc) = report.label_accuracy {
        println!("aggregated label quality: {:.1}%", acc * 100.0);
    }
    println!(
        "downstream test accuracy: {:.1}%",
        report.test_accuracy * 100.0
    );
}
