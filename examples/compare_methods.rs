//! All five interactive frameworks head-to-head on one dataset — a
//! single-dataset slice of the paper's Figure 3.
//!
//! Runs ActiveDP, Nemo, IWS, Revising-LF and uncertainty sampling under the
//! same budget and seed, printing each framework's accuracy trajectory and
//! the final area-under-curve ranking.
//!
//! Run with: `cargo run --release --example compare_methods`
//! (pass a dataset name to switch, e.g. `-- Occupancy`)

use activedp_repro::baselines::{Framework, Iws, Nemo, RevisingLf, UncertaintySampling};
use activedp_repro::core::{ActiveDpSession, SessionConfig};
use activedp_repro::data::{generate, DatasetId, Scale};

const BUDGET: usize = 60;
const EVAL_EVERY: usize = 10;

fn run(framework: &mut dyn Framework) -> Vec<f64> {
    let mut curve = Vec::new();
    for it in 1..=BUDGET {
        framework.step().expect("step succeeds");
        if it % EVAL_EVERY == 0 {
            curve.push(
                framework
                    .evaluate()
                    .expect("evaluate succeeds")
                    .test_accuracy,
            );
        }
    }
    curve
}

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Youtube".to_string());
    let id = DatasetId::all()
        .into_iter()
        .find(|d| d.name().eq_ignore_ascii_case(&name))
        .unwrap_or_else(|| {
            eprintln!("unknown dataset {name}, using Youtube");
            DatasetId::Youtube
        });
    let seed = 5;
    let data = generate(id, Scale::Tiny, seed)
        .expect("dataset generates")
        .into_shared();
    println!(
        "{}: {} budget of {BUDGET} queries, evaluated every {EVAL_EVERY}\n",
        id.name(),
        data.train.len()
    );

    let mut results: Vec<(String, Vec<f64>)> = Vec::new();

    let mut adp = ActiveDpSession::new(
        data.clone(),
        SessionConfig::paper_defaults(id.is_textual(), seed),
    )
    .expect("session builds");
    results.push(("ActiveDP".into(), run(&mut adp)));
    if id.is_textual() {
        // Nemo's SEU strategy is text-specific (paper §4.1.2).
        results.push(("Nemo".into(), run(&mut Nemo::new(&data, seed))));
    }
    results.push(("IWS".into(), run(&mut Iws::new(&data, seed))));
    results.push(("RLF".into(), run(&mut RevisingLf::new(&data, seed))));
    results.push(("US".into(), run(&mut UncertaintySampling::new(&data, seed))));

    println!(
        "queries:  {}",
        (1..=BUDGET / EVAL_EVERY)
            .map(|k| format!("{:>6}", k * EVAL_EVERY))
            .collect::<String>()
    );
    for (name, curve) in &results {
        let series: String = curve.iter().map(|a| format!("{a:>6.3}")).collect();
        println!("{name:>8}: {series}");
    }

    println!("\nranking by average accuracy during the run:");
    let mut ranked: Vec<(f64, &str)> = results
        .iter()
        .map(|(n, c)| (c.iter().sum::<f64>() / c.len() as f64, n.as_str()))
        .collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite averages"));
    for (rank, (auc, name)) in ranked.iter().enumerate() {
        println!("  {}. {name:<8} {auc:.4}", rank + 1);
    }
}
