//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++
/// (Blackman & Vigna 2019), state-initialised with SplitMix64 so that any
/// 64-bit seed — including 0 — yields a well-mixed state.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// The generator's internal state words, for session snapshot/restore:
    /// feeding them back through [`StdRng::from_state`] resumes the stream
    /// at exactly this point.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator mid-stream from state words previously captured
    /// with [`StdRng::state`].
    ///
    /// The all-zero state is xoshiro's one fixed point (the stream would be
    /// constant zero); it is unreachable from any seeded generator, so
    /// encountering it means the words did not come from [`StdRng::state`]
    /// and construction falls back to `seed_from_u64(0)`.
    pub fn from_state(state: [u64; 4]) -> Self {
        if state == [0; 4] {
            return StdRng::seed_from_u64(0);
        }
        StdRng { s: state }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn state_roundtrip_resumes_mid_stream() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            rng.next_u64();
        }
        let saved = rng.state();
        let tail: Vec<u64> = (0..32).map(|_| rng.next_u64()).collect();
        let mut resumed = StdRng::from_state(saved);
        let resumed_tail: Vec<u64> = (0..32).map(|_| resumed.next_u64()).collect();
        assert_eq!(tail, resumed_tail);
    }

    #[test]
    fn state_is_stable_under_inspection() {
        let rng = StdRng::seed_from_u64(7);
        assert_eq!(rng.state(), rng.state());
        assert_ne!(rng.state(), StdRng::seed_from_u64(8).state());
    }

    #[test]
    fn all_zero_state_falls_back_to_seed_zero() {
        let mut a = StdRng::from_state([0; 4]);
        let mut b = StdRng::seed_from_u64(0);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // And the fallback still samples sanely.
        let x: f64 = a.gen();
        assert!((0.0..1.0).contains(&x));
    }
}
