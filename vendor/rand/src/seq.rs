//! Sequence-related sampling helpers.

use crate::{uniform_below, Rng};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` when empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, (i + 1) as u64) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_below(rng, self.len() as u64) as usize])
        }
    }
}
