//! In-tree shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The workspace must build offline, so instead of depending on crates.io
//! this crate implements the handful of entry points the algorithms call:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (`SeedableRng::seed_from_u64`);
//! * [`Rng::gen`] for `f64`/`u64`/`u32`/`bool`, [`Rng::gen_range`] over
//!   integer and float ranges, [`Rng::gen_bool`];
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`.
//!
//! Guarantees: identical output for identical seeds, across platforms and
//! across runs (the experiment protocol depends on this). Non-goals: stream
//! compatibility with crates.io `rand`, cryptographic strength.

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next word in the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples from the "standard" distribution of `T` (uniform `[0,1)` for
    /// floats, uniform over all values for integers, fair coin for `bool`).
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from `range`. Panics on an empty range.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable without extra parameters (`rng.gen::<T>()`).
pub trait SampleStandard {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform on [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform draw from `0..n` (Lemire's multiply-shift rejection).
pub(crate) fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (n as u128);
    let mut low = m as u64;
    if low < n {
        let threshold = n.wrapping_neg() % n;
        while low < threshold {
            x = rng.next_u64();
            m = (x as u128) * (n as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! int_range_impls {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_range_impls!(usize => u64, u64 => u64, u32 => u64, i64 => i64, i32 => i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::sample_standard(rng) * (end - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5..10usize);
            assert!((5..10).contains(&v));
            let w = rng.gen_range(5..=10usize);
            assert!((5..=10).contains(&w));
            let f = rng.gen_range(-1.0..=1.0f64);
            assert!((-1.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(3..3usize);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements left in place");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(21);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }
}
