//! In-tree shim for the subset of the `criterion` API this workspace uses.
//!
//! The workspace must build offline, so this crate provides a small but
//! *functional* benchmark harness behind the familiar entry points:
//! [`Criterion`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`Criterion::benchmark_group`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros (both macro forms).
//!
//! Each benchmark is warmed up once, then timed over `sample_size` samples;
//! fast routines are batched so a sample stays measurable. Results print as
//!
//! ```text
//! logreg_grad_serial_10000x64   time: [min 1.02 ms  mean 1.05 ms  max 1.11 ms]
//! ```
//!
//! A positional CLI argument filters benchmarks by substring, mirroring
//! `cargo bench -- <filter>`. No plots, no regression statistics.

use std::time::{Duration, Instant};

/// Batch-size hint for [`Bencher::iter_batched`]; accepted for API
/// compatibility, the shim times each invocation individually either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: few per batch in real criterion.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Per-benchmark measurement settings plus the CLI name filter.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            filter: None,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (min 2).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Soft cap on the total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Reads the benchmark-name filter from the command line. Flags
    /// (`--bench`, `--quiet`, …) are ignored; the first positional argument
    /// is treated as a substring filter.
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples: vec![],
        };
        f(&mut bencher);
        report(name, &bencher.samples);
        self
    }

    /// Starts a named group; the shim's groups only prefix benchmark names.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.to_string(),
            sample_size: None,
            measurement_time: None,
        }
    }

    /// No-op, for API compatibility.
    pub fn final_summary(&self) {}
}

/// A named collection of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Overrides the measurement-time cap for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Runs one benchmark under the group's prefix.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, name);
        let saved = (self.criterion.sample_size, self.criterion.measurement_time);
        if let Some(n) = self.sample_size {
            self.criterion.sample_size = n;
        }
        if let Some(d) = self.measurement_time {
            self.criterion.measurement_time = d;
        }
        self.criterion.bench_function(&full, f);
        (self.criterion.sample_size, self.criterion.measurement_time) = saved;
        self
    }

    /// Ends the group (no-op; everything prints as it runs).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// Mean per-iteration duration of each sample.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` (including its return-value drop).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and calibration: one untimed run, then size the batches.
        let start = Instant::now();
        let _ = routine();
        let est = start.elapsed();
        let iters = iters_per_sample(est, self.sample_size, self.measurement_time);
        self.samples = (0..self.sample_size)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(routine());
                }
                t.elapsed() / iters as u32
            })
            .collect();
    }

    /// Times `routine` only, regenerating its input with `setup` each call.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        let _ = routine(input);
        let est = start.elapsed();
        let iters = iters_per_sample(est, self.sample_size, self.measurement_time);
        self.samples = (0..self.sample_size)
            .map(|_| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let input = setup();
                    let t = Instant::now();
                    std::hint::black_box(routine(input));
                    total += t.elapsed();
                }
                total / iters as u32
            })
            .collect();
    }
}

/// How many iterations to batch into one sample so the whole benchmark
/// stays near `measurement_time` but slow routines still run once per
/// sample.
fn iters_per_sample(est: Duration, samples: usize, budget: Duration) -> usize {
    let per_sample = budget.as_nanos() / samples.max(1) as u128;
    let est = est.as_nanos().max(1);
    (per_sample / est).clamp(1, 1_000_000) as usize
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<40} time: [min {}  mean {}  max {}]",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions, in either criterion macro form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` for a bench target built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples_and_times() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0usize;
        c.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box((0..100).sum::<usize>())
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("match-me".into()),
            ..Criterion::default()
        };
        let mut ran = false;
        c.bench_function("other", |b| {
            ran = true;
            b.iter(|| ())
        });
        assert!(!ran);
        c.bench_function("does-match-me", |b| b.iter(|| std::hint::black_box(1)));
    }

    #[test]
    fn groups_prefix_and_restore_settings() {
        let mut c = Criterion::default()
            .sample_size(4)
            .measurement_time(Duration::from_millis(5));
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(2);
            g.bench_function("inner", |b| b.iter(|| std::hint::black_box(2)));
            g.finish();
        }
        assert_eq!(c.sample_size, 4);
    }

    #[test]
    fn iter_batched_times_routine() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(2));
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 16],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }
}
