//! Generative label models: aggregate weak LF votes into probabilistic
//! labels (paper §2.1's `f_l`).
//!
//! Three models are provided:
//!
//! * [`MajorityVote`] — the standard unweighted baseline;
//! * [`DawidSkene`] — EM over per-LF confusion matrices (the classic
//!   generative model; handles any number of classes and models abstention
//!   rates per class);
//! * [`TripletMetal`] — closed-form method-of-moments estimation of LF
//!   accuracies from pairwise agreement statistics, the same second-moment
//!   identity MeTaL's matrix-completion estimator exploits (Ratner et al.
//!   2019), specialised to binary tasks — which covers all eight paper
//!   datasets. The paper's experiments use MeTaL as the label model, so
//!   [`TripletMetal`] is the default in the ActiveDP session.
//!
//! All models implement [`LabelModel`]: `fit` on a [`LabelMatrix`], then
//! `predict_proba` on vote rows.

pub mod dawid_skene;
pub mod error;
pub mod majority;
pub mod triplet;

pub use dawid_skene::DawidSkene;
pub use error::LabelModelError;
pub use majority::MajorityVote;
pub use triplet::TripletMetal;

use adp_lf::LabelMatrix;
use adp_linalg::parallel::{self, Execution};

/// Instances per parallel [`predict_all_with`] chunk. Fixed
/// (machine-independent): each row's posterior is a pure function of that
/// row, so chunked prediction is bitwise identical at every thread count.
const PREDICT_CHUNK: usize = 512;

/// Minimum instance count before threads pay for themselves. Public so
/// callers that force a policy (e.g. the engine's master switch) can reuse
/// the same threshold in their own `parallel::auto` call.
pub const MIN_PARALLEL_PREDICT: usize = 2 * PREDICT_CHUNK;

/// A generative model over weak labels.
///
/// `Send + Sync` so fitted models can be shared immutably across the
/// scoped worker threads of [`predict_all_with`] and moved between
/// sessions; all provided models are plain data.
pub trait LabelModel: Send + Sync {
    /// Fits the model to a label matrix. `class_balance`, when given, fixes
    /// the class prior (the paper tunes MeTaL with the validation balance);
    /// otherwise models estimate or default to uniform.
    fn fit(
        &mut self,
        matrix: &LabelMatrix,
        class_balance: Option<&[f64]>,
    ) -> Result<(), LabelModelError>;

    /// Posterior class distribution for one row of votes (`-1` = abstain).
    /// Rows where every LF abstains yield the class prior.
    fn predict_proba(&self, votes: &[i8]) -> Vec<f64>;

    /// Number of classes.
    fn n_classes(&self) -> usize;
}

/// Applies `model` to every instance of `matrix`, fanning row chunks out
/// over scoped threads when the matrix is large enough (bitwise identical
/// to the serial path — each row's posterior is independent).
pub fn predict_all(model: &dyn LabelModel, matrix: &LabelMatrix) -> Vec<Vec<f64>> {
    predict_all_with(
        model,
        matrix,
        parallel::auto(matrix.n_instances(), MIN_PARALLEL_PREDICT),
    )
}

/// [`predict_all`] under an explicit execution policy.
pub fn predict_all_with(
    model: &dyn LabelModel,
    matrix: &LabelMatrix,
    exec: Execution,
) -> Vec<Vec<f64>> {
    parallel::map_chunks(matrix.n_instances(), PREDICT_CHUNK, exec, |range| {
        range
            .map(|i| model.predict_proba(matrix.row(i)))
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Which label model a pipeline should instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelModelKind {
    /// Unweighted majority vote.
    MajorityVote,
    /// Dawid-Skene EM.
    DawidSkene,
    /// Triplet method (MeTaL-style); binary tasks only.
    Triplet,
}

/// Factory for boxed label models.
pub fn make_model(kind: LabelModelKind, n_classes: usize) -> Box<dyn LabelModel> {
    make_model_with(kind, n_classes, true)
}

/// [`make_model`] with an explicit scheduling switch: `parallel: false`
/// forces models with threaded fits ([`DawidSkene`]'s EM sweeps,
/// [`TripletMetal`]'s moment accumulation) onto the calling thread. Output
/// is bitwise identical either way.
pub fn make_model_with(
    kind: LabelModelKind,
    n_classes: usize,
    parallel: bool,
) -> Box<dyn LabelModel> {
    match kind {
        LabelModelKind::MajorityVote => Box::new(MajorityVote::new(n_classes)),
        LabelModelKind::DawidSkene => {
            let mut ds = DawidSkene::new(n_classes);
            ds.parallel = parallel;
            Box::new(ds)
        }
        LabelModelKind::Triplet => {
            let mut t = TripletMetal::new(n_classes);
            t.parallel = parallel;
            Box::new(t)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_constructs_all_kinds() {
        for kind in [
            LabelModelKind::MajorityVote,
            LabelModelKind::DawidSkene,
            LabelModelKind::Triplet,
        ] {
            let m = make_model(kind, 2);
            assert_eq!(m.n_classes(), 2);
        }
    }

    #[test]
    fn predict_all_shapes() {
        let matrix = LabelMatrix::empty(3);
        let mut mv = MajorityVote::new(2);
        mv.fit(&matrix, None).unwrap();
        let probs = predict_all(&mv, &matrix);
        assert_eq!(probs.len(), 3);
        assert_eq!(probs[0], vec![0.5, 0.5]);
    }
}
