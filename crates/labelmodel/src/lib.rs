//! Generative label models: aggregate weak LF votes into probabilistic
//! labels (paper §2.1's `f_l`).
//!
//! Three models are provided:
//!
//! * [`MajorityVote`] — the standard unweighted baseline;
//! * [`DawidSkene`] — EM over per-LF confusion matrices (the classic
//!   generative model; handles any number of classes and models abstention
//!   rates per class);
//! * [`TripletMetal`] — closed-form method-of-moments estimation of LF
//!   accuracies from pairwise agreement statistics, the same second-moment
//!   identity MeTaL's matrix-completion estimator exploits (Ratner et al.
//!   2019), specialised to binary tasks — which covers all eight paper
//!   datasets. The paper's experiments use MeTaL as the label model, so
//!   [`TripletMetal`] is the default in the ActiveDP session.
//!
//! All models implement [`LabelModel`]: `fit` on a [`LabelMatrix`], then
//! `predict_proba` on vote rows.

pub mod dawid_skene;
pub mod error;
pub mod majority;
pub mod triplet;

pub use dawid_skene::DawidSkene;
pub use error::LabelModelError;
pub use majority::MajorityVote;
pub use triplet::TripletMetal;

use adp_lf::LabelMatrix;
use adp_linalg::parallel::{self, Execution};

/// Instances per parallel [`predict_all_with`] chunk. Fixed
/// (machine-independent): each row's posterior is a pure function of that
/// row, so chunked prediction is bitwise identical at every thread count.
const PREDICT_CHUNK: usize = 512;

/// Minimum instance count before threads pay for themselves. Public so
/// callers that force a policy (e.g. the engine's master switch) can reuse
/// the same threshold in their own `parallel::auto` call.
pub const MIN_PARALLEL_PREDICT: usize = 2 * PREDICT_CHUNK;

/// A generative model over weak labels.
///
/// `Send + Sync` so fitted models can be shared immutably across the
/// scoped worker threads of [`predict_all_with`] and moved between
/// sessions; all provided models are plain data.
pub trait LabelModel: Send + Sync {
    /// Fits the model to a label matrix. `class_balance`, when given, fixes
    /// the class prior (the paper tunes MeTaL with the validation balance);
    /// otherwise models estimate or default to uniform.
    fn fit(
        &mut self,
        matrix: &LabelMatrix,
        class_balance: Option<&[f64]>,
    ) -> Result<(), LabelModelError>;

    /// Posterior class distribution for one row of votes (`-1` = abstain).
    /// Rows where every LF abstains yield the class prior.
    fn predict_proba(&self, votes: &[i8]) -> Vec<f64>;

    /// Number of classes.
    fn n_classes(&self) -> usize;
}

/// Applies `model` to every instance of `matrix`, fanning row chunks out
/// over scoped threads when the matrix is large enough (bitwise identical
/// to the serial path — each row's posterior is independent).
pub fn predict_all(model: &dyn LabelModel, matrix: &LabelMatrix) -> Vec<Vec<f64>> {
    predict_all_with(
        model,
        matrix,
        parallel::auto(matrix.n_instances(), MIN_PARALLEL_PREDICT),
    )
}

/// [`predict_all`] under an explicit execution policy.
pub fn predict_all_with(
    model: &dyn LabelModel,
    matrix: &LabelMatrix,
    exec: Execution,
) -> Vec<Vec<f64>> {
    parallel::map_chunks(matrix.n_instances(), PREDICT_CHUNK, exec, |range| {
        range
            .map(|i| model.predict_proba(matrix.row(i)))
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Which label model a pipeline should instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelModelKind {
    /// Unweighted majority vote.
    MajorityVote,
    /// Dawid-Skene EM.
    DawidSkene,
    /// Triplet method (MeTaL-style); binary tasks only.
    Triplet,
}

impl LabelModelKind {
    /// All kinds, in tag order.
    pub fn all() -> [LabelModelKind; 3] {
        [
            LabelModelKind::MajorityVote,
            LabelModelKind::DawidSkene,
            LabelModelKind::Triplet,
        ]
    }

    /// Canonical name — what [`LabelModelKind::from_str`] parses back and
    /// what artefact rows print.
    ///
    /// [`LabelModelKind::from_str`]: std::str::FromStr::from_str
    pub fn name(self) -> &'static str {
        match self {
            LabelModelKind::MajorityVote => "MajorityVote",
            LabelModelKind::DawidSkene => "DawidSkene",
            LabelModelKind::Triplet => "Triplet",
        }
    }
}

impl std::fmt::Display for LabelModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A label-model name that matched no [`LabelModelKind`]; [`Display`]
/// lists the valid options.
///
/// [`Display`]: std::fmt::Display
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownLabelModel {
    /// The name that failed to parse.
    pub given: String,
}

impl std::fmt::Display for UnknownLabelModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown label model {:?}; expected one of {}",
            self.given,
            LabelModelKind::all().map(LabelModelKind::name).join(", ")
        )
    }
}

impl std::error::Error for UnknownLabelModel {}

impl std::str::FromStr for LabelModelKind {
    type Err = UnknownLabelModel;

    /// Parses a label-model name, case-insensitively, accepting the
    /// canonical name plus common short forms (`mv`, `majority`, `ds`,
    /// `dawid-skene`, `metal`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "majorityvote" | "majority" | "mv" => Ok(LabelModelKind::MajorityVote),
            "dawidskene" | "dawid-skene" | "ds" => Ok(LabelModelKind::DawidSkene),
            "triplet" | "metal" => Ok(LabelModelKind::Triplet),
            _ => Err(UnknownLabelModel { given: s.into() }),
        }
    }
}

/// Factory for boxed label models.
pub fn make_model(kind: LabelModelKind, n_classes: usize) -> Box<dyn LabelModel> {
    make_model_with(kind, n_classes, true)
}

/// [`make_model`] with an explicit scheduling switch: `parallel: false`
/// forces models with threaded fits ([`DawidSkene`]'s EM sweeps,
/// [`TripletMetal`]'s moment accumulation) onto the calling thread. Output
/// is bitwise identical either way.
pub fn make_model_with(
    kind: LabelModelKind,
    n_classes: usize,
    parallel: bool,
) -> Box<dyn LabelModel> {
    match kind {
        LabelModelKind::MajorityVote => Box::new(MajorityVote::new(n_classes)),
        LabelModelKind::DawidSkene => {
            let mut ds = DawidSkene::new(n_classes);
            ds.parallel = parallel;
            Box::new(ds)
        }
        LabelModelKind::Triplet => {
            let mut t = TripletMetal::new(n_classes);
            t.parallel = parallel;
            Box::new(t)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_constructs_all_kinds() {
        for kind in LabelModelKind::all() {
            let m = make_model(kind, 2);
            assert_eq!(m.n_classes(), 2);
        }
    }

    #[test]
    fn kind_names_roundtrip_through_fromstr() {
        for kind in LabelModelKind::all() {
            assert_eq!(kind.to_string().parse::<LabelModelKind>().unwrap(), kind);
        }
        assert_eq!(
            "ds".parse::<LabelModelKind>().unwrap(),
            LabelModelKind::DawidSkene
        );
        assert_eq!(
            "metal".parse::<LabelModelKind>().unwrap(),
            LabelModelKind::Triplet
        );
        let err = "snorkel".parse::<LabelModelKind>().unwrap_err();
        assert_eq!(err.given, "snorkel");
        assert!(err.to_string().contains("Triplet"), "{err}");
    }

    #[test]
    fn predict_all_shapes() {
        let matrix = LabelMatrix::empty(3);
        let mut mv = MajorityVote::new(2);
        mv.fit(&matrix, None).unwrap();
        let probs = predict_all(&mv, &matrix);
        assert_eq!(probs.len(), 3);
        assert_eq!(probs[0], vec![0.5, 0.5]);
    }
}
