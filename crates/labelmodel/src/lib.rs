//! Generative label models: aggregate weak LF votes into probabilistic
//! labels (paper §2.1's `f_l`).
//!
//! Three models are provided:
//!
//! * [`MajorityVote`] — the standard unweighted baseline;
//! * [`DawidSkene`] — EM over per-LF confusion matrices (the classic
//!   generative model; handles any number of classes and models abstention
//!   rates per class);
//! * [`TripletMetal`] — closed-form method-of-moments estimation of LF
//!   accuracies from pairwise agreement statistics, the same second-moment
//!   identity MeTaL's matrix-completion estimator exploits (Ratner et al.
//!   2019), specialised to binary tasks — which covers all eight paper
//!   datasets. The paper's experiments use MeTaL as the label model, so
//!   [`TripletMetal`] is the default in the ActiveDP session.
//!
//! All models implement [`LabelModel`]: `fit` on a [`LabelMatrix`], then
//! `predict_proba` on vote rows.

pub mod dawid_skene;
pub mod error;
pub mod majority;
pub mod triplet;

pub use dawid_skene::DawidSkene;
pub use error::LabelModelError;
pub use majority::MajorityVote;
pub use triplet::TripletMetal;

use adp_lf::LabelMatrix;

/// A generative model over weak labels.
pub trait LabelModel: Send {
    /// Fits the model to a label matrix. `class_balance`, when given, fixes
    /// the class prior (the paper tunes MeTaL with the validation balance);
    /// otherwise models estimate or default to uniform.
    fn fit(
        &mut self,
        matrix: &LabelMatrix,
        class_balance: Option<&[f64]>,
    ) -> Result<(), LabelModelError>;

    /// Posterior class distribution for one row of votes (`-1` = abstain).
    /// Rows where every LF abstains yield the class prior.
    fn predict_proba(&self, votes: &[i8]) -> Vec<f64>;

    /// Number of classes.
    fn n_classes(&self) -> usize;
}

/// Applies `model` to every instance of `matrix`.
pub fn predict_all(model: &dyn LabelModel, matrix: &LabelMatrix) -> Vec<Vec<f64>> {
    (0..matrix.n_instances())
        .map(|i| model.predict_proba(matrix.row(i)))
        .collect()
}

/// Which label model a pipeline should instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelModelKind {
    /// Unweighted majority vote.
    MajorityVote,
    /// Dawid-Skene EM.
    DawidSkene,
    /// Triplet method (MeTaL-style); binary tasks only.
    Triplet,
}

/// Factory for boxed label models.
pub fn make_model(kind: LabelModelKind, n_classes: usize) -> Box<dyn LabelModel> {
    match kind {
        LabelModelKind::MajorityVote => Box::new(MajorityVote::new(n_classes)),
        LabelModelKind::DawidSkene => Box::new(DawidSkene::new(n_classes)),
        LabelModelKind::Triplet => Box::new(TripletMetal::new(n_classes)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_constructs_all_kinds() {
        for kind in [
            LabelModelKind::MajorityVote,
            LabelModelKind::DawidSkene,
            LabelModelKind::Triplet,
        ] {
            let m = make_model(kind, 2);
            assert_eq!(m.n_classes(), 2);
        }
    }

    #[test]
    fn predict_all_shapes() {
        let matrix = LabelMatrix::empty(3);
        let mut mv = MajorityVote::new(2);
        mv.fit(&matrix, None).unwrap();
        let probs = predict_all(&mv, &matrix);
        assert_eq!(probs.len(), 3);
        assert_eq!(probs[0], vec![0.5, 0.5]);
    }
}
