//! Unweighted majority vote.

use crate::error::{resolve_balance, LabelModelError};
use crate::LabelModel;
use adp_lf::{LabelMatrix, ABSTAIN};

/// Majority vote over non-abstaining LFs; ties and all-abstain rows fall
/// back to the class prior.
#[derive(Debug, Clone)]
pub struct MajorityVote {
    n_classes: usize,
    prior: Vec<f64>,
}

impl MajorityVote {
    /// A majority-vote model for `n_classes` classes.
    pub fn new(n_classes: usize) -> Self {
        MajorityVote {
            n_classes,
            prior: vec![1.0 / n_classes as f64; n_classes],
        }
    }
}

impl LabelModel for MajorityVote {
    fn fit(
        &mut self,
        _matrix: &LabelMatrix,
        class_balance: Option<&[f64]>,
    ) -> Result<(), LabelModelError> {
        self.prior = resolve_balance(class_balance, self.n_classes)?;
        Ok(())
    }

    fn predict_proba(&self, votes: &[i8]) -> Vec<f64> {
        let mut counts = vec![0usize; self.n_classes];
        let mut total = 0usize;
        for &v in votes {
            if v != ABSTAIN {
                let c = v as usize;
                if c < self.n_classes {
                    counts[c] += 1;
                    total += 1;
                }
            }
        }
        if total == 0 {
            return self.prior.clone();
        }
        let max = *counts.iter().max().expect("non-empty counts");
        let winners: Vec<usize> = (0..self.n_classes).filter(|&c| counts[c] == max).collect();
        let mut p = vec![0.0; self.n_classes];
        // Ties split probability according to the prior over tied classes.
        let prior_mass: f64 = winners.iter().map(|&c| self.prior[c]).sum();
        for &c in &winners {
            p[c] = self.prior[c] / prior_mass;
        }
        p
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fitted(prior: Option<&[f64]>) -> MajorityVote {
        let mut mv = MajorityVote::new(2);
        mv.fit(&LabelMatrix::empty(0), prior).unwrap();
        mv
    }

    #[test]
    fn clear_majority_wins() {
        let mv = fitted(None);
        assert_eq!(mv.predict_proba(&[1, 1, 0]), vec![0.0, 1.0]);
        assert_eq!(mv.predict_proba(&[0, 0, 1]), vec![1.0, 0.0]);
    }

    #[test]
    fn abstains_ignored() {
        let mv = fitted(None);
        assert_eq!(mv.predict_proba(&[ABSTAIN, 1, ABSTAIN]), vec![0.0, 1.0]);
    }

    #[test]
    fn all_abstain_gives_prior() {
        let mv = fitted(Some(&[0.7, 0.3]));
        let p = mv.predict_proba(&[ABSTAIN, ABSTAIN]);
        assert!((p[0] - 0.7).abs() < 1e-9);
    }

    #[test]
    fn tie_splits_by_prior() {
        let mv = fitted(Some(&[0.8, 0.2]));
        let p = mv.predict_proba(&[0, 1]);
        assert!((p[0] - 0.8).abs() < 1e-9);
        assert!((p[1] - 0.2).abs() < 1e-9);
        let uniform = fitted(None);
        assert_eq!(uniform.predict_proba(&[0, 1]), vec![0.5, 0.5]);
    }

    #[test]
    fn out_of_range_votes_ignored() {
        let mv = fitted(None);
        let p = mv.predict_proba(&[5, 1]);
        assert_eq!(p, vec![0.0, 1.0]);
    }

    #[test]
    fn rejects_bad_balance() {
        let mut mv = MajorityVote::new(2);
        assert!(mv.fit(&LabelMatrix::empty(0), Some(&[0.5])).is_err());
    }
}
