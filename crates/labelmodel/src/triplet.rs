//! Triplet method-of-moments label model (MeTaL-style, binary tasks).
//!
//! Encode votes as ±1 (class 1 → +1, class 0 → −1, abstain → 0) and let
//! `a_j = E[λ_j · Y]`. Under class-conditional independence of the LFs the
//! second moments satisfy `E[λ_i λ_j] = a_i a_j`, so for any triplet
//! `(i, j, k)`:
//!
//! ```text
//!   |a_i| = sqrt( |E[λ_i λ_j] · E[λ_i λ_k] / E[λ_j λ_k]| )
//! ```
//!
//! This is the same second-moment identity MeTaL's matrix-completion
//! estimator inverts (Ratner et al. 2019) and FlyingSquid popularised in
//! closed form. Signs are resolved by the better-than-random assumption the
//! paper's candidate filter enforces (accuracy > 0.6 ⇒ `a_j > 0`). The
//! recovered `a_j` are converted to firing-conditional accuracies and
//! aggregated with a naive-Bayes posterior.

use crate::error::{resolve_balance, LabelModelError};
use crate::LabelModel;
use adp_lf::{LabelMatrix, ABSTAIN};
use adp_linalg::parallel::{self, Execution};

/// Instances per parallel moment-accumulation chunk. Fixed
/// (machine-independent) per the `adp_linalg::parallel` contract. The
/// chunk partials are sums of ±1 products and 0/1 firing counts — exact
/// small integers in `f64` — so merging them in chunk order is not merely
/// bitwise-stable across thread counts, it equals the pre-chunking serial
/// sum exactly.
const MOMENT_CHUNK: usize = 256;

/// Below this many instances the scoped-thread setup cannot pay off.
const MIN_PARALLEL_MOMENTS: usize = 2 * MOMENT_CHUNK;

/// Triplet-estimated label model for binary tasks.
#[derive(Debug, Clone)]
pub struct TripletMetal {
    n_classes: usize,
    /// Firing-conditional accuracy per LF.
    accuracies: Vec<f64>,
    prior: Vec<f64>,
    /// Accuracy assigned to LFs when moments are unusable (fewer than three
    /// LFs, or degenerate overlap). Matches the candidate filter's floor.
    pub default_accuracy: f64,
    /// Accuracy estimates are clamped into `[clamp, 1 − clamp]` so log-odds
    /// stay finite.
    pub clamp: f64,
    /// Run the pairwise-agreement moment accumulation on scoped threads
    /// when the matrix is large enough. The result is bitwise identical
    /// either way; this switch only controls scheduling.
    pub parallel: bool,
}

impl TripletMetal {
    /// A triplet model; `n_classes` must be 2 (checked at `fit`).
    pub fn new(n_classes: usize) -> Self {
        TripletMetal {
            n_classes,
            accuracies: vec![],
            prior: vec![0.5, 0.5],
            default_accuracy: 0.7,
            clamp: 0.05,
            parallel: true,
        }
    }

    /// Estimated firing-conditional accuracies (after `fit`).
    pub fn accuracies(&self) -> &[f64] {
        &self.accuracies
    }

    fn signed(v: i8) -> f64 {
        match v {
            ABSTAIN => 0.0,
            0 => -1.0,
            _ => 1.0,
        }
    }

    /// [`LabelModel::fit`] under an explicit execution policy. The pairwise
    /// moment accumulation fans fixed-size instance chunks out over scoped
    /// threads; the per-chunk partials are exact integers, so serial and
    /// parallel fits agree bit for bit at every thread count (pinned by the
    /// workspace `tests/determinism.rs` harness). `fit` picks the policy
    /// with [`parallel::auto`] when [`TripletMetal::parallel`] is set.
    pub fn fit_with(
        &mut self,
        matrix: &LabelMatrix,
        class_balance: Option<&[f64]>,
        exec: Execution,
    ) -> Result<(), LabelModelError> {
        if self.n_classes != 2 {
            return Err(LabelModelError::BinaryOnly {
                n_classes: self.n_classes,
            });
        }
        self.prior = resolve_balance(class_balance, 2)?;
        let n = matrix.n_instances();
        let m = matrix.n_lfs();
        for i in 0..n {
            for &v in matrix.row(i) {
                if v != ABSTAIN && v as usize >= 2 {
                    return Err(LabelModelError::VoteOutOfRange {
                        vote: v,
                        n_classes: 2,
                    });
                }
            }
        }
        if m == 0 {
            self.accuracies.clear();
            return Ok(());
        }
        if m < 3 || n == 0 {
            self.accuracies = vec![self.default_accuracy; m];
            return Ok(());
        }

        // Firing counts and pairwise signed second-moment sums
        // Σ_i λ_j(x_i)·λ_k(x_i), accumulated per fixed-size instance chunk
        // and merged in chunk order. Every partial is a sum of 0/±1 terms —
        // exact in f64 — so this equals the straight serial sum exactly.
        let parts = parallel::map_chunks(n, MOMENT_CHUNK, exec, |range| {
            let mut fire_part = vec![0.0f64; m];
            let mut moment_part = vec![0.0f64; m * m];
            for i in range {
                let row = matrix.row(i);
                for (j, &v) in row.iter().enumerate() {
                    if v != ABSTAIN {
                        fire_part[j] += 1.0;
                    }
                }
                for j in 0..m {
                    let sj = Self::signed(row[j]);
                    if sj == 0.0 {
                        continue;
                    }
                    for k in (j + 1)..m {
                        let sk = Self::signed(row[k]);
                        if sk != 0.0 {
                            moment_part[j * m + k] += sj * sk;
                        }
                    }
                }
            }
            (fire_part, moment_part)
        });
        let mut fire_rate = vec![0.0f64; m];
        let mut moments = vec![vec![0.0f64; m]; m];
        for (fire_part, moment_part) in parts {
            for (total, part) in fire_rate.iter_mut().zip(&fire_part) {
                *total += part;
            }
            for j in 0..m {
                for k in (j + 1)..m {
                    moments[j][k] += moment_part[j * m + k];
                }
            }
        }
        for f in &mut fire_rate {
            *f /= n.max(1) as f64;
        }
        let inv_n = 1.0 / n as f64;
        for j in 0..m {
            for k in (j + 1)..m {
                moments[j][k] *= inv_n;
                moments[k][j] = moments[j][k];
            }
        }

        // Estimate |a_j| as the median over all usable triplets (j, k, l).
        const MIN_MOMENT: f64 = 1e-4;
        let mut accs = Vec::with_capacity(m);
        let mut estimates: Vec<f64> = Vec::new();
        for j in 0..m {
            estimates.clear();
            for k in 0..m {
                if k == j {
                    continue;
                }
                for l in (k + 1)..m {
                    if l == j {
                        continue;
                    }
                    let (mjk, mjl, mkl) = (moments[j][k], moments[j][l], moments[k][l]);
                    if mjk.abs() < MIN_MOMENT || mjl.abs() < MIN_MOMENT || mkl.abs() < MIN_MOMENT {
                        continue;
                    }
                    let est = (mjk * mjl / mkl).abs().sqrt();
                    if est.is_finite() {
                        estimates.push(est.min(1.0));
                    }
                }
            }
            let a_j = if estimates.is_empty() {
                // No usable triplet: fall back to the prior accuracy.
                fire_rate[j] * (2.0 * self.default_accuracy - 1.0)
            } else {
                estimates.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite estimates"));
                estimates[estimates.len() / 2]
            };
            // a_j = E[λ_j Y] ≈ P(fire) · (2·acc − 1) ⇒ acc = (a_j/P(fire)+1)/2.
            let acc = if fire_rate[j] > 0.0 {
                ((a_j / fire_rate[j]) + 1.0) / 2.0
            } else {
                self.default_accuracy
            };
            accs.push(acc.clamp(self.clamp, 1.0 - self.clamp));
        }
        self.accuracies = accs;
        Ok(())
    }
}

impl LabelModel for TripletMetal {
    fn fit(
        &mut self,
        matrix: &LabelMatrix,
        class_balance: Option<&[f64]>,
    ) -> Result<(), LabelModelError> {
        let exec = if self.parallel {
            parallel::auto(matrix.n_instances(), MIN_PARALLEL_MOMENTS)
        } else {
            Execution::Serial
        };
        self.fit_with(matrix, class_balance, exec)
    }

    fn predict_proba(&self, votes: &[i8]) -> Vec<f64> {
        // Naive-Bayes log odds for Y = 1.
        let mut log_odds = (self.prior[1] / self.prior[0]).ln();
        for (j, &v) in votes.iter().enumerate().take(self.accuracies.len()) {
            if v == ABSTAIN {
                continue;
            }
            let acc = self.accuracies[j];
            let w = (acc / (1.0 - acc)).ln();
            log_odds += Self::signed(v) * w;
        }
        let p1 = 1.0 / (1.0 + (-log_odds).exp());
        vec![1.0 - p1, p1]
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dawid_skene::tests::planted;

    #[test]
    fn recovers_planted_accuracies() {
        let accs = [0.9, 0.8, 0.7, 0.6, 0.85];
        let (lm, _) = planted(&accs, 0.7, 6000, 1);
        let mut t = TripletMetal::new(2);
        t.fit(&lm, Some(&[0.5, 0.5])).unwrap();
        for (j, &a) in accs.iter().enumerate() {
            let est = t.accuracies()[j];
            assert!((est - a).abs() < 0.08, "LF {j}: est {est} vs true {a}");
        }
    }

    #[test]
    fn posterior_weights_good_lfs_higher() {
        let accs = [0.95, 0.55, 0.55];
        let (lm, labels) = planted(&accs, 1.0, 4000, 2);
        let mut t = TripletMetal::new(2);
        t.fit(&lm, Some(&[0.5, 0.5])).unwrap();
        let mut correct = 0usize;
        for i in 0..lm.n_instances() {
            let p = t.predict_proba(lm.row(i));
            if adp_linalg::argmax(&p).unwrap() == labels[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / lm.n_instances() as f64;
        // Should track the best LF (0.95), not the majority (~0.60).
        assert!(acc > 0.88, "triplet accuracy {acc:.3}");
    }

    #[test]
    fn fewer_than_three_lfs_uses_default() {
        let (lm, _) = planted(&[0.9, 0.8], 1.0, 500, 3);
        let mut t = TripletMetal::new(2);
        t.fit(&lm, None).unwrap();
        assert_eq!(t.accuracies(), &[0.7, 0.7]);
    }

    #[test]
    fn empty_matrix_and_all_abstain_rows() {
        let lm = LabelMatrix::empty(5);
        let mut t = TripletMetal::new(2);
        t.fit(&lm, Some(&[0.3, 0.7])).unwrap();
        let p = t.predict_proba(&[]);
        assert!((p[1] - 0.7).abs() < 1e-9);
        let p = t.predict_proba(&[ABSTAIN, ABSTAIN]);
        assert!((p[1] - 0.7).abs() < 1e-9);
    }

    #[test]
    fn rejects_multiclass() {
        let mut t = TripletMetal::new(3);
        assert!(matches!(
            t.fit(&LabelMatrix::empty(0), None).unwrap_err(),
            LabelModelError::BinaryOnly { .. }
        ));
    }

    #[test]
    fn rejects_out_of_range_votes() {
        let lm = LabelMatrix::from_votes(&[vec![2]]).unwrap();
        let mut t = TripletMetal::new(2);
        assert!(t.fit(&lm, None).is_err());
    }

    #[test]
    fn accuracies_are_clamped() {
        // Perfectly correlated LFs can push estimates to 1; clamp bounds.
        let (lm, _) = planted(&[1.0, 1.0, 1.0, 1.0], 1.0, 1000, 4);
        let mut t = TripletMetal::new(2);
        t.fit(&lm, None).unwrap();
        for &a in t.accuracies() {
            assert!((0.05..=0.95).contains(&a));
        }
    }

    #[test]
    fn prior_shifts_posterior() {
        let (lm, _) = planted(&[0.8, 0.8, 0.8], 0.5, 2000, 5);
        let mut t = TripletMetal::new(2);
        t.fit(&lm, Some(&[0.9, 0.1])).unwrap();
        // A single weak positive vote should not overcome a strong prior.
        let p = t.predict_proba(&[ABSTAIN, 1, ABSTAIN]);
        assert!(p[0] > 0.3, "prior should temper the vote: {p:?}");
    }
}
