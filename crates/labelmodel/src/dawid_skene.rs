//! Dawid–Skene EM: per-LF confusion matrices over vote outcomes.
//!
//! The generative story: draw `Y ~ π`, then each LF independently emits a
//! vote from its class-conditional outcome distribution
//! `θ_j[y][v], v ∈ {abstain, 0, …, C−1}`. Modelling abstention as an
//! outcome lets the model capture class-correlated coverage, which keyword
//! LFs exhibit strongly. EM is initialised from the majority vote so the
//! label permutation stays anchored (LFs are assumed better than random, as
//! in the paper's candidate filtering).
//!
//! Both EM sweeps are data-parallel over instances under the
//! [`adp_linalg::parallel`] fixed-chunk contract: the E-step's per-row
//! posteriors are pure per-instance work, and the M-step accumulates
//! per-chunk confusion/prior partials that merge in chunk-index order — in
//! the serial path too — so [`DawidSkene::fit`] is **bitwise identical**
//! at every thread count (pinned by `serial_matches_parallel` here and by
//! the workspace `tests/determinism.rs` harness).

use crate::error::{resolve_balance, LabelModelError};
use crate::majority::MajorityVote;
use crate::LabelModel;
use adp_lf::{LabelMatrix, ABSTAIN};
use adp_linalg::parallel::{self, Execution};

/// Instances per parallel EM chunk. Fixed (never derived from the machine)
/// so chunk boundaries — and the M-step's partial-sum grouping — are
/// identical at every thread count.
const EM_CHUNK: usize = 256;

/// Below this many instances the EM fans out to a couple of chunks anyway;
/// skip the scoped-thread setup entirely.
const MIN_PARALLEL_INSTANCES: usize = 2 * EM_CHUNK;

/// Dawid–Skene label model trained by EM.
#[derive(Debug, Clone)]
pub struct DawidSkene {
    n_classes: usize,
    /// θ[j][y][v]: P(vote = v | Y = y) for LF j; v = 0 is abstain,
    /// v = 1 + c is class c.
    theta: Vec<Vec<Vec<f64>>>,
    prior: Vec<f64>,
    /// EM iteration cap.
    pub max_iters: usize,
    /// Convergence tolerance on the max parameter change.
    pub tol: f64,
    /// Laplace smoothing mass added to every outcome count.
    pub smoothing: f64,
    /// Run the EM sweeps on scoped threads when the matrix is large enough.
    /// The result is bitwise identical either way (chunk-wise accumulation
    /// is always used); this switch only controls scheduling.
    pub parallel: bool,
}

impl DawidSkene {
    /// A Dawid–Skene model for `n_classes` classes with default EM settings.
    pub fn new(n_classes: usize) -> Self {
        DawidSkene {
            n_classes,
            theta: vec![],
            prior: vec![1.0 / n_classes as f64; n_classes],
            max_iters: 100,
            tol: 1e-5,
            smoothing: 0.1,
            parallel: true,
        }
    }

    /// Estimated P(vote = v | Y = y) table for LF `j` (after `fit`).
    pub fn confusion(&self, j: usize) -> &[Vec<f64>] {
        &self.theta[j]
    }

    /// Estimated (or fixed) class prior π (after `fit`).
    pub fn prior(&self) -> &[f64] {
        &self.prior
    }

    /// Estimated accuracy of LF `j` conditioned on it firing, assuming class
    /// prior `prior`: `Σ_y π_y θ_j[y][y] / Σ_y π_y (1 − θ_j[y][abstain])`.
    pub fn lf_accuracy(&self, j: usize) -> f64 {
        let mut correct = 0.0;
        let mut fired = 0.0;
        for y in 0..self.n_classes {
            correct += self.prior[y] * self.theta[j][y][1 + y];
            fired += self.prior[y] * (1.0 - self.theta[j][y][0]);
        }
        if fired > 0.0 {
            correct / fired
        } else {
            0.0
        }
    }

    fn vote_outcome(&self, v: i8) -> Result<usize, LabelModelError> {
        if v == ABSTAIN {
            Ok(0)
        } else if (v as usize) < self.n_classes {
            Ok(1 + v as usize)
        } else {
            Err(LabelModelError::VoteOutOfRange {
                vote: v,
                n_classes: self.n_classes,
            })
        }
    }

    /// [`LabelModel::fit`] under an explicit execution policy. Serial and
    /// parallel runs are bitwise identical (see module docs); `fit` picks
    /// the policy with [`parallel::auto`] when [`DawidSkene::parallel`] is
    /// set.
    pub fn fit_with(
        &mut self,
        matrix: &LabelMatrix,
        class_balance: Option<&[f64]>,
        exec: Execution,
    ) -> Result<(), LabelModelError> {
        let n = matrix.n_instances();
        let m = matrix.n_lfs();
        let c = self.n_classes;
        let n_outcomes = 1 + c;
        let fixed_prior = class_balance.is_some();
        self.prior = resolve_balance(class_balance, c)?;

        // Validate votes once.
        for i in 0..n {
            for &v in matrix.row(i) {
                self.vote_outcome(v)?;
            }
        }

        if m == 0 || n == 0 {
            self.theta = vec![vec![vec![1.0 / n_outcomes as f64; n_outcomes]; c]; m];
            return Ok(());
        }

        // Initialise responsibilities from majority vote.
        let mut mv = MajorityVote::new(c);
        mv.fit(matrix, class_balance)?;
        let mut q: Vec<Vec<f64>> = (0..n).map(|i| mv.predict_proba(matrix.row(i))).collect();

        let mut theta = vec![vec![vec![0.0; n_outcomes]; c]; m];
        for _iter in 0..self.max_iters {
            // M-step: per-chunk (prior, confusion-count) partials, merged
            // in chunk order onto the smoothing-initialised accumulators.
            // Counts are flat `[j][y][o]` so chunk partials merge with one
            // element-wise pass.
            let q_ref = &q;
            let parts = parallel::map_chunks(n, EM_CHUNK, exec, |range| {
                let mut prior_part = vec![0.0f64; c];
                let mut counts_part = vec![0.0f64; m * c * n_outcomes];
                for i in range {
                    let row = matrix.row(i);
                    for y in 0..c {
                        let w = q_ref[i][y];
                        prior_part[y] += w;
                        for (j, &v) in row.iter().enumerate() {
                            let o = if v == ABSTAIN { 0 } else { 1 + v as usize };
                            counts_part[(j * c + y) * n_outcomes + o] += w;
                        }
                    }
                }
                (prior_part, counts_part)
            });
            let mut new_prior = vec![self.smoothing; c];
            let mut counts = vec![self.smoothing; m * c * n_outcomes];
            for (prior_part, counts_part) in parts {
                for (acc, p) in new_prior.iter_mut().zip(&prior_part) {
                    *acc += p;
                }
                for (acc, p) in counts.iter_mut().zip(&counts_part) {
                    *acc += p;
                }
            }
            let mut max_delta = 0.0_f64;
            for j in 0..m {
                for y in 0..c {
                    let cell = &counts[(j * c + y) * n_outcomes..(j * c + y + 1) * n_outcomes];
                    let total: f64 = cell.iter().sum();
                    for o in 0..n_outcomes {
                        let v = cell[o] / total;
                        max_delta = max_delta.max((v - theta[j][y][o]).abs());
                        theta[j][y][o] = v;
                    }
                }
            }
            if !fixed_prior {
                let total: f64 = new_prior.iter().sum();
                for y in 0..c {
                    let v = new_prior[y] / total;
                    max_delta = max_delta.max((v - self.prior[y]).abs());
                    self.prior[y] = v;
                }
            }

            // E-step (log space): pure per-row posteriors, fanned out over
            // the same fixed chunks and written back in instance order.
            self.theta = theta.clone();
            let (theta_ref, prior_ref) = (&self.theta, &self.prior);
            let posteriors = parallel::map_chunks(n, EM_CHUNK, exec, |range| {
                range
                    .map(|i| {
                        let row = matrix.row(i);
                        let mut logp: Vec<f64> = (0..c).map(|y| prior_ref[y].ln()).collect();
                        for (j, &v) in row.iter().enumerate() {
                            let o = if v == ABSTAIN { 0 } else { 1 + v as usize };
                            for (y, lp) in logp.iter_mut().enumerate() {
                                *lp += theta_ref[j][y][o].max(1e-300).ln();
                            }
                        }
                        adp_linalg::softmax_inplace(&mut logp);
                        logp
                    })
                    .collect::<Vec<_>>()
            });
            for (qi, post) in q.iter_mut().zip(posteriors.into_iter().flatten()) {
                *qi = post;
            }

            if max_delta < self.tol {
                break;
            }
        }
        self.theta = theta;
        Ok(())
    }
}

impl LabelModel for DawidSkene {
    fn fit(
        &mut self,
        matrix: &LabelMatrix,
        class_balance: Option<&[f64]>,
    ) -> Result<(), LabelModelError> {
        let exec = if self.parallel {
            parallel::auto(matrix.n_instances(), MIN_PARALLEL_INSTANCES)
        } else {
            Execution::Serial
        };
        self.fit_with(matrix, class_balance, exec)
    }

    fn predict_proba(&self, votes: &[i8]) -> Vec<f64> {
        let c = self.n_classes;
        if self.theta.is_empty() || votes.iter().all(|&v| v == ABSTAIN) {
            return self.prior.clone();
        }
        let mut logp: Vec<f64> = (0..c).map(|y| self.prior[y].ln()).collect();
        for (j, &v) in votes.iter().enumerate().take(self.theta.len()) {
            // Abstain outcomes are skipped at prediction time: coverage says
            // little about a *new* instance's class and including it makes
            // all-but-abstain rows overconfident.
            if v == ABSTAIN {
                continue;
            }
            let o = 1 + (v as usize).min(c - 1);
            for (y, lp) in logp.iter_mut().enumerate() {
                *lp += self.theta[j][y][o].max(1e-300).ln();
            }
        }
        adp_linalg::softmax_inplace(&mut logp);
        logp
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    /// Builds a label matrix from planted per-LF accuracies on random
    /// binary ground truth: each LF fires with probability `cov` and votes
    /// correctly with its accuracy.
    pub(crate) fn planted(
        accs: &[f64],
        cov: f64,
        n: usize,
        seed: u64,
    ) -> (LabelMatrix, Vec<usize>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let labels: Vec<usize> = (0..n)
            .map(|_| usize::from(rng.gen::<f64>() < 0.5))
            .collect();
        let mut data: Vec<Vec<i8>> = vec![];
        for &y in &labels {
            let mut row = Vec::with_capacity(accs.len());
            for &a in accs {
                if rng.gen::<f64>() < cov {
                    let correct = rng.gen::<f64>() < a;
                    let vote = if correct { y } else { 1 - y };
                    row.push(vote as i8);
                } else {
                    row.push(ABSTAIN);
                }
            }
            data.push(row);
        }
        (LabelMatrix::from_votes(&data).unwrap(), labels)
    }

    #[test]
    fn recovers_planted_accuracies() {
        let accs = [0.9, 0.8, 0.65, 0.55];
        let (lm, _) = planted(&accs, 0.7, 4000, 1);
        let mut ds = DawidSkene::new(2);
        ds.fit(&lm, Some(&[0.5, 0.5])).unwrap();
        for (j, &a) in accs.iter().enumerate() {
            let est = ds.lf_accuracy(j);
            assert!((est - a).abs() < 0.06, "LF {j}: est {est} vs true {a}");
        }
    }

    #[test]
    fn posterior_beats_majority_vote_with_skewed_accuracies() {
        // One excellent LF vs two coin-flippy LFs that often outvote it.
        let accs = [0.95, 0.55, 0.55];
        let (lm, labels) = planted(&accs, 1.0, 3000, 2);
        let mut ds = DawidSkene::new(2);
        ds.fit(&lm, Some(&[0.5, 0.5])).unwrap();
        let mut mv = MajorityVote::new(2);
        mv.fit(&lm, None).unwrap();
        let acc = |model: &dyn LabelModel| {
            let mut correct = 0usize;
            for i in 0..lm.n_instances() {
                let p = model.predict_proba(lm.row(i));
                if adp_linalg::argmax(&p).unwrap() == labels[i] {
                    correct += 1;
                }
            }
            correct as f64 / lm.n_instances() as f64
        };
        let ds_acc = acc(&ds);
        let mv_acc = acc(&mv);
        assert!(
            ds_acc > mv_acc + 0.03,
            "DS {ds_acc:.3} should beat MV {mv_acc:.3}"
        );
        // And DS should be close to the best LF's accuracy.
        assert!(ds_acc > 0.88, "DS accuracy {ds_acc:.3}");
    }

    #[test]
    fn estimates_class_prior_when_free() {
        let accs = [0.85, 0.85, 0.85];
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let labels: Vec<usize> = (0..3000)
            .map(|_| usize::from(rng.gen::<f64>() < 0.25))
            .collect();
        let mut rows = vec![];
        for &y in &labels {
            rows.push(
                accs.iter()
                    .map(|&a| {
                        let correct = rng.gen::<f64>() < a;
                        (if correct { y } else { 1 - y }) as i8
                    })
                    .collect::<Vec<i8>>(),
            );
        }
        let lm = LabelMatrix::from_votes(&rows).unwrap();
        let mut ds = DawidSkene::new(2);
        ds.fit(&lm, None).unwrap();
        assert!((ds.prior[1] - 0.25).abs() < 0.05, "prior {:?}", ds.prior);
    }

    #[test]
    fn all_abstain_prediction_is_prior() {
        let (lm, _) = planted(&[0.8], 0.5, 200, 4);
        let mut ds = DawidSkene::new(2);
        ds.fit(&lm, Some(&[0.6, 0.4])).unwrap();
        let p = ds.predict_proba(&[ABSTAIN]);
        assert!((p[0] - 0.6).abs() < 1e-9);
    }

    #[test]
    fn empty_matrix_fit_is_safe() {
        let lm = LabelMatrix::empty(0);
        let mut ds = DawidSkene::new(2);
        ds.fit(&lm, None).unwrap();
        assert_eq!(ds.predict_proba(&[]), vec![0.5, 0.5]);
    }

    #[test]
    fn rejects_out_of_range_votes() {
        let lm = LabelMatrix::from_votes(&[vec![3]]).unwrap();
        let mut ds = DawidSkene::new(2);
        assert!(matches!(
            ds.fit(&lm, None).unwrap_err(),
            LabelModelError::VoteOutOfRange { .. }
        ));
    }

    #[test]
    fn deterministic_fit() {
        let (lm, _) = planted(&[0.8, 0.7], 0.6, 500, 5);
        let mut a = DawidSkene::new(2);
        a.fit(&lm, None).unwrap();
        let mut b = DawidSkene::new(2);
        b.fit(&lm, None).unwrap();
        assert_eq!(a.predict_proba(lm.row(0)), b.predict_proba(lm.row(0)));
    }

    #[test]
    fn serial_matches_parallel_bitwise() {
        // Free prior (exercises the prior-partial merge) and coverage gaps
        // (exercises the abstain outcome). Spans many EM_CHUNK chunks.
        let (lm, _) = planted(&[0.9, 0.75, 0.6, 0.55], 0.6, 1500, 6);
        let mut serial = DawidSkene::new(2);
        serial.fit_with(&lm, None, Execution::Serial).unwrap();
        for threads in [2, 3, 7] {
            let mut par = DawidSkene::new(2);
            par.fit_with(&lm, None, Execution::with_threads(threads))
                .unwrap();
            for (ps, pp) in serial.prior().iter().zip(par.prior()) {
                assert_eq!(ps.to_bits(), pp.to_bits(), "prior, threads={threads}");
            }
            for j in 0..lm.n_lfs() {
                for (rs, rp) in serial.confusion(j).iter().zip(par.confusion(j)) {
                    for (a, b) in rs.iter().zip(rp) {
                        assert_eq!(a.to_bits(), b.to_bits(), "theta[{j}], threads={threads}");
                    }
                }
            }
        }
    }
}
