//! Error type for label-model fitting.

use std::fmt;

/// Errors produced while fitting a label model.
#[derive(Debug, Clone, PartialEq)]
pub enum LabelModelError {
    /// Class balance vector malformed (wrong length / not a distribution).
    BadClassBalance {
        /// Reason.
        reason: String,
    },
    /// The model requires a binary task.
    BinaryOnly {
        /// Actual class count.
        n_classes: usize,
    },
    /// Votes contained a label outside `0..n_classes`.
    VoteOutOfRange {
        /// The offending vote.
        vote: i8,
        /// Number of classes.
        n_classes: usize,
    },
}

impl fmt::Display for LabelModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelModelError::BadClassBalance { reason } => {
                write!(f, "bad class balance: {reason}")
            }
            LabelModelError::BinaryOnly { n_classes } => {
                write!(
                    f,
                    "model supports binary tasks only, got {n_classes} classes"
                )
            }
            LabelModelError::VoteOutOfRange { vote, n_classes } => {
                write!(f, "vote {vote} out of range for {n_classes} classes")
            }
        }
    }
}

impl std::error::Error for LabelModelError {}

/// Validates an optional class-balance vector against `n_classes`, returning
/// the prior to use (uniform when absent).
pub(crate) fn resolve_balance(
    balance: Option<&[f64]>,
    n_classes: usize,
) -> Result<Vec<f64>, LabelModelError> {
    match balance {
        None => Ok(vec![1.0 / n_classes as f64; n_classes]),
        Some(b) => {
            if b.len() != n_classes {
                return Err(LabelModelError::BadClassBalance {
                    reason: format!("expected {n_classes} entries, got {}", b.len()),
                });
            }
            let sum: f64 = b.iter().sum();
            if (sum - 1.0).abs() > 1e-6 || b.iter().any(|&p| p < 0.0 || !p.is_finite()) {
                return Err(LabelModelError::BadClassBalance {
                    reason: "entries must be a probability distribution".into(),
                });
            }
            // Clamp away exact zeros so log-space aggregation stays finite.
            let eps = 1e-6;
            let mut out: Vec<f64> = b.iter().map(|&p| p.max(eps)).collect();
            let s: f64 = out.iter().sum();
            for p in &mut out {
                *p /= s;
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_balance_uniform_default() {
        assert_eq!(resolve_balance(None, 4).unwrap(), vec![0.25; 4]);
    }

    #[test]
    fn resolve_balance_validates() {
        assert!(resolve_balance(Some(&[0.5, 0.5, 0.0]), 2).is_err());
        assert!(resolve_balance(Some(&[0.7, 0.7]), 2).is_err());
        assert!(resolve_balance(Some(&[-0.5, 1.5]), 2).is_err());
        let ok = resolve_balance(Some(&[0.3, 0.7]), 2).unwrap();
        assert!((ok[0] - 0.3).abs() < 1e-9);
    }

    #[test]
    fn resolve_balance_clamps_zeros() {
        let out = resolve_balance(Some(&[0.0, 1.0]), 2).unwrap();
        assert!(out[0] > 0.0);
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
