//! Deterministic IVF candidate index over pool feature vectors.
//!
//! ActiveDP's samplers rank the *entire* unlabelled pool every iteration —
//! O(pool) scoring per query, which caps the reproduction at paper scale.
//! This crate provides the sublinear path: an inverted-file (IVF) index
//! whose coarse quantizer is a k-means clustering of the pool, so a sampler
//! can restrict scoring to the few inverted lists nearest the current
//! decision boundary instead of the whole pool.
//!
//! Everything here is **bitwise deterministic across thread counts**, in
//! keeping with the workspace-wide contract:
//!
//! - k-means initialisation is a seeded partial Fisher–Yates draw of
//!   distinct rows (one `StdRng` stream, fixed consumption order);
//! - Lloyd assignment fans out through [`adp_linalg::parallel::map_chunks`]
//!   (chunk boundaries are a pure function of the row count, results come
//!   back in chunk order, and each row's nearest-centroid computation is
//!   independent — no cross-row floating-point reductions);
//! - centroid accumulation is a serial pass in ascending row order;
//! - every distance tie breaks toward the smaller index (strict `<`
//!   comparisons), so assignments, list contents, and query results never
//!   depend on scheduling.
//!
//! The optional feature store ([`StoreKind`]) keeps a flattened copy of the
//! pool for [`IvfIndex::query`] reranking: `Raw` stores `f64`s, `Quantized`
//! stores one `u8` per dimension under a per-column min/max affine code —
//! 8× smaller, which is what lets a million-instance pool's store fit in
//! memory. With [`StoreKind::None`] the index answers only coarse routing
//! ([`IvfIndex::nearest_lists`] + [`IvfIndex::list`]), which is all the
//! engine's candidate-generation path needs.
//!
//! ```
//! use adp_index::{IvfIndex, IvfParams, StoreKind};
//! use adp_linalg::Matrix;
//!
//! // Two well-separated clusters of 2-d points.
//! let rows: Vec<Vec<f64>> = (0..32)
//!     .map(|i| {
//!         let c = if i < 16 { 0.0 } else { 10.0 };
//!         vec![c + (i % 4) as f64 * 0.01, c - (i % 3) as f64 * 0.01]
//!     })
//!     .collect();
//! let pool = Matrix::from_rows(&rows).unwrap();
//! let index = IvfIndex::build(
//!     &pool,
//!     &IvfParams { nlist: 2, store: StoreKind::Raw, ..IvfParams::default() },
//! );
//! // Querying near the second cluster returns members of the second cluster.
//! let hits = index.query(&[10.0, 10.0], 3, 1);
//! assert_eq!(hits.len(), 3);
//! assert!(hits.iter().all(|&i| i >= 16));
//! ```

use adp_linalg::parallel::{self, Execution};
use adp_linalg::Features;
use rand::{Rng, SeedableRng};

/// Rows per scoring chunk for parallel Lloyd assignment. Fixed so chunk
/// boundaries (and therefore per-chunk work) never depend on thread count.
const ASSIGN_CHUNK: usize = 1024;

/// Below this many rows the build stays serial; scoped-thread spawn costs
/// more than it saves.
const MIN_PARALLEL_BUILD: usize = 4096;

/// Cap on k-means training rows: `KMEANS_TRAIN_FACTOR · nlist` rows are
/// enough to place centroids; training on a deterministic stride of the
/// pool keeps million-row builds off the quadratic path.
const KMEANS_TRAIN_FACTOR: usize = 50;

/// How the index stores pool vectors for [`IvfIndex::query`] reranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreKind {
    /// No store: the index only routes (centroids + inverted lists).
    /// [`IvfIndex::query`] is unavailable; use [`IvfIndex::nearest_lists`]
    /// and [`IvfIndex::list`]. This is what the engine's candidate path
    /// uses — it scores candidates through the model, not by distance.
    #[default]
    None,
    /// Full-precision `f64` copy of every row (8 bytes/dim).
    Raw,
    /// Scalar quantization: one `u8` per dimension under per-column
    /// min/max affine coding (1 byte/dim, 8× smaller than `Raw`).
    /// Reranking decodes on the fly; recall loss is bounded by the code's
    /// 1/255-of-range resolution per column.
    Quantized,
}

/// Build parameters for [`IvfIndex::build`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IvfParams {
    /// Number of inverted lists (k-means centroids). `0` picks
    /// `⌈√n⌉`, the usual IVF heuristic.
    pub nlist: usize,
    /// Lloyd iterations for the coarse quantizer.
    pub train_iters: usize,
    /// Seed for centroid initialisation (one deterministic RNG stream).
    pub seed: u64,
    /// Feature storage for query-time reranking.
    pub store: StoreKind,
}

impl Default for IvfParams {
    fn default() -> Self {
        IvfParams {
            nlist: 0,
            train_iters: 8,
            seed: 0,
            store: StoreKind::None,
        }
    }
}

#[derive(Debug, Clone)]
enum Store {
    None,
    Raw(Vec<f64>),
    Quantized {
        codes: Vec<u8>,
        lo: Vec<f64>,
        step: Vec<f64>,
    },
}

/// A deterministic IVF index: k-means coarse quantizer + inverted lists,
/// optionally backed by a (quantized) feature store. See the crate docs
/// for the determinism contract and an end-to-end example.
#[derive(Debug, Clone)]
pub struct IvfIndex {
    dim: usize,
    n: usize,
    /// `nlist × dim`, flattened row-major.
    centroids: Vec<f64>,
    /// Row ids per list, each ascending (rows are assigned in order).
    lists: Vec<Vec<usize>>,
    store: Store,
}

impl IvfIndex {
    /// Build over `features` with an automatically sized thread budget
    /// (serial below a few thousand rows, the process-wide
    /// `ADP_NUM_THREADS` budget above that).
    pub fn build<F: Features + ?Sized>(features: &F, params: &IvfParams) -> Self {
        Self::build_with(
            features,
            params,
            parallel::auto(features.nrows(), MIN_PARALLEL_BUILD),
        )
    }

    /// Build with an explicit [`Execution`]. The result is bitwise
    /// identical for every `exec` — this entry exists so tests can sweep
    /// thread counts in-process (the env-derived budget is cached once).
    pub fn build_with<F: Features + ?Sized>(
        features: &F,
        params: &IvfParams,
        exec: Execution,
    ) -> Self {
        let n = features.nrows();
        let dim = features.ncols();
        if n == 0 || dim == 0 {
            return IvfIndex {
                dim,
                n,
                centroids: Vec::new(),
                lists: Vec::new(),
                store: Store::None,
            };
        }
        let nlist = match params.nlist {
            0 => ((n as f64).sqrt().ceil() as usize).max(1),
            k => k,
        }
        .min(n);

        // --- Seeded init: nlist distinct rows via partial Fisher-Yates. ---
        let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed);
        let mut order: Vec<usize> = (0..n).collect();
        for k in 0..nlist {
            let j = k + rng.gen_range(0..n - k);
            order.swap(k, j);
        }
        let mut centroids = vec![0.0; nlist * dim];
        for (c, &row) in order[..nlist].iter().enumerate() {
            features.row_axpy(row, 1.0, &mut centroids[c * dim..(c + 1) * dim]);
        }

        // --- Lloyd iterations on a deterministic strided subsample. ---
        let m = n.min(KMEANS_TRAIN_FACTOR.saturating_mul(nlist)).max(nlist);
        let train_rows: Vec<usize> = (0..m).map(|t| t * n / m).collect();
        for _ in 0..params.train_iters {
            let assign = assign_rows(features, &centroids, dim, &train_rows, exec);
            // Serial accumulation in ascending subsample order: summation
            // order is fixed, so centroid floats are scheduling-independent.
            let mut sums = vec![0.0; nlist * dim];
            let mut counts = vec![0usize; nlist];
            for (t, &row) in train_rows.iter().enumerate() {
                let c = assign[t] as usize;
                features.row_axpy(row, 1.0, &mut sums[c * dim..(c + 1) * dim]);
                counts[c] += 1;
            }
            for c in 0..nlist {
                if counts[c] > 0 {
                    let inv = 1.0 / counts[c] as f64;
                    for d in 0..dim {
                        centroids[c * dim + d] = sums[c * dim + d] * inv;
                    }
                }
                // Empty list: keep the previous centroid (deterministic,
                // and it may capture rows on a later iteration).
            }
        }

        // --- Final assignment of every row, lists in ascending row order. ---
        let all_rows: Vec<usize> = (0..n).collect();
        let assign = assign_rows(features, &centroids, dim, &all_rows, exec);
        let mut lists = vec![Vec::new(); nlist];
        for (row, &c) in assign.iter().enumerate() {
            lists[c as usize].push(row);
        }

        let store = build_store(features, params.store, n, dim);
        IvfIndex {
            dim,
            n,
            centroids,
            lists,
            store,
        }
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when no rows are indexed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row ids assigned to list `l`, in ascending order.
    pub fn list(&self, l: usize) -> &[usize] {
        &self.lists[l]
    }

    /// Centroid of list `l`.
    pub fn centroid(&self, l: usize) -> &[f64] {
        &self.centroids[l * self.dim..(l + 1) * self.dim]
    }

    /// The `nprobe` list ids nearest to `q`, nearest first; distance ties
    /// break toward the smaller list id.
    pub fn nearest_lists(&self, q: &[f64], nprobe: usize) -> Vec<usize> {
        assert_eq!(q.len(), self.dim, "query dimensionality mismatch");
        let mut scored: Vec<(f64, usize)> = (0..self.nlist())
            .map(|l| (sq_dist(q, self.centroid(l)), l))
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        scored.truncate(nprobe);
        scored.into_iter().map(|(_, l)| l).collect()
    }

    /// The `k` approximate nearest neighbours of `q`, probing the
    /// `nprobe` closest inverted lists and exhaustively reranking their
    /// members from the feature store. Nearest first; distance ties break
    /// toward the smaller row id.
    ///
    /// # Panics
    ///
    /// Panics if the index was built with [`StoreKind::None`] (no vectors
    /// to rerank against) or if `q` has the wrong dimensionality.
    pub fn query(&self, q: &[f64], k: usize, nprobe: usize) -> Vec<usize> {
        assert!(
            !matches!(self.store, Store::None),
            "query() needs a feature store; build with StoreKind::Raw or StoreKind::Quantized"
        );
        let mut hits: Vec<(f64, usize)> = Vec::new();
        let mut buf = vec![0.0; self.dim];
        for l in self.nearest_lists(q, nprobe) {
            for &row in self.list(l) {
                self.decode_into(row, &mut buf);
                hits.push((sq_dist(q, &buf), row));
            }
        }
        hits.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        hits.truncate(k);
        hits.into_iter().map(|(_, row)| row).collect()
    }

    /// Decode stored row `row` into `out` (which must be `dim` long).
    fn decode_into(&self, row: usize, out: &mut [f64]) {
        match &self.store {
            Store::None => unreachable!("checked by query()"),
            Store::Raw(flat) => out.copy_from_slice(&flat[row * self.dim..(row + 1) * self.dim]),
            Store::Quantized { codes, lo, step } => {
                for d in 0..self.dim {
                    out[d] = lo[d] + codes[row * self.dim + d] as f64 * step[d];
                }
            }
        }
    }

    /// Bytes held by the feature store (0 for [`StoreKind::None`]).
    pub fn store_bytes(&self) -> usize {
        match &self.store {
            Store::None => 0,
            Store::Raw(flat) => flat.len() * std::mem::size_of::<f64>(),
            Store::Quantized { codes, lo, step } => {
                codes.len() + (lo.len() + step.len()) * std::mem::size_of::<f64>()
            }
        }
    }
}

/// Nearest centroid per row (ties toward the smaller centroid id), fanned
/// out in fixed chunks. Each row's result is independent, so the output is
/// identical at every thread count.
fn assign_rows<F: Features + ?Sized>(
    features: &F,
    centroids: &[f64],
    dim: usize,
    rows: &[usize],
    exec: Execution,
) -> Vec<u32> {
    let nlist = centroids.len() / dim;
    // For argmin over c of ‖x−c‖² the ‖x‖² term is constant: compare
    // ‖c‖² − 2⟨x,c⟩ instead, with ‖c‖² hoisted out of the row loop.
    let c_sq: Vec<f64> = (0..nlist)
        .map(|c| {
            let cv = &centroids[c * dim..(c + 1) * dim];
            cv.iter().map(|v| v * v).sum()
        })
        .collect();
    let chunks = parallel::map_chunks(rows.len(), ASSIGN_CHUNK, exec, |range| {
        let mut out = Vec::with_capacity(range.len());
        let mut buf = vec![0.0; dim];
        for t in range {
            buf.iter_mut().for_each(|v| *v = 0.0);
            features.row_axpy(rows[t], 1.0, &mut buf);
            let mut best = 0u32;
            let mut best_score = f64::INFINITY;
            for c in 0..nlist {
                let dot: f64 = buf
                    .iter()
                    .zip(&centroids[c * dim..(c + 1) * dim])
                    .map(|(x, y)| x * y)
                    .sum();
                let score = c_sq[c] - 2.0 * dot;
                if score < best_score {
                    best_score = score;
                    best = c as u32;
                }
            }
            out.push(best);
        }
        out
    });
    chunks.concat()
}

fn build_store<F: Features + ?Sized>(features: &F, kind: StoreKind, n: usize, dim: usize) -> Store {
    match kind {
        StoreKind::None => Store::None,
        StoreKind::Raw => {
            let mut flat = vec![0.0; n * dim];
            for row in 0..n {
                features.row_axpy(row, 1.0, &mut flat[row * dim..(row + 1) * dim]);
            }
            Store::Raw(flat)
        }
        StoreKind::Quantized => {
            let mut lo = vec![f64::INFINITY; dim];
            let mut hi = vec![f64::NEG_INFINITY; dim];
            let mut buf = vec![0.0; dim];
            for row in 0..n {
                buf.iter_mut().for_each(|v| *v = 0.0);
                features.row_axpy(row, 1.0, &mut buf);
                for d in 0..dim {
                    lo[d] = lo[d].min(buf[d]);
                    hi[d] = hi[d].max(buf[d]);
                }
            }
            let step: Vec<f64> = (0..dim)
                .map(|d| {
                    let range = hi[d] - lo[d];
                    if range > 0.0 {
                        range / 255.0
                    } else {
                        0.0
                    }
                })
                .collect();
            let mut codes = vec![0u8; n * dim];
            for row in 0..n {
                buf.iter_mut().for_each(|v| *v = 0.0);
                features.row_axpy(row, 1.0, &mut buf);
                for d in 0..dim {
                    codes[row * dim + d] = if step[d] > 0.0 {
                        ((buf[d] - lo[d]) / step[d]).round().clamp(0.0, 255.0) as u8
                    } else {
                        0
                    };
                }
            }
            Store::Quantized { codes, lo, step }
        }
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_linalg::Matrix;

    /// `n` points in `k` well-separated planted clusters, deterministic in
    /// `seed`. Cluster `c` is centred at `10·c` on every axis with ±2
    /// jitter — wide enough that neighbour ordering is coarser than the
    /// u8 code's resolution, narrow enough that true neighbours are always
    /// same-cluster points.
    fn planted(n: usize, k: usize, dim: usize, seed: u64) -> Matrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let c = (i % k) as f64;
                (0..dim)
                    .map(|_| 10.0 * c + 4.0 * (rng.gen::<f64>() - 0.5))
                    .collect()
            })
            .collect();
        Matrix::from_rows(&rows).unwrap()
    }

    fn exact_knn(m: &Matrix, q: &[f64], k: usize) -> Vec<usize> {
        let mut scored: Vec<(f64, usize)> =
            (0..m.nrows()).map(|i| (sq_dist(m.row(i), q), i)).collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        scored.truncate(k);
        scored.into_iter().map(|(_, i)| i).collect()
    }

    fn recall_at_k(m: &Matrix, index: &IvfIndex, k: usize, nprobe: usize) -> f64 {
        let mut hit = 0usize;
        let mut total = 0usize;
        for qi in (0..m.nrows()).step_by(17) {
            let q = m.row(qi);
            let truth: std::collections::HashSet<usize> = exact_knn(m, q, k).into_iter().collect();
            let approx = index.query(q, k, nprobe);
            hit += approx.iter().filter(|i| truth.contains(i)).count();
            total += k;
        }
        hit as f64 / total as f64
    }

    #[test]
    fn recall_on_planted_clusters_beats_point_nine() {
        let m = planted(600, 6, 8, 3);
        for store in [StoreKind::Raw, StoreKind::Quantized] {
            let index = IvfIndex::build(
                &m,
                &IvfParams {
                    nlist: 12,
                    store,
                    ..IvfParams::default()
                },
            );
            let r = recall_at_k(&m, &index, 10, 3);
            assert!(r >= 0.9, "recall@10 = {r} with store {store:?}");
        }
    }

    #[test]
    fn quantized_store_is_eight_times_smaller() {
        let m = planted(256, 4, 16, 1);
        let p = IvfParams {
            nlist: 8,
            ..IvfParams::default()
        };
        let raw = IvfIndex::build(
            &m,
            &IvfParams {
                store: StoreKind::Raw,
                ..p
            },
        );
        let quant = IvfIndex::build(
            &m,
            &IvfParams {
                store: StoreKind::Quantized,
                ..p
            },
        );
        assert_eq!(raw.store_bytes(), 256 * 16 * 8);
        // codes + two f64 tables of dim entries
        assert_eq!(quant.store_bytes(), 256 * 16 + 2 * 16 * 8);
    }

    #[test]
    fn build_and_query_are_bitwise_identical_across_thread_counts() {
        let m = planted(3000, 5, 6, 9);
        let params = IvfParams {
            nlist: 10,
            store: StoreKind::Quantized,
            ..IvfParams::default()
        };
        let reference = IvfIndex::build_with(&m, &params, Execution::Serial);
        let ref_lists: Vec<&[usize]> = (0..reference.nlist()).map(|l| reference.list(l)).collect();
        let ref_query = reference.query(m.row(42), 7, 3);
        let ref_centroids: Vec<u64> = reference.centroids.iter().map(|v| v.to_bits()).collect();
        for threads in [1usize, 2, 3, 7] {
            let index = IvfIndex::build_with(&m, &params, Execution::with_threads(threads));
            let lists: Vec<&[usize]> = (0..index.nlist()).map(|l| index.list(l)).collect();
            let centroids: Vec<u64> = index.centroids.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                centroids, ref_centroids,
                "centroid bits differ at {threads} threads"
            );
            assert_eq!(
                lists, ref_lists,
                "list contents differ at {threads} threads"
            );
            assert_eq!(
                index.query(m.row(42), 7, 3),
                ref_query,
                "query differs at {threads} threads"
            );
        }
    }

    #[test]
    fn lists_partition_the_pool_in_ascending_order() {
        let m = planted(500, 4, 4, 7);
        let index = IvfIndex::build(&m, &IvfParams::default());
        let mut seen = vec![false; 500];
        for l in 0..index.nlist() {
            let list = index.list(l);
            assert!(
                list.windows(2).all(|w| w[0] < w[1]),
                "list {l} not ascending"
            );
            for &row in list {
                assert!(!seen[row], "row {row} in two lists");
                seen[row] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some rows unassigned");
    }

    #[test]
    fn auto_nlist_is_sqrt_n_and_empty_pools_are_fine() {
        let m = planted(400, 4, 3, 2);
        let index = IvfIndex::build(&m, &IvfParams::default());
        assert_eq!(index.nlist(), 20);
        let empty = IvfIndex::build(&Matrix::zeros(0, 3), &IvfParams::default());
        assert!(empty.is_empty());
        assert_eq!(empty.nlist(), 0);
    }

    #[test]
    #[should_panic(expected = "feature store")]
    fn query_without_a_store_panics() {
        let m = planted(64, 2, 3, 0);
        IvfIndex::build(&m, &IvfParams::default()).query(&[0.0; 3], 1, 1);
    }
}
