//! Session configuration: the ablation switches of Table 3 and the sampler
//! choices of Table 4.

use crate::error::ActiveDpError;
use crate::labelpick::LabelPickConfig;
use adp_classifier::LogRegConfig;
use adp_labelmodel::LabelModelKind;

/// Which sample selector drives the training loop (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerChoice {
    /// The paper's ADP sampler (Eq. 2).
    Adp,
    /// Uniform random.
    Passive,
    /// Uncertainty sampling on the AL model.
    Uncertainty,
    /// Learning active learning.
    Lal,
    /// Nemo's select-by-expected-utility.
    Seu,
    /// Query-by-committee vote entropy (extension beyond the paper's
    /// Table 4; see §2.2's related work).
    Qbc,
}

impl SamplerChoice {
    /// Table 4 row label.
    pub fn label(self) -> &'static str {
        match self {
            SamplerChoice::Adp => "ADP",
            SamplerChoice::Passive => "Passive",
            SamplerChoice::Uncertainty => "US",
            SamplerChoice::Lal => "LAL",
            SamplerChoice::Seu => "SEU",
            SamplerChoice::Qbc => "QBC",
        }
    }
}

/// Session configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// ADP sampler trade-off α (paper: 0.5 text, 0.99 tabular).
    pub alpha: f64,
    /// Simulated-user candidate accuracy threshold τ_acc (paper: 0.6).
    pub acc_threshold: f64,
    /// Simulated-user label-noise rate (Table 5; 0 in the main experiments).
    pub noise_rate: f64,
    /// Which label model aggregates the LFs.
    pub label_model: LabelModelKind,
    /// Ablation switch: LabelPick LF selection (§3.4).
    pub use_labelpick: bool,
    /// Ablation switch: ConFusion aggregation (§3.2).
    pub use_confusion: bool,
    /// LabelPick hyperparameters.
    pub labelpick: LabelPickConfig,
    /// Query-instance selector.
    pub sampler: SamplerChoice,
    /// AL-model training hyperparameters.
    pub al_logreg: LogRegConfig,
    /// Downstream-model training hyperparameters.
    pub downstream_logreg: LogRegConfig,
    /// Master seed: user, samplers and tie-breaks derive from it.
    pub seed: u64,
}

impl SessionConfig {
    /// The paper's configuration for a dataset of the given modality.
    pub fn paper_defaults(textual: bool, seed: u64) -> Self {
        SessionConfig {
            alpha: if textual { 0.5 } else { 0.99 },
            acc_threshold: 0.6,
            noise_rate: 0.0,
            label_model: LabelModelKind::Triplet,
            use_labelpick: true,
            use_confusion: true,
            labelpick: LabelPickConfig::default(),
            sampler: SamplerChoice::Adp,
            al_logreg: LogRegConfig::default(),
            downstream_logreg: LogRegConfig {
                max_iters: 150,
                ..LogRegConfig::default()
            },
            seed,
        }
    }

    /// Table 3 ablation: all user LFs train the label model, no aggregation.
    pub fn ablation_baseline(textual: bool, seed: u64) -> Self {
        SessionConfig {
            use_labelpick: false,
            use_confusion: false,
            ..SessionConfig::paper_defaults(textual, seed)
        }
    }

    pub(crate) fn validate(&self) -> Result<(), ActiveDpError> {
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(ActiveDpError::BadConfig {
                reason: format!("alpha {} outside [0,1]", self.alpha),
            });
        }
        if !(0.0..1.0).contains(&self.acc_threshold) {
            return Err(ActiveDpError::BadConfig {
                reason: format!("acc_threshold {} outside [0,1)", self.acc_threshold),
            });
        }
        if !(0.0..=1.0).contains(&self.noise_rate) {
            return Err(ActiveDpError::BadConfig {
                reason: format!("noise_rate {} outside [0,1]", self.noise_rate),
            });
        }
        Ok(())
    }
}
