//! Session configuration: the ablation switches of Table 3 and the sampler
//! choices of Table 4.

use crate::error::ActiveDpError;
use crate::labelpick::LabelPickConfig;
use adp_classifier::LogRegConfig;
use adp_labelmodel::LabelModelKind;
use adp_lf::{SimulatedUser, UserConfig};
use adp_oracle::{NoisyOracle, Oracle, OracleKind, OracleRouter};

/// XOR mask separating the oracle's RNG stream from the master seed.
///
/// Every component seeded from [`SessionConfig::seed`] gets its own
/// constant so no two components ever share an RNG stream; the derivation
/// lives *only* here (consumed through [`SessionConfig::oracle_seed`] and
/// [`SessionConfig::sampler_seed`]) so the builder, the facade and the
/// stages cannot drift apart.
const SEED_STREAM_ORACLE: u64 = 0x5EED_0001;

/// XOR mask separating the sampler's RNG stream from the master seed.
const SEED_STREAM_SAMPLER: u64 = 0x5EED_0002;

/// XOR mask separating the candidate index's RNG stream (k-means
/// initialisation under [`CandidateStrategy::Ann`]) from the master seed.
const SEED_STREAM_INDEX: u64 = 0x5EED_0003;

/// XOR mask separating the cheap noisy oracle's RNG stream (under
/// [`OracleKind::Noisy`]) from the master seed — distinct from the
/// expensive user's stream so routing never entangles the two.
const SEED_STREAM_CHEAP_ORACLE: u64 = 0x5EED_0004;

/// Which sample selector drives the training loop (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerChoice {
    /// The paper's ADP sampler (Eq. 2).
    Adp,
    /// Uniform random.
    Passive,
    /// Uncertainty sampling on the AL model.
    Uncertainty,
    /// Learning active learning.
    Lal,
    /// Nemo's select-by-expected-utility.
    Seu,
    /// Query-by-committee vote entropy (extension beyond the paper's
    /// Table 4; see §2.2's related work).
    Qbc,
}

impl SamplerChoice {
    /// All samplers, in the paper's Table 4 order (ADP last as the
    /// headline method, as the table prints it).
    pub fn all() -> [SamplerChoice; 6] {
        [
            SamplerChoice::Passive,
            SamplerChoice::Uncertainty,
            SamplerChoice::Lal,
            SamplerChoice::Seu,
            SamplerChoice::Qbc,
            SamplerChoice::Adp,
        ]
    }

    /// Table 4 row label — what [`SamplerChoice::from_str`] parses back.
    ///
    /// [`SamplerChoice::from_str`]: std::str::FromStr::from_str
    pub fn label(self) -> &'static str {
        match self {
            SamplerChoice::Adp => "ADP",
            SamplerChoice::Passive => "Passive",
            SamplerChoice::Uncertainty => "US",
            SamplerChoice::Lal => "LAL",
            SamplerChoice::Seu => "SEU",
            SamplerChoice::Qbc => "QBC",
        }
    }
}

impl std::fmt::Display for SamplerChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A sampler name that matched no [`SamplerChoice`]; [`Display`] lists the
/// valid options.
///
/// [`Display`]: std::fmt::Display
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownSampler {
    /// The name that failed to parse.
    pub given: String,
}

impl std::fmt::Display for UnknownSampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown sampler {:?}; expected one of {}",
            self.given,
            SamplerChoice::all().map(SamplerChoice::label).join(", ")
        )
    }
}

impl std::error::Error for UnknownSampler {}

impl std::str::FromStr for SamplerChoice {
    type Err = UnknownSampler;

    /// Parses a sampler name, case-insensitively, accepting the Table 4
    /// label plus the variant's long name (`uncertainty` for `US`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "adp" => Ok(SamplerChoice::Adp),
            "passive" => Ok(SamplerChoice::Passive),
            "us" | "uncertainty" => Ok(SamplerChoice::Uncertainty),
            "lal" => Ok(SamplerChoice::Lal),
            "seu" => Ok(SamplerChoice::Seu),
            "qbc" => Ok(SamplerChoice::Qbc),
            _ => Err(UnknownSampler { given: s.into() }),
        }
    }
}

/// How the sampler builds its per-iteration candidate pool.
///
/// `Exact` (the default) scores every unqueried instance — the paper's
/// behaviour, O(pool) per query, bitwise-pinned by the golden trajectory.
/// `Ann` routes candidate generation through the deterministic IVF index
/// of the `adp-index` crate: each selection scores only the members of the
/// `nprobe` inverted lists nearest the current decision boundary, and the
/// index is rebuilt after every `refresh_every` refits (0 = never refresh)
/// so the lists track the evolving models. The ANN path only changes
/// *which instances get scored*, never how; before any model exists it
/// falls back to exact scoring, so small runs are unaffected.
///
/// ```
/// use activedp::config::CandidateStrategy;
///
/// // The default is exact scoring, and names round-trip through FromStr.
/// assert_eq!(CandidateStrategy::default(), CandidateStrategy::Exact);
/// let ann: CandidateStrategy = "ann:8,4".parse().unwrap();
/// assert_eq!(ann, CandidateStrategy::Ann { nprobe: 8, refresh_every: 4 });
/// assert_eq!(ann.to_string(), "ann:8,4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CandidateStrategy {
    /// Score the full unqueried pool (paper behaviour).
    #[default]
    Exact,
    /// Score only the IVF candidate set near the decision boundary.
    Ann {
        /// Inverted lists probed per selection (the index holds ~√pool
        /// lists, so `nprobe` of them is a ~`nprobe`/√pool fraction).
        nprobe: usize,
        /// Refits between index rebuilds; 0 means build once and keep.
        refresh_every: usize,
    },
}

impl CandidateStrategy {
    /// `Ann` with the defaults the sweeps use: probe 8 lists, refresh the
    /// index every 4 refits.
    pub fn ann() -> Self {
        CandidateStrategy::Ann {
            nprobe: 8,
            refresh_every: 4,
        }
    }
}

impl std::fmt::Display for CandidateStrategy {
    /// `exact`, or `ann:{nprobe},{refresh_every}` — what
    /// [`CandidateStrategy::from_str`] parses back.
    ///
    /// [`CandidateStrategy::from_str`]: std::str::FromStr::from_str
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CandidateStrategy::Exact => f.write_str("exact"),
            CandidateStrategy::Ann {
                nprobe,
                refresh_every,
            } => write!(f, "ann:{nprobe},{refresh_every}"),
        }
    }
}

/// A candidate-strategy name that failed to parse; [`Display`] shows the
/// accepted grammar.
///
/// [`Display`]: std::fmt::Display
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownCandidateStrategy {
    /// The string that failed to parse.
    pub given: String,
}

impl std::fmt::Display for UnknownCandidateStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown candidate strategy {:?}; expected exact, ann, or ann:NPROBE[,REFRESH]",
            self.given
        )
    }
}

impl std::error::Error for UnknownCandidateStrategy {}

impl std::str::FromStr for CandidateStrategy {
    type Err = UnknownCandidateStrategy;

    /// Parses `exact`, `ann` (defaults), `ann:NPROBE`, or
    /// `ann:NPROBE,REFRESH`, case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        let err = || UnknownCandidateStrategy { given: s.into() };
        match lower.as_str() {
            "exact" => return Ok(CandidateStrategy::Exact),
            "ann" => return Ok(CandidateStrategy::ann()),
            _ => {}
        }
        let rest = lower.strip_prefix("ann:").ok_or_else(err)?;
        let (nprobe, refresh) = match rest.split_once(',') {
            Some((n, r)) => (n, Some(r)),
            None => (rest, None),
        };
        let nprobe: usize = nprobe.trim().parse().map_err(|_| err())?;
        let refresh_every: usize = match refresh {
            Some(r) => r.trim().parse().map_err(|_| err())?,
            None => 4,
        };
        if nprobe == 0 {
            return Err(err());
        }
        Ok(CandidateStrategy::Ann {
            nprobe,
            refresh_every,
        })
    }
}

/// Session configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    /// ADP sampler trade-off α (paper: 0.5 text, 0.99 tabular).
    pub alpha: f64,
    /// Simulated-user candidate accuracy threshold τ_acc (paper: 0.6).
    pub acc_threshold: f64,
    /// Simulated-user label-noise rate (Table 5; 0 in the main experiments).
    pub noise_rate: f64,
    /// Which label model aggregates the LFs.
    pub label_model: LabelModelKind,
    /// Ablation switch: LabelPick LF selection (§3.4).
    pub use_labelpick: bool,
    /// Ablation switch: ConFusion aggregation (§3.2).
    pub use_confusion: bool,
    /// LabelPick hyperparameters.
    pub labelpick: LabelPickConfig,
    /// Query-instance selector.
    pub sampler: SamplerChoice,
    /// How the selector builds its candidate pool each iteration:
    /// [`CandidateStrategy::Exact`] (paper behaviour, the default) or the
    /// sublinear [`CandidateStrategy::Ann`] index path.
    pub candidates: CandidateStrategy,
    /// Which oracle answers queries: [`OracleKind::Simulated`] (the paper's
    /// single expensive user, the default) or [`OracleKind::Noisy`] — the
    /// expensive user plus a cheap confusion-structured labeller behind a
    /// budget-aware router.
    pub oracle: OracleKind,
    /// AL-model training hyperparameters.
    pub al_logreg: LogRegConfig,
    /// Downstream-model training hyperparameters.
    pub downstream_logreg: LogRegConfig,
    /// Master switch for the refit-stage data-parallel kernels: label-model
    /// EM and bulk prediction, LabelPick's glasso, and the AL/downstream
    /// logreg fits. Trajectories are bitwise identical either way — every
    /// kernel obeys the `adp_linalg::parallel` fixed-chunk reduction
    /// contract — so this only controls scheduling. Note it does *not*
    /// reach kernels outside the refit path (LF application in
    /// `LabelMatrix::push_lf`, covariance assembly), which keep their own
    /// `auto` thresholds; pin the whole process with `ADP_NUM_THREADS=1`
    /// when a deployment needs strictly single-threaded sessions.
    pub parallel: bool,
    /// Master seed: user, samplers and tie-breaks derive from it.
    pub seed: u64,
}

impl SessionConfig {
    /// The paper's configuration for a dataset of the given modality.
    pub fn paper_defaults(textual: bool, seed: u64) -> Self {
        SessionConfig {
            alpha: if textual { 0.5 } else { 0.99 },
            acc_threshold: 0.6,
            noise_rate: 0.0,
            label_model: LabelModelKind::Triplet,
            use_labelpick: true,
            use_confusion: true,
            labelpick: LabelPickConfig::default(),
            sampler: SamplerChoice::Adp,
            candidates: CandidateStrategy::Exact,
            oracle: OracleKind::Simulated,
            al_logreg: LogRegConfig::default(),
            downstream_logreg: LogRegConfig {
                max_iters: 150,
                ..LogRegConfig::default()
            },
            parallel: true,
            seed,
        }
    }

    /// The per-component scheduling switches with the master
    /// [`SessionConfig::parallel`] switch applied: effective LabelPick,
    /// AL-model and downstream-model configurations. Stages construct their
    /// kernels from these so one flag pins the whole session serial.
    pub(crate) fn effective_labelpick(&self) -> LabelPickConfig {
        LabelPickConfig {
            parallel: self.labelpick.parallel && self.parallel,
            ..self.labelpick
        }
    }

    pub(crate) fn effective_al_logreg(&self) -> LogRegConfig {
        LogRegConfig {
            parallel: self.al_logreg.parallel && self.parallel,
            ..self.al_logreg
        }
    }

    pub(crate) fn effective_downstream_logreg(&self) -> LogRegConfig {
        LogRegConfig {
            parallel: self.downstream_logreg.parallel && self.parallel,
            ..self.downstream_logreg
        }
    }

    /// Table 3 ablation: all user LFs train the label model, no aggregation.
    pub fn ablation_baseline(textual: bool, seed: u64) -> Self {
        SessionConfig {
            use_labelpick: false,
            use_confusion: false,
            ..SessionConfig::paper_defaults(textual, seed)
        }
    }

    /// Seed of the oracle's RNG stream, derived from the master seed.
    ///
    /// The derivation is the single source of truth for how the simulated
    /// user is seeded; [`SessionConfig::simulated_user`] and any custom
    /// construction path must go through it so a given master seed always
    /// reproduces the same oracle behaviour.
    pub fn oracle_seed(&self) -> u64 {
        self.seed ^ SEED_STREAM_ORACLE
    }

    /// Seed of the query sampler's RNG stream, derived from the master seed.
    pub fn sampler_seed(&self) -> u64 {
        self.seed ^ SEED_STREAM_SAMPLER
    }

    /// Seed of the candidate index's RNG stream (k-means initialisation
    /// under [`CandidateStrategy::Ann`]), derived from the master seed.
    pub fn index_seed(&self) -> u64 {
        self.seed ^ SEED_STREAM_INDEX
    }

    /// Seed of the cheap noisy oracle's RNG stream (under
    /// [`OracleKind::Noisy`]), derived from the master seed.
    pub fn cheap_oracle_seed(&self) -> u64 {
        self.seed ^ SEED_STREAM_CHEAP_ORACLE
    }

    /// The simulated user of §4.1.4 for this configuration: candidate
    /// accuracy threshold and noise rate from the config, RNG seeded from
    /// [`SessionConfig::oracle_seed`].
    pub fn simulated_user(&self) -> SimulatedUser {
        SimulatedUser::new(
            UserConfig {
                acc_threshold: self.acc_threshold,
                noise_rate: self.noise_rate,
            },
            self.oracle_seed(),
        )
    }

    /// The label source [`SessionConfig::oracle`] describes:
    /// the plain simulated user under [`OracleKind::Simulated`], or an
    /// [`OracleRouter`] over the user and a [`NoisyOracle`] (seeded from
    /// [`SessionConfig::cheap_oracle_seed`]) under [`OracleKind::Noisy`].
    /// The single construction path for the engine, the builder and resume,
    /// so the seed derivations can never drift apart.
    pub fn build_oracle(&self) -> Box<dyn Oracle> {
        match self.oracle {
            OracleKind::Simulated => Box::new(self.simulated_user()),
            OracleKind::Noisy {
                confusion,
                latency,
                policy,
            } => Box::new(OracleRouter::new(
                self.simulated_user(),
                NoisyOracle::new(confusion, self.acc_threshold, self.cheap_oracle_seed()),
                policy,
                latency,
            )),
        }
    }

    pub(crate) fn validate(&self) -> Result<(), ActiveDpError> {
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(ActiveDpError::BadConfig {
                reason: format!("alpha {} outside [0,1]", self.alpha),
            });
        }
        if !(0.0..1.0).contains(&self.acc_threshold) {
            return Err(ActiveDpError::BadConfig {
                reason: format!("acc_threshold {} outside [0,1)", self.acc_threshold),
            });
        }
        if !(0.0..=1.0).contains(&self.noise_rate) {
            return Err(ActiveDpError::BadConfig {
                reason: format!("noise_rate {} outside [0,1]", self.noise_rate),
            });
        }
        if let CandidateStrategy::Ann { nprobe, .. } = self.candidates {
            if nprobe == 0 {
                return Err(ActiveDpError::BadConfig {
                    reason: "candidates ann nprobe must be >= 1".into(),
                });
            }
        }
        self.oracle
            .validate()
            .map_err(|reason| ActiveDpError::BadConfig { reason })?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_streams_are_centralised_and_distinct() {
        let cfg = SessionConfig::paper_defaults(true, 7);
        assert_eq!(cfg.oracle_seed(), 7 ^ SEED_STREAM_ORACLE);
        assert_eq!(cfg.sampler_seed(), 7 ^ SEED_STREAM_SAMPLER);
        assert_eq!(cfg.index_seed(), 7 ^ SEED_STREAM_INDEX);
        assert_eq!(cfg.cheap_oracle_seed(), 7 ^ SEED_STREAM_CHEAP_ORACLE);
        // The streams never collide with each other or the master seed.
        let streams = [
            cfg.oracle_seed(),
            cfg.sampler_seed(),
            cfg.index_seed(),
            cfg.cheap_oracle_seed(),
            cfg.seed,
        ];
        for (i, a) in streams.iter().enumerate() {
            for b in &streams[i + 1..] {
                assert_ne!(a, b, "seed streams collide");
            }
        }
    }

    #[test]
    fn validate_rejects_bad_oracle_specs() {
        let mut cfg = SessionConfig::paper_defaults(true, 7);
        cfg.oracle = OracleKind::Noisy {
            confusion: adp_oracle::ConfusionSpec::Uniform { accuracy: 2.0 },
            latency: adp_oracle::LatencyModel::default(),
            policy: adp_oracle::RoutePolicy::CheapThenEscalate,
        };
        assert!(cfg.validate().is_err());
        cfg.oracle = OracleKind::noisy();
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn build_oracle_matches_the_kind() {
        let mut cfg = SessionConfig::paper_defaults(true, 7);
        let plain = cfg.build_oracle();
        assert!(
            plain.route_stats().is_none(),
            "simulated user does not route"
        );
        cfg.oracle = OracleKind::noisy();
        let routed = cfg.build_oracle();
        assert_eq!(routed.route_stats(), Some(Default::default()));
        assert!(routed.cheap_rng_words().is_some());
        // The expensive side is seeded exactly as the plain user is.
        assert_eq!(routed.rng_words(), plain.rng_words());
    }

    #[test]
    fn candidate_strategies_roundtrip_through_fromstr() {
        for strat in [
            CandidateStrategy::Exact,
            CandidateStrategy::ann(),
            CandidateStrategy::Ann {
                nprobe: 3,
                refresh_every: 0,
            },
        ] {
            assert_eq!(
                strat.to_string().parse::<CandidateStrategy>().unwrap(),
                strat
            );
        }
        assert_eq!(
            "ann".parse::<CandidateStrategy>().unwrap(),
            CandidateStrategy::ann()
        );
        assert_eq!(
            "ann:5".parse::<CandidateStrategy>().unwrap(),
            CandidateStrategy::Ann {
                nprobe: 5,
                refresh_every: 4
            }
        );
        for bad in ["hnsw", "ann:", "ann:0", "ann:2,x", "exactt"] {
            let err = bad.parse::<CandidateStrategy>().unwrap_err();
            assert_eq!(err.given, bad);
            assert!(err.to_string().contains("ann:NPROBE"), "{err}");
        }
    }

    #[test]
    fn validate_rejects_zero_nprobe() {
        let mut cfg = SessionConfig::paper_defaults(true, 7);
        cfg.candidates = CandidateStrategy::Ann {
            nprobe: 0,
            refresh_every: 4,
        };
        assert!(cfg.validate().is_err());
        cfg.candidates = CandidateStrategy::ann();
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn sampler_labels_roundtrip_through_fromstr() {
        for sampler in SamplerChoice::all() {
            assert_eq!(
                sampler.to_string().parse::<SamplerChoice>().unwrap(),
                sampler
            );
        }
        assert_eq!(
            "uncertainty".parse::<SamplerChoice>().unwrap(),
            SamplerChoice::Uncertainty
        );
        let err = "oracle".parse::<SamplerChoice>().unwrap_err();
        assert_eq!(err.given, "oracle");
        assert!(err.to_string().contains("ADP"), "{err}");
    }

    #[test]
    fn simulated_user_derives_from_config() {
        // Two users built from identical configs must behave identically;
        // a different master seed must produce a different oracle stream.
        // (The exact derivation is pinned by the golden-trajectory test.)
        let data = adp_data::generate(adp_data::DatasetId::Youtube, adp_data::Scale::Tiny, 9)
            .expect("tiny dataset generates");
        let space = adp_lf::CandidateSpace::build(&data.train);
        let respond_all = |seed: u64| {
            let mut user = SessionConfig::paper_defaults(true, seed).simulated_user();
            (0..data.train.len())
                .map(|i| {
                    user.respond(&space, &data.train, &data.train, i)
                        .map(|lf| lf.key())
                })
                .collect::<Vec<_>>()
        };
        let a = respond_all(9);
        assert_eq!(a, respond_all(9), "same config must reproduce the oracle");
        assert!(a.iter().any(Option::is_some), "oracle answered nothing");
        assert_ne!(a, respond_all(10), "seed must reach the oracle stream");
    }
}
