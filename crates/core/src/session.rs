//! The ActiveDP session: the original monolithic API, preserved as a thin
//! facade over the staged [`Engine`].
//!
//! `ActiveDpSession` predates the engine split; examples, baselines, and
//! the experiment binaries all drive it, so its surface is kept stable —
//! only dataset ownership changed with the owned-engine redesign (datasets
//! are passed by value or as [`SharedDataset`] handles instead of borrowed;
//! see MIGRATION.md). New code that wants per-stage control (custom outer
//! loops, batched refits, stage-level instrumentation) should build an
//! [`Engine`] via [`Engine::builder`] directly — the two are
//! trajectory-identical by construction and by the
//! `engine_matches_golden_trajectory` integration test.

pub use crate::config::{SamplerChoice, SessionConfig};
pub use crate::engine::{EvalReport, StepOutcome};

use crate::confusion::AggregatedLabels;
use crate::engine::Engine;
use crate::error::ActiveDpError;
use crate::oracle::Oracle;
use adp_data::SharedDataset;
use adp_lf::LabelFunction;

/// An interactive ActiveDP labelling session over one dataset split.
///
/// Like the [`Engine`] it wraps, a session is `Send + 'static`: it owns its
/// dataset behind a [`SharedDataset`] handle and can move across threads.
pub struct ActiveDpSession {
    engine: Engine,
}

impl ActiveDpSession {
    /// A session with the simulated user of §4.1.4 as the oracle.
    ///
    /// Sugar for `Engine::builder(data).config(config).build()`.
    pub fn new(
        data: impl Into<SharedDataset>,
        config: SessionConfig,
    ) -> Result<Self, ActiveDpError> {
        Ok(ActiveDpSession {
            engine: Engine::builder(data).config(config).build()?,
        })
    }

    /// A session with a custom oracle (e.g. an interactive UI).
    ///
    /// Sugar for `Engine::builder(data).config(config).oracle(oracle).build()`.
    pub fn with_oracle(
        data: impl Into<SharedDataset>,
        config: SessionConfig,
        oracle: Box<dyn Oracle>,
    ) -> Result<Self, ActiveDpError> {
        Ok(ActiveDpSession {
            engine: Engine::builder(data)
                .config(config)
                .oracle(oracle)
                .build()?,
        })
    }

    /// The staged engine underneath (stage-level access for new code).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Consumes the facade, releasing the engine.
    pub fn into_engine(self) -> Engine {
        self.engine
    }

    /// Current iteration count.
    pub fn iteration(&self) -> usize {
        self.engine.state().iteration
    }

    /// All LFs collected so far.
    pub fn lfs(&self) -> &[LabelFunction] {
        &self.engine.state().lfs
    }

    /// Indices of the LFs currently selected by LabelPick.
    pub fn selected(&self) -> &[usize] {
        &self.engine.state().selected
    }

    /// The pseudo-labelled set `(query instance, pseudo label)` (§3.1).
    pub fn pseudo_labelled(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.engine.state().pseudo_labelled()
    }

    /// One training iteration of Figure 1 (left).
    pub fn step(&mut self) -> Result<StepOutcome, ActiveDpError> {
        self.engine.step()
    }

    /// Batched stepping: up to `k` queries against the current models, then
    /// one refit (see [`Engine::step_batch`]).
    pub fn step_batch(&mut self, k: usize) -> Result<Vec<StepOutcome>, ActiveDpError> {
        self.engine.step_batch(k)
    }

    /// Runs `iterations` training steps.
    pub fn run(&mut self, iterations: usize) -> Result<(), ActiveDpError> {
        self.engine.run(iterations)
    }

    /// Inference phase (Figure 1 right): tunes τ on the validation split
    /// (when ConFusion is enabled) and aggregates labels for the training
    /// pool.
    pub fn aggregate_train_labels(&self) -> Result<AggregatedLabels, ActiveDpError> {
        self.engine.aggregate_train_labels()
    }

    /// Trains the downstream model on the aggregated labels and evaluates
    /// it on the test split (the protocol's every-10-iterations metric).
    pub fn evaluate_downstream(&self) -> Result<EvalReport, ActiveDpError> {
        self.engine.evaluate_downstream()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_data::{generate, DatasetId, Scale};

    fn tiny(id: DatasetId) -> SharedDataset {
        generate(id, Scale::Tiny, 42)
            .expect("tiny dataset generates")
            .into_shared()
    }

    fn run_session(
        data: &SharedDataset,
        config: SessionConfig,
        iters: usize,
    ) -> (EvalReport, usize) {
        let mut s = ActiveDpSession::new(data.clone(), config).unwrap();
        s.run(iters).unwrap();
        let n_lfs = s.lfs().len();
        (s.evaluate_downstream().unwrap(), n_lfs)
    }

    #[test]
    fn text_session_learns_something() {
        let data = tiny(DatasetId::Youtube);
        let cfg = SessionConfig::paper_defaults(true, 3);
        let (report, n_lfs) = run_session(&data, cfg, 25);
        assert!(n_lfs > 5, "only {n_lfs} LFs collected");
        assert!(report.downstream_trained);
        assert!(
            report.label_coverage > 0.3,
            "coverage {}",
            report.label_coverage
        );
        // Well above chance on an easy dataset.
        assert!(
            report.test_accuracy > 0.6,
            "test accuracy {}",
            report.test_accuracy
        );
        assert!(report.threshold.is_some());
    }

    #[test]
    fn tabular_session_learns_something() {
        let data = tiny(DatasetId::Occupancy);
        let cfg = SessionConfig::paper_defaults(false, 2);
        let (report, n_lfs) = run_session(&data, cfg, 25);
        assert!(n_lfs > 5);
        assert!(
            report.test_accuracy > 0.7,
            "test accuracy {}",
            report.test_accuracy
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let data = tiny(DatasetId::Youtube);
        let run = |seed| {
            let cfg = SessionConfig::paper_defaults(true, seed);
            let mut s = ActiveDpSession::new(data.clone(), cfg).unwrap();
            s.run(15).unwrap();
            let r = s.evaluate_downstream().unwrap();
            (s.lfs().len(), r.test_accuracy, r.label_coverage)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn ablation_switches_change_behaviour() {
        let data = tiny(DatasetId::Youtube);
        let full = SessionConfig::paper_defaults(true, 3);
        let baseline = SessionConfig::ablation_baseline(true, 3);
        let confusion_only = SessionConfig {
            use_labelpick: false,
            ..SessionConfig::paper_defaults(true, 3)
        };
        let (r_full, _) = run_session(&data, full, 20);
        let (r_base, _) = run_session(&data, baseline, 20);
        let (r_conf, _) = run_session(&data, confusion_only, 20);
        assert!(r_full.threshold.is_some());
        assert!(r_base.threshold.is_none());
        // With the same LF set (LabelPick off in both), ConFusion's covered
        // set {conf >= tau} ∪ {has vote} is a superset of the baseline's
        // {has vote}.
        assert!(r_conf.label_coverage >= r_base.label_coverage - 1e-9);
    }

    #[test]
    fn all_sampler_choices_run() {
        let data = tiny(DatasetId::Youtube);
        for sampler in [
            SamplerChoice::Adp,
            SamplerChoice::Passive,
            SamplerChoice::Uncertainty,
            SamplerChoice::Lal,
            SamplerChoice::Seu,
            SamplerChoice::Qbc,
        ] {
            let cfg = SessionConfig {
                sampler,
                ..SessionConfig::paper_defaults(true, 4)
            };
            let mut s = ActiveDpSession::new(data.clone(), cfg).unwrap();
            s.run(8).unwrap();
            assert!(s.iteration() == 8, "{}", sampler.label());
        }
    }

    #[test]
    fn pool_exhaustion_is_graceful() {
        let data = tiny(DatasetId::Youtube);
        let n = data.train.len();
        let cfg = SessionConfig::paper_defaults(true, 5);
        let mut s = ActiveDpSession::new(data.clone(), cfg).unwrap();
        s.run(n + 10).unwrap();
        // The extra iterations return query=None without erroring.
        let out = s.step().unwrap();
        assert!(out.query.is_none());
        assert!(s.evaluate_downstream().is_ok());
    }

    #[test]
    fn label_noise_degrades_label_quality() {
        let data = tiny(DatasetId::Youtube);
        let clean = SessionConfig::paper_defaults(true, 6);
        let noisy = SessionConfig {
            noise_rate: 0.5,
            ..SessionConfig::paper_defaults(true, 6)
        };
        let (r_clean, _) = run_session(&data, clean, 30);
        let (r_noisy, _) = run_session(&data, noisy, 30);
        let a_clean = r_clean.label_accuracy.unwrap_or(0.0);
        let a_noisy = r_noisy.label_accuracy.unwrap_or(0.0);
        assert!(
            a_clean > a_noisy,
            "clean {a_clean:.3} should beat noisy {a_noisy:.3}"
        );
    }

    #[test]
    fn rejects_invalid_config() {
        let data = tiny(DatasetId::Youtube);
        let mut cfg = SessionConfig::paper_defaults(true, 0);
        cfg.alpha = 1.5;
        assert!(ActiveDpSession::new(data.clone(), cfg).is_err());
        let mut cfg = SessionConfig::paper_defaults(true, 0);
        cfg.noise_rate = -0.1;
        assert!(ActiveDpSession::new(data.clone(), cfg).is_err());
    }

    #[test]
    fn pseudo_labels_match_lf_votes() {
        let data = tiny(DatasetId::Youtube);
        let cfg = SessionConfig::paper_defaults(true, 8);
        let mut s = ActiveDpSession::new(data.clone(), cfg).unwrap();
        s.run(15).unwrap();
        for ((qi, pseudo), lf) in s.pseudo_labelled().zip(s.lfs()) {
            assert_eq!(lf.apply(&data.train, qi) as usize, pseudo);
        }
    }

    #[test]
    fn evaluation_before_any_step_is_defined() {
        let data = tiny(DatasetId::Youtube);
        let cfg = SessionConfig::paper_defaults(true, 9);
        let s = ActiveDpSession::new(data.clone(), cfg).unwrap();
        let r = s.evaluate_downstream().unwrap();
        assert!(!r.downstream_trained || r.label_coverage > 0.0);
        assert!(r.test_accuracy >= 0.0 && r.test_accuracy <= 1.0);
    }

    #[test]
    fn facade_and_engine_expose_the_same_state() {
        let data = tiny(DatasetId::Youtube);
        let cfg = SessionConfig::paper_defaults(true, 10);
        let mut s = ActiveDpSession::new(data.clone(), cfg).unwrap();
        s.run(5).unwrap();
        assert_eq!(s.iteration(), s.engine().state().iteration);
        assert_eq!(s.lfs().len(), s.engine().state().lfs.len());
        let e = s.into_engine();
        assert_eq!(e.state().iteration, 5);
    }
}
