//! The ActiveDP session: the interactive loop of paper Figure 1 plus the
//! inference phase, with the ablation switches of Table 3 and the sampler
//! choices of Table 4.

use crate::adp_sampler::AdpSampler;
use crate::confusion::{aggregate, tune_threshold, AggregatedLabels};
use crate::error::ActiveDpError;
use crate::labelpick::{LabelPick, LabelPickConfig};
use crate::oracle::Oracle;
use adp_classifier::{LogRegConfig, LogisticRegression, Targets};
use adp_data::SplitDataset;
use adp_labelmodel::{make_model, LabelModel, LabelModelKind};
use adp_lf::{CandidateSpace, LabelFunction, LabelMatrix, LfKey, SimulatedUser, UserConfig, ABSTAIN};
use adp_sampler::{Committee, Lal, Passive, Sampler, SamplerContext, Seu, Uncertainty};
use std::collections::HashSet;

/// Which sample selector drives the training loop (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerChoice {
    /// The paper's ADP sampler (Eq. 2).
    Adp,
    /// Uniform random.
    Passive,
    /// Uncertainty sampling on the AL model.
    Uncertainty,
    /// Learning active learning.
    Lal,
    /// Nemo's select-by-expected-utility.
    Seu,
    /// Query-by-committee vote entropy (extension beyond the paper's
    /// Table 4; see §2.2's related work).
    Qbc,
}

impl SamplerChoice {
    /// Table 4 row label.
    pub fn label(self) -> &'static str {
        match self {
            SamplerChoice::Adp => "ADP",
            SamplerChoice::Passive => "Passive",
            SamplerChoice::Uncertainty => "US",
            SamplerChoice::Lal => "LAL",
            SamplerChoice::Seu => "SEU",
            SamplerChoice::Qbc => "QBC",
        }
    }
}

/// Session configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// ADP sampler trade-off α (paper: 0.5 text, 0.99 tabular).
    pub alpha: f64,
    /// Simulated-user candidate accuracy threshold τ_acc (paper: 0.6).
    pub acc_threshold: f64,
    /// Simulated-user label-noise rate (Table 5; 0 in the main experiments).
    pub noise_rate: f64,
    /// Which label model aggregates the LFs.
    pub label_model: LabelModelKind,
    /// Ablation switch: LabelPick LF selection (§3.4).
    pub use_labelpick: bool,
    /// Ablation switch: ConFusion aggregation (§3.2).
    pub use_confusion: bool,
    /// LabelPick hyperparameters.
    pub labelpick: LabelPickConfig,
    /// Query-instance selector.
    pub sampler: SamplerChoice,
    /// AL-model training hyperparameters.
    pub al_logreg: LogRegConfig,
    /// Downstream-model training hyperparameters.
    pub downstream_logreg: LogRegConfig,
    /// Master seed: user, samplers and tie-breaks derive from it.
    pub seed: u64,
}

impl SessionConfig {
    /// The paper's configuration for a dataset of the given modality.
    pub fn paper_defaults(textual: bool, seed: u64) -> Self {
        SessionConfig {
            alpha: if textual { 0.5 } else { 0.99 },
            acc_threshold: 0.6,
            noise_rate: 0.0,
            label_model: LabelModelKind::Triplet,
            use_labelpick: true,
            use_confusion: true,
            labelpick: LabelPickConfig::default(),
            sampler: SamplerChoice::Adp,
            al_logreg: LogRegConfig::default(),
            downstream_logreg: LogRegConfig {
                max_iters: 150,
                ..LogRegConfig::default()
            },
            seed,
        }
    }

    /// Table 3 ablation: all user LFs train the label model, no aggregation.
    pub fn ablation_baseline(textual: bool, seed: u64) -> Self {
        SessionConfig {
            use_labelpick: false,
            use_confusion: false,
            ..SessionConfig::paper_defaults(textual, seed)
        }
    }

    fn validate(&self) -> Result<(), ActiveDpError> {
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(ActiveDpError::BadConfig {
                reason: format!("alpha {} outside [0,1]", self.alpha),
            });
        }
        if !(0.0..1.0).contains(&self.acc_threshold) {
            return Err(ActiveDpError::BadConfig {
                reason: format!("acc_threshold {} outside [0,1)", self.acc_threshold),
            });
        }
        if !(0.0..=1.0).contains(&self.noise_rate) {
            return Err(ActiveDpError::BadConfig {
                reason: format!("noise_rate {} outside [0,1]", self.noise_rate),
            });
        }
        Ok(())
    }
}

/// What one training iteration did.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// 1-based iteration number.
    pub iteration: usize,
    /// The query instance, or `None` when the pool was exhausted.
    pub query: Option<usize>,
    /// The LF the oracle returned, if any.
    pub lf: Option<LabelFunction>,
    /// Total LFs collected so far.
    pub n_lfs: usize,
    /// LFs currently selected by LabelPick.
    pub n_selected: usize,
}

/// Inference-phase evaluation of the downstream model.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Downstream test-set accuracy (the paper's headline metric).
    pub test_accuracy: f64,
    /// Accuracy of the aggregated training labels over covered instances.
    pub label_accuracy: Option<f64>,
    /// Fraction of training instances that received a label.
    pub label_coverage: f64,
    /// Tuned confidence threshold (None when ConFusion is ablated).
    pub threshold: Option<f64>,
    /// LFs selected at evaluation time.
    pub n_selected: usize,
    /// Whether the downstream model had any training data.
    pub downstream_trained: bool,
}

/// The session's selector: trait objects for the context-driven samplers,
/// concrete storage for QBC (it must be fed the labelled pool each step).
enum SessionSampler {
    Boxed(Box<dyn Sampler>),
    Qbc(Committee),
}

impl SessionSampler {
    fn select(&mut self, ctx: &SamplerContext<'_>) -> Option<usize> {
        match self {
            SessionSampler::Boxed(s) => s.select(ctx),
            SessionSampler::Qbc(c) => c.select(ctx),
        }
    }
}

/// An interactive ActiveDP labelling session over one dataset split.
pub struct ActiveDpSession<'a> {
    data: &'a SplitDataset,
    config: SessionConfig,
    space: CandidateSpace,
    oracle: Box<dyn Oracle>,
    sampler: SessionSampler,
    labelpick: LabelPick,
    label_model: Box<dyn LabelModel>,
    al_model: LogisticRegression,
    class_balance: Vec<f64>,

    lfs: Vec<LabelFunction>,
    train_matrix: LabelMatrix,
    valid_matrix: LabelMatrix,
    queried: Vec<bool>,
    query_indices: Vec<usize>,
    pseudo_labels: Vec<usize>,
    selected: Vec<usize>,
    seen_keys: HashSet<LfKey>,
    iteration: usize,

    al_probs_train: Option<Vec<Vec<f64>>>,
    lm_probs_train: Option<Vec<Vec<f64>>>,
}

impl<'a> ActiveDpSession<'a> {
    /// A session with the simulated user of §4.1.4 as the oracle.
    pub fn new(data: &'a SplitDataset, config: SessionConfig) -> Result<Self, ActiveDpError> {
        let user = SimulatedUser::new(
            UserConfig {
                acc_threshold: config.acc_threshold,
                noise_rate: config.noise_rate,
            },
            config.seed ^ 0x5EED_0001,
        );
        Self::with_oracle(data, config, Box::new(user))
    }

    /// A session with a custom oracle (e.g. an interactive UI).
    pub fn with_oracle(
        data: &'a SplitDataset,
        config: SessionConfig,
        oracle: Box<dyn Oracle>,
    ) -> Result<Self, ActiveDpError> {
        config.validate()?;
        let n_classes = data.train.n_classes;
        let sampler = match config.sampler {
            SamplerChoice::Adp => SessionSampler::Boxed(Box::new(AdpSampler::new(
                config.alpha,
                config.seed ^ 0x5EED_0002,
            ))),
            SamplerChoice::Passive => {
                SessionSampler::Boxed(Box::new(Passive::new(config.seed ^ 0x5EED_0002)))
            }
            SamplerChoice::Uncertainty => {
                SessionSampler::Boxed(Box::new(Uncertainty::new(config.seed ^ 0x5EED_0002)))
            }
            SamplerChoice::Lal => {
                SessionSampler::Boxed(Box::new(Lal::with_defaults(config.seed ^ 0x5EED_0002)))
            }
            SamplerChoice::Seu => {
                SessionSampler::Boxed(Box::new(Seu::new(config.seed ^ 0x5EED_0002)))
            }
            SamplerChoice::Qbc => {
                SessionSampler::Qbc(Committee::new(config.seed ^ 0x5EED_0002, 5))
            }
        };
        let label_model = make_model(config.label_model, n_classes);
        let al_model = LogisticRegression::new(
            n_classes,
            adp_linalg::Features::ncols(&data.train.features),
            config.al_logreg,
        );
        let class_balance = data.valid.class_balance();
        Ok(ActiveDpSession {
            space: CandidateSpace::build(&data.train),
            labelpick: LabelPick::new(config.labelpick),
            oracle,
            sampler,
            label_model,
            al_model,
            class_balance,
            lfs: vec![],
            train_matrix: LabelMatrix::empty(data.train.len()),
            valid_matrix: LabelMatrix::empty(data.valid.len()),
            queried: vec![false; data.train.len()],
            query_indices: vec![],
            pseudo_labels: vec![],
            selected: vec![],
            seen_keys: HashSet::new(),
            iteration: 0,
            al_probs_train: None,
            lm_probs_train: None,
            data,
            config,
        })
    }

    /// Current iteration count.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// All LFs collected so far.
    pub fn lfs(&self) -> &[LabelFunction] {
        &self.lfs
    }

    /// Indices of the LFs currently selected by LabelPick.
    pub fn selected(&self) -> &[usize] {
        &self.selected
    }

    /// The pseudo-labelled set `(query instance, pseudo label)` (§3.1).
    pub fn pseudo_labelled(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.query_indices
            .iter()
            .copied()
            .zip(self.pseudo_labels.iter().copied())
    }

    /// One training iteration of Figure 1 (left).
    pub fn step(&mut self) -> Result<StepOutcome, ActiveDpError> {
        self.iteration += 1;
        if let SessionSampler::Qbc(qbc) = &mut self.sampler {
            qbc.set_labeled(&self.query_indices, &self.pseudo_labels);
        }
        let query = {
            let ctx = SamplerContext {
                train: &self.data.train,
                queried: &self.queried,
                al_probs: self.al_probs_train.as_deref(),
                lm_probs: self.lm_probs_train.as_deref(),
                n_labeled: self.query_indices.len(),
                space: Some(&self.space),
                seen_lfs: Some(&self.seen_keys),
            };
            self.sampler.select(&ctx)
        };
        let Some(query) = query else {
            return Ok(StepOutcome {
                iteration: self.iteration,
                query: None,
                lf: None,
                n_lfs: self.lfs.len(),
                n_selected: self.selected.len(),
            });
        };
        self.queried[query] = true;

        let lf = self
            .oracle
            .respond(&self.space, &self.data.train, &self.data.train, query);
        if let Some(lf) = &lf {
            self.seen_keys.insert(lf.key());
            self.train_matrix.push_lf(lf, &self.data.train)?;
            self.valid_matrix.push_lf(lf, &self.data.valid)?;
            self.lfs.push(lf.clone());
            // Pseudo-label: the LF's vote on its own query instance (§3.1).
            // Candidate LFs always fire on their query by construction.
            let vote = lf.apply(&self.data.train, query);
            debug_assert_ne!(vote, ABSTAIN, "candidate LF must fire on its query");
            self.query_indices.push(query);
            self.pseudo_labels.push(vote as usize);
            self.refit()?;
        }
        Ok(StepOutcome {
            iteration: self.iteration,
            query: Some(query),
            lf,
            n_lfs: self.lfs.len(),
            n_selected: self.selected.len(),
        })
    }

    /// Runs `iterations` training steps.
    pub fn run(&mut self, iterations: usize) -> Result<(), ActiveDpError> {
        for _ in 0..iterations {
            self.step()?;
        }
        Ok(())
    }

    /// Refits LabelPick, the label model and the AL model after the LF set
    /// or pseudo-labelled set changed.
    fn refit(&mut self) -> Result<(), ActiveDpError> {
        // LabelPick (or all LFs when ablated).
        self.selected = if self.config.use_labelpick {
            let query_matrix = self.query_votes_matrix()?;
            self.labelpick.select(
                &query_matrix,
                &self.pseudo_labels,
                &self.valid_matrix,
                &self.data.valid.labels,
                self.data.train.n_classes,
            )?
        } else {
            (0..self.lfs.len()).collect()
        };

        // Label model on the selected columns.
        if self.selected.is_empty() {
            self.lm_probs_train = None;
        } else {
            let selected_train = self.train_matrix.select_columns(&self.selected)?;
            self.label_model
                .fit(&selected_train, Some(&self.class_balance))?;
            self.lm_probs_train =
                Some(adp_labelmodel::predict_all(self.label_model.as_ref(), &selected_train));
        }

        // AL model on the pseudo-labelled set.
        if self.query_indices.is_empty() {
            self.al_probs_train = None;
        } else {
            self.al_model.fit(
                &self.data.train.features,
                &self.query_indices,
                Targets::Hard(&self.pseudo_labels),
                None,
            )?;
            self.al_probs_train = Some(self.al_model.predict_proba_all(&self.data.train.features));
        }
        Ok(())
    }

    /// Votes of every LF on every past query instance (rows in iteration
    /// order) — the `L_Λ` table of Figure 2 without its label column.
    fn query_votes_matrix(&self) -> Result<LabelMatrix, ActiveDpError> {
        let rows: Vec<Vec<i8>> = self
            .query_indices
            .iter()
            .map(|&qi| {
                self.lfs
                    .iter()
                    .map(|lf| lf.apply(&self.data.train, qi))
                    .collect()
            })
            .collect();
        Ok(LabelMatrix::from_votes(&rows)?)
    }

    fn lm_probs_for(&self, matrix: &LabelMatrix) -> Vec<Vec<f64>> {
        let uniform = vec![
            1.0 / self.data.train.n_classes as f64;
            self.data.train.n_classes
        ];
        (0..matrix.n_instances())
            .map(|i| {
                if self.selected.is_empty() {
                    uniform.clone()
                } else {
                    let votes: Vec<i8> =
                        self.selected.iter().map(|&j| matrix.get(i, j)).collect();
                    self.label_model.predict_proba(&votes)
                }
            })
            .collect()
    }

    fn has_vote_for(&self, matrix: &LabelMatrix) -> Vec<bool> {
        (0..matrix.n_instances())
            .map(|i| {
                self.selected
                    .iter()
                    .any(|&j| matrix.get(i, j) != ABSTAIN)
            })
            .collect()
    }

    fn al_probs_for(&self, features: &adp_data::FeatureSet) -> Vec<Vec<f64>> {
        if self.query_indices.is_empty() {
            let n = adp_linalg::Features::nrows(features);
            let c = self.data.train.n_classes;
            return vec![vec![1.0 / c as f64; c]; n];
        }
        self.al_model.predict_proba_all(features)
    }

    /// Inference phase (Figure 1 right): tunes τ on the validation split
    /// (when ConFusion is enabled) and aggregates labels for the training
    /// pool.
    pub fn aggregate_train_labels(&self) -> Result<AggregatedLabels, ActiveDpError> {
        let lm_train = self.lm_probs_for(&self.train_matrix);
        let has_vote_train = self.has_vote_for(&self.train_matrix);
        if !self.config.use_confusion {
            // Ablation: label-model output on covered instances only.
            let labels = lm_train
                .into_iter()
                .zip(&has_vote_train)
                .map(|(p, &v)| v.then_some(p))
                .collect();
            return Ok(AggregatedLabels {
                labels,
                threshold: f64::NAN,
            });
        }
        let al_train = self.al_probs_for(&self.data.train.features);
        let al_valid = self.al_probs_for(&self.data.valid.features);
        let lm_valid = self.lm_probs_for(&self.valid_matrix);
        let has_vote_valid = self.has_vote_for(&self.valid_matrix);
        let tau = tune_threshold(&al_valid, &lm_valid, &has_vote_valid, &self.data.valid.labels);
        Ok(AggregatedLabels {
            labels: aggregate(&al_train, &lm_train, &has_vote_train, tau),
            threshold: tau,
        })
    }

    /// Trains the downstream model on the aggregated labels and evaluates
    /// it on the test split (the protocol's every-10-iterations metric).
    pub fn evaluate_downstream(&self) -> Result<EvalReport, ActiveDpError> {
        let agg = self.aggregate_train_labels()?;
        let rows: Vec<usize> = agg
            .labels
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.is_some().then_some(i))
            .collect();
        let mut report = EvalReport {
            test_accuracy: 0.0,
            label_accuracy: agg.accuracy_against(&self.data.train.labels),
            label_coverage: agg.coverage(),
            threshold: self.config.use_confusion.then_some(agg.threshold),
            n_selected: self.selected.len(),
            downstream_trained: !rows.is_empty(),
        };
        let preds: Vec<usize> = if rows.is_empty() {
            vec![0; self.data.test.len()]
        } else {
            let targets: Vec<Vec<f64>> = rows
                .iter()
                .map(|&i| agg.labels[i].clone().expect("row filtered as covered"))
                .collect();
            let mut downstream = LogisticRegression::new(
                self.data.train.n_classes,
                adp_linalg::Features::ncols(&self.data.train.features),
                self.config.downstream_logreg,
            );
            downstream.fit(
                &self.data.train.features,
                &rows,
                Targets::Soft(&targets),
                None,
            )?;
            (0..self.data.test.len())
                .map(|i| downstream.predict(&self.data.test.features, i))
                .collect()
        };
        report.test_accuracy = adp_classifier::accuracy(&preds, &self.data.test.labels);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_data::{generate, DatasetId, Scale};

    fn tiny(id: DatasetId) -> SplitDataset {
        generate(id, Scale::Tiny, 42).expect("tiny dataset generates")
    }

    fn run_session(
        data: &SplitDataset,
        config: SessionConfig,
        iters: usize,
    ) -> (EvalReport, usize) {
        let mut s = ActiveDpSession::new(data, config).unwrap();
        s.run(iters).unwrap();
        let n_lfs = s.lfs().len();
        (s.evaluate_downstream().unwrap(), n_lfs)
    }

    #[test]
    fn text_session_learns_something() {
        let data = tiny(DatasetId::Youtube);
        let cfg = SessionConfig::paper_defaults(true, 1);
        let (report, n_lfs) = run_session(&data, cfg, 25);
        assert!(n_lfs > 5, "only {n_lfs} LFs collected");
        assert!(report.downstream_trained);
        assert!(report.label_coverage > 0.3, "coverage {}", report.label_coverage);
        // Well above chance on an easy dataset.
        assert!(
            report.test_accuracy > 0.6,
            "test accuracy {}",
            report.test_accuracy
        );
        assert!(report.threshold.is_some());
    }

    #[test]
    fn tabular_session_learns_something() {
        let data = tiny(DatasetId::Occupancy);
        let cfg = SessionConfig::paper_defaults(false, 2);
        let (report, n_lfs) = run_session(&data, cfg, 25);
        assert!(n_lfs > 5);
        assert!(
            report.test_accuracy > 0.7,
            "test accuracy {}",
            report.test_accuracy
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let data = tiny(DatasetId::Youtube);
        let run = |seed| {
            let cfg = SessionConfig::paper_defaults(true, seed);
            let mut s = ActiveDpSession::new(&data, cfg).unwrap();
            s.run(15).unwrap();
            let r = s.evaluate_downstream().unwrap();
            (s.lfs().len(), r.test_accuracy, r.label_coverage)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn ablation_switches_change_behaviour() {
        let data = tiny(DatasetId::Youtube);
        let full = SessionConfig::paper_defaults(true, 3);
        let baseline = SessionConfig::ablation_baseline(true, 3);
        let confusion_only = SessionConfig {
            use_labelpick: false,
            ..SessionConfig::paper_defaults(true, 3)
        };
        let (r_full, _) = run_session(&data, full, 20);
        let (r_base, _) = run_session(&data, baseline, 20);
        let (r_conf, _) = run_session(&data, confusion_only, 20);
        assert!(r_full.threshold.is_some());
        assert!(r_base.threshold.is_none());
        // With the same LF set (LabelPick off in both), ConFusion's covered
        // set {conf >= tau} ∪ {has vote} is a superset of the baseline's
        // {has vote}.
        assert!(r_conf.label_coverage >= r_base.label_coverage - 1e-9);
    }

    #[test]
    fn all_sampler_choices_run() {
        let data = tiny(DatasetId::Youtube);
        for sampler in [
            SamplerChoice::Adp,
            SamplerChoice::Passive,
            SamplerChoice::Uncertainty,
            SamplerChoice::Lal,
            SamplerChoice::Seu,
            SamplerChoice::Qbc,
        ] {
            let cfg = SessionConfig {
                sampler,
                ..SessionConfig::paper_defaults(true, 4)
            };
            let mut s = ActiveDpSession::new(&data, cfg).unwrap();
            s.run(8).unwrap();
            assert!(s.iteration() == 8, "{}", sampler.label());
        }
    }

    #[test]
    fn pool_exhaustion_is_graceful() {
        let data = tiny(DatasetId::Youtube);
        let n = data.train.len();
        let cfg = SessionConfig::paper_defaults(true, 5);
        let mut s = ActiveDpSession::new(&data, cfg).unwrap();
        s.run(n + 10).unwrap();
        // The extra iterations return query=None without erroring.
        let out = s.step().unwrap();
        assert!(out.query.is_none());
        assert!(s.evaluate_downstream().is_ok());
    }

    #[test]
    fn label_noise_degrades_label_quality() {
        let data = tiny(DatasetId::Youtube);
        let clean = SessionConfig::paper_defaults(true, 6);
        let noisy = SessionConfig {
            noise_rate: 0.5,
            ..SessionConfig::paper_defaults(true, 6)
        };
        let (r_clean, _) = run_session(&data, clean, 30);
        let (r_noisy, _) = run_session(&data, noisy, 30);
        let a_clean = r_clean.label_accuracy.unwrap_or(0.0);
        let a_noisy = r_noisy.label_accuracy.unwrap_or(0.0);
        assert!(
            a_clean > a_noisy,
            "clean {a_clean:.3} should beat noisy {a_noisy:.3}"
        );
    }

    #[test]
    fn rejects_invalid_config() {
        let data = tiny(DatasetId::Youtube);
        let mut cfg = SessionConfig::paper_defaults(true, 0);
        cfg.alpha = 1.5;
        assert!(ActiveDpSession::new(&data, cfg).is_err());
        let mut cfg = SessionConfig::paper_defaults(true, 0);
        cfg.noise_rate = -0.1;
        assert!(ActiveDpSession::new(&data, cfg).is_err());
    }

    #[test]
    fn pseudo_labels_match_lf_votes() {
        let data = tiny(DatasetId::Youtube);
        let cfg = SessionConfig::paper_defaults(true, 8);
        let mut s = ActiveDpSession::new(&data, cfg).unwrap();
        s.run(15).unwrap();
        for ((qi, pseudo), lf) in s.pseudo_labelled().zip(s.lfs()) {
            assert_eq!(lf.apply(&data.train, qi) as usize, pseudo);
        }
    }

    #[test]
    fn evaluation_before_any_step_is_defined() {
        let data = tiny(DatasetId::Youtube);
        let cfg = SessionConfig::paper_defaults(true, 9);
        let s = ActiveDpSession::new(&data, cfg).unwrap();
        let r = s.evaluate_downstream().unwrap();
        assert!(!r.downstream_trained || r.label_coverage > 0.0);
        assert!(r.test_accuracy >= 0.0 && r.test_accuracy <= 1.0);
    }
}
