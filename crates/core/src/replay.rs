//! Point-in-time recovery: fold journalled [`StepEvent`]s onto a
//! checkpoint snapshot.
//!
//! A [`SessionSnapshot`] at iteration `j` plus the events `j+1 ..= k`
//! determines the snapshot an uninterrupted run would hold at `k`:
//! every event says which instance was queried, which LF (if any) came
//! back, and where both RNG streams landed. [`replay_snapshot`] performs
//! that fold as plain data; [`Engine::replay_to`](crate::Engine::replay_to)
//! wraps it and resumes the result, whose single RNG-free refit rebuilds
//! the model caches (LabelPick selection, probability tables) exactly as
//! the original run's refit at `k` did — which is why the fold can leave
//! those caches stale and still hit bitwise parity.
//!
//! The fold is also where a corrupt or mis-assembled journal is caught:
//! gaps, duplicates and out-of-order iterations, targets that are not
//! commit points, and events that contradict the folded state (a query
//! outside the pool, an instance queried twice) are all typed
//! [`ActiveDpError::Replay`] errors rather than a silently wrong session.

use crate::error::ActiveDpError;
use crate::event::StepEvent;
use crate::oracle::{LatencyModel, OracleKind, RouteChoice};
use crate::snapshot::SessionSnapshot;
use adp_data::{DriftSpec, SplitDataset};
use adp_lf::LabelMatrix;

fn replay_err(reason: String) -> ActiveDpError {
    ActiveDpError::Replay { reason }
}

/// Validates that `events` carry strictly consecutive iteration numbers.
/// Exposed to the WAL crate's recovery path through
/// [`replay_snapshot`]'s own use of it; duplicates and reorderings are
/// distinguished in the error text because they point at different bugs
/// (double-append vs. segment mis-assembly).
fn validate_contiguous(events: &[StepEvent]) -> Result<(), ActiveDpError> {
    for pair in events.windows(2) {
        let (prev, next) = (pair[0].iteration, pair[1].iteration);
        if next == prev {
            return Err(replay_err(format!("duplicate event for iteration {next}")));
        }
        if next < prev {
            return Err(replay_err(format!(
                "out-of-order event: iteration {next} after {prev}"
            )));
        }
        if next != prev + 1 {
            return Err(replay_err(format!(
                "gap in event stream: iteration {next} after {prev}"
            )));
        }
    }
    Ok(())
}

/// Folds `events` onto `checkpoint`, producing the snapshot of the same
/// session at commit point `k` (see the [module docs](self)).
///
/// `events` may start at or before the checkpoint (covered events are
/// skipped) and extend past `k` (later events are ignored), but must be
/// contiguous and must cover `checkpoint+1 ..= k` exactly; the event at
/// `k` must have [`StepEvent::commit`] set. `k` equal to the checkpoint's
/// iteration returns the checkpoint itself.
pub fn replay_snapshot(
    checkpoint: &SessionSnapshot,
    data: &SplitDataset,
    events: &[StepEvent],
    k: usize,
) -> Result<SessionSnapshot, ActiveDpError> {
    let j = checkpoint.state.iteration;
    if k < j {
        return Err(replay_err(format!(
            "target iteration {k} precedes the checkpoint at {j}"
        )));
    }
    validate_contiguous(events)?;
    let mut snapshot = checkpoint.clone();
    if k == j {
        return Ok(snapshot);
    }
    let tail: Vec<&StepEvent> = events
        .iter()
        .filter(|e| e.iteration > j && e.iteration <= k)
        .collect();
    match tail.first() {
        None => {
            return Err(replay_err(format!(
                "no events cover iterations {} ..= {k}",
                j + 1
            )))
        }
        Some(first) if first.iteration != j + 1 => {
            return Err(replay_err(format!(
                "events start at iteration {}, checkpoint needs {}",
                first.iteration,
                j + 1
            )))
        }
        Some(_) => {}
    }
    let last = tail.last().expect("tail is non-empty");
    if last.iteration != k {
        return Err(replay_err(format!(
            "events end at iteration {}, target is {k}",
            last.iteration
        )));
    }
    if !last.commit {
        return Err(replay_err(format!(
            "iteration {k} is not a commit point (mid-batch state is not resumable)"
        )));
    }
    // Routed sessions bill each event's oracle choice against the spec's
    // latency model, exactly as the live router did.
    let latency = match snapshot.spec.session.oracle {
        OracleKind::Noisy { latency, .. } => Some(latency),
        OracleKind::Simulated => None,
    };
    // Drifting sessions re-derive the mutated pool: it is a pure function
    // of the base split, so the fold applies it at the same boundary the
    // live run did. A checkpoint already past the boundary starts drifted
    // (its state was rebuilt at crossing time, so no rebuild here).
    let drift = snapshot.spec.drift;
    let boundary = drift.boundary();
    let mut drifted: Option<SplitDataset> = None;
    if boundary.is_some_and(|at| j > at) {
        drifted = drift.apply(data);
    }
    for event in tail {
        if let Some(at) = boundary {
            if drifted.is_none() && event.iteration > at {
                let mutated = drift
                    .apply(data)
                    .expect("a drift with a boundary always mutates the pool");
                if matches!(drift, DriftSpec::CovariateDrift { .. }) {
                    // Feature drift changes every LF's votes — rebuild the
                    // vote matrices at the crossing, as the engine did.
                    let state = &mut snapshot.state;
                    let mut train_matrix = LabelMatrix::empty(mutated.train.len());
                    let mut valid_matrix = LabelMatrix::empty(mutated.valid.len());
                    for lf in &state.lfs {
                        train_matrix.push_lf(lf, &mutated.train)?;
                        valid_matrix.push_lf(lf, &mutated.valid)?;
                    }
                    state.train_matrix = train_matrix;
                    state.valid_matrix = valid_matrix;
                }
                drifted = Some(mutated);
            }
        }
        let active: &SplitDataset = drifted.as_ref().unwrap_or(data);
        apply_event(&mut snapshot, active, event, latency)?;
    }
    // Returned-LF sets are canonical (sorted) in snapshots; the fold
    // appends keys in arrival order, so restore the invariant here.
    snapshot.oracle.returned.sort_unstable();
    if let Some(routed) = snapshot.routed.as_mut() {
        routed.cheap.returned.sort_unstable();
    }
    Ok(snapshot)
}

/// Folds one event into the snapshot — the data-only mirror of what
/// `SamplingStage::select` + `QueryingStage::query` did live.
fn apply_event(
    snapshot: &mut SessionSnapshot,
    data: &SplitDataset,
    event: &StepEvent,
    latency: Option<LatencyModel>,
) -> Result<(), ActiveDpError> {
    if let Some(route) = &event.route {
        let Some(latency) = latency else {
            return Err(replay_err(format!(
                "iteration {}: a routed event in a simulated-oracle session",
                event.iteration
            )));
        };
        let Some(routed) = snapshot.routed.as_mut() else {
            return Err(replay_err(format!(
                "iteration {}: a routed event, but the checkpoint carries no routed state",
                event.iteration
            )));
        };
        routed.cheap.rng = route.cheap_rng;
        // Mirror the router's billing: an escalation consults (and bills)
        // both oracles.
        match route.choice {
            RouteChoice::Cheap => {
                routed.stats.cheap_queries += 1;
                routed.stats.cheap_cost += latency.cheap_cost;
            }
            RouteChoice::Expensive => {
                routed.stats.expensive_queries += 1;
                routed.stats.expensive_cost += latency.expensive_cost;
            }
            RouteChoice::Escalated => {
                routed.stats.cheap_queries += 1;
                routed.stats.cheap_cost += latency.cheap_cost;
                routed.stats.escalations += 1;
                routed.stats.expensive_queries += 1;
                routed.stats.expensive_cost += latency.expensive_cost;
            }
        }
    }
    let mut answered = None;
    let state = &mut snapshot.state;
    state.iteration = event.iteration;
    match event.query {
        None => {
            if event.lf.is_some() {
                return Err(replay_err(format!(
                    "iteration {}: an LF without a query",
                    event.iteration
                )));
            }
        }
        Some(q) => {
            if q >= state.queried.len() {
                return Err(replay_err(format!(
                    "iteration {}: query {q} outside the {}-instance pool",
                    event.iteration,
                    state.queried.len()
                )));
            }
            if state.queried[q] {
                return Err(replay_err(format!(
                    "iteration {}: instance {q} was already queried",
                    event.iteration
                )));
            }
            state.queried[q] = true;
            if let Some(lf) = &event.lf {
                state.seen_keys.insert(lf.key());
                state.train_matrix.push_lf(lf, &data.train)?;
                state.valid_matrix.push_lf(lf, &data.valid)?;
                state.lfs.push(lf.clone());
                let vote = lf.apply(&data.train, q);
                if vote < 0 {
                    return Err(replay_err(format!(
                        "iteration {}: journalled LF abstains on its own query {q}",
                        event.iteration
                    )));
                }
                state.query_indices.push(q);
                state.pseudo_labels.push(vote as usize);
                answered = Some(lf.key());
            }
        }
    }
    if let Some(key) = answered {
        // The router syncs each answer into *both* returned sets (see
        // `OracleRouter`), so the fold does too.
        snapshot.oracle.returned.push(key);
        if let Some(routed) = snapshot.routed.as_mut() {
            routed.cheap.returned.push(key);
        }
    }
    snapshot.sampler_rng = event.sampler_rng;
    snapshot.oracle.rng = event.oracle_rng;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, StepObserver, StepOutcome};
    use crate::scenario::ScenarioSpec;
    use adp_data::{DatasetId, DatasetSpec, Scale};
    use std::sync::mpsc;

    struct Tap(mpsc::Sender<StepEvent>);

    impl StepObserver for Tap {
        fn on_step(&mut self, _outcome: &StepOutcome) {}
        fn wants_events(&self) -> bool {
            true
        }
        fn on_event(&mut self, event: &StepEvent) {
            self.0.send(event.clone()).unwrap();
        }
    }

    fn spec() -> ScenarioSpec {
        ScenarioSpec::new(DatasetSpec {
            id: DatasetId::Youtube,
            scale: Scale::Tiny,
            seed: 7,
        })
    }

    /// Runs `total` steps, returning the iteration-0 checkpoint, every
    /// event, and per-iteration golden snapshots.
    fn journalled_run(total: usize) -> (SessionSnapshot, Vec<StepEvent>, Vec<SessionSnapshot>) {
        let mut engine = Engine::from_spec(spec()).unwrap();
        let (tx, rx) = mpsc::channel();
        engine.add_observer(Tap(tx));
        let checkpoint = engine.snapshot().unwrap();
        let mut goldens = Vec::new();
        for _ in 0..total {
            engine.step().unwrap();
            goldens.push(engine.snapshot().unwrap());
        }
        (checkpoint, rx.try_iter().collect(), goldens)
    }

    #[test]
    fn folding_events_reproduces_every_golden_snapshot_bitwise() {
        let total = 8;
        let (checkpoint, events, goldens) = journalled_run(total);
        assert_eq!(events.len(), total);
        let data = checkpoint.spec.dataset.generate().unwrap();
        for k in 1..=total {
            let folded = replay_snapshot(&checkpoint, &data, &events, k).unwrap();
            let golden = &goldens[k - 1];
            // The fold leaves model caches stale; resume's refit rebuilds
            // them. Compare the resume-relevant fields bitwise instead.
            assert_eq!(folded.state.lfs, golden.state.lfs);
            assert_eq!(folded.state.queried, golden.state.queried);
            assert_eq!(folded.state.query_indices, golden.state.query_indices);
            assert_eq!(folded.state.pseudo_labels, golden.state.pseudo_labels);
            assert_eq!(folded.state.iteration, golden.state.iteration);
            assert_eq!(folded.sampler_rng, golden.sampler_rng);
            assert_eq!(folded.oracle, golden.oracle);
        }
    }

    #[test]
    fn replay_to_checkpoint_itself_is_the_checkpoint() {
        let (checkpoint, events, _) = journalled_run(3);
        let data = checkpoint.spec.dataset.generate().unwrap();
        let folded = replay_snapshot(&checkpoint, &data, &events, 0).unwrap();
        assert_eq!(folded.to_bytes(), checkpoint.to_bytes());
    }

    #[test]
    fn bad_event_streams_are_typed_replay_errors() {
        let (checkpoint, events, _) = journalled_run(4);
        let data = checkpoint.spec.dataset.generate().unwrap();
        let reason = |r: Result<SessionSnapshot, ActiveDpError>| match r {
            Err(ActiveDpError::Replay { reason }) => reason,
            other => panic!("expected a replay error, got {other:?}"),
        };

        // Duplicate iteration.
        let mut dup = events.clone();
        dup.insert(2, events[1].clone());
        assert!(reason(replay_snapshot(&checkpoint, &data, &dup, 4)).contains("duplicate"));

        // Out-of-order iterations (the decreasing pair comes first, so it
        // is reported as a reordering, not as the gap it also implies).
        let mut swapped = events.clone();
        swapped.swap(0, 1);
        assert!(reason(replay_snapshot(&checkpoint, &data, &swapped, 4)).contains("out-of-order"));

        // A gap mid-stream.
        let mut gapped = events.clone();
        gapped.remove(1);
        assert!(reason(replay_snapshot(&checkpoint, &data, &gapped, 4)).contains("gap"));

        // Coverage starts too late for the checkpoint.
        assert!(reason(replay_snapshot(&checkpoint, &data, &events[1..], 4)).contains("start at"));

        // Coverage stops short of the target.
        assert!(reason(replay_snapshot(&checkpoint, &data, &events[..2], 4)).contains("end at"));

        // Target behind the checkpoint / no events at all.
        let mid = replay_snapshot(&checkpoint, &data, &events, 2).unwrap();
        assert!(reason(replay_snapshot(&mid, &data, &[], 1)).contains("precedes"));
        assert!(reason(replay_snapshot(&checkpoint, &data, &[], 3)).contains("no events"));

        // Target that is not a commit point.
        let mut open = events.clone();
        open[2].commit = false;
        assert!(reason(replay_snapshot(&checkpoint, &data, &open, 3)).contains("commit point"));

        // An event contradicting the folded state: re-queried instance.
        let mut requeried = events.clone();
        requeried[1].query = events[0].query;
        requeried[1].lf = None;
        assert!(
            reason(replay_snapshot(&checkpoint, &data, &requeried, 4)).contains("already queried")
        );

        // Query index outside the pool.
        let mut oob = events.clone();
        oob[1].query = Some(data.train.len());
        oob[1].lf = None;
        assert!(reason(replay_snapshot(&checkpoint, &data, &oob, 4)).contains("outside"));

        // An LF with no query.
        let with_lf = events
            .iter()
            .position(|e| e.lf.is_some())
            .expect("some iteration produced an LF");
        let mut headless = events.clone();
        headless[with_lf].query = None;
        assert!(
            reason(replay_snapshot(&checkpoint, &data, &headless, 4)).contains("without a query")
        );
    }
}
