//! ConFusion: confidence-based label aggregation (paper §3.2, Eq. 1).
//!
//! ```text
//!   ŷ(x) = f_a(x)          if max f_a(x) ≥ τ
//!        = f_l(x, Λ*)      if max f_a(x) < τ and some λ ∈ Λ* fires on x
//!        = ∅               otherwise (rejected)
//! ```
//!
//! The threshold τ is tuned per evaluation on the validation split: the
//! candidate set is the distinct AL confidences observed on validation plus
//! the boundary values {0, 1}, and the winner maximises the accuracy of the
//! aggregated labels over the *non-rejected* part (§3.2 — accuracy, not
//! coverage, because a zero threshold would trivially maximise coverage).

use adp_linalg::argmax;

/// Result of aggregating a dataset's labels.
#[derive(Debug, Clone)]
pub struct AggregatedLabels {
    /// Per-instance soft labels; `None` = rejected (dropped from downstream
    /// training).
    pub labels: Vec<Option<Vec<f64>>>,
    /// The confidence threshold used.
    pub threshold: f64,
}

impl AggregatedLabels {
    /// Fraction of instances that received a label.
    pub fn coverage(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().filter(|l| l.is_some()).count() as f64 / self.labels.len() as f64
    }

    /// Accuracy of the hard aggregated labels against ground truth over the
    /// covered instances; `None` when everything was rejected.
    pub fn accuracy_against(&self, truth: &[usize]) -> Option<f64> {
        let mut n = 0usize;
        let mut correct = 0usize;
        for (l, &t) in self.labels.iter().zip(truth) {
            if let Some(dist) = l {
                n += 1;
                if argmax(dist).expect("non-empty distribution") == t {
                    correct += 1;
                }
            }
        }
        (n > 0).then(|| correct as f64 / n as f64)
    }
}

/// Applies Eq. 1 with threshold `tau`.
///
/// `al_probs`/`lm_probs` are per-instance distributions; `has_vote[i]` says
/// whether any *selected* LF fires on instance `i`.
///
/// # Panics
/// Panics when the slice lengths disagree (sessions construct them from the
/// same dataset, so a mismatch is a bug).
pub fn aggregate(
    al_probs: &[Vec<f64>],
    lm_probs: &[Vec<f64>],
    has_vote: &[bool],
    tau: f64,
) -> Vec<Option<Vec<f64>>> {
    assert_eq!(al_probs.len(), lm_probs.len(), "probs length mismatch");
    assert_eq!(al_probs.len(), has_vote.len(), "has_vote length mismatch");
    al_probs
        .iter()
        .zip(lm_probs)
        .zip(has_vote)
        .map(|((al, lm), &voted)| {
            let conf = al.iter().fold(0.0_f64, |m, &p| m.max(p));
            if conf >= tau {
                Some(al.clone())
            } else if voted {
                Some(lm.clone())
            } else {
                None
            }
        })
        .collect()
}

/// Tunes τ on a validation set (§3.2): evaluates every distinct AL
/// confidence plus {0, 1} and returns the value maximising aggregated-label
/// accuracy over non-rejected instances. Ties break toward the smaller τ
/// (more AL coverage); if every candidate rejects everything, returns 0.
pub fn tune_threshold(
    al_probs: &[Vec<f64>],
    lm_probs: &[Vec<f64>],
    has_vote: &[bool],
    truth: &[usize],
) -> f64 {
    let mut candidates: Vec<f64> = al_probs
        .iter()
        .map(|p| p.iter().fold(0.0_f64, |m, &v| m.max(v)))
        .collect();
    candidates.push(0.0);
    candidates.push(1.0);
    candidates.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite confidences"));
    candidates.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    let mut best_tau = 0.0;
    let mut best_acc = f64::NEG_INFINITY;
    for &tau in &candidates {
        let agg = AggregatedLabels {
            labels: aggregate(al_probs, lm_probs, has_vote, tau),
            threshold: tau,
        };
        if let Some(acc) = agg.accuracy_against(truth) {
            // Strict improvement required: equal accuracy keeps the smaller
            // tau already recorded (candidates are scanned ascending).
            if acc > best_acc + 1e-12 {
                best_acc = acc;
                best_tau = tau;
            }
        }
    }
    best_tau
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(pos: f64) -> Vec<f64> {
        vec![1.0 - pos, pos]
    }

    #[test]
    fn eq1_three_branches() {
        let al = vec![p(0.9), p(0.6), p(0.55)];
        let lm = vec![p(0.1), p(0.8), p(0.2)];
        let has_vote = vec![true, true, false];
        let out = aggregate(&al, &lm, &has_vote, 0.7);
        // Instance 0: AL confident (0.9 >= 0.7) -> AL.
        assert_eq!(out[0].as_ref().unwrap()[1], 0.9);
        // Instance 1: AL unconfident, LF fires -> LM.
        assert_eq!(out[1].as_ref().unwrap()[1], 0.8);
        // Instance 2: AL unconfident, no LF -> rejected.
        assert!(out[2].is_none());
    }

    #[test]
    fn tau_zero_always_uses_al() {
        let al = vec![p(0.5), p(0.51)];
        let lm = vec![p(0.99), p(0.99)];
        let out = aggregate(&al, &lm, &[true, true], 0.0);
        assert_eq!(out[0].as_ref().unwrap()[1], 0.5);
        assert_eq!(out[1].as_ref().unwrap()[1], 0.51);
    }

    #[test]
    fn coverage_monotone_decreasing_in_tau() {
        let al = vec![p(0.9), p(0.7), p(0.6), p(0.55)];
        let lm = vec![p(0.5); 4];
        let has_vote = vec![true, false, false, false];
        let cov = |tau| {
            AggregatedLabels {
                labels: aggregate(&al, &lm, &has_vote, tau),
                threshold: tau,
            }
            .coverage()
        };
        assert!(cov(0.0) >= cov(0.65));
        assert!(cov(0.65) >= cov(0.95));
        // With tau above every confidence, only voted instances survive.
        assert!((cov(0.95) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn accuracy_against_covers_only_labelled() {
        let agg = AggregatedLabels {
            labels: vec![Some(p(0.9)), None, Some(p(0.2))],
            threshold: 0.5,
        };
        // predictions: 1, -, 0 vs truth 1, 0, 1 -> 1 of 2 covered correct.
        assert_eq!(agg.accuracy_against(&[1, 0, 1]), Some(0.5));
        let all_rejected = AggregatedLabels {
            labels: vec![None, None],
            threshold: 0.5,
        };
        assert_eq!(all_rejected.accuracy_against(&[0, 1]), None);
        assert_eq!(all_rejected.coverage(), 0.0);
    }

    #[test]
    fn tuning_prefers_accurate_model() {
        // AL is wrong but confident on instances 2,3; LM is right everywhere
        // it fires. A high tau routes everything to the LM.
        let al = vec![p(0.95), p(0.9), p(0.85), p(0.8)];
        let lm = vec![p(0.9), p(0.9), p(0.1), p(0.1)];
        let has_vote = vec![true; 4];
        let truth = vec![1, 1, 0, 0];
        let tau = tune_threshold(&al, &lm, &has_vote, &truth);
        // τ = 0.9 is the smallest perfect threshold: the two correct AL
        // predictions (conf 0.95, 0.9) stay with the AL model, the two wrong
        // ones fall through to the label model.
        assert!((tau - 0.9).abs() < 1e-9, "tau {tau}");
        let agg = aggregate(&al, &lm, &has_vote, tau);
        let acc = AggregatedLabels {
            labels: agg,
            threshold: tau,
        }
        .accuracy_against(&truth)
        .unwrap();
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn tuning_prefers_al_when_al_is_better() {
        let al = vec![p(0.95), p(0.9), p(0.15), p(0.1)];
        let lm = vec![p(0.2), p(0.2), p(0.8), p(0.8)];
        let has_vote = vec![true; 4];
        let truth = vec![1, 1, 0, 0];
        let tau = tune_threshold(&al, &lm, &has_vote, &truth);
        // AL is perfect: any tau <= min-confidence works, ties -> smallest.
        assert_eq!(tau, 0.0);
    }

    #[test]
    fn tuning_ties_break_to_smaller_tau() {
        // Both models perfect: every candidate achieves accuracy 1 -> tau 0.
        let al = vec![p(0.9), p(0.1)];
        let lm = vec![p(0.9), p(0.1)];
        let truth = vec![1, 0];
        let tau = tune_threshold(&al, &lm, &[true, true], &truth);
        assert_eq!(tau, 0.0);
    }

    #[test]
    fn tuning_handles_all_rejected_candidates() {
        // No LF votes and low AL confidence: high taus reject everything and
        // must not win by default.
        let al = vec![p(0.55), p(0.45)];
        let lm = vec![p(0.5), p(0.5)];
        let truth = vec![1, 0];
        let tau = tune_threshold(&al, &lm, &[false, false], &truth);
        assert!(tau <= 0.55 + 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn aggregate_checks_lengths() {
        aggregate(&[p(0.5)], &[], &[true], 0.5);
    }
}
