//! LabelPick: label-function selection (paper §3.4, Figure 2).
//!
//! Two stages:
//!
//! 1. **Accuracy pruning** — LFs whose validation-split accuracy (over the
//!    instances they fire on) is no better than random (`≤ 1/C`) are
//!    dropped (λ4 in the paper's running example).
//! 2. **Markov-blanket selection** — a small supervised dataset `L_Λ` is
//!    assembled from the past query instances: one row per query, columns =
//!    the surviving LFs' votes plus the pseudo-label. The graphical lasso
//!    estimates the dependency structure between LFs and label, and the LFs
//!    with non-zero partial correlation to the label — the label's Markov
//!    blanket — are kept (λ1, λ3 in Figure 2; λ2 is redundant given them).
//!
//! Votes are encoded signed (class 1 → +1, class 0 → −1, abstain → 0);
//! the experiments are all binary. For scalability the glasso input is
//! capped at the top-`cap` survivors by validation accuracy × coverage —
//! never reached before ~70 iterations at paper scale.

use crate::error::ActiveDpError;
use adp_glasso::{graphical_lasso_with, markov_blanket, GlassoConfig, MIN_PARALLEL_DIM};
use adp_lf::{LabelMatrix, ABSTAIN};
use adp_linalg::{correlation_matrix, Matrix};

/// LabelPick hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelPickConfig {
    /// Graphical-lasso ℓ1 penalty.
    pub rho: f64,
    /// Absolute floor below which a precision entry counts as zero.
    pub blanket_tol: f64,
    /// Relative floor: label edges weaker than this fraction of the
    /// strongest label edge are treated as zero. Finite-sample glasso
    /// retains small spurious partial correlations on redundant LFs (the
    /// population value is zero but the estimate is noise-inflated), so a
    /// purely absolute threshold cannot separate blanket members from
    /// redundancy.
    pub blanket_rel: f64,
    /// Maximum number of LFs entering the glasso.
    pub cap: usize,
    /// Minimum number of query rows before structure learning is attempted;
    /// below this every accuracy-surviving LF is kept.
    pub min_queries: usize,
    /// Let the graphical lasso fan its per-column subproblem setup out over
    /// scoped threads when the LF set is large enough. The selection is
    /// bitwise identical either way; this switch only controls scheduling.
    pub parallel: bool,
}

impl Default for LabelPickConfig {
    fn default() -> Self {
        LabelPickConfig {
            rho: 0.03,
            blanket_tol: 1e-6,
            blanket_rel: 0.0,
            cap: 64,
            min_queries: 30,
            parallel: true,
        }
    }
}

/// The LabelPick selector.
#[derive(Debug, Clone, Default)]
pub struct LabelPick {
    config: LabelPickConfig,
}

impl LabelPick {
    /// A selector with the given configuration.
    pub fn new(config: LabelPickConfig) -> Self {
        LabelPick { config }
    }

    /// Selects the helpful subset Λ* ⊆ Λ.
    ///
    /// * `query_matrix` — votes of all LFs on the past query instances
    ///   (rows = queries, in iteration order);
    /// * `pseudo_labels` — the pseudo-label of each query instance;
    /// * `valid_matrix` / `valid_labels` — votes and ground truth on the
    ///   validation split, used for accuracy pruning.
    ///
    /// Returns indices into the LF list (ascending). Falls back to "all
    /// accuracy-survivors" when too few queries exist or the blanket comes
    /// back empty, so the label model never starves.
    pub fn select(
        &self,
        query_matrix: &LabelMatrix,
        pseudo_labels: &[usize],
        valid_matrix: &LabelMatrix,
        valid_labels: &[usize],
        n_classes: usize,
    ) -> Result<Vec<usize>, ActiveDpError> {
        let m = query_matrix.n_lfs();
        if m == 0 {
            return Ok(vec![]);
        }
        if valid_matrix.n_lfs() != m {
            return Err(ActiveDpError::BadConfig {
                reason: format!(
                    "query matrix has {m} LFs but validation matrix has {}",
                    valid_matrix.n_lfs()
                ),
            });
        }
        if query_matrix.n_instances() != pseudo_labels.len() {
            return Err(ActiveDpError::BadConfig {
                reason: "pseudo labels must align with query rows".into(),
            });
        }

        // Stage 1: prune LFs performing worse than (or equal to) random on
        // the validation split. LFs that never fire there get the benefit
        // of the doubt — small validation sets say nothing about them.
        let random = 1.0 / n_classes as f64;
        let mut survivors: Vec<usize> = (0..m)
            .filter(|&j| match valid_matrix.lf_accuracy(j, valid_labels) {
                Some(acc) => acc > random,
                None => true,
            })
            .collect();
        if survivors.len() <= 1 || query_matrix.n_instances() < self.config.min_queries {
            return Ok(survivors);
        }

        // Cap for glasso tractability: rank by validation accuracy × coverage.
        if survivors.len() > self.config.cap {
            let mut ranked: Vec<(usize, f64)> = survivors
                .iter()
                .map(|&j| {
                    let acc = valid_matrix.lf_accuracy(j, valid_labels).unwrap_or(random);
                    let cov = valid_matrix.lf_coverage(j);
                    (j, acc * cov)
                })
                .collect();
            ranked.sort_unstable_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("finite scores")
                    .then(a.0.cmp(&b.0))
            });
            ranked.truncate(self.config.cap);
            survivors = ranked.into_iter().map(|(j, _)| j).collect();
            survivors.sort_unstable();
        }

        // Stage 2: build L_Λ (signed encoding) and find the label's blanket.
        let t = query_matrix.n_instances();
        let p = survivors.len() + 1;
        let data = Matrix::from_fn(t, p, |i, col| {
            if col < survivors.len() {
                signed(query_matrix.get(i, survivors[col]))
            } else {
                signed(pseudo_labels[i] as i8)
            }
        });
        // Standardise to correlations: signed sparse votes have variance
        // proportional to coverage, and a fixed penalty on raw covariances
        // would wipe out low-coverage LFs' label edges regardless of their
        // accuracy. On the correlation scale the penalty treats every LF
        // alike.
        let corr = correlation_matrix(&data)?;
        let exec = if self.config.parallel {
            adp_linalg::parallel::auto(corr.nrows(), MIN_PARALLEL_DIM)
        } else {
            adp_linalg::Execution::Serial
        };
        let result = graphical_lasso_with(
            &corr,
            GlassoConfig {
                rho: self.config.rho,
                ..GlassoConfig::default()
            },
            exec,
        )?;
        let max_edge = (0..p - 1)
            .map(|k| result.precision[(p - 1, k)].abs())
            .fold(0.0_f64, f64::max);
        let tol = self
            .config
            .blanket_tol
            .max(self.config.blanket_rel * max_edge);
        let blanket = markov_blanket(&result.precision, p - 1, tol);
        if blanket.is_empty() {
            // Degenerate structure (e.g. constant columns early on): keep
            // the accuracy survivors rather than starving the label model.
            return Ok(survivors);
        }
        let mut selected: Vec<usize> = blanket.into_iter().map(|k| survivors[k]).collect();

        // Polarity guard: a blanket containing only one class's LFs labels
        // only one side of the pool, and the downstream model collapses to
        // a constant predictor. Ensure every class that has a surviving LF
        // keeps its best representative (validation accuracy × coverage).
        let polarity = |j: usize| -> Option<i8> {
            (0..valid_matrix.n_instances())
                .map(|i| valid_matrix.get(i, j))
                .chain((0..query_matrix.n_instances()).map(|i| query_matrix.get(i, j)))
                .find(|&v| v != ABSTAIN)
        };
        for class in 0..n_classes {
            let c = class as i8;
            if selected.iter().any(|&j| polarity(j) == Some(c)) {
                continue;
            }
            let best = survivors
                .iter()
                .copied()
                .filter(|&j| polarity(j) == Some(c))
                .max_by(|&a, &b| {
                    let score = |j: usize| {
                        valid_matrix.lf_accuracy(j, valid_labels).unwrap_or(random)
                            * valid_matrix.lf_coverage(j)
                    };
                    score(a)
                        .partial_cmp(&score(b))
                        .expect("finite scores")
                        .then(b.cmp(&a))
                });
            if let Some(j) = best {
                selected.push(j);
            }
        }
        selected.sort_unstable();
        Ok(selected)
    }
}

fn signed(vote: i8) -> f64 {
    match vote {
        ABSTAIN => 0.0,
        0 => -1.0,
        _ => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 2 running example, reconstructed with planted
    /// structure: λ1 and λ3 carry independent signal about the label and
    /// form its Markov blanket; λ2 is a noisy copy of λ1 (dependent on the
    /// label only *through* λ1, hence redundant); λ4 is inaccurate and must
    /// fall to the accuracy filter.
    fn figure2_matrices() -> (LabelMatrix, Vec<usize>, LabelMatrix, Vec<usize>) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let flip = |v: i8, p: f64, rng: &mut rand::rngs::StdRng| -> i8 {
            if rng.gen::<f64>() < p {
                1 - v
            } else {
                v
            }
        };
        let mut rows = Vec::new();
        let mut pseudo = Vec::new();
        let mut vrows = Vec::new();
        let mut vlabels = Vec::new();
        for rep in 0..600 {
            let y = rep % 2;
            let v = y as i8;
            let lam1 = flip(v, 0.05, &mut rng);
            let lam2 = flip(lam1, 0.15, &mut rng); // copy of λ1, not of y
            let lam3 = flip(v, 0.15, &mut rng); // independent signal
            let lam4 = flip(v, 0.60, &mut rng); // worse than random
            if rep < 400 {
                rows.push(vec![lam1, lam2, lam3, lam4]);
                pseudo.push(y);
            } else {
                vrows.push(vec![lam1, lam2, lam3, lam4]);
                vlabels.push(y);
            }
        }
        (
            LabelMatrix::from_votes(&rows).unwrap(),
            pseudo,
            LabelMatrix::from_votes(&vrows).unwrap(),
            vlabels,
        )
    }

    #[test]
    fn figure2_running_example() {
        let (qm, pseudo, vm, vlabels) = figure2_matrices();
        // A deliberately aggressive relative threshold: this test checks
        // the *mechanism* (redundant-copy pruning), so the spurious edge a
        // finite sample leaves on λ2 must fall below the cut.
        let pick = LabelPick::new(LabelPickConfig {
            rho: 0.1,
            blanket_rel: 0.3,
            ..LabelPickConfig::default()
        });
        let selected = pick.select(&qm, &pseudo, &vm, &vlabels, 2).unwrap();
        // λ4 (index 3) must be pruned by the accuracy filter.
        assert!(
            !selected.contains(&3),
            "inaccurate LF survived: {selected:?}"
        );
        // The Markov blanket is {λ1, λ3}; λ2 is redundant given λ1.
        assert!(selected.contains(&0), "{selected:?}");
        assert!(selected.contains(&2), "{selected:?}");
        assert!(!selected.contains(&1), "redundant LF kept: {selected:?}");
    }

    #[test]
    fn accuracy_filter_uses_validation_split() {
        let (qm, pseudo, _, _) = figure2_matrices();
        // Validation where λ1 is *wrong* (votes the opposite label).
        let mut vrows = Vec::new();
        let mut vlabels = Vec::new();
        for rep in 0..20 {
            let y = rep % 2;
            let v = y as i8;
            vrows.push(vec![1 - v, v, v, v]);
            vlabels.push(y);
        }
        let vm = LabelMatrix::from_votes(&vrows).unwrap();
        let pick = LabelPick::default();
        let selected = pick.select(&qm, &pseudo, &vm, &vlabels, 2).unwrap();
        assert!(!selected.contains(&0), "{selected:?}");
    }

    #[test]
    fn few_queries_keep_all_survivors() {
        let qm = LabelMatrix::from_votes(&[vec![1, 1], vec![0, 0]]).unwrap();
        let vm = LabelMatrix::from_votes(&[vec![1, 1], vec![0, 0]]).unwrap();
        let pick = LabelPick::default(); // min_queries = 5 > 2 rows
        let selected = pick.select(&qm, &[1, 0], &vm, &[1, 0], 2).unwrap();
        assert_eq!(selected, vec![0, 1]);
    }

    #[test]
    fn lf_without_validation_coverage_survives_pruning() {
        let qm = LabelMatrix::from_votes(&[vec![1], vec![0]]).unwrap();
        let vm = LabelMatrix::from_votes(&[vec![ABSTAIN], vec![ABSTAIN]]).unwrap();
        let pick = LabelPick::default();
        let selected = pick.select(&qm, &[1, 0], &vm, &[1, 0], 2).unwrap();
        assert_eq!(selected, vec![0]);
    }

    #[test]
    fn empty_lf_set_selects_nothing() {
        let qm = LabelMatrix::empty(0);
        let vm = LabelMatrix::empty(0);
        let pick = LabelPick::default();
        assert!(pick.select(&qm, &[], &vm, &[], 2).unwrap().is_empty());
    }

    #[test]
    fn cap_limits_glasso_input() {
        // 12 identical accurate LFs with cap 4: selection must come from at
        // most 4 survivors.
        let mut rows = Vec::new();
        let mut pseudo = Vec::new();
        for rep in 0..30 {
            let y = rep % 2;
            rows.push(vec![y as i8; 12]);
            pseudo.push(y);
        }
        let qm = LabelMatrix::from_votes(&rows).unwrap();
        let vm = qm.clone();
        let vlabels = pseudo.clone();
        let pick = LabelPick::new(LabelPickConfig {
            cap: 4,
            ..LabelPickConfig::default()
        });
        let selected = pick.select(&qm, &pseudo, &vm, &vlabels, 2).unwrap();
        assert!(!selected.is_empty());
        assert!(selected.len() <= 4, "{selected:?}");
    }

    #[test]
    fn mismatched_matrices_error() {
        let qm = LabelMatrix::from_votes(&[vec![1, 0]]).unwrap();
        let vm = LabelMatrix::from_votes(&[vec![1]]).unwrap();
        let pick = LabelPick::default();
        assert!(pick.select(&qm, &[1], &vm, &[1], 2).is_err());
        let vm2 = LabelMatrix::from_votes(&[vec![1, 0]]).unwrap();
        assert!(pick.select(&qm, &[1, 0], &vm2, &[1], 2).is_err());
    }
}
