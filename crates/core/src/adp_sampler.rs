//! The ADP sampler (paper §3.3, Eq. 2).
//!
//! ```text
//!   x* = argmax_x  Ent(f_a(x))^α · Ent(f_l(x, Λ*))^(1−α)
//! ```
//!
//! α trades off the two models: 0.5 for textual datasets, 0.99 for tabular
//! ones in the paper's experiments (tabular tasks are easy for the AL model,
//! so its uncertainty dominates). Before a model exists its entropy is taken
//! as maximal (uniform), so iteration 1 degenerates to a uniform-random
//! draw.

use adp_sampler::{Sampler, SamplerContext};
use rand::{Rng, SeedableRng};

/// Entropy-product sampler combining the AL model and the label model.
///
/// The per-instance entropy-product scoring runs through
/// [`adp_sampler::score_items`] under the fixed-chunk contract; the
/// RNG-consuming reservoir tie-break stays a serial pass over the scores,
/// so selections and the tie-break stream are bitwise identical at every
/// thread count.
#[derive(Debug)]
pub struct AdpSampler {
    alpha: f64,
    rng: rand::rngs::StdRng,
    /// Fan the per-instance scoring out over scoped threads when the pool
    /// is large enough (scheduling only; selections are identical).
    pub parallel: bool,
}

impl AdpSampler {
    /// An ADP sampler with trade-off factor `alpha ∈ [0, 1]`.
    ///
    /// # Panics
    /// Panics when `alpha` is outside `[0, 1]` — it is a fixed experiment
    /// constant in the paper, so a bad value is a programming error.
    pub fn new(alpha: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "alpha must be in [0,1], got {alpha}"
        );
        AdpSampler {
            alpha,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            parallel: true,
        }
    }

    /// The trade-off factor in use.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Sampler for AdpSampler {
    fn select(&mut self, ctx: &SamplerContext<'_>) -> Option<usize> {
        let max_h = (ctx.train.n_classes as f64).ln();
        let pool: Vec<usize> = ctx.candidate_pool();
        let alpha = self.alpha;
        let scores = adp_sampler::score_items(&pool, self.parallel, |&i| {
            let h_al = match ctx.al_probs {
                Some(p) => adp_linalg::entropy(&p[i]),
                None => max_h,
            };
            let h_lm = match ctx.lm_probs {
                Some(p) => adp_linalg::entropy(&p[i]),
                None => max_h,
            };
            h_al.powf(alpha) * h_lm.powf(1.0 - alpha)
        });
        let mut best: Option<(usize, f64)> = None;
        let mut ties = 0usize;
        for (&i, &score) in pool.iter().zip(&scores) {
            match best {
                None => {
                    best = Some((i, score));
                    ties = 1;
                }
                Some((_, b)) if score > b + 1e-15 => {
                    best = Some((i, score));
                    ties = 1;
                }
                Some((_, b)) if (score - b).abs() <= 1e-15 => {
                    ties += 1;
                    if self.rng.gen_range(0..ties) == 0 {
                        best = Some((i, score));
                    }
                }
                _ => {}
            }
        }
        best.map(|(i, _)| i)
    }

    fn name(&self) -> &'static str {
        "ADP"
    }

    fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    fn restore_rng_state(&mut self, state: [u64; 4]) {
        self.rng = rand::rngs::StdRng::from_state(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_data::{Dataset, FeatureSet, Task};
    use adp_linalg::Matrix;

    fn pool(n: usize) -> Dataset {
        Dataset {
            name: "p".into(),
            task: Task::OccupancyPrediction,
            n_classes: 2,
            features: FeatureSet::Dense(Matrix::zeros(n, 1)),
            labels: vec![0; n],
            texts: None,
            encoded_docs: None,
        }
    }

    fn probs(ps: &[f64]) -> Vec<Vec<f64>> {
        ps.iter().map(|&p| vec![1.0 - p, p]).collect()
    }

    fn ctx<'a>(
        d: &'a Dataset,
        queried: &'a [bool],
        al: Option<&'a [Vec<f64>]>,
        lm: Option<&'a [Vec<f64>]>,
    ) -> SamplerContext<'a> {
        SamplerContext {
            train: d,
            queried,
            al_probs: al,
            lm_probs: lm,
            n_labeled: 0,
            space: None,
            seen_lfs: None,
            candidates: None,
        }
    }

    #[test]
    fn alpha_one_follows_al_model_only() {
        let d = pool(3);
        let queried = vec![false; 3];
        let al = probs(&[0.9, 0.5, 0.7]); // entropy max at index 1
        let lm = probs(&[0.5, 0.99, 0.5]); // would pull away from 1
        let mut s = AdpSampler::new(1.0, 0);
        assert_eq!(s.select(&ctx(&d, &queried, Some(&al), Some(&lm))), Some(1));
    }

    #[test]
    fn alpha_zero_follows_label_model_only() {
        let d = pool(3);
        let queried = vec![false; 3];
        let al = probs(&[0.5, 0.9, 0.9]);
        let lm = probs(&[0.9, 0.52, 0.9]);
        let mut s = AdpSampler::new(0.0, 0);
        assert_eq!(s.select(&ctx(&d, &queried, Some(&al), Some(&lm))), Some(1));
    }

    #[test]
    fn balanced_alpha_mixes_models() {
        let d = pool(3);
        let queried = vec![false; 3];
        // Index 0: AL uncertain, LM certain. Index 1: both moderately
        // uncertain. Index 2: both certain. Geometric mean favours index 1.
        let al = probs(&[0.5, 0.65, 0.95]);
        let lm = probs(&[0.99, 0.65, 0.95]);
        let mut s = AdpSampler::new(0.5, 0);
        assert_eq!(s.select(&ctx(&d, &queried, Some(&al), Some(&lm))), Some(1));
    }

    #[test]
    fn missing_models_give_uniform_random_first_pick() {
        let d = pool(30);
        let queried = vec![false; 30];
        let a = AdpSampler::new(0.5, 7).select(&ctx(&d, &queried, None, None));
        let b = AdpSampler::new(0.5, 7).select(&ctx(&d, &queried, None, None));
        assert_eq!(a, b);
        let picks: std::collections::HashSet<_> = (0..4)
            .filter_map(|s| AdpSampler::new(0.5, s).select(&ctx(&d, &queried, None, None)))
            .collect();
        assert!(picks.len() > 1, "first pick never varies");
    }

    #[test]
    fn respects_queried_mask_and_exhaustion() {
        let d = pool(2);
        let queried = vec![true, false];
        let al = probs(&[0.5, 0.9]);
        let mut s = AdpSampler::new(0.5, 0);
        assert_eq!(s.select(&ctx(&d, &queried, Some(&al), None)), Some(1));
        let all = vec![true, true];
        assert_eq!(s.select(&ctx(&d, &all, Some(&al), None)), None);
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0,1]")]
    fn rejects_bad_alpha() {
        AdpSampler::new(1.5, 0);
    }

    #[test]
    fn name_and_alpha_accessors() {
        let s = AdpSampler::new(0.99, 0);
        assert_eq!(s.name(), "ADP");
        assert_eq!(s.alpha(), 0.99);
    }
}
