//! **ActiveDP** — the interactive labelling framework of Guan & Koudas,
//! *ActiveDP: Bridging Active Learning and Data Programming* (EDBT 2024).
//!
//! ActiveDP runs an iterative loop (paper Figure 1). In the **training
//! phase**, each iteration:
//!
//! 1. the [`AdpSampler`] (§3.3, Eq. 2) picks the query instance whose
//!    uncertainty is highest under a geometric mixture of the
//!    active-learning model and the label model;
//! 2. the user (an [`Oracle`]; experiments use the simulated user of
//!    §4.1.4) inspects the instance and returns a label function;
//! 3. the query instance receives a *pseudo-label* — the LF's vote on its
//!    own query — and joins the AL model's training set;
//! 4. [`LabelPick`] (§3.4) prunes LFs worse than random on the validation
//!    split and keeps the subset forming the Markov blanket of the label
//!    under a graphical-lasso dependency estimate;
//! 5. the label model (MeTaL-style triplet estimator by default) refits on
//!    the selected LFs and the AL model refits on the pseudo-labelled set.
//!
//! In the **inference phase**, [`confusion`] (§3.2, Eq. 1) aggregates both
//! models' predictions under a confidence threshold tuned on the validation
//! split, and the downstream classifier trains on the aggregated labels.
//!
//! The loop is implemented as the staged [`Engine`] — `sampling` →
//! `querying` → `training` per step around a shared
//! [`engine::SessionState`], with `inference` on demand. The engine owns
//! its dataset behind an [`adp_data::SharedDataset`] handle and is
//! `Send + 'static`; it is built with the validating [`EngineBuilder`]
//! (`Engine::builder(data).seed(7).build()?`), steps singly
//! ([`Engine::step`]) or in refit-saving batches ([`Engine::step_batch`]),
//! and reports every iteration to registered [`StepObserver`] hooks.
//! [`ActiveDpSession`] preserves the original monolithic API as a facade
//! over it, exposing the ablation switches of Table 3 (`use_labelpick`,
//! `use_confusion`) plus the sampler choices of Table 4. Serving many
//! concurrent sessions is the `adp-serve` crate's `SessionHub`.
//!
//! A complete run is described declaratively by a [`ScenarioSpec`] —
//! dataset provenance + [`config::SessionConfig`] + [`BudgetSchedule`] +
//! labelling budget, serializable to bytes and JSON —
//! [`Engine::from_spec`] is the one true constructor (the builder is an
//! ergonomic layer over it), [`Engine::run_schedule`] spends the budget
//! under the schedule, and snapshots embed the spec so a session rebuilds
//! from its bytes alone ([`Engine::resume`]). See the [`scenario`] module.

pub mod adp_sampler;
pub mod config;
pub mod confusion;
pub mod engine;
pub mod error;
pub mod event;
pub mod labelpick;
pub mod oracle;
pub mod replay;
pub mod scenario;
pub mod session;
pub mod snapshot;

pub use adp_classifier::LogRegConfig;
pub use adp_labelmodel::LabelModelKind;
pub use adp_sampler::AdpSampler;
pub use config::{
    CandidateStrategy, SamplerChoice, SessionConfig, UnknownCandidateStrategy, UnknownSampler,
};
pub use confusion::{aggregate, tune_threshold, AggregatedLabels};
pub use engine::{
    Engine, EngineBuilder, EvalReport, QueryingStage, SamplingStage, ScheduleRun, SessionState,
    Stage, StepObserver, StepOutcome, TrainingStage,
};
pub use error::ActiveDpError;
pub use event::StepEvent;
pub use labelpick::{LabelPick, LabelPickConfig};
pub use oracle::{
    ConfusionSpec, LatencyModel, NoisyOracle, Oracle, OracleKind, OracleRouter, RouteChoice,
    RoutePolicy, RouteStats, RoutedState, RoutedStep, UnknownOracleKind,
};
pub use replay::replay_snapshot;
pub use scenario::{
    BudgetSchedule, PhaseSegment, ScenarioSpec, DEFAULT_BUDGET, SCENARIO_MAGIC, SCENARIO_VERSION,
};
pub use session::ActiveDpSession;
pub use snapshot::{SessionSnapshot, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
