//! Session snapshot/restore: the durable form of a running engine.
//!
//! A [`SessionSnapshot`] is plain data — the full
//! [`ScenarioSpec`] (dataset provenance, session config, budget schedule),
//! the [`SessionState`] and the two RNG stream positions (sampler, oracle)
//! — because everything else an [`Engine`](crate::Engine) holds is a
//! deterministic function of those parts:
//!
//! * the dataset itself regenerates from the spec's [`DatasetSpec`]
//!   provenance (datasets are large, shared, and deterministic in the
//!   spec, so only the provenance travels);
//! * the candidate space and class balance rebuild from the dataset;
//! * the sampler rebuilds from the config, then has its stream repositioned;
//! * the fitted models (LabelPick selection, label model, AL model) rebuild
//!   with one [`TrainingStage::refit`](crate::TrainingStage) — every fit in
//!   the workspace resets its parameters and runs under the fixed-chunk
//!   reduction contract, so the refit reproduces the exact weights the
//!   snapshot-time models had.
//!
//! Consequently *snapshot at iteration k → restore → run to the end* is
//! **bitwise identical** to the uninterrupted run (pinned by
//! `tests/engine_parity.rs`), under serial and parallel execution alike —
//! and because the spec is embedded, [`Engine::resume`](crate::Engine)
//! rebuilds the whole session from nothing but the snapshot bytes.
//!
//! The byte encoding ([`SessionSnapshot::to_bytes`] /
//! [`SessionSnapshot::from_bytes`]) rides the `adp-wire` codec inside a
//! versioned envelope (magic `ADPSNAP\0`, format version
//! [`SNAPSHOT_VERSION`]). Encoding is canonical — LF-key sets are sorted —
//! so the same snapshot always produces the same bytes; the committed
//! golden-bytes fixture keeps format changes deliberate. Version 1 (the
//! pre-scenario format, config only, no embedded provenance) is not
//! migrated: snapshots are operational spill artefacts, not archives, and
//! decoders reject v1 with a typed [`WireError::UnknownVersion`].
//!
//! [`DatasetSpec`]: adp_data::DatasetSpec

use crate::engine::SessionState;
use crate::error::ActiveDpError;
use crate::scenario::ScenarioSpec;
use adp_lf::{LabelFunction, LabelMatrix, LfKey, StumpOp, UserState};
use adp_oracle::{RouteStats, RoutedState};
use adp_wire::{read_envelope, write_envelope, Reader, WireError, Writer};

/// Magic bytes opening every encoded session snapshot.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"ADPSNAP\0";

/// Current snapshot format version. Bumped to 2 when snapshots started
/// embedding the whole [`ScenarioSpec`] (dataset provenance and budget
/// schedule included) instead of a bare session config, to 3 when the
/// embedded spec gained the candidate strategy, and to 4 when the spec
/// gained the oracle kind + drift scenario and the snapshot grew the
/// optional routed-oracle state (cheap-oracle RNG stream + cost ledger).
/// Bump deliberately: the golden-bytes test pins the encoding, and
/// decoders reject *future* versions with [`WireError::UnknownVersion`].
/// v2/v3 spill files stay decodable (their specs ran exact scoring against
/// the simulated user on a static pool, so the missing fields default to
/// `Exact`/`Simulated`/`None` and no routed state); the pre-scenario v1
/// remains rejected.
pub const SNAPSHOT_VERSION: u32 = 4;

/// First version whose embedded spec body carries the candidate strategy.
const SNAPSHOT_VERSION_CANDIDATES: u32 = 3;

/// First version whose embedded spec carries the oracle kind + drift
/// scenario and whose payload carries optional routed-oracle state.
const SNAPSHOT_VERSION_ORACLE: u32 = 4;

/// Oldest decodable version: v1 predates embedded scenario specs and was
/// deliberately never migrated (see the module docs).
const SNAPSHOT_VERSION_MIN: u32 = 2;

/// Everything needed to resume a session exactly where it stopped, as
/// plain data (see the module docs for why this is sufficient).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// The complete run description, dataset provenance and seed included.
    pub spec: ScenarioSpec,
    /// The accumulated loop state.
    pub state: SessionState,
    /// The sampler's RNG stream position.
    pub sampler_rng: [u64; 4],
    /// The expensive oracle's mutable state (RNG stream + returned-LF set).
    pub oracle: UserState,
    /// The router's mutable state when the session runs a dual-oracle
    /// configuration ([`OracleKind::Noisy`](crate::OracleKind)): the cheap
    /// oracle's RNG stream + returned-LF set and the accumulated cost
    /// ledger. `None` for plain simulated-user sessions.
    pub routed: Option<RoutedState>,
}

impl SessionSnapshot {
    /// The snapshot's session configuration (sugar for
    /// `&self.spec.session`).
    pub fn config(&self) -> &crate::SessionConfig {
        &self.spec.session
    }

    /// Encodes the snapshot into its canonical, versioned byte form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = write_envelope(SNAPSHOT_MAGIC, SNAPSHOT_VERSION);
        w.put(&self.spec);
        enc_state(&mut w, &self.state);
        w.put(&self.sampler_rng);
        w.put(&self.oracle.rng);
        enc_keys(&mut w, &self.oracle.returned);
        // v4: optional routed-oracle state, appended so v3 payloads are an
        // exact prefix of routerless v4 payloads.
        match &self.routed {
            None => w.put_bool(false),
            Some(routed) => {
                w.put_bool(true);
                w.put(&routed.cheap.rng);
                enc_keys(&mut w, &routed.cheap.returned);
                w.put_u64(routed.stats.cheap_queries);
                w.put_u64(routed.stats.expensive_queries);
                w.put_u64(routed.stats.escalations);
                w.put_f64(routed.stats.cheap_cost);
                w.put_f64(routed.stats.expensive_cost);
            }
        }
        w.into_bytes()
    }

    /// Decodes a snapshot previously written by [`SessionSnapshot::to_bytes`].
    ///
    /// Rejects foreign magic, other format versions (the pre-scenario v1
    /// included), truncation, trailing bytes and structurally inconsistent
    /// payloads with typed errors — a corrupt spill file can never panic
    /// the decoder or yield a half-restored session.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ActiveDpError> {
        let (mut r, version) = read_envelope(bytes, SNAPSHOT_MAGIC, SNAPSHOT_VERSION)?;
        if version < SNAPSHOT_VERSION_MIN {
            return Err(WireError::UnknownVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            }
            .into());
        }
        let spec = crate::scenario::dec_spec_body(
            &mut r,
            version >= SNAPSHOT_VERSION_CANDIDATES,
            version >= SNAPSHOT_VERSION_ORACLE,
        )?;
        let state = dec_state(&mut r)?;
        let sampler_rng: [u64; 4] = r.get()?;
        let oracle_rng: [u64; 4] = r.get()?;
        let returned = dec_keys(&mut r)?;
        let routed = if version >= SNAPSHOT_VERSION_ORACLE && r.get_bool()? {
            let cheap_rng: [u64; 4] = r.get()?;
            let cheap_returned = dec_keys(&mut r)?;
            Some(RoutedState {
                cheap: UserState {
                    rng: cheap_rng,
                    returned: cheap_returned,
                },
                stats: RouteStats {
                    cheap_queries: r.get_u64()?,
                    expensive_queries: r.get_u64()?,
                    escalations: r.get_u64()?,
                    cheap_cost: r.get_f64()?,
                    expensive_cost: r.get_f64()?,
                },
            })
        } else {
            None
        };
        r.finish()?;
        Ok(SessionSnapshot {
            spec,
            state,
            sampler_rng,
            oracle: UserState {
                rng: oracle_rng,
                returned,
            },
            routed,
        })
    }
}

/// LF body encoding, shared by the snapshot codec and the WAL's
/// [`StepEvent`](crate::StepEvent) codec — one byte layout for label
/// functions everywhere they ride the wire.
pub(crate) fn enc_lf(w: &mut Writer, lf: &LabelFunction) {
    match lf {
        LabelFunction::Keyword { token, label } => {
            w.put_u8(0);
            w.put_u32(*token);
            w.put_usize(*label);
        }
        LabelFunction::Stump {
            feature,
            threshold,
            op,
            label,
        } => {
            w.put_u8(1);
            w.put_usize(*feature);
            w.put_f64(*threshold);
            w.put_u8(stump_op_tag(*op));
            w.put_usize(*label);
        }
    }
}

pub(crate) fn dec_lf(r: &mut Reader<'_>) -> Result<LabelFunction, WireError> {
    match r.get_u8()? {
        0 => Ok(LabelFunction::Keyword {
            token: r.get_u32()?,
            label: r.get_usize()?,
        }),
        1 => Ok(LabelFunction::Stump {
            feature: r.get_usize()?,
            threshold: r.get_f64()?,
            op: dec_stump_op(r)?,
            label: r.get_usize()?,
        }),
        tag => Err(WireError::BadTag {
            what: "label function",
            tag,
        }),
    }
}

fn stump_op_tag(op: StumpOp) -> u8 {
    match op {
        StumpOp::Le => 0,
        StumpOp::Ge => 1,
    }
}

fn dec_stump_op(r: &mut Reader<'_>) -> Result<StumpOp, WireError> {
    match r.get_u8()? {
        0 => Ok(StumpOp::Le),
        1 => Ok(StumpOp::Ge),
        tag => Err(WireError::BadTag {
            what: "stump op",
            tag,
        }),
    }
}

/// LF keys on the wire, in canonical (sorted) order so identical sets
/// always produce identical bytes regardless of `HashSet` iteration order.
fn enc_keys(w: &mut Writer, keys: &[LfKey]) {
    let mut sorted: Vec<LfKey> = keys.to_vec();
    sorted.sort_unstable();
    w.put_usize(sorted.len());
    for key in &sorted {
        match key {
            LfKey::Keyword(token, label) => {
                w.put_u8(0);
                w.put_u32(*token);
                w.put_usize(*label);
            }
            LfKey::Stump(feature, bits, op, label) => {
                w.put_u8(1);
                w.put_usize(*feature);
                w.put_u64(*bits);
                w.put_u8(stump_op_tag(*op));
                w.put_usize(*label);
            }
        }
    }
}

fn dec_keys(r: &mut Reader<'_>) -> Result<Vec<LfKey>, WireError> {
    let n = r.get_len("lf keys", 1)?;
    let mut keys = Vec::with_capacity(n);
    for _ in 0..n {
        keys.push(match r.get_u8()? {
            0 => LfKey::Keyword(r.get_u32()?, r.get_usize()?),
            1 => LfKey::Stump(
                r.get_usize()?,
                r.get_u64()?,
                dec_stump_op(r)?,
                r.get_usize()?,
            ),
            tag => {
                return Err(WireError::BadTag {
                    what: "lf key",
                    tag,
                })
            }
        });
    }
    Ok(keys)
}

fn enc_matrix(w: &mut Writer, m: &LabelMatrix) {
    w.put_usize(m.n_instances());
    w.put_usize(m.n_lfs());
    w.put_i8_slice(m.votes());
}

fn dec_matrix(r: &mut Reader<'_>) -> Result<LabelMatrix, ActiveDpError> {
    let n = r.get_usize()?;
    let m = r.get_usize()?;
    let votes: Vec<i8> = r.get()?;
    Ok(LabelMatrix::from_raw(n, m, votes)?)
}

fn enc_state(w: &mut Writer, s: &SessionState) {
    w.put_usize(s.lfs.len());
    for lf in &s.lfs {
        enc_lf(w, lf);
    }
    enc_matrix(w, &s.train_matrix);
    enc_matrix(w, &s.valid_matrix);
    w.put(&s.queried);
    w.put(&s.query_indices);
    w.put(&s.pseudo_labels);
    w.put(&s.selected);
    let keys: Vec<LfKey> = s.seen_keys.iter().copied().collect();
    enc_keys(w, &keys);
    w.put_usize(s.iteration);
    w.put(&s.al_probs_train);
    w.put(&s.lm_probs_train);
}

fn dec_state(r: &mut Reader<'_>) -> Result<SessionState, ActiveDpError> {
    let n_lfs = r.get_len("lfs", 1)?;
    let mut lfs = Vec::with_capacity(n_lfs);
    for _ in 0..n_lfs {
        lfs.push(dec_lf(r)?);
    }
    let train_matrix = dec_matrix(r)?;
    let valid_matrix = dec_matrix(r)?;
    let queried: Vec<bool> = r.get()?;
    let query_indices: Vec<usize> = r.get()?;
    let pseudo_labels: Vec<usize> = r.get()?;
    let selected: Vec<usize> = r.get()?;
    let seen_keys = dec_keys(r)?.into_iter().collect();
    let iteration = r.get_usize()?;
    let al_probs_train: Option<Vec<Vec<f64>>> = r.get()?;
    let lm_probs_train: Option<Vec<Vec<f64>>> = r.get()?;
    Ok(SessionState {
        lfs,
        train_matrix,
        valid_matrix,
        queried,
        query_indices,
        pseudo_labels,
        selected,
        seen_keys,
        iteration,
        al_probs_train,
        lm_probs_train,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;
    use adp_data::{generate, DatasetId, Scale, SharedDataset};

    fn tiny() -> SharedDataset {
        generate(DatasetId::Youtube, Scale::Tiny, 7)
            .unwrap()
            .into_shared()
    }

    fn mid_run_snapshot(steps: usize) -> SessionSnapshot {
        let mut e = Engine::builder(tiny()).seed(7).build().unwrap();
        e.run(steps).unwrap();
        e.snapshot().unwrap()
    }

    #[test]
    fn snapshot_bytes_roundtrip_exactly() {
        let snap = mid_run_snapshot(8);
        let bytes = snap.to_bytes();
        let back = SessionSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap, back);
        // Canonical encoding: re-encoding the decoded snapshot reproduces
        // the bytes (HashSet iteration order cannot leak into the file).
        assert_eq!(bytes, back.to_bytes());
    }

    #[test]
    fn fresh_session_snapshot_roundtrips_too() {
        // iteration 0: no LFs, no probs — every Option/empty-Vec path.
        let snap = mid_run_snapshot(0);
        assert!(snap.state.lfs.is_empty());
        assert!(snap.state.al_probs_train.is_none());
        let back = SessionSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn stump_lfs_and_keys_roundtrip() {
        // Tabular sessions carry Stump LFs with float thresholds; pin the
        // second LF family through the codec directly.
        let mut snap = mid_run_snapshot(2);
        snap.state.lfs.push(LabelFunction::Stump {
            feature: 3,
            threshold: -0.125,
            op: StumpOp::Ge,
            label: 1,
        });
        snap.oracle
            .returned
            .push(LfKey::Stump(3, (-0.125f64).to_bits(), StumpOp::Ge, 1));
        snap.oracle.returned.sort_unstable();
        let back = SessionSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn decoder_rejects_corruption_without_panicking() {
        let bytes = mid_run_snapshot(5).to_bytes();
        // Wrong magic.
        let mut wrong = bytes.clone();
        wrong[0] ^= 0xff;
        assert!(matches!(
            SessionSnapshot::from_bytes(&wrong),
            Err(ActiveDpError::SnapshotCodec(WireError::BadMagic { .. }))
        ));
        // Future version.
        let mut future = bytes.clone();
        future[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            SessionSnapshot::from_bytes(&future),
            Err(ActiveDpError::SnapshotCodec(WireError::UnknownVersion {
                found: 99,
                ..
            }))
        ));
        // Truncation at every length is an error, never a panic.
        for cut in 0..bytes.len() {
            assert!(SessionSnapshot::from_bytes(&bytes[..cut]).is_err());
        }
        // Trailing garbage after a valid payload.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(
            SessionSnapshot::from_bytes(&padded),
            Err(ActiveDpError::SnapshotCodec(
                WireError::TrailingBytes { .. }
            ))
        ));
    }

    #[test]
    fn unknown_enum_tags_are_typed_errors() {
        let mut w = write_envelope(SNAPSHOT_MAGIC, SNAPSHOT_VERSION);
        // dataset spec, then alpha .. noise_rate, then a bogus
        // label-model tag.
        w.put(&adp_data::DatasetSpec {
            id: DatasetId::Youtube,
            scale: Scale::Tiny,
            seed: 7,
        });
        w.put_f64(0.5);
        w.put_f64(0.6);
        w.put_f64(0.0);
        w.put_u8(9);
        let err = SessionSnapshot::from_bytes(&w.into_bytes()).unwrap_err();
        assert!(matches!(
            err,
            ActiveDpError::SnapshotCodec(WireError::BadTag {
                what: "label model kind",
                tag: 9
            })
        ));
    }

    #[test]
    fn matrix_shape_mismatch_is_rejected() {
        // A hand-built payload whose vote count cannot fill the declared
        // shape must surface the LfError, not slice out of bounds later.
        let votes = LabelMatrix::from_votes(&[vec![1, 0], vec![0, 1]]).unwrap();
        let mut w = Writer::new();
        enc_matrix(&mut w, &votes);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let n = r.get_usize().unwrap();
        let m = r.get_usize().unwrap();
        let mut raw: Vec<i8> = r.get().unwrap();
        raw.pop();
        assert!(LabelMatrix::from_raw(n, m, raw).is_err());
    }
}
