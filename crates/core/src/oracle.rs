//! The user abstraction: anything that can answer a query instance with a
//! label function.
//!
//! The trait and its implementations live in the `adp-oracle` crate since
//! the dual-oracle subsystem landed; this module re-exports them so
//! `activedp::oracle::Oracle` and `activedp::Oracle` keep working. The
//! evaluation protocol plugs in the simulated user of §4.1.4
//! ([`adp_lf::SimulatedUser`]) or the budget-aware [`OracleRouter`] over
//! it and the cheap [`NoisyOracle`]; an interactive deployment would
//! implement [`Oracle`] over a real UI.

pub use adp_oracle::{
    ConfusionSpec, LatencyModel, NoisyOracle, Oracle, OracleKind, OracleRouter, RouteChoice,
    RoutePolicy, RouteStats, RoutedState, RoutedStep, UnknownOracleKind,
};
