//! The user abstraction: anything that can answer a query instance with a
//! label function.
//!
//! The evaluation protocol plugs in the simulated user of §4.1.4
//! ([`adp_lf::SimulatedUser`]); an interactive deployment would implement
//! [`Oracle`] over a real UI.

use adp_data::Dataset;
use adp_lf::{CandidateSpace, LabelFunction, SimulatedUser, UserState};

/// A source of label functions in response to query instances.
pub trait Oracle: Send {
    /// Inspects instance `idx` of `query_dataset` and (optionally) returns
    /// a new label function. `None` still consumes the iteration's budget,
    /// mirroring a user who cannot think of a rule for the instance.
    fn respond(
        &mut self,
        space: &CandidateSpace,
        train: &Dataset,
        query_dataset: &Dataset,
        idx: usize,
    ) -> Option<LabelFunction>;

    /// Captures the oracle's mutable state for a session snapshot, when the
    /// oracle supports it. The default is `None`: a custom oracle (a human
    /// behind a UI, say) has no replayable state, and `Engine::snapshot`
    /// reports `SnapshotUnsupported` for such sessions instead of silently
    /// writing one that cannot resume faithfully.
    fn save_state(&self) -> Option<UserState> {
        None
    }

    /// Restores state captured by [`Oracle::save_state`]. Returns `false`
    /// (the default) when the oracle cannot replay it, which makes resuming
    /// fail loudly rather than continue with a desynchronised oracle.
    fn load_state(&mut self, state: &UserState) -> bool {
        let _ = state;
        false
    }

    /// The oracle's RNG stream position alone — what a per-step
    /// [`StepEvent`](crate::StepEvent) records (the rest of the oracle's
    /// state is reconstructed from the logged LFs at replay time). The
    /// default derives it from [`Oracle::save_state`]; oracles with a
    /// cheaper accessor should override it, since this runs once per
    /// journalled step.
    fn rng_words(&self) -> Option<[u64; 4]> {
        self.save_state().map(|s| s.rng)
    }
}

impl Oracle for SimulatedUser {
    fn respond(
        &mut self,
        space: &CandidateSpace,
        train: &Dataset,
        query_dataset: &Dataset,
        idx: usize,
    ) -> Option<LabelFunction> {
        SimulatedUser::respond(self, space, train, query_dataset, idx)
    }

    fn save_state(&self) -> Option<UserState> {
        Some(SimulatedUser::state(self))
    }

    fn load_state(&mut self, state: &UserState) -> bool {
        // The config (thresholds, noise rate) stays whatever this user was
        // constructed with — the snapshot's `SessionConfig` rebuilds it —
        // so only the mutable parts are replayed here.
        *self = SimulatedUser::from_state(self.config(), state);
        true
    }

    fn rng_words(&self) -> Option<[u64; 4]> {
        Some(SimulatedUser::rng_state(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_data::{FeatureSet, Task};
    use adp_linalg::CsrMatrix;

    #[test]
    fn simulated_user_implements_oracle() {
        let d = Dataset {
            name: "t".into(),
            task: Task::SpamClassification,
            n_classes: 2,
            features: FeatureSet::Sparse(CsrMatrix::empty(2, 1)),
            labels: vec![1, 0],
            texts: None,
            encoded_docs: Some(vec![vec![0], vec![0]]),
        };
        let space = CandidateSpace::build(&d);
        let mut user: Box<dyn Oracle> = Box::new(SimulatedUser::with_defaults(0));
        // Token 0 has accuracy 0.5 on each label -> below threshold -> None.
        assert!(user.respond(&space, &d, &d, 0).is_none());
    }
}
