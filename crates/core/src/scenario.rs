//! The declarative description of a complete run: [`ScenarioSpec`] +
//! [`BudgetSchedule`].
//!
//! ActiveDP's contribution is a *configuration space* — sampler × label
//! model × LF filtering × labelling budget — evaluated over many runs
//! (paper Tables 2–4). A [`ScenarioSpec`] is one point of that space as
//! plain data: which dataset (by regenerable [`DatasetSpec`] provenance),
//! which [`SessionConfig`], how the labelling budget is spent
//! ([`BudgetSchedule`]), and how large that budget is. Everything an
//! engine needs is a deterministic function of the spec, so a spec is the
//! unit of reproducibility: it serializes to bytes (`adp-wire`, versioned
//! envelope) and to JSON (the serving layer's `create_spec` request), it
//! is embedded in every [`SessionSnapshot`](crate::SessionSnapshot) so a
//! resumed session knows exactly what it is, and the `adp-sweep` binary
//! expands grids of specs into deterministic runs.
//!
//! [`Engine::from_spec`](crate::Engine::from_spec) is the one true
//! constructor; [`EngineBuilder`](crate::EngineBuilder) is an ergonomic
//! layer that assembles a spec from setters.
//!
//! ```
//! use activedp::{BudgetSchedule, Engine, ScenarioSpec};
//! use adp_data::{DatasetId, DatasetSpec, Scale};
//!
//! let mut spec = ScenarioSpec::new(DatasetSpec {
//!     id: DatasetId::Youtube,
//!     scale: Scale::Tiny,
//!     seed: 7,
//! });
//! spec.session.seed = 7;
//! spec.schedule = BudgetSchedule::FixedBatch { k: 4 };
//! spec.budget = 8;
//!
//! // The spec round-trips the wire and fully determines the run.
//! let same = ScenarioSpec::from_bytes(&spec.to_bytes()).unwrap();
//! let mut engine = Engine::from_spec(same).unwrap();
//! let outcomes = engine.run_schedule().unwrap();
//! assert_eq!(outcomes.len(), 8); // 8 queries in 2 batches of 4
//! ```

use crate::config::{CandidateStrategy, SessionConfig};
use crate::error::ActiveDpError;
use adp_data::{DatasetSpec, DriftSpec};
use adp_oracle::{ConfusionSpec, LatencyModel, OracleKind, RoutePolicy};
use adp_wire::{read_envelope, write_envelope, Decode, Encode, Reader, WireError, Writer};

/// Magic bytes opening every encoded scenario spec.
pub const SCENARIO_MAGIC: &[u8; 8] = b"ADPSCEN\0";

/// Current scenario wire-format version. Bump deliberately: the
/// golden-bytes fixture (`tests/fixtures/scenario_v3.bin`) pins the
/// encoding, and decoders reject *future* versions with
/// [`WireError::UnknownVersion`]. Prior versions stay decodable: v1
/// (everything before the candidate strategy; pinned by
/// `tests/fixtures/scenario_v1.bin`) decodes with
/// [`CandidateStrategy::Exact`], and v2 (pre oracle/drift; pinned by
/// `tests/fixtures/scenario_v2.bin`) with [`OracleKind::Simulated`] +
/// [`DriftSpec::None`] — exactly what those specs ran.
///
/// [`CandidateStrategy::Exact`]: crate::config::CandidateStrategy::Exact
pub const SCENARIO_VERSION: u32 = 3;

/// First version carrying [`SessionConfig::candidates`] after the master
/// seed; older bodies decode with the `Exact` default.
const SCENARIO_VERSION_CANDIDATES: u32 = 2;

/// First version carrying [`SessionConfig::oracle`] (after the candidate
/// strategy, inside the config block) and [`ScenarioSpec::drift`] (after
/// the budget); older bodies decode with `Simulated` + `None`.
const SCENARIO_VERSION_ORACLE_DRIFT: u32 = 3;

/// Default labelling budget for [`ScenarioSpec::new`] — the reduced
/// protocol's iteration count (the paper's full protocol uses
/// [`ScenarioSpec::paper`]'s 300).
pub const DEFAULT_BUDGET: usize = 100;

/// How a labelling budget is spent: where the refit boundaries fall in the
/// query stream.
///
/// The paper's loop refits after *every* query
/// ([`BudgetSchedule::FixedStep`]); batching k queries per refit
/// ([`BudgetSchedule::FixedBatch`]) trades label-model freshness for
/// wall-clock (one refit amortises over k queries) — the trade the
/// ROADMAP's budget/latency study sweeps. Schedules are *aligned to
/// absolute iteration numbers*: the batch containing iteration `i` is the
/// same whether the run was interrupted or not, so a resumed session
/// continues the schedule where it stopped.
///
/// ```
/// use activedp::BudgetSchedule;
///
/// let doubling = BudgetSchedule::Doubling { cap: 4 };
/// // Batches of 1, 2, 4, 4, … until the budget (here 10) is spent.
/// assert_eq!(doubling.batch_sizes(10), vec![1, 2, 4, 3]);
/// assert_eq!(doubling.n_batches(10), 4);
/// // FixedBatch{1} is exactly the paper's one-query-per-refit loop.
/// assert_eq!(
///     BudgetSchedule::FixedBatch { k: 1 }.batch_sizes(3),
///     BudgetSchedule::FixedStep.batch_sizes(3),
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BudgetSchedule {
    /// One query per refit — the paper's loop (equivalent to
    /// [`BudgetSchedule::FixedBatch`] with `k = 1`, pinned bitwise by
    /// `tests/engine_parity.rs`).
    FixedStep,
    /// `k` queries per refit.
    FixedBatch {
        /// Queries per refit (≥ 1).
        k: usize,
    },
    /// Batch size doubles every refit — 1, 2, 4, … — capped at `cap`.
    /// Spends early budget on fresh models and late budget on throughput.
    Doubling {
        /// Largest batch size (≥ 1).
        cap: usize,
    },
    /// Explicit phases: each segment runs `batches` refit batches of `k`
    /// queries; after the last segment, its `k` continues until the
    /// budget is spent.
    Phased {
        /// The segments, in order (non-empty).
        segments: Vec<PhaseSegment>,
    },
}

/// One segment of a [`BudgetSchedule::Phased`] schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSegment {
    /// Queries per refit within this segment (≥ 1).
    pub k: usize,
    /// How many batches the segment lasts (≥ 1).
    pub batches: usize,
}

impl BudgetSchedule {
    /// Rejects degenerate schedules (`FixedBatch{k: 0}`, `Doubling{cap:
    /// 0}`, empty or zero-sized `Phased` segments) — each would make the
    /// loop spin without consuming budget.
    pub fn validate(&self) -> Result<(), ActiveDpError> {
        let bad = |reason: String| Err(ActiveDpError::BadConfig { reason });
        match self {
            BudgetSchedule::FixedStep => Ok(()),
            BudgetSchedule::FixedBatch { k: 0 } => {
                bad("schedule FixedBatch requires k >= 1".into())
            }
            BudgetSchedule::FixedBatch { .. } => Ok(()),
            BudgetSchedule::Doubling { cap: 0 } => {
                bad("schedule Doubling requires cap >= 1".into())
            }
            BudgetSchedule::Doubling { .. } => Ok(()),
            BudgetSchedule::Phased { segments } => {
                if segments.is_empty() {
                    return bad("schedule Phased requires at least one segment".into());
                }
                for (i, seg) in segments.iter().enumerate() {
                    if seg.k == 0 || seg.batches == 0 {
                        return bad(format!(
                            "schedule Phased segment {i} requires k >= 1 and batches >= 1"
                        ));
                    }
                }
                Ok(())
            }
        }
    }

    /// Size of the batch that starts (or, after an interruption,
    /// *continues*) at iteration `done`, clipped to `budget`. Returns 0
    /// when the budget is spent. Alignment is absolute: refit boundaries
    /// depend only on the schedule, never on where a run was resumed.
    pub fn next_batch_at(&self, done: usize, budget: usize) -> usize {
        if done >= budget {
            return 0;
        }
        let boundary = match self {
            BudgetSchedule::FixedStep => done + 1,
            BudgetSchedule::FixedBatch { k } => done + (k - done % k),
            BudgetSchedule::Doubling { cap } => {
                let (mut pos, mut size) = (0usize, 1usize);
                while pos + size <= done {
                    pos += size;
                    size = (size.saturating_mul(2)).min(*cap);
                }
                pos + size
            }
            BudgetSchedule::Phased { segments } => {
                let mut pos = 0usize;
                let mut boundary = None;
                'walk: for seg in segments {
                    for _ in 0..seg.batches {
                        if pos + seg.k > done {
                            boundary = Some(pos + seg.k);
                            break 'walk;
                        }
                        pos += seg.k;
                    }
                }
                boundary.unwrap_or_else(|| {
                    // Past the declared segments: the last k continues,
                    // aligned from where the segments ended.
                    let k = segments.last().map_or(1, |s| s.k.max(1));
                    done + (k - (done - pos) % k)
                })
            }
        };
        boundary.min(budget) - done
    }

    /// The batch sizes a fresh run of `budget` iterations goes through
    /// (they sum to `budget`; the pool permitting).
    pub fn batch_sizes(&self, budget: usize) -> Vec<usize> {
        let mut sizes = Vec::new();
        let mut done = 0;
        loop {
            let k = self.next_batch_at(done, budget);
            if k == 0 {
                return sizes;
            }
            sizes.push(k);
            done += k;
        }
    }

    /// How many refit batches `budget` iterations take — the denominator
    /// of the sweep artefact's accuracy-per-refit column.
    pub fn n_batches(&self, budget: usize) -> usize {
        self.batch_sizes(budget).len()
    }

    /// How many refit batches are *complete* at iteration `done` — the
    /// arriving-pool drift's clock: instances arrive per completed refit,
    /// and because alignment is absolute this is the same number whether
    /// the run was interrupted or not.
    pub fn batches_completed_at(&self, done: usize, budget: usize) -> usize {
        let mut pos = 0;
        let mut completed = 0;
        loop {
            let k = self.next_batch_at(pos, budget);
            if k == 0 || pos + k > done {
                return completed;
            }
            pos += k;
            completed += 1;
        }
    }

    /// Whether iteration `at` is a refit (batch) boundary of this schedule
    /// under `budget` — where a mid-run drift is allowed to land. Iteration
    /// 0 (the start) never counts.
    pub fn is_batch_boundary(&self, at: usize, budget: usize) -> bool {
        if at == 0 {
            return false;
        }
        let mut pos = 0;
        loop {
            let k = self.next_batch_at(pos, budget);
            if k == 0 {
                return false;
            }
            pos += k;
            if pos >= at {
                return pos == at;
            }
        }
    }

    /// Compact artefact label (`step`, `batch4`, `double16`,
    /// `phased-2x1-3x8`).
    pub fn label(&self) -> String {
        match self {
            BudgetSchedule::FixedStep => "step".into(),
            BudgetSchedule::FixedBatch { k } => format!("batch{k}"),
            BudgetSchedule::Doubling { cap } => format!("double{cap}"),
            BudgetSchedule::Phased { segments } => {
                let mut out = String::from("phased");
                for seg in segments {
                    out.push_str(&format!("-{}x{}", seg.batches, seg.k));
                }
                out
            }
        }
    }
}

impl Encode for BudgetSchedule {
    fn encode(&self, w: &mut Writer) {
        match self {
            BudgetSchedule::FixedStep => w.put_u8(0),
            BudgetSchedule::FixedBatch { k } => {
                w.put_u8(1);
                w.put_usize(*k);
            }
            BudgetSchedule::Doubling { cap } => {
                w.put_u8(2);
                w.put_usize(*cap);
            }
            BudgetSchedule::Phased { segments } => {
                w.put_u8(3);
                w.put_usize(segments.len());
                for seg in segments {
                    w.put_usize(seg.k);
                    w.put_usize(seg.batches);
                }
            }
        }
    }
}

impl Decode for BudgetSchedule {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => BudgetSchedule::FixedStep,
            1 => BudgetSchedule::FixedBatch { k: r.get_usize()? },
            2 => BudgetSchedule::Doubling {
                cap: r.get_usize()?,
            },
            3 => {
                let n = r.get_len("phase segments", 16)?;
                let mut segments = Vec::with_capacity(n);
                for _ in 0..n {
                    segments.push(PhaseSegment {
                        k: r.get_usize()?,
                        batches: r.get_usize()?,
                    });
                }
                BudgetSchedule::Phased { segments }
            }
            tag => {
                return Err(WireError::BadTag {
                    what: "budget schedule",
                    tag,
                })
            }
        })
    }
}

/// A complete, serializable description of one run — see the
/// [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Which dataset split, by regenerable provenance.
    pub dataset: DatasetSpec,
    /// The session configuration (sampler, label model, ablations, seed).
    pub session: SessionConfig,
    /// How the labelling budget is spent.
    pub schedule: BudgetSchedule,
    /// Total labelling budget (loop iterations
    /// [`Engine::run_schedule`](crate::Engine::run_schedule) drives).
    pub budget: usize,
    /// How (and whether) the pool drifts mid-run: [`DriftSpec::None`] (the
    /// paper's static i.i.d. setting, the default) or a streaming scenario
    /// whose boundary lands on a refit boundary of [`ScenarioSpec::schedule`].
    pub drift: DriftSpec,
}

impl ScenarioSpec {
    /// The default scenario over `dataset`: the paper configuration for
    /// the dataset's modality at seed 0, one query per refit, budget
    /// [`DEFAULT_BUDGET`]. Fields are plain data — edit them directly.
    pub fn new(dataset: DatasetSpec) -> Self {
        ScenarioSpec {
            dataset,
            session: SessionConfig::paper_defaults(dataset.id.is_textual(), 0),
            schedule: BudgetSchedule::FixedStep,
            budget: DEFAULT_BUDGET,
            drift: DriftSpec::None,
        }
    }

    /// The paper's protocol point for `dataset` at `seed`: paper config,
    /// one query per refit, 300 iterations (§4.1.3).
    pub fn paper(dataset: DatasetSpec, seed: u64) -> Self {
        ScenarioSpec {
            session: SessionConfig::paper_defaults(dataset.id.is_textual(), seed),
            budget: 300,
            ..ScenarioSpec::new(dataset)
        }
    }

    /// Validates the whole description: session ranges
    /// (`SessionConfig::validate`), schedule shape
    /// ([`BudgetSchedule::validate`]), and the drift scenario — numeric
    /// ranges, modality (covariate rotation needs dense features), and
    /// boundary alignment (a mutating drift must land on a refit boundary
    /// within the budget, so the label model never refits against a pool
    /// it half-saw).
    pub fn validate(&self) -> Result<(), ActiveDpError> {
        self.session.validate()?;
        self.schedule.validate()?;
        self.drift
            .validate(self.dataset.id.is_textual())
            .map_err(|reason| ActiveDpError::BadConfig { reason })?;
        if let Some(at) = self.drift.boundary() {
            if !self.schedule.is_batch_boundary(at, self.budget) {
                return Err(ActiveDpError::BadConfig {
                    reason: format!(
                        "drift boundary {at} is not a refit boundary of schedule {} under budget {}",
                        self.schedule.label(),
                        self.budget
                    ),
                });
            }
        }
        Ok(())
    }

    /// Encodes the spec into its canonical, versioned byte form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = write_envelope(SCENARIO_MAGIC, SCENARIO_VERSION);
        w.put(self);
        w.into_bytes()
    }

    /// Decodes a spec written by [`ScenarioSpec::to_bytes`], rejecting
    /// foreign magic, future format versions, truncation and trailing
    /// bytes with typed errors. Version 1 bodies (pre-candidate-strategy)
    /// decode with [`CandidateStrategy::Exact`]; version 2 bodies (pre
    /// oracle/drift) with [`OracleKind::Simulated`] + [`DriftSpec::None`].
    ///
    /// [`CandidateStrategy::Exact`]: crate::config::CandidateStrategy::Exact
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ActiveDpError> {
        let (mut r, version) = read_envelope(bytes, SCENARIO_MAGIC, SCENARIO_VERSION)?;
        let spec = dec_spec_body(
            &mut r,
            version >= SCENARIO_VERSION_CANDIDATES,
            version >= SCENARIO_VERSION_ORACLE_DRIFT,
        )?;
        r.finish()?;
        Ok(spec)
    }

    /// Decodes a spec body embedded in an *older enclosing format* that
    /// predates the oracle/drift fields — e.g. a v1 WAL manifest, whose
    /// own version stamp is the only record of which spec layout it
    /// holds. The missing fields default to what those sessions ran
    /// ([`OracleKind::Simulated`], [`DriftSpec::None`]). Current formats
    /// embed the spec with the ordinary [`Decode`] impl instead.
    ///
    /// [`OracleKind::Simulated`]: adp_oracle::OracleKind::Simulated
    pub fn decode_pre_oracle_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        dec_spec_body(r, true, false)
    }
}

impl Encode for ScenarioSpec {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.dataset);
        enc_config(w, &self.session);
        w.put(&self.schedule);
        w.put_usize(self.budget);
        // v3: drift, appended after the budget so v2 bodies are an exact
        // prefix of v3 bodies.
        w.put(&self.drift);
    }
}

impl Decode for ScenarioSpec {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        dec_spec_body(r, true, true)
    }
}

/// Spec body decode with explicit back-compat control: `with_candidates`
/// is false when the enclosing envelope predates the candidate-strategy
/// field (scenario v1 / snapshot v2 bodies), `with_oracle_drift` when it
/// predates the oracle kind + drift fields (scenario v1–v2 / snapshot
/// v2–v3 bodies); the missing fields default to what those sessions ran
/// (`Exact`, `Simulated`, `None`). The snapshot codec shares this so both
/// formats migrate identically.
pub(crate) fn dec_spec_body(
    r: &mut Reader<'_>,
    with_candidates: bool,
    with_oracle_drift: bool,
) -> Result<ScenarioSpec, WireError> {
    Ok(ScenarioSpec {
        dataset: r.get()?,
        session: dec_config(r, with_candidates, with_oracle_drift)?,
        schedule: r.get()?,
        budget: r.get_usize()?,
        drift: if with_oracle_drift {
            r.get()?
        } else {
            DriftSpec::None
        },
    })
}

/// [`SessionConfig`] body encoding, shared by the scenario codec and the
/// session snapshot (which embeds a whole [`ScenarioSpec`]).
pub(crate) fn enc_config(w: &mut Writer, c: &SessionConfig) {
    use crate::config::SamplerChoice;
    use adp_labelmodel::LabelModelKind;
    w.put_f64(c.alpha);
    w.put_f64(c.acc_threshold);
    w.put_f64(c.noise_rate);
    w.put_u8(match c.label_model {
        LabelModelKind::MajorityVote => 0,
        LabelModelKind::DawidSkene => 1,
        LabelModelKind::Triplet => 2,
    });
    w.put_bool(c.use_labelpick);
    w.put_bool(c.use_confusion);
    w.put_f64(c.labelpick.rho);
    w.put_f64(c.labelpick.blanket_tol);
    w.put_f64(c.labelpick.blanket_rel);
    w.put_usize(c.labelpick.cap);
    w.put_usize(c.labelpick.min_queries);
    w.put_bool(c.labelpick.parallel);
    w.put_u8(match c.sampler {
        SamplerChoice::Adp => 0,
        SamplerChoice::Passive => 1,
        SamplerChoice::Uncertainty => 2,
        SamplerChoice::Lal => 3,
        SamplerChoice::Seu => 4,
        SamplerChoice::Qbc => 5,
    });
    enc_logreg(w, &c.al_logreg);
    enc_logreg(w, &c.downstream_logreg);
    w.put_bool(c.parallel);
    w.put_u64(c.seed);
    // v2: candidate strategy, appended after the seed so v1 bodies are an
    // exact prefix of v2 bodies.
    match c.candidates {
        CandidateStrategy::Exact => w.put_u8(0),
        CandidateStrategy::Ann {
            nprobe,
            refresh_every,
        } => {
            w.put_u8(1);
            w.put_usize(nprobe);
            w.put_usize(refresh_every);
        }
    }
    // v3: oracle kind, appended after the candidate strategy so v2 bodies
    // are an exact prefix of v3 bodies.
    match c.oracle {
        OracleKind::Simulated => w.put_u8(0),
        OracleKind::Noisy {
            confusion,
            latency,
            policy,
        } => {
            w.put_u8(1);
            match confusion {
                ConfusionSpec::Uniform { accuracy } => {
                    w.put_u8(0);
                    w.put_f64(accuracy);
                }
                ConfusionSpec::Biased { accuracy, bias } => {
                    w.put_u8(1);
                    w.put_f64(accuracy);
                    w.put_usize(bias);
                }
            }
            w.put_f64(latency.cheap_cost);
            w.put_f64(latency.expensive_cost);
            match policy {
                RoutePolicy::AlwaysCheap => w.put_u8(0),
                RoutePolicy::UncertaintyThreshold { tau } => {
                    w.put_u8(1);
                    w.put_f64(tau);
                }
                RoutePolicy::CheapThenEscalate => w.put_u8(2),
            }
        }
    }
}

pub(crate) fn dec_config(
    r: &mut Reader<'_>,
    with_candidates: bool,
    with_oracle_drift: bool,
) -> Result<SessionConfig, WireError> {
    use crate::config::SamplerChoice;
    use crate::labelpick::LabelPickConfig;
    use adp_labelmodel::LabelModelKind;
    let alpha = r.get_f64()?;
    let acc_threshold = r.get_f64()?;
    let noise_rate = r.get_f64()?;
    let label_model = match r.get_u8()? {
        0 => LabelModelKind::MajorityVote,
        1 => LabelModelKind::DawidSkene,
        2 => LabelModelKind::Triplet,
        tag => {
            return Err(WireError::BadTag {
                what: "label model kind",
                tag,
            })
        }
    };
    let use_labelpick = r.get_bool()?;
    let use_confusion = r.get_bool()?;
    let labelpick = LabelPickConfig {
        rho: r.get_f64()?,
        blanket_tol: r.get_f64()?,
        blanket_rel: r.get_f64()?,
        cap: r.get_usize()?,
        min_queries: r.get_usize()?,
        parallel: r.get_bool()?,
    };
    let sampler = match r.get_u8()? {
        0 => SamplerChoice::Adp,
        1 => SamplerChoice::Passive,
        2 => SamplerChoice::Uncertainty,
        3 => SamplerChoice::Lal,
        4 => SamplerChoice::Seu,
        5 => SamplerChoice::Qbc,
        tag => {
            return Err(WireError::BadTag {
                what: "sampler choice",
                tag,
            })
        }
    };
    let al_logreg = dec_logreg(r)?;
    let downstream_logreg = dec_logreg(r)?;
    let parallel = r.get_bool()?;
    let seed = r.get_u64()?;
    let candidates = if with_candidates {
        match r.get_u8()? {
            0 => CandidateStrategy::Exact,
            1 => CandidateStrategy::Ann {
                nprobe: r.get_usize()?,
                refresh_every: r.get_usize()?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "candidate strategy",
                    tag,
                })
            }
        }
    } else {
        // Pre-v2 body: every session scored the full pool.
        CandidateStrategy::Exact
    };
    let oracle = if with_oracle_drift {
        match r.get_u8()? {
            0 => OracleKind::Simulated,
            1 => {
                let confusion = match r.get_u8()? {
                    0 => ConfusionSpec::Uniform {
                        accuracy: r.get_f64()?,
                    },
                    1 => ConfusionSpec::Biased {
                        accuracy: r.get_f64()?,
                        bias: r.get_usize()?,
                    },
                    tag => {
                        return Err(WireError::BadTag {
                            what: "confusion spec",
                            tag,
                        })
                    }
                };
                let latency = LatencyModel {
                    cheap_cost: r.get_f64()?,
                    expensive_cost: r.get_f64()?,
                };
                let policy = match r.get_u8()? {
                    0 => RoutePolicy::AlwaysCheap,
                    1 => RoutePolicy::UncertaintyThreshold { tau: r.get_f64()? },
                    2 => RoutePolicy::CheapThenEscalate,
                    tag => {
                        return Err(WireError::BadTag {
                            what: "route policy",
                            tag,
                        })
                    }
                };
                OracleKind::Noisy {
                    confusion,
                    latency,
                    policy,
                }
            }
            tag => {
                return Err(WireError::BadTag {
                    what: "oracle kind",
                    tag,
                })
            }
        }
    } else {
        // Pre-v3 body: every query went to the simulated user.
        OracleKind::Simulated
    };
    Ok(SessionConfig {
        alpha,
        acc_threshold,
        noise_rate,
        label_model,
        use_labelpick,
        use_confusion,
        labelpick,
        sampler,
        candidates,
        oracle,
        al_logreg,
        downstream_logreg,
        parallel,
        seed,
    })
}

fn enc_logreg(w: &mut Writer, c: &adp_classifier::LogRegConfig) {
    w.put_f64(c.l2);
    w.put_usize(c.max_iters);
    w.put_f64(c.tol);
    w.put_bool(c.parallel);
}

fn dec_logreg(r: &mut Reader<'_>) -> Result<adp_classifier::LogRegConfig, WireError> {
    Ok(adp_classifier::LogRegConfig {
        l2: r.get_f64()?,
        max_iters: r.get_usize()?,
        tol: r.get_f64()?,
        parallel: r.get_bool()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_data::{DatasetId, Scale};

    fn dataset() -> DatasetSpec {
        DatasetSpec {
            id: DatasetId::Youtube,
            scale: Scale::Tiny,
            seed: 7,
        }
    }

    #[test]
    fn fixed_step_is_fixed_batch_one() {
        for budget in [0, 1, 5, 17] {
            assert_eq!(
                BudgetSchedule::FixedStep.batch_sizes(budget),
                BudgetSchedule::FixedBatch { k: 1 }.batch_sizes(budget),
            );
        }
    }

    #[test]
    fn batch_sizes_partition_the_budget() {
        let schedules = [
            BudgetSchedule::FixedStep,
            BudgetSchedule::FixedBatch { k: 4 },
            BudgetSchedule::Doubling { cap: 8 },
            BudgetSchedule::Phased {
                segments: vec![
                    PhaseSegment { k: 1, batches: 3 },
                    PhaseSegment { k: 5, batches: 2 },
                ],
            },
        ];
        for schedule in &schedules {
            for budget in [0usize, 1, 7, 30] {
                let sizes = schedule.batch_sizes(budget);
                assert_eq!(
                    sizes.iter().sum::<usize>(),
                    budget,
                    "{schedule:?} budget {budget}: {sizes:?}"
                );
                assert!(sizes.iter().all(|&k| k >= 1));
            }
        }
    }

    #[test]
    fn schedules_align_to_absolute_iterations() {
        // Resuming at any point continues the same boundaries: walking
        // next_batch_at from an arbitrary `done` lands exactly on the
        // fresh run's boundaries.
        let schedules = [
            BudgetSchedule::FixedBatch { k: 4 },
            BudgetSchedule::Doubling { cap: 4 },
            BudgetSchedule::Phased {
                segments: vec![
                    PhaseSegment { k: 2, batches: 2 },
                    PhaseSegment { k: 3, batches: 1 },
                ],
            },
        ];
        let budget = 23;
        for schedule in &schedules {
            let fresh: Vec<usize> = {
                // Boundary positions of an uninterrupted run.
                let mut done = 0;
                let mut stops = vec![];
                while done < budget {
                    done += schedule.next_batch_at(done, budget);
                    stops.push(done);
                }
                stops
            };
            for resume_at in 0..budget {
                let next = resume_at + schedule.next_batch_at(resume_at, budget);
                assert!(
                    fresh.contains(&next),
                    "{schedule:?} resumed at {resume_at} refits at {next}, fresh stops {fresh:?}"
                );
            }
        }
    }

    #[test]
    fn doubling_sequence_caps() {
        assert_eq!(
            BudgetSchedule::Doubling { cap: 4 }.batch_sizes(20),
            vec![1, 2, 4, 4, 4, 4, 1]
        );
    }

    #[test]
    fn phased_tail_continues_last_segment() {
        let sched = BudgetSchedule::Phased {
            segments: vec![PhaseSegment { k: 2, batches: 1 }],
        };
        assert_eq!(sched.batch_sizes(7), vec![2, 2, 2, 1]);
    }

    #[test]
    fn degenerate_schedules_are_rejected() {
        assert!(BudgetSchedule::FixedBatch { k: 0 }.validate().is_err());
        assert!(BudgetSchedule::Doubling { cap: 0 }.validate().is_err());
        assert!(BudgetSchedule::Phased { segments: vec![] }
            .validate()
            .is_err());
        assert!(BudgetSchedule::Phased {
            segments: vec![PhaseSegment { k: 0, batches: 1 }]
        }
        .validate()
        .is_err());
        assert!(BudgetSchedule::Phased {
            segments: vec![PhaseSegment { k: 1, batches: 0 }]
        }
        .validate()
        .is_err());
        assert!(BudgetSchedule::FixedBatch { k: 1 }.validate().is_ok());
    }

    #[test]
    fn labels_are_compact_and_distinct() {
        assert_eq!(BudgetSchedule::FixedStep.label(), "step");
        assert_eq!(BudgetSchedule::FixedBatch { k: 16 }.label(), "batch16");
        assert_eq!(BudgetSchedule::Doubling { cap: 8 }.label(), "double8");
        assert_eq!(
            BudgetSchedule::Phased {
                segments: vec![
                    PhaseSegment { k: 1, batches: 2 },
                    PhaseSegment { k: 8, batches: 3 },
                ]
            }
            .label(),
            "phased-2x1-3x8"
        );
    }

    #[test]
    fn spec_bytes_roundtrip_exactly() {
        let mut spec = ScenarioSpec::paper(dataset(), 5);
        spec.schedule = BudgetSchedule::Phased {
            segments: vec![PhaseSegment { k: 3, batches: 2 }],
        };
        spec.session.candidates = CandidateStrategy::Ann {
            nprobe: 6,
            refresh_every: 2,
        };
        let bytes = spec.to_bytes();
        let back = ScenarioSpec::from_bytes(&bytes).unwrap();
        assert_eq!(spec, back);
        assert_eq!(bytes, back.to_bytes());
    }

    /// Byte offset of the candidate-strategy tag inside an encoded spec:
    /// the first byte where an `Exact` and an `Ann` encoding of the same
    /// spec diverge.
    fn candidate_tag_offset(spec: &ScenarioSpec) -> usize {
        let exact = spec.to_bytes();
        let mut ann = spec.clone();
        ann.session.candidates = CandidateStrategy::ann();
        exact
            .iter()
            .zip(ann.to_bytes())
            .position(|(a, b)| *a != b)
            .expect("encodings differ at the tag")
    }

    #[test]
    fn v1_bodies_decode_with_exact_candidates() {
        // A v1 body is a v3 body with every appended field excised: the
        // `Exact` candidates tag and `Simulated` oracle tag (both inside
        // the config block, after the seed) and the trailing `None` drift
        // tag. Remove them, rewrite the envelope version, and the decoder
        // must accept the result unchanged.
        let spec = ScenarioSpec::new(dataset());
        assert_eq!(spec.session.candidates, CandidateStrategy::Exact);
        let tag_at = candidate_tag_offset(&spec);
        let mut bytes = spec.to_bytes();
        assert_eq!(bytes.pop(), Some(0), "the None drift tag");
        assert_eq!(bytes.remove(tag_at), 0, "the Exact tag");
        assert_eq!(bytes.remove(tag_at), 0, "the Simulated tag");
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        let back = ScenarioSpec::from_bytes(&bytes).expect("v1 decodes");
        assert_eq!(back, spec);
    }

    #[test]
    fn v2_bodies_decode_with_simulated_oracle_and_no_drift() {
        // A v2 body is a v3 body minus the oracle tag (after the
        // candidates field, inside the config block) and the trailing
        // drift tag; sessions written then always queried the simulated
        // user over a static pool, so the defaults reproduce them.
        let mut spec = ScenarioSpec::new(dataset());
        let candidates_at = candidate_tag_offset(&spec);
        spec.session.candidates = CandidateStrategy::ann();
        let mut bytes = spec.to_bytes();
        assert_eq!(bytes.pop(), Some(0), "the None drift tag");
        // The Ann encoding is tag + 2 usize params; the oracle tag
        // follows them.
        let tag_at = candidates_at + 1 + 16;
        assert_eq!(bytes.remove(tag_at), 0, "the Simulated tag");
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        let back = ScenarioSpec::from_bytes(&bytes).expect("v2 decodes");
        assert_eq!(back, spec);
        assert_eq!(back.session.oracle, OracleKind::Simulated);
        assert_eq!(back.drift, DriftSpec::None);
    }

    #[test]
    fn oracle_and_drift_round_trip_through_the_codec() {
        let mut spec = ScenarioSpec::paper(dataset(), 5);
        spec.session.oracle = OracleKind::Noisy {
            confusion: ConfusionSpec::Biased {
                accuracy: 0.75,
                bias: 1,
            },
            latency: LatencyModel {
                cheap_cost: 0.5,
                expensive_cost: 24.0,
            },
            policy: RoutePolicy::UncertaintyThreshold { tau: 0.3 },
        };
        spec.drift = DriftSpec::LabelShift { at: 10, prior: 0.8 };
        let bytes = spec.to_bytes();
        let back = ScenarioSpec::from_bytes(&bytes).unwrap();
        assert_eq!(spec, back);
        assert_eq!(bytes, back.to_bytes());
        // Every oracle shape survives.
        for policy in [
            RoutePolicy::AlwaysCheap,
            RoutePolicy::CheapThenEscalate,
            RoutePolicy::UncertaintyThreshold { tau: 0.0 },
        ] {
            spec.session.oracle = OracleKind::Noisy {
                confusion: ConfusionSpec::Uniform { accuracy: 0.9 },
                latency: LatencyModel::default(),
                policy,
            };
            let back = ScenarioSpec::from_bytes(&spec.to_bytes()).unwrap();
            assert_eq!(spec, back);
        }
        // And every drift shape.
        for drift in [
            DriftSpec::None,
            DriftSpec::CovariateDrift {
                at: 4,
                rotation: 0.5,
            },
            DriftSpec::ArrivingPool { per_refit: 3 },
        ] {
            spec.drift = drift;
            let back = ScenarioSpec::from_bytes(&spec.to_bytes()).unwrap();
            assert_eq!(spec, back);
        }
    }

    #[test]
    fn candidate_tag_is_not_read_from_v1_bodies() {
        // The same tag-less body still marked version 2 must fail — the
        // decoder really does read the extra field only at v2+.
        let spec = ScenarioSpec::new(dataset());
        let tag_at = candidate_tag_offset(&spec);
        let mut bytes = spec.to_bytes();
        bytes.remove(tag_at);
        assert!(ScenarioSpec::from_bytes(&bytes).is_err());
    }

    #[test]
    fn spec_decoder_rejects_corruption() {
        let bytes = ScenarioSpec::new(dataset()).to_bytes();
        let mut wrong = bytes.clone();
        wrong[0] ^= 0xff;
        assert!(matches!(
            ScenarioSpec::from_bytes(&wrong),
            Err(ActiveDpError::SnapshotCodec(WireError::BadMagic { .. }))
        ));
        let mut future = bytes.clone();
        future[8..12].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            ScenarioSpec::from_bytes(&future),
            Err(ActiveDpError::SnapshotCodec(WireError::UnknownVersion {
                found: 9,
                ..
            }))
        ));
        for cut in 0..bytes.len() {
            assert!(ScenarioSpec::from_bytes(&bytes[..cut]).is_err());
        }
        let mut padded = bytes;
        padded.push(0);
        assert!(matches!(
            ScenarioSpec::from_bytes(&padded),
            Err(ActiveDpError::SnapshotCodec(
                WireError::TrailingBytes { .. }
            ))
        ));
    }

    #[test]
    fn validate_covers_session_and_schedule() {
        let mut spec = ScenarioSpec::new(dataset());
        assert!(spec.validate().is_ok());
        spec.schedule = BudgetSchedule::FixedBatch { k: 0 };
        assert!(spec.validate().is_err());
        spec.schedule = BudgetSchedule::FixedStep;
        spec.session.alpha = 7.0;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn defaults_follow_modality() {
        let text = ScenarioSpec::new(dataset());
        assert_eq!(text.session.alpha, 0.5);
        assert_eq!(text.budget, DEFAULT_BUDGET);
        let tabular = ScenarioSpec::paper(
            DatasetSpec {
                id: DatasetId::Census,
                scale: Scale::Tiny,
                seed: 1,
            },
            3,
        );
        assert_eq!(tabular.session.alpha, 0.99);
        assert_eq!(tabular.session.seed, 3);
        assert_eq!(tabular.budget, 300);
    }
}
