//! Per-step events: the unit a write-ahead log journals.
//!
//! One [`StepEvent`] is everything iteration `i` added to a session beyond
//! what iteration `i - 1` already determined: the sampled query, the LF
//! the oracle returned (if any), and where both RNG streams ended up. A
//! snapshot at iteration `j` plus the events `j+1 ..= k` therefore
//! reconstructs the exact snapshot an uninterrupted run would produce at
//! `k` (see [`replay`](crate::replay)) — the same bitwise-parity contract
//! session snapshots obey, at a per-step rather than full-state price.
//! Events are what the `adp-wal` crate appends to its segments; the byte
//! layout rides the same `adp-wire` [`Encode`]/[`Decode`] building blocks
//! (and the same LF body encoding) as [`SessionSnapshot`] itself.
//!
//! **Commit points.** [`Engine::step_batch`](crate::Engine::step_batch)
//! refits once at the *end* of a batch, so the engine state mid-batch is
//! not something a fresh engine can be resumed into: the per-iteration
//! events exist, but the models lag until the batch closes. The last event
//! of every `step()` / `step_batch()` call carries `commit = true`; only
//! commit points are valid replay targets, and recovery truncates an
//! uncommitted tail (a crash mid-batch re-runs that batch from its start).
//!
//! [`SessionSnapshot`]: crate::SessionSnapshot

use adp_lf::LabelFunction;
use adp_oracle::{RouteChoice, RoutedStep};
use adp_wire::{Decode, Encode, Reader, WireError, Writer};

/// What one loop iteration did, as replayable data (see the
/// [module docs](self)).
#[derive(Debug, Clone, PartialEq)]
pub struct StepEvent {
    /// 1-based iteration number (events in a journal are contiguous).
    pub iteration: usize,
    /// The sampled query instance, or `None` when the pool was exhausted.
    pub query: Option<usize>,
    /// The LF the oracle returned, if any.
    pub lf: Option<LabelFunction>,
    /// The sampler's RNG stream position *after* this iteration.
    pub sampler_rng: [u64; 4],
    /// The oracle's RNG stream position *after* this iteration. The
    /// oracle's returned-LF set is not logged — it reconstructs from the
    /// `lf` fields of the event stream.
    pub oracle_rng: [u64; 4],
    /// Whether the engine state right after this iteration is resumable:
    /// `true` for the last event of every `step()`/`step_batch()` call
    /// (the refit has run), `false` for events inside an open batch.
    pub commit: bool,
    /// Which oracle answered and where the cheap oracle's RNG stream ended
    /// up, when the session routes between two oracles
    /// ([`OracleKind::Noisy`](crate::OracleKind)). `None` for plain
    /// simulated-user sessions — and for every event written before the
    /// dual-oracle subsystem existed: the field rides as a lenient trailer,
    /// so pre-routing journals decode with `route: None`.
    pub route: Option<RoutedStep>,
}

impl Encode for StepEvent {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.iteration);
        w.put(&self.query);
        match &self.lf {
            None => w.put_bool(false),
            Some(lf) => {
                w.put_bool(true);
                crate::snapshot::enc_lf(w, lf);
            }
        }
        w.put(&self.sampler_rng);
        w.put(&self.oracle_rng);
        w.put_bool(self.commit);
        // Lenient trailer (see the `route` field docs): always written by
        // current encoders, tolerated as absent by the decoder so journals
        // that predate oracle routing keep replaying.
        match &self.route {
            None => w.put_bool(false),
            Some(step) => {
                w.put_bool(true);
                w.put_u8(step.choice.tag());
                w.put(&step.cheap_rng);
            }
        }
    }
}

impl Decode for StepEvent {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(StepEvent {
            iteration: r.get_usize()?,
            query: r.get()?,
            lf: if r.get_bool()? {
                Some(crate::snapshot::dec_lf(r)?)
            } else {
                None
            },
            sampler_rng: r.get()?,
            oracle_rng: r.get()?,
            commit: r.get_bool()?,
            route: if r.remaining() > 0 && r.get_bool()? {
                let tag = r.get_u8()?;
                let choice = RouteChoice::from_tag(tag).ok_or(WireError::BadTag {
                    what: "route choice",
                    tag,
                })?;
                Some(RoutedStep {
                    choice,
                    cheap_rng: r.get()?,
                })
            } else {
                None
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_lf::StumpOp;

    fn sample() -> StepEvent {
        StepEvent {
            iteration: 7,
            query: Some(88),
            lf: Some(LabelFunction::Keyword {
                token: 21,
                label: 1,
            }),
            sampler_rng: [1, 2, 3, 4],
            oracle_rng: [5, 6, 7, 8],
            commit: true,
            route: None,
        }
    }

    #[test]
    fn event_roundtrips_exactly() {
        for event in [
            sample(),
            StepEvent {
                query: None,
                lf: None,
                commit: false,
                ..sample()
            },
            StepEvent {
                lf: Some(LabelFunction::Stump {
                    feature: 3,
                    threshold: -0.125,
                    op: StumpOp::Ge,
                    label: 0,
                }),
                ..sample()
            },
            StepEvent {
                route: Some(RoutedStep {
                    choice: RouteChoice::Escalated,
                    cheap_rng: [9, 10, 11, 12],
                }),
                ..sample()
            },
        ] {
            let mut w = Writer::new();
            w.put(&event);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            let back: StepEvent = r.get().unwrap();
            r.finish().unwrap();
            assert_eq!(event, back);
            // Canonical: re-encoding reproduces the bytes.
            let mut w2 = Writer::new();
            w2.put(&back);
            assert_eq!(bytes, w2.into_bytes());
        }
    }

    #[test]
    fn truncation_and_bad_tags_are_typed_errors() {
        let mut w = Writer::new();
        w.put(&sample());
        let bytes = w.into_bytes();
        // The route trailer is lenient by design, so cutting it off
        // entirely is the one valid truncation — it decodes as a
        // pre-routing event. Every other cut is a typed error.
        let legacy_len = bytes.len() - 1;
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            if cut == legacy_len {
                let back: StepEvent = r.get().unwrap();
                r.finish().unwrap();
                assert_eq!(back, sample());
                continue;
            }
            assert!(r.get::<StepEvent>().is_err() || r.finish().is_err());
        }
        // An LF-presence byte that is neither 0 nor 1.
        let mut w = Writer::new();
        w.put_usize(1);
        w.put(&Some(3usize));
        w.put_u8(9);
        let garbled = w.into_bytes();
        let mut r = Reader::new(&garbled);
        assert!(matches!(r.get::<StepEvent>(), Err(WireError::BadBool(9))));
    }

    #[test]
    fn routed_trailer_truncation_and_bad_choice_are_typed_errors() {
        let routed = StepEvent {
            route: Some(RoutedStep {
                choice: RouteChoice::Cheap,
                cheap_rng: [13, 14, 15, 16],
            }),
            ..sample()
        };
        let mut w = Writer::new();
        w.put(&routed);
        let bytes = w.into_bytes();
        let legacy_len = bytes.len() - (1 + 1 + 32);
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            if cut == legacy_len {
                // The whole trailer gone: a valid pre-routing event.
                let back: StepEvent = r.get().unwrap();
                r.finish().unwrap();
                assert_eq!(
                    back,
                    StepEvent {
                        route: None,
                        ..routed.clone()
                    }
                );
                continue;
            }
            // Partial trailers are corruption, not leniency.
            assert!(r.get::<StepEvent>().is_err() || r.finish().is_err());
        }
        // A route-choice tag outside the enum.
        let mut garbled = bytes.clone();
        let tag_at = legacy_len + 1;
        garbled[tag_at] = 9;
        let mut r = Reader::new(&garbled);
        assert!(matches!(
            r.get::<StepEvent>(),
            Err(WireError::BadTag {
                what: "route choice",
                tag: 9
            })
        ));
    }
}
