//! Validating construction of the owned [`Engine`].
//!
//! The builder is the single construction path for engines (the
//! `ActiveDpSession` facade goes through it too): dataset first, then the
//! oracle, the sampler, the ablation switches, and the seed last —
//! mirroring how a session is described in the paper. [`SessionConfig`]
//! stays the serialisable core underneath; the builder starts from
//! [`SessionConfig::paper_defaults`] for the dataset's modality and every
//! setter edits that config, so `.config(cfg)` followed by individual
//! overrides composes naturally.

use super::{Engine, StepObserver};
use crate::config::{CandidateStrategy, SamplerChoice, SessionConfig};
use crate::error::ActiveDpError;
use crate::oracle::{Oracle, OracleKind};
use crate::scenario::{BudgetSchedule, ScenarioSpec, DEFAULT_BUDGET};
use adp_data::{DriftSpec, SharedDataset};
use adp_labelmodel::LabelModelKind;

/// Builder for [`Engine`]: `Engine::builder(data).seed(7).build()?`.
///
/// The builder is an ergonomic layer over [`ScenarioSpec`]: every setter
/// edits one field of the declarative description, and
/// [`EngineBuilder::build`] hands the finished spec to the one true
/// constructor ([`Engine::from_spec_over`] assembly). Defaults: the paper
/// configuration for the dataset's modality
/// ([`SessionConfig::paper_defaults`]), the simulated user of §4.1.4 as the
/// oracle (seeded via [`SessionConfig::oracle_seed`]), seed 0, a
/// [`BudgetSchedule::FixedStep`] schedule and budget
/// [`DEFAULT_BUDGET`].
pub struct EngineBuilder {
    data: SharedDataset,
    config: SessionConfig,
    schedule: BudgetSchedule,
    budget: usize,
    drift: DriftSpec,
    oracle: Option<Box<dyn Oracle>>,
    observers: Vec<Box<dyn StepObserver>>,
}

impl EngineBuilder {
    /// Starts a builder over `data` (an owned `SplitDataset` or an existing
    /// [`SharedDataset`] handle).
    pub fn new(data: impl Into<SharedDataset>) -> Self {
        let data = data.into();
        let config = SessionConfig::paper_defaults(data.is_textual(), 0);
        EngineBuilder {
            data,
            config,
            schedule: BudgetSchedule::FixedStep,
            budget: DEFAULT_BUDGET,
            drift: DriftSpec::None,
            oracle: None,
            observers: Vec::new(),
        }
    }

    /// The [`ScenarioSpec`] this builder currently describes, when the
    /// dataset carries regenerable provenance (see [`Engine::scenario`]).
    pub fn scenario(&self) -> Option<ScenarioSpec> {
        self.data.provenance.map(|dataset| ScenarioSpec {
            dataset,
            session: self.config.clone(),
            schedule: self.schedule.clone(),
            budget: self.budget,
            drift: self.drift,
        })
    }

    /// Replaces the whole configuration core (modality defaults included).
    /// Setters called afterwards still apply on top.
    pub fn config(mut self, config: SessionConfig) -> Self {
        self.config = config;
        self
    }

    /// Plugs in a custom oracle (e.g. an interactive UI). Without this the
    /// engine uses [`SessionConfig::simulated_user`]. A custom oracle owns
    /// its own randomness; the builder's [`seed`](Self::seed) only reaches
    /// it when it was constructed from [`SessionConfig::oracle_seed`].
    pub fn oracle(mut self, oracle: Box<dyn Oracle>) -> Self {
        self.oracle = Some(oracle);
        self
    }

    /// Chooses the query-instance selector (Table 4).
    pub fn sampler(mut self, sampler: SamplerChoice) -> Self {
        self.config.sampler = sampler;
        self
    }

    /// How the selector builds its per-iteration candidate pool:
    /// [`CandidateStrategy::Exact`] (the default, the paper's full-pool
    /// scoring) or the sublinear [`CandidateStrategy::Ann`] index path for
    /// large pools.
    ///
    /// ```
    /// use activedp::{CandidateStrategy, Engine};
    /// use adp_data::{generate, DatasetId, Scale};
    ///
    /// let data = generate(DatasetId::Youtube, Scale::Tiny, 7).unwrap();
    /// let strategy = CandidateStrategy::Ann { nprobe: 4, refresh_every: 4 };
    /// let mut engine = Engine::builder(data)
    ///     .seed(7)
    ///     .candidates(strategy)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(engine.scenario().unwrap().session.candidates, strategy);
    /// engine.run(3).unwrap(); // the ANN path drives the same loop
    /// ```
    pub fn candidates(mut self, candidates: CandidateStrategy) -> Self {
        self.config.candidates = candidates;
        self
    }

    /// ADP sampler trade-off α (validated to `[0, 1]` at build time).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.config.alpha = alpha;
        self
    }

    /// Which label model aggregates the LFs.
    pub fn label_model(mut self, kind: LabelModelKind) -> Self {
        self.config.label_model = kind;
        self
    }

    /// Ablation switch: LabelPick LF selection (§3.4).
    pub fn labelpick(mut self, enabled: bool) -> Self {
        self.config.use_labelpick = enabled;
        self
    }

    /// Ablation switch: ConFusion aggregation (§3.2).
    pub fn confusion(mut self, enabled: bool) -> Self {
        self.config.use_confusion = enabled;
        self
    }

    /// Simulated-user label-noise rate (Table 5; validated to `[0, 1]`).
    pub fn noise_rate(mut self, rate: f64) -> Self {
        self.config.noise_rate = rate;
        self
    }

    /// Master seed: the oracle and sampler streams derive from it through
    /// [`SessionConfig::oracle_seed`] / [`SessionConfig::sampler_seed`].
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Which oracle answers queries: [`OracleKind::Simulated`] (the
    /// default, the paper's §4.1.4 user) or [`OracleKind::Noisy`], which
    /// routes each query between that user and a cheap confusion-matrix
    /// oracle under a budget-aware policy.
    ///
    /// ```
    /// use activedp::{Engine, OracleKind};
    /// use adp_data::{generate, DatasetId, Scale};
    ///
    /// let data = generate(DatasetId::Youtube, Scale::Tiny, 7).unwrap();
    /// let mut engine = Engine::builder(data)
    ///     .seed(7)
    ///     .oracle_kind(OracleKind::noisy())
    ///     .build()
    ///     .unwrap();
    /// engine.run(3).unwrap();
    /// assert!(engine.route_stats().unwrap().total_cost() > 0.0);
    /// ```
    pub fn oracle_kind(mut self, kind: OracleKind) -> Self {
        self.config.oracle = kind;
        self
    }

    /// How (and whether) the pool drifts mid-run (see
    /// [`DriftSpec`]; default [`DriftSpec::None`]). Mutating drifts must
    /// land on a refit boundary of the [`schedule`](Self::schedule) —
    /// validated at build time.
    pub fn drift(mut self, drift: DriftSpec) -> Self {
        self.drift = drift;
        self
    }

    /// How [`Engine::run_schedule`] spends the labelling budget (validated
    /// at build time; default [`BudgetSchedule::FixedStep`]).
    pub fn schedule(mut self, schedule: BudgetSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Total labelling budget for [`Engine::run_schedule`].
    pub fn budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// Master switch for the refit-stage data-parallel kernels (default
    /// on): label-model EM + bulk prediction, LabelPick's glasso, and the
    /// AL/downstream logreg fits. Trajectories are bitwise identical either
    /// way — the kernels obey the `adp_linalg::parallel` fixed-chunk
    /// reduction contract — so this only trades refit latency against
    /// thread usage. Kernels outside the refit path (LF application,
    /// covariance assembly) keep their own `auto` thresholds; use
    /// `ADP_NUM_THREADS=1` to pin the whole process.
    pub fn parallel(mut self, enabled: bool) -> Self {
        self.config.parallel = enabled;
        self
    }

    /// Registers a per-step instrumentation hook (see [`StepObserver`]).
    pub fn observer(mut self, observer: impl StepObserver + 'static) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Validates the assembled [`ScenarioSpec`] and builds the engine —
    /// the same assembly [`Engine::from_spec`] runs, plus this builder's
    /// oracle and observers. Datasets without regenerable provenance still
    /// build (the spec's dataset part is simply absent; see
    /// [`Engine::scenario`]).
    pub fn build(self) -> Result<Engine, ActiveDpError> {
        Engine::assemble(
            self.data.clone(),
            self.data.provenance,
            self.config,
            self.schedule,
            self.budget,
            self.drift,
            self.oracle,
            self.observers,
        )
    }

    /// Assembles an engine that resumes `snapshot` exactly where it was
    /// taken: the snapshot's embedded [`ScenarioSpec`] replaces any edits
    /// made on this builder, the loop state is restored verbatim, both RNG
    /// streams are repositioned, and the models are rebuilt with one
    /// deterministic refit (every fit resets its parameters and runs under
    /// the fixed-chunk contract, so the rebuilt weights equal the
    /// snapshot-time ones bit for bit). Running the resumed engine to the
    /// end reproduces the uninterrupted trajectory exactly — queries, LF
    /// picks and evaluation metrics included.
    ///
    /// The dataset must be the one the snapshot was taken over (typically
    /// regenerated from the spec — [`Engine::resume`] does exactly that);
    /// a split whose provenance disagrees with the snapshot's spec, or
    /// whose state shape differs, is rejected. A custom oracle passed via
    /// [`EngineBuilder::oracle`] must implement [`Oracle::load_state`],
    /// otherwise resuming fails with
    /// [`ActiveDpError::SnapshotUnsupported`].
    ///
    /// [`Oracle::load_state`]: crate::Oracle::load_state
    pub fn resume(mut self, snapshot: crate::SessionSnapshot) -> Result<Engine, ActiveDpError> {
        let crate::SessionSnapshot {
            spec,
            state,
            sampler_rng,
            oracle,
            routed,
        } = snapshot;
        if let Some(provenance) = self.data.provenance {
            if provenance != spec.dataset {
                return Err(ActiveDpError::BadConfig {
                    reason: format!(
                        "dataset provenance {provenance:?} does not match the snapshot's {:?}",
                        spec.dataset
                    ),
                });
            }
        }
        let ScenarioSpec {
            dataset,
            session,
            schedule,
            budget,
            drift,
        } = spec;
        self.config = session;
        self.schedule = schedule;
        self.budget = budget;
        self.drift = drift;
        let mut engine = self.build()?;
        // A provenance-less split that nevertheless passed the shape check
        // below is the snapshot's split as far as anyone can tell; record
        // the snapshot's own provenance so the session stays describable.
        engine.dataset_spec = Some(dataset);
        state.validate_for(&engine.data)?;
        engine.state = state;
        engine.sampling.restore_rng_state(sampler_rng);
        if !engine.querying.restore_oracle(&oracle) {
            return Err(ActiveDpError::SnapshotUnsupported {
                reason: "the session's oracle cannot replay snapshot state".into(),
            });
        }
        if let Some(routed) = &routed {
            if !engine.querying.restore_routed(routed) {
                return Err(ActiveDpError::SnapshotUnsupported {
                    reason: "the session's oracle cannot replay routed state".into(),
                });
            }
        }
        // Re-derive the drift swap before the refit: a snapshot taken past
        // the boundary carries state computed against the mutated pool, so
        // the refit below must run against it too. (A snapshot exactly at
        // the boundary stays on the base pool — the uninterrupted run's
        // boundary refit did as well.)
        engine.sync_drift()?;
        // Rebuild the fitted models. The refit consumes no RNG and resets
        // every parameter, so it reproduces exactly the state the models
        // were in when the snapshot was taken (`state.selected` and the
        // cached probability tables are overwritten with identical values).
        if !engine.state.lfs.is_empty() {
            engine.training.refit(&engine.data, &mut engine.state)?;
        }
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_data::{generate, DatasetId, Scale, SplitDataset};
    use adp_lf::SimulatedUser;
    use std::sync::Arc;

    fn tiny() -> SharedDataset {
        generate(DatasetId::Youtube, Scale::Tiny, 5)
            .unwrap()
            .into_shared()
    }

    #[test]
    fn defaults_follow_dataset_modality() {
        let text = EngineBuilder::new(tiny()).build().unwrap();
        assert!((text.config().alpha - 0.5).abs() < 1e-12);
        let tabular = generate(DatasetId::Occupancy, Scale::Tiny, 5).unwrap();
        let tabular = EngineBuilder::new(tabular).build().unwrap();
        assert!((tabular.config().alpha - 0.99).abs() < 1e-12);
    }

    #[test]
    fn accepts_owned_and_shared_datasets() {
        let owned: SplitDataset = generate(DatasetId::Youtube, Scale::Tiny, 5).unwrap();
        assert!(Engine::builder(owned).build().is_ok());
        let shared: Arc<SplitDataset> = tiny();
        assert!(Engine::builder(shared.clone()).build().is_ok());
        assert!(Engine::builder(shared).build().is_ok());
    }

    #[test]
    fn setters_edit_the_config_core() {
        let e = Engine::builder(tiny())
            .config(SessionConfig::ablation_baseline(true, 1))
            .sampler(SamplerChoice::Passive)
            .alpha(0.25)
            .label_model(LabelModelKind::MajorityVote)
            .labelpick(true)
            .confusion(false)
            .noise_rate(0.1)
            .seed(9)
            .build()
            .unwrap();
        let cfg = e.config();
        assert_eq!(cfg.sampler, SamplerChoice::Passive);
        assert_eq!(cfg.alpha, 0.25);
        assert_eq!(cfg.label_model, LabelModelKind::MajorityVote);
        assert!(cfg.use_labelpick);
        assert!(!cfg.use_confusion);
        assert_eq!(cfg.noise_rate, 0.1);
        assert_eq!(cfg.seed, 9);
    }

    #[test]
    fn build_rejects_invalid_alpha() {
        let err = Engine::builder(tiny()).alpha(2.0).build();
        assert!(matches!(err, Err(ActiveDpError::BadConfig { .. })));
    }

    #[test]
    fn build_rejects_invalid_noise_rate() {
        let err = Engine::builder(tiny()).noise_rate(-0.1).build();
        assert!(matches!(err, Err(ActiveDpError::BadConfig { .. })));
    }

    #[test]
    fn build_rejects_invalid_config_core() {
        let mut cfg = SessionConfig::paper_defaults(true, 0);
        cfg.acc_threshold = 1.0;
        let err = Engine::builder(tiny()).config(cfg).build();
        assert!(matches!(err, Err(ActiveDpError::BadConfig { .. })));
    }

    #[test]
    fn snapshot_rejects_oracles_without_state() {
        struct Mute;
        impl crate::oracle::Oracle for Mute {
            fn respond(
                &mut self,
                _space: &adp_lf::CandidateSpace,
                _train: &adp_data::Dataset,
                _query_dataset: &adp_data::Dataset,
                _idx: usize,
            ) -> Option<adp_lf::LabelFunction> {
                None
            }
        }
        let mut e = Engine::builder(tiny())
            .oracle(Box::new(Mute))
            .build()
            .unwrap();
        e.step().unwrap();
        assert!(matches!(
            e.snapshot(),
            Err(ActiveDpError::SnapshotUnsupported { .. })
        ));
        // And a default-oracle snapshot cannot resume onto a mute oracle.
        let snap = Engine::builder(tiny()).build().unwrap().snapshot().unwrap();
        let err = Engine::builder(tiny()).oracle(Box::new(Mute)).resume(snap);
        assert!(matches!(
            err,
            Err(ActiveDpError::SnapshotUnsupported { .. })
        ));
    }

    #[test]
    fn resume_rejects_internally_inconsistent_snapshots() {
        // Parseable-but-corrupt states (what a tampered spill file can
        // produce) must be rejected with typed errors, not panic later.
        let pristine = Engine::builder(tiny())
            .seed(5)
            .build()
            .unwrap()
            .snapshot()
            .unwrap();
        let reject = |mutate: &dyn Fn(&mut crate::SessionSnapshot)| {
            let mut snap = pristine.clone();
            mutate(&mut snap);
            let err = Engine::builder(tiny()).resume(snap);
            assert!(matches!(err, Err(ActiveDpError::BadConfig { .. })));
        };
        // Empty-but-Some probability cache: would index out of bounds in
        // the sampler on the first step (no LFs, so no refit rebuilds it).
        reject(&|s| s.state.al_probs_train = Some(vec![]));
        // Wrong row width.
        reject(&|s| {
            s.state.lm_probs_train = Some(vec![vec![1.0]; s.state.queried.len()]);
        });
        // Out-of-pool query index / out-of-range pseudo label / selection.
        reject(&|s| {
            s.state.query_indices = vec![usize::MAX];
            s.state.pseudo_labels = vec![0];
        });
        reject(&|s| {
            s.state.query_indices = vec![0];
            s.state.pseudo_labels = vec![99];
        });
        reject(&|s| s.state.selected = vec![7]);
        // Misaligned query/pseudo-label lists.
        reject(&|s| s.state.pseudo_labels = vec![0]);
        // Vote matrices whose LF column count disagrees with the LF list.
        reject(&|s| {
            s.state.train_matrix = adp_lf::LabelMatrix::from_raw(
                s.state.queried.len(),
                1,
                vec![adp_lf::ABSTAIN; s.state.queried.len()],
            )
            .unwrap();
        });
    }

    #[test]
    fn resume_rejects_mismatched_datasets() {
        let snap = Engine::builder(tiny())
            .seed(5)
            .build()
            .unwrap()
            .snapshot()
            .unwrap();
        // A different seed produces a different split shape at tiny scale…
        let other = generate(DatasetId::Imdb, Scale::Tiny, 5).unwrap();
        let err = Engine::builder(other).resume(snap);
        assert!(matches!(err, Err(ActiveDpError::BadConfig { .. })));
    }

    #[test]
    fn custom_oracle_is_used() {
        // A noise-free user seeded differently from the default stream
        // changes nothing structural — the point is it plugs in.
        let data = tiny();
        let mut e = Engine::builder(data)
            .oracle(Box::new(SimulatedUser::with_defaults(123)))
            .build()
            .unwrap();
        e.run(5).unwrap();
        assert_eq!(e.state().iteration, 5);
    }
}
