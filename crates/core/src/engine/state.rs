//! The shared state every stage of the [`Engine`](crate::Engine) reads and
//! writes: the LF set, the vote matrices, the pseudo-labelled pool and the
//! cached model predictions.

use crate::error::ActiveDpError;
use adp_data::SplitDataset;
use adp_lf::{LabelFunction, LabelMatrix, LfKey, ABSTAIN};
use std::collections::HashSet;

/// Everything the training loop accumulates, kept separate from the
/// pluggable components (sampler, oracle, models) so each stage is a pure
/// function of `(dataset, state)` plus its own plugin.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionState {
    /// All LFs collected so far, in iteration order.
    pub lfs: Vec<LabelFunction>,
    /// Votes of every LF on the training split (grows one column per LF).
    pub train_matrix: LabelMatrix,
    /// Votes of every LF on the validation split.
    pub valid_matrix: LabelMatrix,
    /// Which training instances have been queried.
    pub queried: Vec<bool>,
    /// Query instances in iteration order (only those that produced an LF).
    pub query_indices: Vec<usize>,
    /// Pseudo-label of each query instance: the LF's vote on its own query
    /// (§3.1).
    pub pseudo_labels: Vec<usize>,
    /// Indices of the LFs currently selected by LabelPick.
    pub selected: Vec<usize>,
    /// Keys of every LF seen, for duplicate suppression by the samplers.
    pub seen_keys: HashSet<LfKey>,
    /// 1-based count of completed loop iterations.
    pub iteration: usize,
    /// AL-model class probabilities on the training split, refreshed by the
    /// training stage (`None` before the first fit).
    pub al_probs_train: Option<Vec<Vec<f64>>>,
    /// Label-model class probabilities on the training split (`None` while
    /// no LF is selected).
    pub lm_probs_train: Option<Vec<Vec<f64>>>,
}

impl SessionState {
    /// Fresh state for a dataset split.
    pub fn new(data: &SplitDataset) -> Self {
        SessionState {
            lfs: vec![],
            train_matrix: LabelMatrix::empty(data.train.len()),
            valid_matrix: LabelMatrix::empty(data.valid.len()),
            queried: vec![false; data.train.len()],
            query_indices: vec![],
            pseudo_labels: vec![],
            selected: vec![],
            seen_keys: HashSet::new(),
            iteration: 0,
            al_probs_train: None,
            lm_probs_train: None,
        }
    }

    /// Structural validation against the dataset a session is being
    /// resumed over: every index in bounds, every matrix and cache shaped
    /// for the split. Snapshot decoding guarantees *well-formed* fields;
    /// this guards *consistency*, so a corrupt-but-parseable spill file is
    /// rejected with a typed error at resume instead of panicking the
    /// first `step()` that indexes into it.
    pub(crate) fn validate_for(&self, data: &SplitDataset) -> Result<(), ActiveDpError> {
        let bad = |reason: String| Err(ActiveDpError::BadConfig { reason });
        let n_train = data.train.len();
        let n_valid = data.valid.len();
        if self.train_matrix.n_instances() != n_train || self.valid_matrix.n_instances() != n_valid
        {
            return bad(format!(
                "snapshot state is shaped for a {}-train/{}-valid split, dataset has {n_train}/{n_valid}",
                self.train_matrix.n_instances(),
                self.valid_matrix.n_instances(),
            ));
        }
        if self.queried.len() != n_train {
            return bad(format!(
                "snapshot queried mask covers {} instances, pool has {n_train}",
                self.queried.len(),
            ));
        }
        if self.train_matrix.n_lfs() != self.lfs.len()
            || self.valid_matrix.n_lfs() != self.lfs.len()
        {
            return bad(format!(
                "snapshot vote matrices carry {}/{} LF columns for {} LFs",
                self.train_matrix.n_lfs(),
                self.valid_matrix.n_lfs(),
                self.lfs.len(),
            ));
        }
        if self.query_indices.len() != self.pseudo_labels.len() {
            return bad(format!(
                "snapshot has {} query indices but {} pseudo labels",
                self.query_indices.len(),
                self.pseudo_labels.len(),
            ));
        }
        if let Some(&qi) = self.query_indices.iter().find(|&&qi| qi >= n_train) {
            return bad(format!(
                "snapshot query index {qi} outside the {n_train}-instance pool"
            ));
        }
        let n_classes = data.train.n_classes;
        if let Some(&y) = self.pseudo_labels.iter().find(|&&y| y >= n_classes) {
            return bad(format!(
                "snapshot pseudo label {y} outside {n_classes} classes"
            ));
        }
        if let Some(&j) = self.selected.iter().find(|&&j| j >= self.lfs.len()) {
            return bad(format!("snapshot selects LF {j} of {}", self.lfs.len()));
        }
        for (name, probs, expected_rows) in [
            ("al_probs_train", &self.al_probs_train, n_train),
            ("lm_probs_train", &self.lm_probs_train, n_train),
        ] {
            if let Some(rows) = probs {
                if rows.len() != expected_rows || rows.iter().any(|r| r.len() != n_classes) {
                    return bad(format!(
                        "snapshot {name} cache is not {expected_rows}x{n_classes}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// The pseudo-labelled set `(query instance, pseudo label)` (§3.1).
    pub fn pseudo_labelled(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.query_indices
            .iter()
            .copied()
            .zip(self.pseudo_labels.iter().copied())
    }

    /// Votes of every LF on every past query instance (rows in iteration
    /// order) — the `L_Λ` table of Figure 2 without its label column.
    pub fn query_votes_matrix(&self, data: &SplitDataset) -> Result<LabelMatrix, ActiveDpError> {
        let rows: Vec<Vec<i8>> = self
            .query_indices
            .iter()
            .map(|&qi| {
                self.lfs
                    .iter()
                    .map(|lf| lf.apply(&data.train, qi))
                    .collect()
            })
            .collect();
        Ok(LabelMatrix::from_votes(&rows)?)
    }

    /// Per-instance flag: does any *selected* LF fire on instance `i` of
    /// `matrix`?
    pub fn has_vote_for(&self, matrix: &LabelMatrix) -> Vec<bool> {
        (0..matrix.n_instances())
            .map(|i| self.selected.iter().any(|&j| matrix.get(i, j) != ABSTAIN))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_data::{generate, DatasetId, Scale};

    #[test]
    fn fresh_state_is_empty() {
        let data = generate(DatasetId::Youtube, Scale::Tiny, 1).unwrap();
        let s = SessionState::new(&data);
        assert_eq!(s.iteration, 0);
        assert_eq!(s.train_matrix.n_instances(), data.train.len());
        assert_eq!(s.valid_matrix.n_instances(), data.valid.len());
        assert!(s.lfs.is_empty());
        assert!(s.pseudo_labelled().next().is_none());
        assert!(s.query_votes_matrix(&data).unwrap().n_instances() == 0);
    }

    #[test]
    fn has_vote_respects_selection() {
        let data = generate(DatasetId::Youtube, Scale::Tiny, 1).unwrap();
        let mut s = SessionState::new(&data);
        let m = LabelMatrix::from_votes(&[vec![1, ABSTAIN], vec![ABSTAIN, ABSTAIN]]).unwrap();
        s.selected = vec![0, 1];
        assert_eq!(s.has_vote_for(&m), vec![true, false]);
        s.selected = vec![1];
        assert_eq!(s.has_vote_for(&m), vec![false, false]);
    }
}
