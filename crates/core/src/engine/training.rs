//! Stage 3 — **training**: LabelPick LF selection (§3.4), label-model refit
//! on the selected columns, AL-model refit on the pseudo-labelled pool, and
//! the refresh of both models' cached training-split predictions.

use super::state::SessionState;
use super::Stage;
use crate::config::SessionConfig;
use crate::error::ActiveDpError;
use crate::labelpick::LabelPick;
use adp_classifier::{LogisticRegression, Targets};
use adp_data::SplitDataset;
use adp_labelmodel::{make_model_with, LabelModel};
use adp_lf::LabelMatrix;

/// Owns the pluggable models (label model, AL model) and the LabelPick
/// selector.
pub struct TrainingStage {
    labelpick: LabelPick,
    label_model: Box<dyn LabelModel>,
    al_model: LogisticRegression,
    class_balance: Vec<f64>,
    use_labelpick: bool,
    /// Scheduling switch for the bulk label-model prediction pass
    /// (bitwise-identical output either way).
    parallel: bool,
}

impl TrainingStage {
    /// Builds the models from the session configuration. The config's
    /// master `parallel` switch reaches every kernel here: LabelPick's
    /// glasso, the label model's EM and the AL model's gradient batches all
    /// run under the fixed-chunk contract, so [`Engine::step`] and the
    /// `SessionHub` pick the threaded path by default with trajectories
    /// unchanged bit for bit.
    ///
    /// [`Engine::step`]: super::Engine::step
    pub fn from_config(data: &SplitDataset, config: &SessionConfig) -> Self {
        let n_classes = data.train.n_classes;
        TrainingStage {
            labelpick: LabelPick::new(config.effective_labelpick()),
            label_model: make_model_with(config.label_model, n_classes, config.parallel),
            al_model: LogisticRegression::new(
                n_classes,
                adp_linalg::Features::ncols(&data.train.features),
                config.effective_al_logreg(),
            ),
            class_balance: data.valid.class_balance(),
            use_labelpick: config.use_labelpick,
            parallel: config.parallel,
        }
    }

    /// Re-reads the dataset-derived fit inputs after a drift boundary
    /// mutated the pool: the class balance tracks the (possibly
    /// re-labelled) validation split. Model parameters are untouched — the
    /// next [`TrainingStage::refit`] resets them against the new data
    /// anyway.
    pub(crate) fn refresh_balance(&mut self, data: &SplitDataset) {
        self.class_balance = data.valid.class_balance();
    }

    /// Refits LabelPick, the label model and the AL model after the LF set
    /// or pseudo-labelled set changed.
    pub fn refit(
        &mut self,
        data: &SplitDataset,
        state: &mut SessionState,
    ) -> Result<(), ActiveDpError> {
        // LabelPick (or all LFs when ablated).
        state.selected = if self.use_labelpick {
            let query_matrix = state.query_votes_matrix(data)?;
            self.labelpick.select(
                &query_matrix,
                &state.pseudo_labels,
                &state.valid_matrix,
                &data.valid.labels,
                data.train.n_classes,
            )?
        } else {
            (0..state.lfs.len()).collect()
        };

        // Label model on the selected columns.
        if state.selected.is_empty() {
            state.lm_probs_train = None;
        } else {
            let selected_train = state.train_matrix.select_columns(&state.selected)?;
            self.label_model
                .fit(&selected_train, Some(&self.class_balance))?;
            let exec = if self.parallel {
                adp_linalg::parallel::auto(
                    selected_train.n_instances(),
                    adp_labelmodel::MIN_PARALLEL_PREDICT,
                )
            } else {
                adp_linalg::Execution::Serial
            };
            state.lm_probs_train = Some(adp_labelmodel::predict_all_with(
                self.label_model.as_ref(),
                &selected_train,
                exec,
            ));
        }

        // AL model on the pseudo-labelled set.
        if state.query_indices.is_empty() {
            state.al_probs_train = None;
        } else {
            self.al_model.fit(
                &data.train.features,
                &state.query_indices,
                Targets::Hard(&state.pseudo_labels),
                None,
            )?;
            state.al_probs_train = Some(self.al_model.predict_proba_all(&data.train.features));
        }
        Ok(())
    }

    /// Label-model probabilities for every row of `matrix`, restricted to
    /// the selected LF columns; the uniform prior where nothing is selected.
    pub fn lm_probs_for(
        &self,
        n_classes: usize,
        state: &SessionState,
        matrix: &LabelMatrix,
    ) -> Vec<Vec<f64>> {
        let uniform = vec![1.0 / n_classes as f64; n_classes];
        (0..matrix.n_instances())
            .map(|i| {
                if state.selected.is_empty() {
                    uniform.clone()
                } else {
                    let votes: Vec<i8> = state.selected.iter().map(|&j| matrix.get(i, j)).collect();
                    self.label_model.predict_proba(&votes)
                }
            })
            .collect()
    }

    /// AL-model probabilities for every row of `features`; the uniform
    /// prior before the first fit.
    pub fn al_probs_for(
        &self,
        n_classes: usize,
        state: &SessionState,
        features: &adp_data::FeatureSet,
    ) -> Vec<Vec<f64>> {
        if state.query_indices.is_empty() {
            let n = adp_linalg::Features::nrows(features);
            return vec![vec![1.0 / n_classes as f64; n_classes]; n];
        }
        self.al_model.predict_proba_all(features)
    }
}

impl Stage for TrainingStage {
    type Input<'i> = ();
    type Output = ();

    fn name(&self) -> &'static str {
        "training"
    }

    fn run(
        &mut self,
        data: &SplitDataset,
        state: &mut SessionState,
        _input: (),
    ) -> Result<(), ActiveDpError> {
        self.refit(data, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_data::{generate, DatasetId, Scale};
    use adp_lf::{LabelFunction, ABSTAIN};

    fn planted_state(data: &SplitDataset) -> SessionState {
        let mut state = SessionState::new(data);
        // Plant a handful of keyword LFs straight from the candidate space,
        // one per early training instance, pseudo-labelled like the loop
        // would (§3.1: the LF's vote on its own query).
        let space = adp_lf::CandidateSpace::build(&data.train);
        let mut i = 0;
        while state.lfs.len() < 6 && i < data.train.len() {
            let label = data.train.labels[i];
            let fresh = space
                .candidates_for(&data.train, &data.train, i, label, 0.6)
                .into_iter()
                .find(|c| !state.seen_keys.contains(&c.lf.key()));
            if let Some(cand) = fresh {
                let lf: LabelFunction = cand.lf;
                state.seen_keys.insert(lf.key());
                state.train_matrix.push_lf(&lf, &data.train).unwrap();
                state.valid_matrix.push_lf(&lf, &data.valid).unwrap();
                let vote = lf.apply(&data.train, i);
                assert_ne!(vote, ABSTAIN, "candidate LF fires on its query");
                state.query_indices.push(i);
                state.pseudo_labels.push(vote as usize);
                state.lfs.push(lf);
            }
            i += 1;
        }
        assert!(state.lfs.len() >= 4, "planted too few LFs");
        state
    }

    #[test]
    fn refit_populates_selection_and_probs() {
        let data = generate(DatasetId::Youtube, Scale::Tiny, 5).unwrap();
        let cfg = SessionConfig::paper_defaults(true, 5);
        let mut stage = TrainingStage::from_config(&data, &cfg);
        let mut state = planted_state(&data);
        stage.refit(&data, &mut state).unwrap();
        assert!(!state.selected.is_empty());
        assert!(state.lm_probs_train.is_some());
        assert!(state.al_probs_train.is_some());
        let al = state.al_probs_train.as_ref().unwrap();
        assert_eq!(al.len(), data.train.len());
        assert!((al[0].iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn labelpick_ablation_keeps_every_lf() {
        let data = generate(DatasetId::Youtube, Scale::Tiny, 5).unwrap();
        let cfg = SessionConfig {
            use_labelpick: false,
            ..SessionConfig::paper_defaults(true, 5)
        };
        let mut stage = TrainingStage::from_config(&data, &cfg);
        let mut state = planted_state(&data);
        stage.refit(&data, &mut state).unwrap();
        assert_eq!(state.selected, (0..state.lfs.len()).collect::<Vec<_>>());
    }

    #[test]
    fn empty_state_refit_clears_probs() {
        let data = generate(DatasetId::Youtube, Scale::Tiny, 5).unwrap();
        let cfg = SessionConfig::paper_defaults(true, 5);
        let mut stage = TrainingStage::from_config(&data, &cfg);
        let mut state = SessionState::new(&data);
        stage.refit(&data, &mut state).unwrap();
        assert!(state.selected.is_empty());
        assert!(state.lm_probs_train.is_none());
        assert!(state.al_probs_train.is_none());
        // The prob helpers fall back to the uniform prior.
        let lm = stage.lm_probs_for(2, &state, &state.train_matrix);
        assert_eq!(lm[0], vec![0.5, 0.5]);
        let al = stage.al_probs_for(2, &state, &data.train.features);
        assert_eq!(al[0], vec![0.5, 0.5]);
    }
}
