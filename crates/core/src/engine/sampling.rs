//! Stage 1 — **sampling**: pick the next query instance from the
//! unqueried pool (paper §3.3 for the ADP sampler; Table 4 for the
//! alternatives).

use super::state::SessionState;
use super::Stage;
use crate::adp_sampler::AdpSampler;
use crate::config::{SamplerChoice, SessionConfig};
use crate::error::ActiveDpError;
use adp_data::SplitDataset;
use adp_lf::CandidateSpace;
use adp_sampler::{Committee, Lal, Passive, Sampler, SamplerContext, Seu, Uncertainty};

/// The session's selector: trait objects for the context-driven samplers,
/// concrete storage for QBC (it must be fed the labelled pool each step).
enum SessionSampler {
    Boxed(Box<dyn Sampler>),
    Qbc(Committee),
}

impl SessionSampler {
    fn select(&mut self, ctx: &SamplerContext<'_>) -> Option<usize> {
        match self {
            SessionSampler::Boxed(s) => s.select(ctx),
            SessionSampler::Qbc(c) => c.select(ctx),
        }
    }

    fn rng_state(&self) -> [u64; 4] {
        match self {
            SessionSampler::Boxed(s) => s.rng_state(),
            SessionSampler::Qbc(c) => c.rng_state(),
        }
    }

    fn restore_rng_state(&mut self, state: [u64; 4]) {
        match self {
            SessionSampler::Boxed(s) => s.restore_rng_state(state),
            SessionSampler::Qbc(c) => c.restore_rng_state(state),
        }
    }
}

/// Owns the configured sampler and the candidate-LF space handle the
/// context-driven samplers (SEU) consult.
pub struct SamplingStage {
    sampler: SessionSampler,
}

impl SamplingStage {
    /// Builds the sampler named by `config.sampler`, seeded from the
    /// master seed via [`SessionConfig::sampler_seed`]. The config's master
    /// `parallel` switch reaches the samplers with a chunked scoring pass
    /// (ADP, US, QBC); selections are bitwise identical either way.
    pub fn from_config(config: &SessionConfig) -> Self {
        let seed = config.sampler_seed();
        let sampler = match config.sampler {
            SamplerChoice::Adp => {
                let mut s = AdpSampler::new(config.alpha, seed);
                s.parallel = config.parallel;
                SessionSampler::Boxed(Box::new(s))
            }
            SamplerChoice::Passive => SessionSampler::Boxed(Box::new(Passive::new(seed))),
            SamplerChoice::Uncertainty => {
                let mut s = Uncertainty::new(seed);
                s.parallel = config.parallel;
                SessionSampler::Boxed(Box::new(s))
            }
            SamplerChoice::Lal => SessionSampler::Boxed(Box::new(Lal::with_defaults(seed))),
            SamplerChoice::Seu => SessionSampler::Boxed(Box::new(Seu::new(seed))),
            SamplerChoice::Qbc => {
                let mut s = Committee::new(seed, 5);
                s.parallel = config.parallel;
                SessionSampler::Qbc(s)
            }
        };
        SamplingStage { sampler }
    }

    /// The sampler's RNG stream position, for [`Engine::snapshot`].
    ///
    /// [`Engine::snapshot`]: super::Engine::snapshot
    pub(crate) fn rng_state(&self) -> [u64; 4] {
        self.sampler.rng_state()
    }

    /// Repositions the sampler's RNG stream when resuming a snapshot.
    pub(crate) fn restore_rng_state(&mut self, state: [u64; 4]) {
        self.sampler.restore_rng_state(state);
    }

    /// Selects the next query instance given the shared `space` of
    /// candidate LFs, marking it queried in `state`. Returns `None` when
    /// the pool is exhausted.
    pub fn select(
        &mut self,
        data: &SplitDataset,
        space: &CandidateSpace,
        state: &mut SessionState,
    ) -> Option<usize> {
        if let SessionSampler::Qbc(qbc) = &mut self.sampler {
            qbc.set_labeled(&state.query_indices, &state.pseudo_labels);
        }
        let query = {
            let ctx = SamplerContext {
                train: &data.train,
                queried: &state.queried,
                al_probs: state.al_probs_train.as_deref(),
                lm_probs: state.lm_probs_train.as_deref(),
                n_labeled: state.query_indices.len(),
                space: Some(space),
                seen_lfs: Some(&state.seen_keys),
            };
            self.sampler.select(&ctx)
        };
        if let Some(query) = query {
            state.queried[query] = true;
        }
        query
    }
}

impl Stage for SamplingStage {
    type Input<'i> = &'i CandidateSpace;
    type Output = Option<usize>;

    fn name(&self) -> &'static str {
        "sampling"
    }

    fn run(
        &mut self,
        data: &SplitDataset,
        state: &mut SessionState,
        space: &CandidateSpace,
    ) -> Result<Option<usize>, ActiveDpError> {
        Ok(self.select(data, space, state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_data::{generate, DatasetId, Scale};

    fn stage_with(choice: SamplerChoice) -> (SplitDataset, CandidateSpace, SamplingStage) {
        let data = generate(DatasetId::Youtube, Scale::Tiny, 5).unwrap();
        let space = CandidateSpace::build(&data.train);
        let cfg = SessionConfig {
            sampler: choice,
            ..SessionConfig::paper_defaults(true, 5)
        };
        let stage = SamplingStage::from_config(&cfg);
        (data, space, stage)
    }

    #[test]
    fn selects_unqueried_instances_and_marks_them() {
        let (data, space, mut stage) = stage_with(SamplerChoice::Adp);
        let mut state = SessionState::new(&data);
        let q = stage.select(&data, &space, &mut state).unwrap();
        assert!(state.queried[q]);
        let q2 = stage.select(&data, &space, &mut state).unwrap();
        assert_ne!(q, q2, "second pick must avoid the queried instance");
    }

    #[test]
    fn exhausted_pool_returns_none() {
        let (data, space, mut stage) = stage_with(SamplerChoice::Passive);
        let mut state = SessionState::new(&data);
        state.queried = vec![true; data.train.len()];
        assert!(stage.select(&data, &space, &mut state).is_none());
    }

    #[test]
    fn every_choice_builds_and_selects() {
        for choice in [
            SamplerChoice::Adp,
            SamplerChoice::Passive,
            SamplerChoice::Uncertainty,
            SamplerChoice::Lal,
            SamplerChoice::Seu,
            SamplerChoice::Qbc,
        ] {
            let (data, space, mut stage) = stage_with(choice);
            let mut state = SessionState::new(&data);
            assert!(
                stage.select(&data, &space, &mut state).is_some(),
                "{choice:?}"
            );
        }
    }
}
