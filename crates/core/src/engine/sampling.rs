//! Stage 1 — **sampling**: pick the next query instance from the
//! unqueried pool (paper §3.3 for the ADP sampler; Table 4 for the
//! alternatives).

use super::state::SessionState;
use super::Stage;
use crate::adp_sampler::AdpSampler;
use crate::config::{CandidateStrategy, SamplerChoice, SessionConfig};
use crate::error::ActiveDpError;
use adp_data::SplitDataset;
use adp_index::{IvfIndex, IvfParams};
use adp_lf::CandidateSpace;
use adp_sampler::{Committee, Lal, Passive, Sampler, SamplerContext, Seu, Uncertainty};

/// Per-list sample size when ranking inverted lists by boundary
/// uncertainty: the mean entropy of this many unqueried members stands in
/// for the whole list. Fixed so probe selection is deterministic and O(1)
/// per list.
const PROBE_SAMPLE: usize = 8;

/// The session's selector: trait objects for the context-driven samplers,
/// concrete storage for QBC (it must be fed the labelled pool each step).
enum SessionSampler {
    Boxed(Box<dyn Sampler>),
    Qbc(Committee),
}

impl SessionSampler {
    fn select(&mut self, ctx: &SamplerContext<'_>) -> Option<usize> {
        match self {
            SessionSampler::Boxed(s) => s.select(ctx),
            SessionSampler::Qbc(c) => c.select(ctx),
        }
    }

    fn rng_state(&self) -> [u64; 4] {
        match self {
            SessionSampler::Boxed(s) => s.rng_state(),
            SessionSampler::Qbc(c) => c.rng_state(),
        }
    }

    fn restore_rng_state(&mut self, state: [u64; 4]) {
        match self {
            SessionSampler::Boxed(s) => s.restore_rng_state(state),
            SessionSampler::Qbc(c) => c.restore_rng_state(state),
        }
    }
}

/// Owns the configured sampler, the candidate strategy, and (under
/// [`CandidateStrategy::Ann`]) the IVF index that narrows each selection
/// to the inverted lists nearest the decision boundary.
pub struct SamplingStage {
    sampler: SessionSampler,
    strategy: CandidateStrategy,
    /// Seed for the index's k-means initialisation (its own stream off the
    /// master seed, so adding the index never perturbs sampler/oracle RNG).
    index_seed: u64,
    /// The IVF index, built lazily on the first `Ann` selection that has a
    /// model to rank lists with. Never serialized: the build is a pure
    /// function of `(features, index_seed)`, so a resumed session rebuilds
    /// the identical index — that is also why the periodic refresh below
    /// cannot desynchronise an interrupted run from a fresh one.
    index: Option<IvfIndex>,
    /// Refits since the index was last (re)built; at `refresh_every` the
    /// index is dropped and rebuilt on the next selection.
    refits_since_build: usize,
}

impl SamplingStage {
    /// Builds the sampler named by `config.sampler`, seeded from the
    /// master seed via [`SessionConfig::sampler_seed`]. The config's master
    /// `parallel` switch reaches the samplers with a chunked scoring pass
    /// (ADP, US, QBC); selections are bitwise identical either way.
    pub fn from_config(config: &SessionConfig) -> Self {
        let seed = config.sampler_seed();
        let sampler = match config.sampler {
            SamplerChoice::Adp => {
                let mut s = AdpSampler::new(config.alpha, seed);
                s.parallel = config.parallel;
                SessionSampler::Boxed(Box::new(s))
            }
            SamplerChoice::Passive => SessionSampler::Boxed(Box::new(Passive::new(seed))),
            SamplerChoice::Uncertainty => {
                let mut s = Uncertainty::new(seed);
                s.parallel = config.parallel;
                SessionSampler::Boxed(Box::new(s))
            }
            SamplerChoice::Lal => SessionSampler::Boxed(Box::new(Lal::with_defaults(seed))),
            SamplerChoice::Seu => SessionSampler::Boxed(Box::new(Seu::new(seed))),
            SamplerChoice::Qbc => {
                let mut s = Committee::new(seed, 5);
                s.parallel = config.parallel;
                SessionSampler::Qbc(s)
            }
        };
        SamplingStage {
            sampler,
            strategy: config.candidates,
            index_seed: config.index_seed(),
            index: None,
            refits_since_build: 0,
        }
    }

    /// Called by the engine after every refit boundary. Under
    /// [`CandidateStrategy::Ann`] with `refresh_every > 0`, every
    /// `refresh_every`-th refit drops the index so the next selection
    /// rebuilds it — the hook where a model-aware index would re-cluster.
    /// (Today's index depends only on the immutable features and its seed,
    /// so a rebuild reproduces it exactly; the cadence is still observed so
    /// schedules and snapshots already pin its semantics.)
    pub(crate) fn note_refit(&mut self) {
        if let CandidateStrategy::Ann { refresh_every, .. } = self.strategy {
            if refresh_every > 0 && self.index.is_some() {
                self.refits_since_build += 1;
                if self.refits_since_build >= refresh_every {
                    self.index = None;
                    self.refits_since_build = 0;
                }
            }
        }
    }

    /// The candidate set for this selection under the `Ann` strategy:
    /// every unqueried member of the `nprobe` inverted lists with the
    /// highest mean predictive entropy (sampled over their first
    /// [`PROBE_SAMPLE`] unqueried members), ascending. `None` — meaning
    /// "score the full pool" — under the `Exact` strategy, before any
    /// model exists (cold start ties at uniform entropy anyway), or if
    /// every probed list is exhausted.
    fn ann_candidates(&mut self, data: &SplitDataset, state: &SessionState) -> Option<Vec<usize>> {
        let CandidateStrategy::Ann { nprobe, .. } = self.strategy else {
            return None;
        };
        if state.al_probs_train.is_none() && state.lm_probs_train.is_none() {
            return None;
        }
        if self.index.is_none() {
            self.index = Some(IvfIndex::build(
                &data.train.features,
                &IvfParams {
                    seed: self.index_seed,
                    ..IvfParams::default()
                },
            ));
            self.refits_since_build = 0;
        }
        let index = self.index.as_ref().expect("built above");
        let probs = |i: usize| -> &[f64] {
            if let Some(p) = &state.al_probs_train {
                return &p[i];
            }
            &state.lm_probs_train.as_ref().expect("checked above")[i]
        };
        let mut ranked: Vec<(f64, usize)> = Vec::with_capacity(index.nlist());
        for l in 0..index.nlist() {
            let mut sum = 0.0;
            let mut seen = 0usize;
            for &row in index.list(l) {
                if state.queried[row] {
                    continue;
                }
                sum += adp_linalg::entropy(probs(row));
                seen += 1;
                if seen == PROBE_SAMPLE {
                    break;
                }
            }
            if seen > 0 {
                ranked.push((sum / seen as f64, l));
            }
        }
        // Most uncertain lists first; entropy ties toward the smaller id.
        ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        ranked.truncate(nprobe);
        let mut candidates: Vec<usize> = ranked
            .iter()
            .flat_map(|&(_, l)| index.list(l).iter().copied())
            .filter(|&row| !state.queried[row])
            .collect();
        candidates.sort_unstable();
        if candidates.is_empty() {
            return None;
        }
        Some(candidates)
    }

    /// The sampler's RNG stream position, for [`Engine::snapshot`].
    ///
    /// [`Engine::snapshot`]: super::Engine::snapshot
    pub(crate) fn rng_state(&self) -> [u64; 4] {
        self.sampler.rng_state()
    }

    /// Repositions the sampler's RNG stream when resuming a snapshot.
    pub(crate) fn restore_rng_state(&mut self, state: [u64; 4]) {
        self.sampler.restore_rng_state(state);
    }

    /// Selects the next query instance given the shared `space` of
    /// candidate LFs, marking it queried in `state`. Returns `None` when
    /// the pool is exhausted.
    ///
    /// `visible` caps the candidate pool to the first `visible` instances —
    /// the streaming-arrival window of
    /// [`DriftSpec::ArrivingPool`](adp_data::DriftSpec): instances past the
    /// cap have not "arrived" yet and cannot be sampled. `None` (every
    /// static scenario) leaves the pool untouched. A `Some` cap whose
    /// visible prefix is fully queried returns `None` like an exhausted
    /// pool does, even if later refits would widen the window.
    pub fn select(
        &mut self,
        data: &SplitDataset,
        space: &CandidateSpace,
        state: &mut SessionState,
        visible: Option<usize>,
    ) -> Option<usize> {
        if let SessionSampler::Qbc(qbc) = &mut self.sampler {
            qbc.set_labeled(&state.query_indices, &state.pseudo_labels);
        }
        let mut candidates = self.ann_candidates(data, state);
        if let Some(v) = visible {
            candidates = Some(match candidates {
                Some(c) => c.into_iter().filter(|&row| row < v).collect(),
                None => (0..v.min(data.train.len()))
                    .filter(|&row| !state.queried[row])
                    .collect(),
            });
            if candidates.as_ref().is_some_and(Vec::is_empty) {
                return None;
            }
        }
        let query = {
            let ctx = SamplerContext {
                train: &data.train,
                queried: &state.queried,
                al_probs: state.al_probs_train.as_deref(),
                lm_probs: state.lm_probs_train.as_deref(),
                n_labeled: state.query_indices.len(),
                space: Some(space),
                seen_lfs: Some(&state.seen_keys),
                candidates: candidates.as_deref(),
            };
            self.sampler.select(&ctx)
        };
        if let Some(query) = query {
            state.queried[query] = true;
        }
        query
    }
}

impl Stage for SamplingStage {
    type Input<'i> = &'i CandidateSpace;
    type Output = Option<usize>;

    fn name(&self) -> &'static str {
        "sampling"
    }

    fn run(
        &mut self,
        data: &SplitDataset,
        state: &mut SessionState,
        space: &CandidateSpace,
    ) -> Result<Option<usize>, ActiveDpError> {
        Ok(self.select(data, space, state, None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_data::{generate, DatasetId, Scale};

    fn stage_with(choice: SamplerChoice) -> (SplitDataset, CandidateSpace, SamplingStage) {
        let data = generate(DatasetId::Youtube, Scale::Tiny, 5).unwrap();
        let space = CandidateSpace::build(&data.train);
        let cfg = SessionConfig {
            sampler: choice,
            ..SessionConfig::paper_defaults(true, 5)
        };
        let stage = SamplingStage::from_config(&cfg);
        (data, space, stage)
    }

    #[test]
    fn selects_unqueried_instances_and_marks_them() {
        let (data, space, mut stage) = stage_with(SamplerChoice::Adp);
        let mut state = SessionState::new(&data);
        let q = stage.select(&data, &space, &mut state, None).unwrap();
        assert!(state.queried[q]);
        let q2 = stage.select(&data, &space, &mut state, None).unwrap();
        assert_ne!(q, q2, "second pick must avoid the queried instance");
    }

    #[test]
    fn exhausted_pool_returns_none() {
        let (data, space, mut stage) = stage_with(SamplerChoice::Passive);
        let mut state = SessionState::new(&data);
        state.queried = vec![true; data.train.len()];
        assert!(stage.select(&data, &space, &mut state, None).is_none());
    }

    #[test]
    fn visibility_cap_restricts_selection_to_the_arrived_prefix() {
        let (data, space, mut stage) = stage_with(SamplerChoice::Adp);
        let mut state = SessionState::new(&data);
        for _ in 0..4 {
            let q = stage.select(&data, &space, &mut state, Some(5)).unwrap();
            assert!(q < 5, "query {q} is past the visibility cap");
        }
        // A fully-queried visible prefix reads as exhaustion.
        let mut capped = SessionState::new(&data);
        capped.queried[..3].fill(true);
        assert!(stage.select(&data, &space, &mut capped, Some(3)).is_none());
    }

    #[test]
    fn every_choice_builds_and_selects() {
        for choice in [
            SamplerChoice::Adp,
            SamplerChoice::Passive,
            SamplerChoice::Uncertainty,
            SamplerChoice::Lal,
            SamplerChoice::Seu,
            SamplerChoice::Qbc,
        ] {
            let (data, space, mut stage) = stage_with(choice);
            let mut state = SessionState::new(&data);
            assert!(
                stage.select(&data, &space, &mut state, None).is_some(),
                "{choice:?}"
            );
        }
    }
}
