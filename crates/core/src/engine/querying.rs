//! Stage 2 — **querying**: show the query instance to the oracle, collect
//! the returned label function, and fold it into the shared state (vote
//! matrices, pseudo-labelled pool; paper §3.1).

use super::state::SessionState;
use super::Stage;
use crate::error::ActiveDpError;
use crate::oracle::{Oracle, RouteChoice, RouteStats, RoutedState};
use adp_data::SplitDataset;
use adp_lf::{CandidateSpace, LabelFunction, ABSTAIN};

/// Owns the oracle and the candidate-LF space it draws from.
pub struct QueryingStage {
    space: CandidateSpace,
    oracle: Box<dyn Oracle>,
}

impl QueryingStage {
    /// Builds the per-dataset candidate space and wraps `oracle`.
    pub fn new(data: &SplitDataset, oracle: Box<dyn Oracle>) -> Self {
        QueryingStage {
            space: CandidateSpace::build(&data.train),
            oracle,
        }
    }

    /// The candidate-LF space (shared with the sampling stage's SEU
    /// selector).
    pub fn space(&self) -> &CandidateSpace {
        &self.space
    }

    /// Rebuilds the candidate-LF space from `data` — called by the engine
    /// when a drift boundary mutates the pool (the space precomputes
    /// label- and feature-dependent statistics, so it must track the
    /// active dataset).
    pub(crate) fn rebuild_space(&mut self, data: &SplitDataset) {
        self.space = CandidateSpace::build(&data.train);
    }

    /// The oracle's snapshotable state, when it has one (see
    /// [`Oracle::save_state`]).
    pub(crate) fn oracle_state(&self) -> Option<adp_lf::UserState> {
        self.oracle.save_state()
    }

    /// Replays oracle state captured by [`QueryingStage::oracle_state`];
    /// `false` when the oracle cannot resume it.
    pub(crate) fn restore_oracle(&mut self, state: &adp_lf::UserState) -> bool {
        self.oracle.load_state(state)
    }

    /// The oracle's RNG stream position, when it exposes one (see
    /// [`Oracle::rng_words`]) — captured into every journalled
    /// [`StepEvent`](crate::StepEvent).
    pub(crate) fn oracle_rng_words(&self) -> Option<[u64; 4]> {
        self.oracle.rng_words()
    }

    /// The routed-oracle snapshot state, when the oracle is a router (see
    /// [`Oracle::save_routed`]).
    pub(crate) fn routed_state(&self) -> Option<RoutedState> {
        self.oracle.save_routed()
    }

    /// Replays routed-oracle state captured by
    /// [`QueryingStage::routed_state`]; `false` when the oracle cannot.
    pub(crate) fn restore_routed(&mut self, state: &RoutedState) -> bool {
        self.oracle.load_routed(state)
    }

    /// The cheap oracle's RNG stream position, when the session routes
    /// between two oracles (see [`Oracle::cheap_rng_words`]).
    pub(crate) fn cheap_rng_words(&self) -> Option<[u64; 4]> {
        self.oracle.cheap_rng_words()
    }

    /// The router's accumulated cost ledger, when the oracle is a router.
    pub(crate) fn route_stats(&self) -> Option<RouteStats> {
        self.oracle.route_stats()
    }

    /// Asks the oracle about `query`. When an LF comes back, appends its
    /// votes to both matrices and pseudo-labels the query instance with the
    /// LF's own vote. Returns the LF (already recorded in `state`) plus the
    /// routing decision, when the oracle routes (see
    /// [`Oracle::respond_routed`]); `uncertainty` is the AL model's
    /// uncertainty about the query, the hint threshold policies split on.
    pub fn query(
        &mut self,
        data: &SplitDataset,
        state: &mut SessionState,
        query: usize,
        uncertainty: Option<f64>,
    ) -> Result<(Option<LabelFunction>, Option<RouteChoice>), ActiveDpError> {
        let (lf, route) =
            self.oracle
                .respond_routed(&self.space, &data.train, &data.train, query, uncertainty);
        if let Some(lf) = &lf {
            state.seen_keys.insert(lf.key());
            state.train_matrix.push_lf(lf, &data.train)?;
            state.valid_matrix.push_lf(lf, &data.valid)?;
            state.lfs.push(lf.clone());
            // Pseudo-label: the LF's vote on its own query instance (§3.1).
            // Candidate LFs always fire on their query by construction.
            let vote = lf.apply(&data.train, query);
            debug_assert_ne!(vote, ABSTAIN, "candidate LF must fire on its query");
            state.query_indices.push(query);
            state.pseudo_labels.push(vote as usize);
        }
        Ok((lf, route))
    }
}

impl Stage for QueryingStage {
    type Input<'i> = usize;
    type Output = Option<LabelFunction>;

    fn name(&self) -> &'static str {
        "querying"
    }

    fn run(
        &mut self,
        data: &SplitDataset,
        state: &mut SessionState,
        query: usize,
    ) -> Result<Option<LabelFunction>, ActiveDpError> {
        Ok(self.query(data, state, query, None)?.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_data::{generate, DatasetId, Scale};
    use adp_lf::{SimulatedUser, UserConfig};

    fn stage(data: &SplitDataset, seed: u64) -> QueryingStage {
        let user = SimulatedUser::new(
            UserConfig {
                acc_threshold: 0.6,
                noise_rate: 0.0,
            },
            seed,
        );
        QueryingStage::new(data, Box::new(user))
    }

    #[test]
    fn lf_is_recorded_in_every_structure() {
        let data = generate(DatasetId::Youtube, Scale::Tiny, 5).unwrap();
        let mut q = stage(&data, 5);
        let mut state = SessionState::new(&data);
        // Find a query the simulated user answers.
        let answered = (0..data.train.len()).find_map(|i| {
            q.query(&data, &mut state, i, None)
                .unwrap()
                .0
                .map(|lf| (i, lf))
        });
        let (query, lf) = answered.expect("user answers some instance");
        assert_eq!(state.lfs.last().unwrap().key(), lf.key());
        assert!(state.seen_keys.contains(&lf.key()));
        assert_eq!(state.train_matrix.n_lfs(), state.lfs.len());
        assert_eq!(state.valid_matrix.n_lfs(), state.lfs.len());
        let (qi, pseudo) = state.pseudo_labelled().last().unwrap();
        assert_eq!(qi, query);
        assert_eq!(pseudo, lf.apply(&data.train, query) as usize);
    }

    #[test]
    fn unanswered_query_leaves_state_untouched() {
        // Two instances sharing one token with opposite labels: every
        // candidate LF has accuracy 0.5, below the user's threshold, so the
        // oracle can never answer.
        let train = adp_data::Dataset {
            name: "t".into(),
            task: adp_data::Task::SpamClassification,
            n_classes: 2,
            features: adp_data::FeatureSet::Sparse(adp_linalg::CsrMatrix::empty(2, 1)),
            labels: vec![1, 0],
            texts: None,
            encoded_docs: Some(vec![vec![0], vec![0]]),
        };
        let data = SplitDataset {
            valid: train.clone(),
            test: train.clone(),
            train,
            vocab: None,
            provenance: None,
        };
        let user = SimulatedUser::new(
            UserConfig {
                acc_threshold: 0.6,
                noise_rate: 0.0,
            },
            5,
        );
        let mut q = QueryingStage::new(&data, Box::new(user));
        let mut state = SessionState::new(&data);
        assert!(q.query(&data, &mut state, 0, None).unwrap().0.is_none());
        assert!(state.lfs.is_empty());
        assert_eq!(state.train_matrix.n_lfs(), 0);
        assert!(state.pseudo_labelled().next().is_none());
    }
}
