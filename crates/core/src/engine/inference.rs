//! Stage 4 — **inference** (Figure 1 right): ConFusion aggregation of the
//! AL and label models' predictions under a validation-tuned confidence
//! threshold (§3.2), and downstream-model training/evaluation.

use super::state::SessionState;
use super::training::TrainingStage;
use crate::config::SessionConfig;
use crate::confusion::{aggregate, tune_threshold, AggregatedLabels};
use crate::error::ActiveDpError;
use adp_classifier::{LogisticRegression, Targets};
use adp_data::SplitDataset;

/// Inference-phase evaluation of the downstream model.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Downstream test-set accuracy (the paper's headline metric).
    pub test_accuracy: f64,
    /// Accuracy of the aggregated training labels over covered instances.
    pub label_accuracy: Option<f64>,
    /// Fraction of training instances that received a label.
    pub label_coverage: f64,
    /// Tuned confidence threshold (None when ConFusion is ablated).
    pub threshold: Option<f64>,
    /// LFs selected at evaluation time.
    pub n_selected: usize,
    /// Whether the downstream model had any training data.
    pub downstream_trained: bool,
}

/// Tunes τ on the validation split (when ConFusion is enabled) and
/// aggregates labels for the training pool.
pub fn aggregate_train_labels(
    data: &SplitDataset,
    config: &SessionConfig,
    training: &TrainingStage,
    state: &SessionState,
) -> Result<AggregatedLabels, ActiveDpError> {
    let n_classes = data.train.n_classes;
    let lm_train = training.lm_probs_for(n_classes, state, &state.train_matrix);
    let has_vote_train = state.has_vote_for(&state.train_matrix);
    if !config.use_confusion {
        // Ablation: label-model output on covered instances only.
        let labels = lm_train
            .into_iter()
            .zip(&has_vote_train)
            .map(|(p, &v)| v.then_some(p))
            .collect();
        return Ok(AggregatedLabels {
            labels,
            threshold: f64::NAN,
        });
    }
    let al_train = training.al_probs_for(n_classes, state, &data.train.features);
    let al_valid = training.al_probs_for(n_classes, state, &data.valid.features);
    let lm_valid = training.lm_probs_for(n_classes, state, &state.valid_matrix);
    let has_vote_valid = state.has_vote_for(&state.valid_matrix);
    let tau = tune_threshold(&al_valid, &lm_valid, &has_vote_valid, &data.valid.labels);
    Ok(AggregatedLabels {
        labels: aggregate(&al_train, &lm_train, &has_vote_train, tau),
        threshold: tau,
    })
}

/// Trains the downstream model on the aggregated labels and evaluates it on
/// the test split (the protocol's every-10-iterations metric).
pub fn evaluate_downstream(
    data: &SplitDataset,
    config: &SessionConfig,
    training: &TrainingStage,
    state: &SessionState,
) -> Result<EvalReport, ActiveDpError> {
    let agg = aggregate_train_labels(data, config, training, state)?;
    let rows: Vec<usize> = agg
        .labels
        .iter()
        .enumerate()
        .filter_map(|(i, l)| l.is_some().then_some(i))
        .collect();
    let mut report = EvalReport {
        test_accuracy: 0.0,
        label_accuracy: agg.accuracy_against(&data.train.labels),
        label_coverage: agg.coverage(),
        threshold: config.use_confusion.then_some(agg.threshold),
        n_selected: state.selected.len(),
        downstream_trained: !rows.is_empty(),
    };
    let preds: Vec<usize> = if rows.is_empty() {
        vec![0; data.test.len()]
    } else {
        let targets: Vec<Vec<f64>> = rows
            .iter()
            .map(|&i| agg.labels[i].clone().expect("row filtered as covered"))
            .collect();
        let mut downstream = LogisticRegression::new(
            data.train.n_classes,
            adp_linalg::Features::ncols(&data.train.features),
            config.effective_downstream_logreg(),
        );
        downstream.fit(&data.train.features, &rows, Targets::Soft(&targets), None)?;
        (0..data.test.len())
            .map(|i| downstream.predict(&data.test.features, i))
            .collect()
    };
    report.test_accuracy = adp_classifier::accuracy(&preds, &data.test.labels);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_data::{generate, DatasetId, Scale};

    #[test]
    fn empty_state_evaluation_is_defined() {
        let data = generate(DatasetId::Youtube, Scale::Tiny, 5).unwrap();
        let cfg = SessionConfig::paper_defaults(true, 5);
        let training = TrainingStage::from_config(&data, &cfg);
        let state = SessionState::new(&data);
        let r = evaluate_downstream(&data, &cfg, &training, &state).unwrap();
        assert!((0.0..=1.0).contains(&r.test_accuracy));
        assert!(!r.downstream_trained || r.label_coverage > 0.0);
    }

    #[test]
    fn confusion_ablation_reports_no_threshold() {
        let data = generate(DatasetId::Youtube, Scale::Tiny, 5).unwrap();
        let cfg = SessionConfig {
            use_confusion: false,
            ..SessionConfig::paper_defaults(true, 5)
        };
        let training = TrainingStage::from_config(&data, &cfg);
        let state = SessionState::new(&data);
        let agg = aggregate_train_labels(&data, &cfg, &training, &state).unwrap();
        assert!(agg.threshold.is_nan());
        let r = evaluate_downstream(&data, &cfg, &training, &state).unwrap();
        assert!(r.threshold.is_none());
    }
}
