//! The staged ActiveDP engine.
//!
//! The training loop of paper Figure 1 is decomposed into four stages, each
//! an independently testable module operating on a shared
//! [`SessionState`]:
//!
//! 1. [`sampling`] — pick the next query instance (§3.3);
//! 2. [`querying`] — ask the oracle, fold the returned LF into the state
//!    (§3.1);
//! 3. [`training`] — LabelPick + label-model and AL-model refits (§3.4);
//! 4. [`inference`] — ConFusion aggregation and downstream evaluation
//!    (§3.2, run on demand rather than per iteration).
//!
//! [`Engine`] wires the stages together; samplers, oracles, label models
//! and classifiers all plug in behind their existing traits. The engine
//! *owns* its dataset behind a [`SharedDataset`] handle and is
//! `Send + 'static`, so sessions can be stored in registries, moved across
//! threads, and served concurrently (see the `adp-serve` crate's
//! `SessionHub`). Construction goes through the validating
//! [`EngineBuilder`]; the [`ActiveDpSession`](crate::ActiveDpSession)
//! facade preserves the original monolithic API on top, and the
//! `engine_matches_golden_trajectory` integration test pins the staged
//! loop to the pre-refactor trajectory seed-for-seed.

pub mod builder;
pub mod inference;
pub mod querying;
pub mod sampling;
pub mod state;
pub mod training;

pub use builder::EngineBuilder;
pub use inference::EvalReport;
pub use querying::QueryingStage;
pub use sampling::SamplingStage;
pub use state::SessionState;
pub use training::TrainingStage;

use crate::config::SessionConfig;
use crate::error::ActiveDpError;
use crate::event::StepEvent;
use crate::oracle::{RouteChoice, RoutedStep};
use crate::scenario::{BudgetSchedule, ScenarioSpec};
use adp_data::{DatasetSpec, DriftSpec, SharedDataset, SplitDataset};
use adp_lf::{LabelFunction, LabelMatrix};

/// One phase of the loop: a named transformation of the shared state.
///
/// `Input`/`Output` differ per stage (the sampler produces a query index,
/// the querying stage consumes it), so the trait is generic over both; the
/// uniform shape is what makes each stage drivable in isolation from tests
/// and from custom outer loops.
pub trait Stage {
    /// Per-call input (e.g. the query instance for the querying stage).
    type Input<'i>;
    /// What the stage produces.
    type Output;

    /// Stage name for diagnostics.
    fn name(&self) -> &'static str;

    /// Runs the stage once against the shared state.
    fn run(
        &mut self,
        data: &SplitDataset,
        state: &mut SessionState,
        input: Self::Input<'_>,
    ) -> Result<Self::Output, ActiveDpError>;
}

/// What one training iteration did.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// 1-based iteration number.
    pub iteration: usize,
    /// The query instance, or `None` when the pool was exhausted.
    pub query: Option<usize>,
    /// The LF the oracle returned, if any.
    pub lf: Option<LabelFunction>,
    /// Total LFs collected so far.
    pub n_lfs: usize,
    /// LFs currently selected by LabelPick.
    pub n_selected: usize,
    /// Which oracle answered, for dual-oracle sessions
    /// ([`OracleKind::Noisy`](crate::OracleKind)); `None` on plain
    /// simulated-user sessions and on pool-exhausted steps.
    pub route: Option<RouteChoice>,
}

/// What a bounded [`Engine::run_schedule_batches`] call accomplished.
#[derive(Debug, Clone)]
pub struct ScheduleRun {
    /// Every outcome the slice produced, in iteration order.
    pub outcomes: Vec<StepOutcome>,
    /// Schedule batches actually run (≤ the requested maximum).
    pub batches: usize,
    /// Whether the run is over: budget spent or pool exhausted. A
    /// not-done engine continues from its current batch boundary —
    /// directly, or via snapshot/resume on another host.
    pub done: bool,
}

/// Per-step instrumentation hook.
///
/// Observers registered on an [`Engine`] (via
/// [`EngineBuilder::observer`] or [`Engine::add_observer`]) see every
/// [`StepOutcome`] right after it is produced — from both [`Engine::step`]
/// and [`Engine::step_batch`] — without participating in the trajectory.
/// Any `FnMut(&StepOutcome) + Send` closure is an observer.
pub trait StepObserver: Send {
    /// Called once per completed loop iteration.
    fn on_step(&mut self, outcome: &StepOutcome);

    /// Whether this observer also wants replayable [`StepEvent`]s. The
    /// engine captures events (RNG positions included) only when at least
    /// one registered observer returns `true`, so plain instrumentation
    /// observers cost nothing extra. Defaults to `false`.
    fn wants_events(&self) -> bool {
        false
    }

    /// Called once per completed loop iteration with the iteration's
    /// replayable [`StepEvent`] — after every [`StepObserver::on_step`] of
    /// the same `step()`/`step_batch()` call — on observers whose
    /// [`StepObserver::wants_events`] is `true`. This is the journalling
    /// seam: the `adp-wal` crate's writer is such an observer. Not called
    /// when the session's oracle exposes no RNG position (see
    /// [`Oracle::rng_words`](crate::Oracle::rng_words)) — such sessions
    /// cannot snapshot, so there is no checkpoint to replay from either.
    fn on_event(&mut self, event: &StepEvent) {
        let _ = event;
    }
}

impl<F: FnMut(&StepOutcome) + Send> StepObserver for F {
    fn on_step(&mut self, outcome: &StepOutcome) {
        self(outcome)
    }
}

/// The staged ActiveDP engine: sampling → querying → training per step,
/// inference on demand.
///
/// The engine owns everything it runs over — the dataset (behind a cheap
/// [`SharedDataset`] handle), the oracle, the sampler and the models — and
/// is therefore `Send + 'static`: it can be boxed into a registry, handed
/// to a worker thread, or kept alive long after its creator returned.
/// Build one with [`Engine::builder`].
pub struct Engine {
    data: SharedDataset,
    config: SessionConfig,
    schedule: BudgetSchedule,
    budget: usize,
    /// The scenario's streaming mutation, if any (see
    /// [`DriftSpec`]). Applied lazily at its refit boundary: `data` holds
    /// the base split until then, the mutated one after.
    drift: DriftSpec,
    /// Whether the drift boundary has been crossed and `data` swapped.
    drift_applied: bool,
    /// Dataset provenance, when the split was generated from a spec — what
    /// makes the session describable as a [`ScenarioSpec`] and therefore
    /// snapshottable.
    dataset_spec: Option<DatasetSpec>,
    state: SessionState,
    sampling: SamplingStage,
    querying: QueryingStage,
    training: TrainingStage,
    observers: Vec<Box<dyn StepObserver>>,
}

impl Engine {
    /// Starts a validating [`EngineBuilder`] over `data` (an owned
    /// [`SplitDataset`] or an existing [`SharedDataset`] handle).
    ///
    /// ```
    /// # use activedp::Engine;
    /// # use adp_data::{generate, DatasetId, Scale};
    /// let data = generate(DatasetId::Youtube, Scale::Tiny, 7).unwrap();
    /// let engine = Engine::builder(data).seed(7).build().unwrap();
    /// ```
    pub fn builder(data: impl Into<SharedDataset>) -> EngineBuilder {
        EngineBuilder::new(data)
    }

    /// **The one true constructor**: builds the engine a [`ScenarioSpec`]
    /// describes, generating the dataset from the spec's provenance. Every
    /// other construction path — [`EngineBuilder::build`], the serving
    /// hub's `create_from_spec`, the `adp-sweep` grid runner — routes
    /// through the same assembly, so a spec always means the same run.
    ///
    /// ```
    /// # use activedp::{Engine, ScenarioSpec};
    /// # use adp_data::{DatasetId, DatasetSpec, Scale};
    /// let spec = ScenarioSpec::new(DatasetSpec {
    ///     id: DatasetId::Youtube,
    ///     scale: Scale::Tiny,
    ///     seed: 7,
    /// });
    /// let engine = Engine::from_spec(spec.clone()).unwrap();
    /// assert_eq!(engine.scenario(), Some(spec));
    /// ```
    pub fn from_spec(spec: ScenarioSpec) -> Result<Engine, ActiveDpError> {
        let data = spec
            .dataset
            .generate()
            .map_err(|e| ActiveDpError::BadConfig {
                reason: format!("dataset spec failed to generate: {e}"),
            })?
            .into_shared();
        Engine::from_spec_over(spec, data)
    }

    /// [`Engine::from_spec`] over an already-generated split — the
    /// cache-friendly path (the serving hub shares one [`SharedDataset`]
    /// between all sessions naming the same dataset spec). The split's
    /// recorded provenance must equal `spec.dataset`; handing in a
    /// different (or hand-built, provenance-less) split is rejected, since
    /// the spec would then misdescribe the run.
    pub fn from_spec_over(
        spec: ScenarioSpec,
        data: SharedDataset,
    ) -> Result<Engine, ActiveDpError> {
        if data.provenance != Some(spec.dataset) {
            return Err(ActiveDpError::BadConfig {
                reason: format!(
                    "dataset provenance {:?} does not match the scenario's {:?}",
                    data.provenance, spec.dataset
                ),
            });
        }
        let ScenarioSpec {
            dataset,
            session,
            schedule,
            budget,
            drift,
        } = spec;
        Engine::assemble(
            data,
            Some(dataset),
            session,
            schedule,
            budget,
            drift,
            None,
            vec![],
        )
    }

    /// The single assembly point underneath every constructor: validates,
    /// defaults the oracle to [`SessionConfig::build_oracle`] (the
    /// simulated user, or the router over it under
    /// [`OracleKind::Noisy`](crate::OracleKind)), and wires the stages.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        data: SharedDataset,
        dataset_spec: Option<DatasetSpec>,
        config: SessionConfig,
        schedule: BudgetSchedule,
        budget: usize,
        drift: DriftSpec,
        oracle: Option<Box<dyn crate::oracle::Oracle>>,
        observers: Vec<Box<dyn StepObserver>>,
    ) -> Result<Engine, ActiveDpError> {
        config.validate()?;
        schedule.validate()?;
        drift
            .validate(data.is_textual())
            .map_err(|reason| ActiveDpError::BadConfig { reason })?;
        if let Some(at) = drift.boundary() {
            if !schedule.is_batch_boundary(at, budget) {
                return Err(ActiveDpError::BadConfig {
                    reason: format!(
                        "drift boundary {at} is not a refit boundary of schedule {} under budget \
                         {budget}",
                        schedule.label()
                    ),
                });
            }
        }
        let oracle = match oracle {
            Some(oracle) => oracle,
            None => config.build_oracle(),
        };
        Ok(Engine {
            state: SessionState::new(&data),
            sampling: SamplingStage::from_config(&config),
            querying: QueryingStage::new(&data, oracle),
            training: TrainingStage::from_config(&data, &config),
            data,
            config,
            schedule,
            budget,
            drift,
            drift_applied: false,
            dataset_spec,
            observers,
        })
    }

    /// Rebuilds the session a snapshot describes, regenerating the dataset
    /// from the spec embedded in the snapshot — the full round trip:
    /// `spec → engine → snapshot → bytes → Engine::resume` needs nothing
    /// but the bytes. Use [`EngineBuilder::resume`] instead when the
    /// dataset is already in hand (e.g. from a shared cache).
    pub fn resume(snapshot: crate::SessionSnapshot) -> Result<Engine, ActiveDpError> {
        let data = snapshot
            .spec
            .dataset
            .generate()
            .map_err(|e| ActiveDpError::BadConfig {
                reason: format!("snapshot's dataset spec failed to generate: {e}"),
            })?
            .into_shared();
        EngineBuilder::new(data).resume(snapshot)
    }

    /// Point-in-time recovery: rebuilds the session exactly as it stood at
    /// commit point `k`, from a `checkpoint` snapshot taken at some
    /// iteration `j ≤ k` plus the journalled [`StepEvent`]s covering
    /// `j+1 ..= k`. The result is **bitwise identical** — state, RNG
    /// streams, and any snapshot taken from it — to an uninterrupted run
    /// stopped at `k` (pinned by `tests/wal_replay_parity.rs`).
    ///
    /// The dataset regenerates from the checkpoint's spec; use
    /// [`Engine::replay_to_over`] when the split is already in hand.
    /// `events` may extend beyond `k` (later ones are ignored) and start
    /// before `j` (covered ones are skipped); gaps, duplicates, targets
    /// that are not commit points, and events contradicting the folded
    /// state are [`ActiveDpError::Replay`] errors.
    pub fn replay_to(
        checkpoint: &crate::SessionSnapshot,
        events: &[StepEvent],
        k: usize,
    ) -> Result<Engine, ActiveDpError> {
        let data = checkpoint
            .spec
            .dataset
            .generate()
            .map_err(|e| ActiveDpError::BadConfig {
                reason: format!("checkpoint's dataset spec failed to generate: {e}"),
            })?
            .into_shared();
        Engine::replay_to_over(checkpoint, events, k, data)
    }

    /// [`Engine::replay_to`] over an already-generated split (the serving
    /// hub's cache-friendly path).
    pub fn replay_to_over(
        checkpoint: &crate::SessionSnapshot,
        events: &[StepEvent],
        k: usize,
        data: SharedDataset,
    ) -> Result<Engine, ActiveDpError> {
        let synth = crate::replay::replay_snapshot(checkpoint, &data, events, k)?;
        EngineBuilder::new(data).resume(synth)
    }

    /// The dataset split the engine runs over.
    pub fn data(&self) -> &SplitDataset {
        &self.data
    }

    /// A clonable handle to the dataset split, for sharing with other
    /// sessions or threads.
    pub fn shared_data(&self) -> SharedDataset {
        self.data.clone()
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// How [`Engine::run_schedule`] spends the labelling budget.
    pub fn schedule(&self) -> &BudgetSchedule {
        &self.schedule
    }

    /// The total labelling budget [`Engine::run_schedule`] drives.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The complete declarative description of this session, when its
    /// dataset carries regenerable provenance (always, for engines built
    /// by [`Engine::from_spec`] or over [`adp_data::generate`]d splits).
    /// `None` for hand-built datasets — such sessions run fine but cannot
    /// be serialized as a spec, and therefore cannot be snapshot.
    pub fn scenario(&self) -> Option<ScenarioSpec> {
        self.dataset_spec.map(|dataset| ScenarioSpec {
            dataset,
            session: self.config.clone(),
            schedule: self.schedule.clone(),
            budget: self.budget,
            drift: self.drift,
        })
    }

    /// The scenario's streaming mutation (see [`DriftSpec`]).
    pub fn drift(&self) -> DriftSpec {
        self.drift
    }

    /// The router's accumulated per-oracle cost ledger, when the session
    /// routes between two oracles
    /// ([`OracleKind::Noisy`](crate::OracleKind)); `None` for plain
    /// simulated-user sessions.
    pub fn route_stats(&self) -> Option<crate::oracle::RouteStats> {
        self.querying.route_stats()
    }

    /// The shared loop state (read-only; the stages own mutation).
    pub fn state(&self) -> &SessionState {
        &self.state
    }

    /// Registers a per-step instrumentation hook (see [`StepObserver`]).
    pub fn add_observer(&mut self, observer: impl StepObserver + 'static) {
        self.observers.push(Box::new(observer));
    }

    /// One training iteration of Figure 1 (left): sampling → querying →
    /// training.
    pub fn step(&mut self) -> Result<StepOutcome, ActiveDpError> {
        self.maybe_apply_drift()?;
        self.state.iteration += 1;
        let visible = self.visible_len();
        let query =
            self.sampling
                .select(&self.data, self.querying.space(), &mut self.state, visible);
        let Some(query) = query else {
            let event = self.capture_event(self.state.iteration, None, None, true, None);
            let outcome = self.outcome(self.state.iteration, None, None, None);
            self.notify(std::slice::from_ref(&outcome));
            self.notify_events(event.as_slice());
            return Ok(outcome);
        };
        let hint = self.uncertainty_hint(query);
        let (lf, route) = self
            .querying
            .query(&self.data, &mut self.state, query, hint)?;
        // RNG positions are already final here: the refit below draws none.
        let event = self.capture_event(self.state.iteration, Some(query), lf.as_ref(), true, route);
        if lf.is_some() {
            self.training.refit(&self.data, &mut self.state)?;
            self.sampling.note_refit();
        }
        let outcome = self.outcome(self.state.iteration, Some(query), lf, route);
        self.notify(std::slice::from_ref(&outcome));
        self.notify_events(event.as_slice());
        Ok(outcome)
    }

    /// Batched stepping: samples and queries up to `k` instances against
    /// the *current* models, then refits once.
    ///
    /// Each drawn query still consumes one loop iteration and produces one
    /// [`StepOutcome`], but LabelPick and the model refits run a single
    /// time at the end of the batch — the batching the ROADMAP's
    /// budget/latency studies trade accuracy-per-refit against. Because the
    /// per-outcome counters are read after that one refit,
    /// `step_batch(1)` is bitwise identical to [`Engine::step`].
    ///
    /// The batch stops early when the pool is exhausted (final outcome has
    /// `query: None`, matching [`Engine::step`]). `k = 0` is a no-op.
    pub fn step_batch(&mut self, k: usize) -> Result<Vec<StepOutcome>, ActiveDpError> {
        // The batch can never outgrow the pool (plus one exhaustion
        // outcome), so cap the pre-allocation — callers may pass huge `k`
        // to mean "run to exhaustion".
        #[allow(clippy::type_complexity)]
        let mut drawn: Vec<(
            usize,
            Option<usize>,
            Option<LabelFunction>,
            Option<RouteChoice>,
        )> = Vec::with_capacity(k.min(self.data.train.len() + 1));
        let mut events: Vec<StepEvent> = Vec::new();
        let mut collected_lf = false;
        for _ in 0..k {
            self.maybe_apply_drift()?;
            self.state.iteration += 1;
            let visible = self.visible_len();
            let query =
                self.sampling
                    .select(&self.data, self.querying.space(), &mut self.state, visible);
            let Some(query) = query else {
                events.extend(self.capture_event(self.state.iteration, None, None, false, None));
                drawn.push((self.state.iteration, None, None, None));
                break;
            };
            let hint = self.uncertainty_hint(query);
            let (lf, route) = self
                .querying
                .query(&self.data, &mut self.state, query, hint)?;
            collected_lf |= lf.is_some();
            // Events capture the RNG positions *at this iteration* — the
            // end-of-batch refit below draws none, so the last event's
            // positions equal a post-batch snapshot's.
            events.extend(self.capture_event(
                self.state.iteration,
                Some(query),
                lf.as_ref(),
                false,
                route,
            ));
            drawn.push((self.state.iteration, Some(query), lf, route));
        }
        if collected_lf {
            self.training.refit(&self.data, &mut self.state)?;
            self.sampling.note_refit();
        }
        // Mid-batch state is not resumable (the refit has not run for it);
        // only the batch's final iteration is a commit point.
        if let Some(last) = events.last_mut() {
            last.commit = true;
        }
        let outcomes: Vec<StepOutcome> = drawn
            .into_iter()
            .map(|(iteration, query, lf, route)| self.outcome(iteration, query, lf, route))
            .collect();
        self.notify(&outcomes);
        self.notify_events(&events);
        Ok(outcomes)
    }

    /// Runs `iterations` training steps.
    pub fn run(&mut self, iterations: usize) -> Result<(), ActiveDpError> {
        for _ in 0..iterations {
            self.step()?;
        }
        Ok(())
    }

    /// Spends the scenario's labelling budget under its
    /// [`BudgetSchedule`]: repeatedly draws the schedule's next batch
    /// (via [`Engine::step_batch`]) until [`Engine::budget`] iterations
    /// are done or the pool is exhausted, and returns every outcome.
    ///
    /// `FixedStep` (and `FixedBatch{k: 1}`) reproduce the paper's
    /// one-query-per-refit loop **bitwise** — same trajectory as calling
    /// [`Engine::step`] `budget` times (pinned by
    /// `tests/engine_parity.rs`). Batch boundaries are aligned to absolute
    /// iteration numbers, so a session resumed at a refit boundary
    /// continues the schedule exactly where it stopped.
    pub fn run_schedule(&mut self) -> Result<Vec<StepOutcome>, ActiveDpError> {
        Ok(self.run_schedule_batches(usize::MAX)?.outcomes)
    }

    /// Runs at most `max_batches` schedule batches — the bounded slice of
    /// [`Engine::run_schedule`] the distributed sweep is built on: a
    /// worker runs a slice, snapshots at the batch boundary it stopped on,
    /// and ships the checkpoint back; a resumed engine continues the
    /// schedule exactly where it stopped because batch boundaries are
    /// aligned to absolute iteration numbers. Slicing is invisible to the
    /// trajectory: any partition of a run into `run_schedule_batches`
    /// calls (with snapshot/resume between them or not) is bitwise
    /// identical to one uninterrupted [`Engine::run_schedule`].
    ///
    /// `done` is `true` once the budget is spent or the pool is exhausted
    /// — after which further calls run zero batches.
    pub fn run_schedule_batches(
        &mut self,
        max_batches: usize,
    ) -> Result<ScheduleRun, ActiveDpError> {
        let mut run = ScheduleRun {
            outcomes: Vec::with_capacity(self.budget.min(self.data.train.len() + 1)),
            batches: 0,
            done: false,
        };
        while run.batches < max_batches {
            let k = self
                .schedule
                .next_batch_at(self.state.iteration, self.budget);
            if k == 0 {
                run.done = true;
                return Ok(run);
            }
            let batch = self.step_batch(k)?;
            run.batches += 1;
            let exhausted = batch.last().is_some_and(|o| o.query.is_none());
            run.outcomes.extend(batch);
            if exhausted {
                run.done = true;
                return Ok(run);
            }
        }
        // The batch cap hit first; the budget may still be unspent. Probe
        // so a slice that happened to end exactly on the budget reports
        // `done` without costing the caller another round trip.
        run.done = self
            .schedule
            .next_batch_at(self.state.iteration, self.budget)
            == 0;
        Ok(run)
    }

    /// Captures everything needed to resume this session later — the full
    /// [`ScenarioSpec`] (dataset provenance included), loop state and both
    /// RNG stream positions — as plain data (see
    /// [`SessionSnapshot`](crate::SessionSnapshot)).
    ///
    /// Resuming via [`Engine::resume`] (or [`EngineBuilder::resume`] over
    /// a dataset already in hand) and running the remaining iterations is
    /// **bitwise identical** to never having stopped (pinned by
    /// `tests/engine_parity.rs`). Fails with
    /// [`ActiveDpError::SnapshotUnsupported`] when the session runs a
    /// custom oracle that does not expose snapshot state
    /// (see [`Oracle::save_state`](crate::Oracle::save_state)) or when its
    /// dataset carries no regenerable provenance
    /// (see [`Engine::scenario`]).
    pub fn snapshot(&self) -> Result<crate::SessionSnapshot, ActiveDpError> {
        let spec = self
            .scenario()
            .ok_or_else(|| ActiveDpError::SnapshotUnsupported {
                reason: "the session's dataset has no regenerable provenance".into(),
            })?;
        let oracle =
            self.querying
                .oracle_state()
                .ok_or_else(|| ActiveDpError::SnapshotUnsupported {
                    reason: "the session's oracle does not expose snapshot state".into(),
                })?;
        Ok(crate::SessionSnapshot {
            spec,
            state: self.state.clone(),
            sampler_rng: self.sampling.rng_state(),
            oracle,
            routed: self.querying.routed_state(),
        })
    }

    /// Inference phase: tunes τ on the validation split (when ConFusion is
    /// enabled) and aggregates labels for the training pool.
    pub fn aggregate_train_labels(
        &self,
    ) -> Result<crate::confusion::AggregatedLabels, ActiveDpError> {
        inference::aggregate_train_labels(&self.data, &self.config, &self.training, &self.state)
    }

    /// Trains the downstream model on the aggregated labels and evaluates
    /// it on the test split.
    pub fn evaluate_downstream(&self) -> Result<EvalReport, ActiveDpError> {
        inference::evaluate_downstream(&self.data, &self.config, &self.training, &self.state)
    }

    fn outcome(
        &self,
        iteration: usize,
        query: Option<usize>,
        lf: Option<LabelFunction>,
        route: Option<RouteChoice>,
    ) -> StepOutcome {
        StepOutcome {
            iteration,
            query,
            lf,
            n_lfs: self.state.lfs.len(),
            n_selected: self.state.selected.len(),
            route,
        }
    }

    /// The arrival window under [`DriftSpec::ArrivingPool`] — how many
    /// leading pool instances the sampler may see at the current iteration
    /// (see [`DriftSpec::visible_len`]); `None` for every other scenario.
    /// Called after the iteration increment, so "completed" counts the
    /// iterations before the one being sampled.
    fn visible_len(&self) -> Option<usize> {
        self.drift.visible_len(
            self.data.train.len(),
            self.schedule
                .batches_completed_at(self.state.iteration.saturating_sub(1), self.budget),
        )
    }

    /// The AL model's uncertainty about `query` — `1 − max p(y|x)`, the
    /// quantity [`RoutePolicy::UncertaintyThreshold`](crate::RoutePolicy)
    /// splits on. `None` before the first fit (threshold policies then
    /// route to the expensive oracle).
    fn uncertainty_hint(&self, query: usize) -> Option<f64> {
        self.state.al_probs_train.as_ref().map(|probs| {
            1.0 - probs[query]
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        })
    }

    /// Swaps in the drifted pool once the boundary is crossed: called
    /// before each iteration increment, so the first iteration *after*
    /// `at` completed ones samples from the mutated pool — and the refit
    /// that closed iteration `at`'s batch still ran against the base pool,
    /// which is what makes a snapshot taken exactly at the boundary
    /// resume bitwise (see [`Engine::sync_drift`]).
    fn maybe_apply_drift(&mut self) -> Result<(), ActiveDpError> {
        if self.drift_applied {
            return Ok(());
        }
        let Some(at) = self.drift.boundary() else {
            return Ok(());
        };
        if self.state.iteration < at {
            return Ok(());
        }
        self.apply_drift()
    }

    /// Re-derives drift application when resuming a snapshot or replaying
    /// a journal: a session past its boundary swaps the pool before the
    /// resume refit, one at or before it stays on the base pool (the
    /// swap happens lazily on its next step, exactly as it would have).
    pub(crate) fn sync_drift(&mut self) -> Result<(), ActiveDpError> {
        if let Some(at) = self.drift.boundary() {
            if !self.drift_applied && self.state.iteration > at {
                self.apply_drift()?;
            }
        }
        Ok(())
    }

    fn apply_drift(&mut self) -> Result<(), ActiveDpError> {
        let drifted = self
            .drift
            .apply(&self.data)
            .expect("a drift with a boundary always mutates the pool");
        self.data = drifted.into_shared();
        self.querying.rebuild_space(&self.data);
        self.training.refresh_balance(&self.data);
        if matches!(self.drift, DriftSpec::CovariateDrift { .. }) {
            // Feature drift changes every LF's votes; rebuild both vote
            // matrices against the rotated features. (Label shift leaves
            // votes untouched — LFs read features only.) Pushing the LFs
            // in collection order is idempotent: a later rebuild from the
            // same LF list reproduces the matrices column for column,
            // which is what lets resume re-derive them.
            let mut train_matrix = LabelMatrix::empty(self.data.train.len());
            let mut valid_matrix = LabelMatrix::empty(self.data.valid.len());
            for lf in &self.state.lfs {
                train_matrix.push_lf(lf, &self.data.train)?;
                valid_matrix.push_lf(lf, &self.data.valid)?;
            }
            self.state.train_matrix = train_matrix;
            self.state.valid_matrix = valid_matrix;
        }
        self.drift_applied = true;
        Ok(())
    }

    fn notify(&mut self, outcomes: &[StepOutcome]) {
        for outcome in outcomes {
            for observer in &mut self.observers {
                observer.on_step(outcome);
            }
        }
    }

    /// Whether any registered observer asked for replayable events.
    fn events_wanted(&self) -> bool {
        self.observers.iter().any(|o| o.wants_events())
    }

    /// Builds the [`StepEvent`] for one completed iteration, or `None`
    /// when no observer wants events or the oracle exposes no RNG
    /// position.
    fn capture_event(
        &self,
        iteration: usize,
        query: Option<usize>,
        lf: Option<&LabelFunction>,
        commit: bool,
        route: Option<RouteChoice>,
    ) -> Option<StepEvent> {
        if !self.events_wanted() {
            return None;
        }
        let oracle_rng = self.querying.oracle_rng_words()?;
        // Which oracle answered, and where the cheap stream ended up — what
        // replay needs to reposition both sides of the router bitwise.
        let route = route.and_then(|choice| {
            self.querying
                .cheap_rng_words()
                .map(|cheap_rng| RoutedStep { choice, cheap_rng })
        });
        Some(StepEvent {
            iteration,
            query,
            lf: lf.cloned(),
            sampler_rng: self.sampling.rng_state(),
            oracle_rng,
            commit,
            route,
        })
    }

    fn notify_events(&mut self, events: &[StepEvent]) {
        for event in events {
            for observer in &mut self.observers {
                if observer.wants_events() {
                    observer.on_event(event);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_data::{generate, DatasetId, Scale};
    use adp_lf::SimulatedUser;
    use std::sync::mpsc;

    fn tiny(seed: u64) -> SharedDataset {
        generate(DatasetId::Youtube, Scale::Tiny, seed)
            .unwrap()
            .into_shared()
    }

    #[test]
    fn engine_runs_and_evaluates() {
        let mut e = Engine::builder(tiny(5)).seed(5).build().unwrap();
        e.run(10).unwrap();
        assert_eq!(e.state().iteration, 10);
        assert!(!e.state().lfs.is_empty());
        let r = e.evaluate_downstream().unwrap();
        assert!((0.0..=1.0).contains(&r.test_accuracy));
    }

    #[test]
    fn stage_names_are_distinct() {
        let data = tiny(5);
        let cfg = SessionConfig::paper_defaults(true, 5);
        let sampling = SamplingStage::from_config(&cfg);
        let training = TrainingStage::from_config(&data, &cfg);
        let querying = QueryingStage::new(&data, Box::new(SimulatedUser::with_defaults(0)));
        let names = [
            Stage::name(&sampling),
            Stage::name(&querying),
            Stage::name(&training),
        ];
        assert_eq!(names, ["sampling", "querying", "training"]);
    }

    #[test]
    fn step_batch_refits_once_per_batch() {
        let data = tiny(5);
        let mut batched = Engine::builder(data.clone()).seed(5).build().unwrap();
        let outcomes = batched.step_batch(6).unwrap();
        assert_eq!(outcomes.len(), 6);
        assert_eq!(batched.state().iteration, 6);
        // All outcomes in one batch report the state after the single refit.
        let last = outcomes.last().unwrap();
        for o in &outcomes {
            assert_eq!(o.n_lfs, last.n_lfs);
            assert_eq!(o.n_selected, last.n_selected);
        }
        assert!(batched.evaluate_downstream().is_ok());
    }

    #[test]
    fn run_schedule_batches_slices_are_bitwise_equal_to_one_run() {
        let spec = {
            let mut s = ScenarioSpec::new(adp_data::DatasetSpec {
                id: DatasetId::Youtube,
                scale: Scale::Tiny,
                seed: 7,
            });
            s.session.seed = 5;
            s.schedule = crate::BudgetSchedule::FixedBatch { k: 4 };
            s.budget = 12;
            s
        };
        let data = spec.dataset.generate().unwrap().into_shared();
        let mut solo = Engine::from_spec_over(spec.clone(), data.clone()).unwrap();
        solo.run_schedule().unwrap();
        let solo_acc = solo.evaluate_downstream().unwrap().test_accuracy;

        // Same schedule driven in 1-batch slices with a snapshot/resume
        // round trip between every slice — the distributed worker's view.
        let mut sliced = Engine::from_spec_over(spec, data.clone()).unwrap();
        let mut slices = 0;
        loop {
            let run = sliced.run_schedule_batches(1).unwrap();
            slices += 1;
            if run.done {
                assert!(run.batches <= 1);
                break;
            }
            let snapshot = sliced.snapshot().unwrap();
            sliced = Engine::builder(data.clone()).resume(snapshot).unwrap();
        }
        assert_eq!(slices, 3, "12 budget / k=4 = 3 batches");
        assert_eq!(sliced.state().iteration, solo.state().iteration);
        let sliced_acc = sliced.evaluate_downstream().unwrap().test_accuracy;
        assert_eq!(sliced_acc.to_bits(), solo_acc.to_bits());

        // A spent engine reports done without running anything.
        let run = sliced.run_schedule_batches(1).unwrap();
        assert!(run.done);
        assert_eq!(run.batches, 0);
        assert!(run.outcomes.is_empty());
    }

    #[test]
    fn run_schedule_batches_reports_done_on_exact_final_slice() {
        let data = tiny(7);
        let mut e = Engine::builder(data).seed(5).budget(8).build().unwrap();
        // 8 budget under the default FixedStep schedule = 8 batches; a
        // max_batches that lands exactly on the budget must say done.
        let run = e.run_schedule_batches(8).unwrap();
        assert_eq!(run.batches, 8);
        assert!(run.done);
    }

    #[test]
    fn step_batch_zero_is_a_no_op() {
        let mut e = Engine::builder(tiny(5)).seed(5).build().unwrap();
        assert!(e.step_batch(0).unwrap().is_empty());
        assert_eq!(e.state().iteration, 0);
    }

    #[test]
    fn step_batch_stops_at_pool_exhaustion() {
        let data = tiny(5);
        let n = data.train.len();
        let mut e = Engine::builder(data).seed(5).build().unwrap();
        let outcomes = e.step_batch(n + 10).unwrap();
        assert!(outcomes.len() <= n + 1);
        assert!(outcomes.last().unwrap().query.is_none());
    }

    #[test]
    fn observers_see_every_step() {
        let (tx, rx) = mpsc::channel();
        let mut e = Engine::builder(tiny(5))
            .seed(5)
            .observer(move |o: &StepOutcome| tx.send(o.iteration).unwrap())
            .build()
            .unwrap();
        e.step().unwrap();
        e.step_batch(3).unwrap();
        let seen: Vec<usize> = rx.try_iter().collect();
        assert_eq!(seen, vec![1, 2, 3, 4]);
    }

    struct EventTap(mpsc::Sender<StepEvent>);

    impl StepObserver for EventTap {
        fn on_step(&mut self, _outcome: &StepOutcome) {}
        fn wants_events(&self) -> bool {
            true
        }
        fn on_event(&mut self, event: &StepEvent) {
            self.0.send(event.clone()).unwrap();
        }
    }

    #[test]
    fn events_mirror_outcomes_with_commit_points_at_call_boundaries() {
        let (tx, rx) = mpsc::channel();
        let mut e = Engine::builder(tiny(5)).seed(5).build().unwrap();
        e.add_observer(EventTap(tx));
        let first = e.step().unwrap();
        let batch = e.step_batch(3).unwrap();
        let events: Vec<StepEvent> = rx.try_iter().collect();
        assert_eq!(
            events.iter().map(|e| e.iteration).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        // Only the last iteration of each step()/step_batch() call commits.
        assert_eq!(
            events.iter().map(|e| e.commit).collect::<Vec<_>>(),
            vec![true, false, false, true]
        );
        for (event, outcome) in events
            .iter()
            .zip(std::iter::once(&first).chain(batch.iter()))
        {
            assert_eq!(event.query, outcome.query);
            assert_eq!(event.lf, outcome.lf);
        }
        // The final event's RNG positions equal a post-call snapshot's —
        // the refit between capture and snapshot draws none.
        let snap = e.snapshot().unwrap();
        let last = events.last().unwrap();
        assert_eq!(last.sampler_rng, snap.sampler_rng);
        assert_eq!(last.oracle_rng, snap.oracle.rng);
    }

    #[test]
    fn events_are_not_captured_without_a_subscriber() {
        // A plain closure observer does not opt in to events, so the
        // engine skips capture entirely — and trajectories are unchanged.
        let mut plain = Engine::builder(tiny(5)).seed(5).build().unwrap();
        let mut tapped = Engine::builder(tiny(5)).seed(5).build().unwrap();
        let (tx, rx) = mpsc::channel();
        tapped.add_observer(EventTap(tx));
        plain.run(6).unwrap();
        tapped.run(6).unwrap();
        assert_eq!(rx.try_iter().count(), 6);
        assert_eq!(
            plain.snapshot().unwrap().to_bytes(),
            tapped.snapshot().unwrap().to_bytes()
        );
    }

    #[test]
    fn engine_can_outlive_and_change_threads() {
        // `Send + 'static` exercised for real: built on one thread, stepped
        // on another, with no borrow of the creating scope.
        let mut e = Engine::builder(tiny(5)).seed(5).build().unwrap();
        let handle = std::thread::spawn(move || {
            e.run(3).unwrap();
            e.state().iteration
        });
        assert_eq!(handle.join().unwrap(), 3);
    }
}
