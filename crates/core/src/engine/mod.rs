//! The staged ActiveDP engine.
//!
//! The training loop of paper Figure 1 is decomposed into four stages, each
//! an independently testable module operating on a shared
//! [`SessionState`]:
//!
//! 1. [`sampling`] — pick the next query instance (§3.3);
//! 2. [`querying`] — ask the oracle, fold the returned LF into the state
//!    (§3.1);
//! 3. [`training`] — LabelPick + label-model and AL-model refits (§3.4);
//! 4. [`inference`] — ConFusion aggregation and downstream evaluation
//!    (§3.2, run on demand rather than per iteration).
//!
//! [`Engine`] wires the stages together; samplers, oracles, label models
//! and classifiers all plug in behind their existing traits. The
//! [`ActiveDpSession`](crate::ActiveDpSession) facade preserves the
//! original monolithic API on top of this engine, and the
//! `engine_matches_golden_trajectory` integration test pins the staged
//! loop to the pre-refactor trajectory seed-for-seed.

pub mod inference;
pub mod querying;
pub mod sampling;
pub mod state;
pub mod training;

pub use inference::EvalReport;
pub use querying::QueryingStage;
pub use sampling::SamplingStage;
pub use state::SessionState;
pub use training::TrainingStage;

use crate::config::SessionConfig;
use crate::error::ActiveDpError;
use crate::oracle::Oracle;
use adp_data::SplitDataset;
use adp_lf::{LabelFunction, SimulatedUser, UserConfig};

/// One phase of the loop: a named transformation of the shared state.
///
/// `Input`/`Output` differ per stage (the sampler produces a query index,
/// the querying stage consumes it), so the trait is generic over both; the
/// uniform shape is what makes each stage drivable in isolation from tests
/// and from custom outer loops.
pub trait Stage {
    /// Per-call input (e.g. the query instance for the querying stage).
    type Input<'i>;
    /// What the stage produces.
    type Output;

    /// Stage name for diagnostics.
    fn name(&self) -> &'static str;

    /// Runs the stage once against the shared state.
    fn run(
        &mut self,
        data: &SplitDataset,
        state: &mut SessionState,
        input: Self::Input<'_>,
    ) -> Result<Self::Output, ActiveDpError>;
}

/// What one training iteration did.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// 1-based iteration number.
    pub iteration: usize,
    /// The query instance, or `None` when the pool was exhausted.
    pub query: Option<usize>,
    /// The LF the oracle returned, if any.
    pub lf: Option<LabelFunction>,
    /// Total LFs collected so far.
    pub n_lfs: usize,
    /// LFs currently selected by LabelPick.
    pub n_selected: usize,
}

/// The staged ActiveDP engine: sampling → querying → training per step,
/// inference on demand.
pub struct Engine<'a> {
    data: &'a SplitDataset,
    config: SessionConfig,
    state: SessionState,
    sampling: SamplingStage,
    querying: QueryingStage,
    training: TrainingStage,
}

impl<'a> Engine<'a> {
    /// An engine with the simulated user of §4.1.4 as the oracle.
    pub fn new(data: &'a SplitDataset, config: SessionConfig) -> Result<Self, ActiveDpError> {
        let user = SimulatedUser::new(
            UserConfig {
                acc_threshold: config.acc_threshold,
                noise_rate: config.noise_rate,
            },
            config.seed ^ 0x5EED_0001,
        );
        Self::with_oracle(data, config, Box::new(user))
    }

    /// An engine with a custom oracle (e.g. an interactive UI).
    pub fn with_oracle(
        data: &'a SplitDataset,
        config: SessionConfig,
        oracle: Box<dyn Oracle>,
    ) -> Result<Self, ActiveDpError> {
        config.validate()?;
        Ok(Engine {
            state: SessionState::new(data),
            sampling: SamplingStage::from_config(&config),
            querying: QueryingStage::new(data, oracle),
            training: TrainingStage::from_config(data, &config),
            data,
            config,
        })
    }

    /// The dataset split the engine runs over.
    pub fn data(&self) -> &'a SplitDataset {
        self.data
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The shared loop state (read-only; the stages own mutation).
    pub fn state(&self) -> &SessionState {
        &self.state
    }

    /// One training iteration of Figure 1 (left): sampling → querying →
    /// training.
    pub fn step(&mut self) -> Result<StepOutcome, ActiveDpError> {
        self.state.iteration += 1;
        let query = self
            .sampling
            .select(self.data, self.querying.space(), &mut self.state);
        let Some(query) = query else {
            return Ok(self.outcome(None, None));
        };
        let lf = self.querying.query(self.data, &mut self.state, query)?;
        if lf.is_some() {
            self.training.refit(self.data, &mut self.state)?;
        }
        Ok(self.outcome(Some(query), lf))
    }

    /// Runs `iterations` training steps.
    pub fn run(&mut self, iterations: usize) -> Result<(), ActiveDpError> {
        for _ in 0..iterations {
            self.step()?;
        }
        Ok(())
    }

    /// Inference phase: tunes τ on the validation split (when ConFusion is
    /// enabled) and aggregates labels for the training pool.
    pub fn aggregate_train_labels(
        &self,
    ) -> Result<crate::confusion::AggregatedLabels, ActiveDpError> {
        inference::aggregate_train_labels(self.data, &self.config, &self.training, &self.state)
    }

    /// Trains the downstream model on the aggregated labels and evaluates
    /// it on the test split.
    pub fn evaluate_downstream(&self) -> Result<EvalReport, ActiveDpError> {
        inference::evaluate_downstream(self.data, &self.config, &self.training, &self.state)
    }

    fn outcome(&self, query: Option<usize>, lf: Option<LabelFunction>) -> StepOutcome {
        StepOutcome {
            iteration: self.state.iteration,
            query,
            lf,
            n_lfs: self.state.lfs.len(),
            n_selected: self.state.selected.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_data::{generate, DatasetId, Scale};

    #[test]
    fn engine_runs_and_evaluates() {
        let data = generate(DatasetId::Youtube, Scale::Tiny, 5).unwrap();
        let mut e = Engine::new(&data, SessionConfig::paper_defaults(true, 5)).unwrap();
        e.run(10).unwrap();
        assert_eq!(e.state().iteration, 10);
        assert!(!e.state().lfs.is_empty());
        let r = e.evaluate_downstream().unwrap();
        assert!((0.0..=1.0).contains(&r.test_accuracy));
    }

    #[test]
    fn stage_names_are_distinct() {
        let data = generate(DatasetId::Youtube, Scale::Tiny, 5).unwrap();
        let cfg = SessionConfig::paper_defaults(true, 5);
        let sampling = SamplingStage::from_config(&cfg);
        let training = TrainingStage::from_config(&data, &cfg);
        let querying = QueryingStage::new(&data, Box::new(SimulatedUser::with_defaults(0)));
        let names = [
            Stage::name(&sampling),
            Stage::name(&querying),
            Stage::name(&training),
        ];
        assert_eq!(names, ["sampling", "querying", "training"]);
    }

    #[test]
    fn rejects_invalid_config() {
        let data = generate(DatasetId::Youtube, Scale::Tiny, 5).unwrap();
        let mut cfg = SessionConfig::paper_defaults(true, 0);
        cfg.alpha = 2.0;
        assert!(Engine::new(&data, cfg).is_err());
    }
}
