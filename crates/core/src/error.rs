//! Error type for the ActiveDP framework.

use std::fmt;

/// Errors surfaced by the ActiveDP session and its components.
#[derive(Debug)]
pub enum ActiveDpError {
    /// A configuration value is invalid.
    BadConfig {
        /// Reason.
        reason: String,
    },
    /// The unlabeled pool is exhausted.
    PoolExhausted,
    /// Label-model failure.
    LabelModel(adp_labelmodel::LabelModelError),
    /// Classifier failure.
    Classifier(adp_classifier::ClassifierError),
    /// Graphical-lasso failure inside LabelPick.
    Glasso(adp_glasso::GlassoError),
    /// Linear-algebra failure.
    Linalg(adp_linalg::LinalgError),
    /// Label-matrix manipulation failure.
    Lf(adp_lf::LfError),
    /// The session's oracle cannot capture or replay snapshot state (e.g. a
    /// custom interactive oracle behind `EngineBuilder::oracle`).
    SnapshotUnsupported {
        /// What could not be snapshot or resumed.
        reason: String,
    },
    /// An encoded snapshot failed to decode.
    SnapshotCodec(adp_wire::WireError),
    /// A WAL replay was inconsistent with its checkpoint or event stream
    /// (duplicate/out-of-order/missing iterations, a target that is not a
    /// commit point, or an event that contradicts the folded state).
    Replay {
        /// What made the event stream unreplayable.
        reason: String,
    },
}

impl fmt::Display for ActiveDpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActiveDpError::BadConfig { reason } => write!(f, "bad configuration: {reason}"),
            ActiveDpError::PoolExhausted => write!(f, "unlabeled pool exhausted"),
            ActiveDpError::LabelModel(e) => write!(f, "label model: {e}"),
            ActiveDpError::Classifier(e) => write!(f, "classifier: {e}"),
            ActiveDpError::Glasso(e) => write!(f, "graphical lasso: {e}"),
            ActiveDpError::Linalg(e) => write!(f, "linear algebra: {e}"),
            ActiveDpError::Lf(e) => write!(f, "label functions: {e}"),
            ActiveDpError::SnapshotUnsupported { reason } => {
                write!(f, "snapshot unsupported: {reason}")
            }
            ActiveDpError::SnapshotCodec(e) => write!(f, "snapshot codec: {e}"),
            ActiveDpError::Replay { reason } => write!(f, "wal replay: {reason}"),
        }
    }
}

impl std::error::Error for ActiveDpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ActiveDpError::LabelModel(e) => Some(e),
            ActiveDpError::Classifier(e) => Some(e),
            ActiveDpError::Glasso(e) => Some(e),
            ActiveDpError::Linalg(e) => Some(e),
            ActiveDpError::Lf(e) => Some(e),
            ActiveDpError::SnapshotCodec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<adp_labelmodel::LabelModelError> for ActiveDpError {
    fn from(e: adp_labelmodel::LabelModelError) -> Self {
        ActiveDpError::LabelModel(e)
    }
}

impl From<adp_classifier::ClassifierError> for ActiveDpError {
    fn from(e: adp_classifier::ClassifierError) -> Self {
        ActiveDpError::Classifier(e)
    }
}

impl From<adp_glasso::GlassoError> for ActiveDpError {
    fn from(e: adp_glasso::GlassoError) -> Self {
        ActiveDpError::Glasso(e)
    }
}

impl From<adp_linalg::LinalgError> for ActiveDpError {
    fn from(e: adp_linalg::LinalgError) -> Self {
        ActiveDpError::Linalg(e)
    }
}

impl From<adp_lf::LfError> for ActiveDpError {
    fn from(e: adp_lf::LfError) -> Self {
        ActiveDpError::Lf(e)
    }
}

impl From<adp_wire::WireError> for ActiveDpError {
    fn from(e: adp_wire::WireError) -> Self {
        ActiveDpError::SnapshotCodec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: ActiveDpError = adp_lf::LfError::IndexOutOfRange { index: 1, len: 0 }.into();
        assert!(e.to_string().contains("label functions"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(ActiveDpError::PoolExhausted
            .to_string()
            .contains("exhausted"));
    }
}
