//! The serializable oracle spec: which label sources a session runs and
//! how queries route between them.

/// How the cheap oracle corrupts labels, as a row-structured confusion
/// matrix over the (binary) classes: with probability `accuracy` the drawn
/// label is the true one, otherwise it falls to the off-diagonal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfusionSpec {
    /// Off-diagonal mass goes to the other class — symmetric noise.
    Uniform {
        /// Diagonal mass: probability the drawn label is the true label.
        accuracy: f64,
    },
    /// Off-diagonal mass all lands on one class — the systematic bias an
    /// LLM labeller shows toward a salient class.
    Biased {
        /// Diagonal mass: probability the drawn label is the true label.
        accuracy: f64,
        /// The class every miss falls to.
        bias: usize,
    },
}

impl ConfusionSpec {
    /// The diagonal mass, whichever shape the off-diagonal takes.
    pub fn accuracy(&self) -> f64 {
        match *self {
            ConfusionSpec::Uniform { accuracy } | ConfusionSpec::Biased { accuracy, .. } => {
                accuracy
            }
        }
    }
}

/// Per-query cost of each label source, in abstract budget units. The
/// defaults (1 cheap, 10 expensive) make one human answer worth ten LLM
/// answers, the ballpark DALL reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Cost of one cheap-oracle consult.
    pub cheap_cost: f64,
    /// Cost of one expensive-user consult.
    pub expensive_cost: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            cheap_cost: 1.0,
            expensive_cost: 10.0,
        }
    }
}

/// Which source a routed query consults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoutePolicy {
    /// Every query goes to the cheap oracle; the expensive user is never
    /// consulted.
    AlwaysCheap,
    /// Queries the model is *uncertain* about (uncertainty ≥ `tau`, or no
    /// model fit yet) go to the expensive user; confident ones go cheap —
    /// spend the human where the model most needs a reliable rule.
    UncertaintyThreshold {
        /// Uncertainty cut-point in `[0, 1]`; the engine's hint is
        /// `1 − max p(y|x)`, so binary tasks live in `[0, 0.5]`.
        tau: f64,
    },
    /// Consult the cheap oracle first and escalate to the expensive user
    /// only when it has no fresh candidate — both costs accrue on an
    /// escalated query.
    CheapThenEscalate,
}

/// Which oracle answers a session's queries — the serializable spec that
/// `ScenarioSpec` carries and the engine builds its label source from.
///
/// The grammar round-trips through `Display`/`FromStr`:
/// `simulated`, or `noisy:ACC[>BIAS][@POLICY][!CHEAP/EXPENSIVE]` with
/// `POLICY` one of `always-cheap`, `uncertainty:TAU`, `escalate`
/// (the default). Non-default parts only are printed.
///
/// ```
/// use adp_oracle::{ConfusionSpec, LatencyModel, OracleKind, RoutePolicy};
///
/// assert_eq!(OracleKind::default(), OracleKind::Simulated);
/// let kind: OracleKind = "noisy:0.8>1@uncertainty:0.3!1/25".parse().unwrap();
/// assert_eq!(
///     kind,
///     OracleKind::Noisy {
///         confusion: ConfusionSpec::Biased { accuracy: 0.8, bias: 1 },
///         latency: LatencyModel { cheap_cost: 1.0, expensive_cost: 25.0 },
///         policy: RoutePolicy::UncertaintyThreshold { tau: 0.3 },
///     }
/// );
/// assert_eq!(kind.to_string(), "noisy:0.8>1@uncertainty:0.3!1/25");
/// assert_eq!("noisy:0.85".parse::<OracleKind>().unwrap().to_string(), "noisy:0.85");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum OracleKind {
    /// The single expensive simulated user of §4.1.4 — the paper's setting
    /// and the default, pinned bitwise to the golden trajectory.
    #[default]
    Simulated,
    /// The expensive user *plus* a cheap confusion-structured labeller,
    /// routed per query by `policy` and billed by `latency`.
    Noisy {
        /// How the cheap labeller corrupts labels.
        confusion: ConfusionSpec,
        /// Per-query costs of the two sources.
        latency: LatencyModel,
        /// Which source each query consults.
        policy: RoutePolicy,
    },
}

impl OracleKind {
    /// `Noisy` with the defaults the sweeps use: uniform 0.7-accurate
    /// confusion, default costs, cheap-then-escalate routing.
    pub fn noisy() -> Self {
        OracleKind::Noisy {
            confusion: ConfusionSpec::Uniform { accuracy: 0.7 },
            latency: LatencyModel::default(),
            policy: RoutePolicy::CheapThenEscalate,
        }
    }

    /// Checks the spec is usable on a binary task: accuracy in `(0, 1]`,
    /// bias a valid class, `tau` in `[0, 1]`, costs finite and positive.
    pub fn validate(&self) -> Result<(), String> {
        let OracleKind::Noisy {
            confusion,
            latency,
            policy,
        } = self
        else {
            return Ok(());
        };
        let accuracy = confusion.accuracy();
        if !(accuracy > 0.0 && accuracy <= 1.0) {
            return Err(format!("oracle accuracy {accuracy} outside (0,1]"));
        }
        if let ConfusionSpec::Biased { bias, .. } = confusion {
            if *bias > 1 {
                return Err(format!(
                    "oracle bias class {bias} outside the binary label set"
                ));
            }
        }
        if let RoutePolicy::UncertaintyThreshold { tau } = policy {
            if !(0.0..=1.0).contains(tau) {
                return Err(format!("oracle routing tau {tau} outside [0,1]"));
            }
        }
        for (name, cost) in [
            ("cheap", latency.cheap_cost),
            ("expensive", latency.expensive_cost),
        ] {
            if !(cost.is_finite() && cost > 0.0) {
                return Err(format!(
                    "oracle {name} cost {cost} must be finite and positive"
                ));
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for OracleKind {
    /// `simulated`, or `noisy:ACC[>BIAS][@POLICY][!CHEAP/EXPENSIVE]` — what
    /// [`OracleKind::from_str`] parses back; default policy and latency are
    /// omitted.
    ///
    /// [`OracleKind::from_str`]: std::str::FromStr::from_str
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleKind::Simulated => f.write_str("simulated"),
            OracleKind::Noisy {
                confusion,
                latency,
                policy,
            } => {
                match confusion {
                    ConfusionSpec::Uniform { accuracy } => write!(f, "noisy:{accuracy}")?,
                    ConfusionSpec::Biased { accuracy, bias } => {
                        write!(f, "noisy:{accuracy}>{bias}")?
                    }
                }
                match policy {
                    RoutePolicy::CheapThenEscalate => {}
                    RoutePolicy::AlwaysCheap => f.write_str("@always-cheap")?,
                    RoutePolicy::UncertaintyThreshold { tau } => write!(f, "@uncertainty:{tau}")?,
                }
                if *latency != LatencyModel::default() {
                    write!(f, "!{}/{}", latency.cheap_cost, latency.expensive_cost)?;
                }
                Ok(())
            }
        }
    }
}

/// An oracle spec that failed to parse; [`Display`] shows the accepted
/// grammar.
///
/// [`Display`]: std::fmt::Display
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownOracleKind {
    /// The string that failed to parse.
    pub given: String,
}

impl std::fmt::Display for UnknownOracleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown oracle kind {:?}; expected simulated, noisy, or \
             noisy:ACC[>BIAS][@always-cheap|@uncertainty:TAU|@escalate][!CHEAP/EXPENSIVE]",
            self.given
        )
    }
}

impl std::error::Error for UnknownOracleKind {}

impl std::str::FromStr for OracleKind {
    type Err = UnknownOracleKind;

    /// Parses `simulated`, `noisy` (defaults), or the full
    /// `noisy:ACC[>BIAS][@POLICY][!CHEAP/EXPENSIVE]` form,
    /// case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        let err = || UnknownOracleKind { given: s.into() };
        match lower.as_str() {
            "simulated" => return Ok(OracleKind::Simulated),
            "noisy" => return Ok(OracleKind::noisy()),
            _ => {}
        }
        let rest = lower.strip_prefix("noisy:").ok_or_else(err)?;
        let (rest, latency) = match rest.split_once('!') {
            None => (rest, LatencyModel::default()),
            Some((head, costs)) => {
                let (cheap, expensive) = costs.split_once('/').ok_or_else(err)?;
                let cheap_cost: f64 = cheap.trim().parse().map_err(|_| err())?;
                let expensive_cost: f64 = expensive.trim().parse().map_err(|_| err())?;
                (
                    head,
                    LatencyModel {
                        cheap_cost,
                        expensive_cost,
                    },
                )
            }
        };
        let (rest, policy) = match rest.split_once('@') {
            None => (rest, RoutePolicy::CheapThenEscalate),
            Some((head, policy)) => {
                let policy = match policy {
                    "always-cheap" => RoutePolicy::AlwaysCheap,
                    "escalate" => RoutePolicy::CheapThenEscalate,
                    _ => {
                        let tau = policy.strip_prefix("uncertainty:").ok_or_else(err)?;
                        RoutePolicy::UncertaintyThreshold {
                            tau: tau.trim().parse().map_err(|_| err())?,
                        }
                    }
                };
                (head, policy)
            }
        };
        let confusion = match rest.split_once('>') {
            None => ConfusionSpec::Uniform {
                accuracy: rest.trim().parse().map_err(|_| err())?,
            },
            Some((acc, bias)) => ConfusionSpec::Biased {
                accuracy: acc.trim().parse().map_err(|_| err())?,
                bias: bias.trim().parse().map_err(|_| err())?,
            },
        };
        let kind = OracleKind::Noisy {
            confusion,
            latency,
            policy,
        };
        kind.validate().map_err(|_| err())?;
        Ok(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_roundtrips() {
        let kinds = [
            OracleKind::Simulated,
            OracleKind::noisy(),
            OracleKind::Noisy {
                confusion: ConfusionSpec::Biased {
                    accuracy: 0.9,
                    bias: 0,
                },
                latency: LatencyModel::default(),
                policy: RoutePolicy::AlwaysCheap,
            },
            OracleKind::Noisy {
                confusion: ConfusionSpec::Uniform { accuracy: 0.65 },
                latency: LatencyModel {
                    cheap_cost: 0.5,
                    expensive_cost: 40.0,
                },
                policy: RoutePolicy::UncertaintyThreshold { tau: 0.25 },
            },
        ];
        for kind in kinds {
            assert_eq!(kind.to_string().parse::<OracleKind>().unwrap(), kind);
        }
        assert_eq!("noisy".parse::<OracleKind>().unwrap(), OracleKind::noisy());
        assert_eq!(
            "noisy:0.7@escalate".parse::<OracleKind>().unwrap(),
            OracleKind::noisy()
        );
        assert_eq!(
            "SIMULATED".parse::<OracleKind>().unwrap(),
            OracleKind::Simulated
        );
    }

    #[test]
    fn bad_specs_are_typed_errors() {
        for bad in [
            "llm",
            "noisy:",
            "noisy:x",
            "noisy:0.7>2",
            "noisy:0.7@maybe",
            "noisy:0.7@uncertainty:",
            "noisy:0.7!3",
            "noisy:0.7!0/10",
            "noisy:1.5",
            "noisy:0",
        ] {
            let err = bad.parse::<OracleKind>().unwrap_err();
            assert_eq!(err.given, bad);
            assert!(err.to_string().contains("noisy:ACC"), "{err}");
        }
    }

    #[test]
    fn validate_checks_ranges() {
        assert!(OracleKind::Simulated.validate().is_ok());
        assert!(OracleKind::noisy().validate().is_ok());
        let bad_tau = OracleKind::Noisy {
            confusion: ConfusionSpec::Uniform { accuracy: 0.7 },
            latency: LatencyModel::default(),
            policy: RoutePolicy::UncertaintyThreshold { tau: 1.5 },
        };
        assert!(bad_tau.validate().unwrap_err().contains("tau"));
        let bad_cost = OracleKind::Noisy {
            confusion: ConfusionSpec::Uniform { accuracy: 0.7 },
            latency: LatencyModel {
                cheap_cost: f64::NAN,
                expensive_cost: 10.0,
            },
            policy: RoutePolicy::CheapThenEscalate,
        };
        assert!(bad_cost.validate().unwrap_err().contains("cost"));
        let bad_bias = OracleKind::Noisy {
            confusion: ConfusionSpec::Biased {
                accuracy: 0.7,
                bias: 9,
            },
            latency: LatencyModel::default(),
            policy: RoutePolicy::CheapThenEscalate,
        };
        assert!(bad_bias.validate().unwrap_err().contains("bias"));
    }
}
