//! Budget-aware routing between the expensive user and the cheap oracle.

use crate::{LatencyModel, NoisyOracle, Oracle, RouteChoice, RoutePolicy, RouteStats, RoutedState};
use adp_data::Dataset;
use adp_lf::{CandidateSpace, LabelFunction, SimulatedUser, UserState};

/// Routes each query to the expensive simulated user or the cheap
/// [`NoisyOracle`] under a [`RoutePolicy`], billing every consult against a
/// [`LatencyModel`] into [`RouteStats`].
///
/// The router consumes no randomness of its own — routing is a pure
/// function of the policy and the model's uncertainty hint — so a routed
/// trajectory is exactly as deterministic as its two member oracles.
/// Whenever either source answers, the other is told the returned key
/// ([`SimulatedUser::note_returned`] / [`NoisyOracle::note_returned`]), so
/// the two returned-sets stay supersets of the session's LF set and neither
/// source ever re-proposes a rule the session already holds.
#[derive(Debug)]
pub struct OracleRouter {
    expensive: SimulatedUser,
    cheap: NoisyOracle,
    policy: RoutePolicy,
    latency: LatencyModel,
    stats: RouteStats,
}

impl OracleRouter {
    /// A router over the two label sources.
    pub fn new(
        expensive: SimulatedUser,
        cheap: NoisyOracle,
        policy: RoutePolicy,
        latency: LatencyModel,
    ) -> Self {
        OracleRouter {
            expensive,
            cheap,
            policy,
            latency,
            stats: RouteStats::default(),
        }
    }

    /// Accumulated routing totals so far.
    pub fn stats(&self) -> RouteStats {
        self.stats
    }

    fn consult_cheap(
        &mut self,
        space: &CandidateSpace,
        train: &Dataset,
        query_dataset: &Dataset,
        idx: usize,
    ) -> Option<LabelFunction> {
        self.stats.cheap_queries += 1;
        self.stats.cheap_cost += self.latency.cheap_cost;
        let lf = self.cheap.respond(space, train, query_dataset, idx);
        if let Some(lf) = &lf {
            self.expensive.note_returned(lf.key());
        }
        lf
    }

    fn consult_expensive(
        &mut self,
        space: &CandidateSpace,
        train: &Dataset,
        query_dataset: &Dataset,
        idx: usize,
    ) -> Option<LabelFunction> {
        self.stats.expensive_queries += 1;
        self.stats.expensive_cost += self.latency.expensive_cost;
        let lf = self.expensive.respond(space, train, query_dataset, idx);
        if let Some(lf) = &lf {
            self.cheap.note_returned(lf.key());
        }
        lf
    }
}

impl Oracle for OracleRouter {
    /// Unhinted respond: routes as [`Oracle::respond_routed`] with no
    /// uncertainty signal (an `UncertaintyThreshold` policy treats that as
    /// maximally uncertain and consults the expensive user).
    fn respond(
        &mut self,
        space: &CandidateSpace,
        train: &Dataset,
        query_dataset: &Dataset,
        idx: usize,
    ) -> Option<LabelFunction> {
        self.respond_routed(space, train, query_dataset, idx, None)
            .0
    }

    fn respond_routed(
        &mut self,
        space: &CandidateSpace,
        train: &Dataset,
        query_dataset: &Dataset,
        idx: usize,
        uncertainty: Option<f64>,
    ) -> (Option<LabelFunction>, Option<RouteChoice>) {
        let go_expensive = match self.policy {
            RoutePolicy::AlwaysCheap | RoutePolicy::CheapThenEscalate => false,
            // No model yet means no confidence to lean on: spend the human.
            RoutePolicy::UncertaintyThreshold { tau } => uncertainty.map_or(true, |u| u >= tau),
        };
        if go_expensive {
            let lf = self.consult_expensive(space, train, query_dataset, idx);
            return (lf, Some(RouteChoice::Expensive));
        }
        let lf = self.consult_cheap(space, train, query_dataset, idx);
        if lf.is_none() && self.policy == RoutePolicy::CheapThenEscalate {
            self.stats.escalations += 1;
            let lf = self.consult_expensive(space, train, query_dataset, idx);
            return (lf, Some(RouteChoice::Escalated));
        }
        (lf, Some(RouteChoice::Cheap))
    }

    fn save_state(&self) -> Option<UserState> {
        Some(self.expensive.state())
    }

    fn load_state(&mut self, state: &UserState) -> bool {
        let config = self.expensive.config();
        self.expensive = SimulatedUser::from_state(config, state);
        true
    }

    fn rng_words(&self) -> Option<[u64; 4]> {
        Some(self.expensive.rng_state())
    }

    fn save_routed(&self) -> Option<RoutedState> {
        Some(RoutedState {
            cheap: self.cheap.state(),
            stats: self.stats,
        })
    }

    fn load_routed(&mut self, state: &RoutedState) -> bool {
        // Immutable parameters (confusion shape, threshold) come from the
        // spec that rebuilt this router; only the mutable parts replay.
        self.cheap.restore(&state.cheap);
        self.stats = state.stats;
        true
    }

    fn cheap_rng_words(&self) -> Option<[u64; 4]> {
        Some(self.cheap.rng_state())
    }

    fn route_stats(&self) -> Option<RouteStats> {
        Some(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConfusionSpec;
    use adp_data::{FeatureSet, Task};
    use adp_linalg::CsrMatrix;

    fn text_train() -> Dataset {
        Dataset {
            name: "t".into(),
            task: Task::SpamClassification,
            n_classes: 2,
            features: FeatureSet::Sparse(CsrMatrix::empty(4, 3)),
            labels: vec![1, 1, 0, 0],
            texts: None,
            encoded_docs: Some(vec![vec![0, 1], vec![0, 1], vec![0, 2], vec![2]]),
        }
    }

    fn router(policy: RoutePolicy) -> OracleRouter {
        OracleRouter::new(
            SimulatedUser::with_defaults(7),
            NoisyOracle::new(ConfusionSpec::Uniform { accuracy: 1.0 }, 0.6, 8),
            policy,
            LatencyModel::default(),
        )
    }

    #[test]
    fn always_cheap_never_bills_the_expensive_user() {
        let d = text_train();
        let space = CandidateSpace::build(&d);
        let mut r = router(RoutePolicy::AlwaysCheap);
        for i in 0..4 {
            let (_, choice) = r.respond_routed(&space, &d, &d, i, Some(0.5));
            assert_eq!(choice, Some(RouteChoice::Cheap));
        }
        let stats = r.stats();
        assert_eq!(stats.cheap_queries, 4);
        assert_eq!(stats.expensive_queries, 0);
        assert_eq!(stats.cheap_cost, 4.0);
        assert_eq!(stats.expensive_cost, 0.0);
        assert_eq!(stats.cheap_fraction(), 1.0);
    }

    #[test]
    fn uncertainty_threshold_splits_on_the_hint() {
        let d = text_train();
        let space = CandidateSpace::build(&d);
        let mut r = router(RoutePolicy::UncertaintyThreshold { tau: 0.3 });
        // No hint -> maximally uncertain -> expensive.
        let (_, c0) = r.respond_routed(&space, &d, &d, 0, None);
        assert_eq!(c0, Some(RouteChoice::Expensive));
        // Confident -> cheap; uncertain -> expensive.
        let (_, c1) = r.respond_routed(&space, &d, &d, 1, Some(0.1));
        assert_eq!(c1, Some(RouteChoice::Cheap));
        let (_, c2) = r.respond_routed(&space, &d, &d, 2, Some(0.45));
        assert_eq!(c2, Some(RouteChoice::Expensive));
        let stats = r.stats();
        assert_eq!((stats.cheap_queries, stats.expensive_queries), (1, 2));
        assert_eq!(stats.total_cost(), 1.0 + 20.0);
    }

    #[test]
    fn escalation_consults_both_and_bills_both() {
        let d = text_train();
        let space = CandidateSpace::build(&d);
        let mut r = router(RoutePolicy::CheapThenEscalate);
        // Exhaust doc 0's two candidates through the cheap side, then the
        // third consult on doc 0 must escalate (and the expensive side also
        // has nothing fresh: both were noted across).
        let mut escalated = None;
        for _ in 0..3 {
            let (lf, choice) = r.respond_routed(&space, &d, &d, 0, None);
            if choice == Some(RouteChoice::Escalated) {
                escalated = Some(lf);
                break;
            }
        }
        let lf = escalated.expect("third consult escalates");
        assert!(
            lf.is_none(),
            "both sides exhausted: escalation finds nothing"
        );
        let stats = r.stats();
        assert_eq!(stats.escalations, 1);
        assert_eq!(stats.cheap_queries, 3);
        assert_eq!(stats.expensive_queries, 1);
        assert_eq!(stats.total_cost(), 3.0 + 10.0);
    }

    #[test]
    fn answers_never_duplicate_across_sources() {
        let d = text_train();
        let space = CandidateSpace::build(&d);
        let mut r = router(RoutePolicy::UncertaintyThreshold { tau: 0.3 });
        let mut keys = std::collections::HashSet::new();
        // Alternate confident/uncertain so both sources answer.
        for round in 0..6 {
            let hint = if round % 2 == 0 { Some(0.1) } else { Some(0.5) };
            for i in 0..4 {
                if let (Some(lf), _) = r.respond_routed(&space, &d, &d, i, hint) {
                    assert!(keys.insert(lf.key()), "duplicate LF across sources");
                }
            }
        }
        assert!(!keys.is_empty());
    }

    #[test]
    fn routed_state_roundtrips_bitwise() {
        let d = text_train();
        let space = CandidateSpace::build(&d);
        let mut r = router(RoutePolicy::CheapThenEscalate);
        for i in 0..3 {
            let _ = r.respond_routed(&space, &d, &d, i, None);
        }
        let user = r.save_state().unwrap();
        let routed = r.save_routed().unwrap();
        let tail: Vec<_> = (0..4)
            .map(|i| r.respond_routed(&space, &d, &d, i, None))
            .map(|(lf, c)| (lf.map(|lf| lf.key()), c))
            .collect();
        let mut resumed = router(RoutePolicy::CheapThenEscalate);
        assert!(resumed.load_state(&user));
        assert!(resumed.load_routed(&routed));
        assert_eq!(resumed.route_stats(), Some(routed.stats));
        let resumed_tail: Vec<_> = (0..4)
            .map(|i| resumed.respond_routed(&space, &d, &d, i, None))
            .map(|(lf, c)| (lf.map(|lf| lf.key()), c))
            .collect();
        assert_eq!(tail, resumed_tail);
    }

    #[test]
    fn router_consumes_no_randomness_of_its_own() {
        // Same member seeds, different policies that happen to route the
        // same way -> identical streams afterwards.
        let d = text_train();
        let space = CandidateSpace::build(&d);
        let mut a = router(RoutePolicy::AlwaysCheap);
        let mut b = router(RoutePolicy::UncertaintyThreshold { tau: 0.9 });
        for i in 0..4 {
            let (la, _) = a.respond_routed(&space, &d, &d, i, Some(0.0));
            let (lb, _) = b.respond_routed(&space, &d, &d, i, Some(0.0));
            assert_eq!(la.map(|l| l.key()), lb.map(|l| l.key()));
        }
        assert_eq!(a.cheap_rng_words(), b.cheap_rng_words());
        assert_eq!(a.rng_words(), b.rng_words());
    }
}
