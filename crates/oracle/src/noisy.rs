//! The cheap confusion-structured labeller.

use crate::ConfusionSpec;
use adp_data::Dataset;
use adp_lf::{Candidate, CandidateSpace, LabelFunction, LfKey, UserState};
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// A cheap, biased labeller standing in for an LLM: instead of reading the
/// true label the way the simulated user does, it *draws* a label from the
/// confusion row of the true label (the noisy-source model of the original
/// Data Programming paper) and proposes an LF from that label's candidate
/// set. Its answers are therefore plentiful and fast but systematically
/// wrong at rate `1 − accuracy`, with the miss mass shaped by
/// [`ConfusionSpec`].
///
/// Mechanically it mirrors [`adp_lf::SimulatedUser`]: one RNG draw decides
/// the label, candidates are filtered against the already-returned set, and
/// one coverage-weighted draw picks the LF. Exactly two RNG draws per
/// consult (one when no candidate survives), so the stream position is a
/// pure function of the consult sequence.
#[derive(Debug)]
pub struct NoisyOracle {
    confusion: ConfusionSpec,
    acc_threshold: f64,
    returned: HashSet<LfKey>,
    rng: rand::rngs::StdRng,
}

impl NoisyOracle {
    /// A cheap oracle with the given confusion structure, candidate
    /// accuracy threshold, and RNG seed.
    pub fn new(confusion: ConfusionSpec, acc_threshold: f64, seed: u64) -> Self {
        NoisyOracle {
            confusion,
            acc_threshold,
            returned: HashSet::new(),
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// Captures the oracle's mutable state (RNG stream + returned-LF set)
    /// as canonical plain data, same shape as the simulated user's.
    pub fn state(&self) -> UserState {
        let mut returned: Vec<LfKey> = self.returned.iter().copied().collect();
        returned.sort_unstable();
        UserState {
            rng: self.rng.state(),
            returned,
        }
    }

    /// Rebuilds the oracle mid-trajectory from its immutable parameters and
    /// a previously captured [`UserState`].
    pub fn from_state(confusion: ConfusionSpec, acc_threshold: f64, state: &UserState) -> Self {
        NoisyOracle {
            confusion,
            acc_threshold,
            returned: state.returned.iter().copied().collect(),
            rng: rand::rngs::StdRng::from_state(state.rng),
        }
    }

    /// Replays a previously captured [`UserState`] onto this oracle,
    /// keeping its immutable parameters (confusion shape, threshold) as
    /// constructed — the spec that rebuilt the session supplies those.
    pub fn restore(&mut self, state: &UserState) {
        self.returned = state.returned.iter().copied().collect();
        self.rng = rand::rngs::StdRng::from_state(state.rng);
    }

    /// The RNG stream position alone.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Number of distinct LFs returned so far.
    pub fn n_returned(&self) -> usize {
        self.returned.len()
    }

    /// Marks `key` as already returned without consuming RNG — the router
    /// calls this when the *expensive* user answers, so the cheap side
    /// never re-proposes an LF the session already holds.
    pub fn note_returned(&mut self, key: LfKey) {
        self.returned.insert(key);
    }

    /// Draws a label from the confusion row of `true_label` — one RNG draw,
    /// always consumed, so the stream position does not depend on the draw.
    fn draw_label(&mut self, true_label: usize, n_classes: usize) -> usize {
        let r = self.rng.gen::<f64>();
        match self.confusion {
            ConfusionSpec::Uniform { accuracy } => {
                if r < accuracy {
                    true_label
                } else {
                    debug_assert!(n_classes == 2, "uniform confusion assumes binary");
                    1 - true_label
                }
            }
            ConfusionSpec::Biased { accuracy, bias } => {
                if r < accuracy {
                    true_label
                } else {
                    bias
                }
            }
        }
    }

    /// Responds to a query on instance `idx` of `query_dataset`: draws a
    /// (possibly wrong) label from the confusion row, then proposes a fresh
    /// coverage-weighted LF from that label's candidate set. `None` when no
    /// fresh candidate exists for the drawn label.
    pub fn respond(
        &mut self,
        space: &CandidateSpace,
        train: &Dataset,
        query_dataset: &Dataset,
        idx: usize,
    ) -> Option<LabelFunction> {
        let true_label = query_dataset.labels[idx];
        let target = self.draw_label(true_label, query_dataset.n_classes);
        let candidates =
            space.candidates_for(train, query_dataset, idx, target, self.acc_threshold);
        let fresh: Vec<&Candidate> = candidates
            .iter()
            .filter(|c| !self.returned.contains(&c.lf.key()))
            .collect();
        if fresh.is_empty() {
            return None;
        }
        let total: f64 = fresh.iter().map(|c| c.coverage).sum();
        let mut draw = self.rng.gen::<f64>() * total;
        let mut chosen = fresh[fresh.len() - 1];
        for c in &fresh {
            draw -= c.coverage;
            if draw <= 0.0 {
                chosen = c;
                break;
            }
        }
        self.returned.insert(chosen.lf.key());
        Some(chosen.lf.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_data::{FeatureSet, Task};
    use adp_linalg::CsrMatrix;

    fn text_train() -> Dataset {
        // tokens: 0 in docs {0,1,2} (classes 1,1,0), 1 in {0,1} (1,1),
        //         2 in {2,3} (0,0).
        Dataset {
            name: "t".into(),
            task: Task::SpamClassification,
            n_classes: 2,
            features: FeatureSet::Sparse(CsrMatrix::empty(4, 3)),
            labels: vec![1, 1, 0, 0],
            texts: None,
            encoded_docs: Some(vec![vec![0, 1], vec![0, 1], vec![0, 2], vec![2]]),
        }
    }

    #[test]
    fn perfect_accuracy_tracks_the_true_label() {
        let d = text_train();
        let space = CandidateSpace::build(&d);
        let mut oracle = NoisyOracle::new(ConfusionSpec::Uniform { accuracy: 1.0 }, 0.6, 7);
        let lf = oracle.respond(&space, &d, &d, 0).expect("candidates exist");
        assert_eq!(lf.label(), 1);
    }

    #[test]
    fn zero_accuracy_bias_always_misses_to_the_bias_class() {
        let d = text_train();
        let space = CandidateSpace::build(&d);
        // accuracy→0 via a bias spec whose diagonal never fires is not
        // representable (accuracy must be > 0 in the spec); test the miss
        // path directly with a tiny diagonal over many seeds instead.
        let mut hit_bias = 0;
        for seed in 0..50 {
            let mut oracle = NoisyOracle::new(
                ConfusionSpec::Biased {
                    accuracy: 0.05,
                    bias: 1,
                },
                0.6,
                seed,
            );
            // Query doc 2 (true label 0): a miss targets class 1, and token
            // 0 has acc(·,1) = 2/3 > 0.6, so a biased LF exists.
            if let Some(lf) = oracle.respond(&space, &d, &d, 2) {
                if lf.label() == 1 {
                    hit_bias += 1;
                }
            }
        }
        assert!(hit_bias > 30, "bias draws: {hit_bias}");
    }

    #[test]
    fn never_repeats_and_notes_external_returns() {
        let d = text_train();
        let space = CandidateSpace::build(&d);
        let mut oracle = NoisyOracle::new(ConfusionSpec::Uniform { accuracy: 1.0 }, 0.6, 2);
        let first = oracle.respond(&space, &d, &d, 0).expect("first answer");
        // Marking the other candidate as externally returned leaves nothing.
        let second = oracle.respond(&space, &d, &d, 0);
        if let Some(lf) = &second {
            assert_ne!(lf.key(), first.key(), "duplicate LF returned");
        }
        let mut fresh = NoisyOracle::new(ConfusionSpec::Uniform { accuracy: 1.0 }, 0.6, 2);
        fresh.note_returned(first.key());
        if let Some(second) = second {
            fresh.note_returned(second.key());
        }
        assert!(fresh.respond(&space, &d, &d, 0).is_none());
    }

    #[test]
    fn state_roundtrip_resumes_mid_trajectory() {
        let d = text_train();
        let space = CandidateSpace::build(&d);
        let mut oracle = NoisyOracle::new(ConfusionSpec::Uniform { accuracy: 0.7 }, 0.6, 11);
        for i in 0..3 {
            let _ = oracle.respond(&space, &d, &d, i);
        }
        let saved = oracle.state();
        let tail: Vec<Option<LfKey>> = (0..4)
            .map(|i| oracle.respond(&space, &d, &d, i).map(|lf| lf.key()))
            .collect();
        let mut resumed =
            NoisyOracle::from_state(ConfusionSpec::Uniform { accuracy: 0.7 }, 0.6, &saved);
        let resumed_tail: Vec<Option<LfKey>> = (0..4)
            .map(|i| resumed.respond(&space, &d, &d, i).map(|lf| lf.key()))
            .collect();
        assert_eq!(tail, resumed_tail);
        // Canonical: keys sorted, stable across a save/load cycle.
        assert_eq!(
            saved,
            NoisyOracle::from_state(ConfusionSpec::Uniform { accuracy: 0.7 }, 0.6, &saved).state()
        );
    }

    #[test]
    fn rng_position_is_consult_count_only() {
        // A consult that returns None (no candidates) must consume the same
        // number of draws as one that answers, so replay never desyncs.
        let d = text_train();
        let space = CandidateSpace::build(&d);
        let mut a = NoisyOracle::new(ConfusionSpec::Uniform { accuracy: 1.0 }, 0.6, 5);
        let mut b = NoisyOracle::new(ConfusionSpec::Uniform { accuracy: 1.0 }, 0.6, 5);
        // `a` consults on a doc with candidates; `b` on one with none once
        // everything is marked returned. One label draw happens either way;
        // the coverage draw only on answers — positions legitimately differ
        // there, but a *None from an empty fresh set* must cost exactly the
        // label draw:
        for key in [
            a.respond(&space, &d, &d, 0).unwrap().key(),
            a.respond(&space, &d, &d, 0).map(|lf| lf.key()).unwrap_or(
                // doc 0 has two candidates; both may already be gone
                adp_lf::LabelFunction::Keyword { token: 0, label: 1 }.key(),
            ),
        ] {
            b.note_returned(key);
        }
        let before = b.rng_state();
        assert!(b.respond(&space, &d, &d, 0).is_none());
        let after = b.rng_state();
        assert_ne!(before, after, "label draw must consume RNG");
        // A second exhausted consult advances by the same single draw.
        let again = {
            b.respond(&space, &d, &d, 0);
            b.rng_state()
        };
        assert_ne!(after, again);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = text_train();
        let space = CandidateSpace::build(&d);
        let run = |seed| {
            let mut o = NoisyOracle::new(ConfusionSpec::Uniform { accuracy: 0.7 }, 0.6, seed);
            (0..4)
                .map(|i| o.respond(&space, &d, &d, i).map(|lf| lf.key()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }
}
