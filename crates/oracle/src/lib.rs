//! Labelling oracles for ActiveDP sessions.
//!
//! The original evaluation protocol has exactly one label source: the
//! expensive simulated user of paper §4.1.4 ([`adp_lf::SimulatedUser`]).
//! This crate generalises that into a small subsystem:
//!
//! * the [`Oracle`] trait — anything that can answer a query instance with
//!   a label function (an interactive deployment would implement it over a
//!   real UI);
//! * [`NoisyOracle`] — a cheap, biased, confusion-matrix-structured
//!   labeller standing in for an LLM: it answers from the candidate set of
//!   a label *drawn from a confusion row* of the true label, the way the
//!   original Data Programming paper models noisy sources;
//! * [`OracleRouter`] — budget-aware routing between the two, with
//!   per-query cost accounting ([`RouteStats`]) under a [`RoutePolicy`];
//! * [`OracleKind`] — the serializable spec (`simulated` |
//!   `noisy:ACC[>BIAS][@POLICY][!CHEAP/EXPENSIVE]`) that scenario files
//!   carry and `SessionConfig` embeds.
//!
//! Everything is deterministic given a seed: the cheap oracle owns its own
//! RNG stream (derived from the master seed in `activedp::config`), the
//! router consumes no randomness of its own, and both oracles' mutable
//! state round-trips through plain-data snapshots ([`RoutedState`]).

mod kind;
mod noisy;
mod router;

pub use kind::{ConfusionSpec, LatencyModel, OracleKind, RoutePolicy, UnknownOracleKind};
pub use noisy::NoisyOracle;
pub use router::OracleRouter;

use adp_data::Dataset;
use adp_lf::{CandidateSpace, LabelFunction, SimulatedUser, UserState};

/// Which label source answered one routed query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteChoice {
    /// The cheap noisy oracle answered.
    Cheap,
    /// The expensive simulated user answered directly.
    Expensive,
    /// The cheap oracle came up empty and the query escalated to the
    /// expensive user; both costs accrued.
    Escalated,
}

impl RouteChoice {
    /// Stable wire tag (`Cheap = 0`, `Expensive = 1`, `Escalated = 2`).
    pub fn tag(self) -> u8 {
        match self {
            RouteChoice::Cheap => 0,
            RouteChoice::Expensive => 1,
            RouteChoice::Escalated => 2,
        }
    }

    /// Inverse of [`RouteChoice::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(RouteChoice::Cheap),
            1 => Some(RouteChoice::Expensive),
            2 => Some(RouteChoice::Escalated),
            _ => None,
        }
    }
}

/// What a per-step event records about routing: which source answered and
/// where the cheap oracle's RNG stream landed (the expensive user's stream
/// is already journalled as the event's `oracle_rng`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutedStep {
    /// Which label source answered.
    pub choice: RouteChoice,
    /// Cheap-oracle RNG words *after* the query.
    pub cheap_rng: [u64; 4],
}

/// Per-session routing totals: how many queries each source answered and
/// what they cost under the session's [`LatencyModel`]. Consults are
/// counted even when the oracle returns no LF — the budget is spent either
/// way, mirroring how iterations spend the labelling budget.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RouteStats {
    /// Queries answered by the cheap oracle (escalated queries count here
    /// too: the cheap consult happened).
    pub cheap_queries: u64,
    /// Queries answered by the expensive user (direct + escalated).
    pub expensive_queries: u64,
    /// Queries that consulted the cheap oracle first and escalated.
    pub escalations: u64,
    /// Total cost accrued on the cheap oracle.
    pub cheap_cost: f64,
    /// Total cost accrued on the expensive user.
    pub expensive_cost: f64,
}

impl RouteStats {
    /// Total routed cost across both sources.
    pub fn total_cost(&self) -> f64 {
        self.cheap_cost + self.expensive_cost
    }

    /// Fraction of consults the cheap oracle handled (0 when nothing was
    /// consulted). An escalated query consults both sources and counts on
    /// both sides.
    pub fn cheap_fraction(&self) -> f64 {
        let total = self.cheap_queries + self.expensive_queries;
        if total == 0 {
            0.0
        } else {
            self.cheap_queries as f64 / total as f64
        }
    }
}

/// Everything mutable about a routed oracle beyond the expensive user's
/// [`UserState`]: the cheap oracle's own state plus the accumulated
/// [`RouteStats`]. Appended to session snapshots so a resumed routed
/// session continues bitwise.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedState {
    /// Cheap-oracle RNG stream + returned-LF set, canonical (keys sorted).
    pub cheap: UserState,
    /// Accumulated routing totals.
    pub stats: RouteStats,
}

/// A source of label functions in response to query instances.
pub trait Oracle: Send {
    /// Inspects instance `idx` of `query_dataset` and (optionally) returns
    /// a new label function. `None` still consumes the iteration's budget,
    /// mirroring a user who cannot think of a rule for the instance.
    fn respond(
        &mut self,
        space: &CandidateSpace,
        train: &Dataset,
        query_dataset: &Dataset,
        idx: usize,
    ) -> Option<LabelFunction>;

    /// Routed variant of [`Oracle::respond`]: `uncertainty` is the model's
    /// uncertainty hint for the query instance (`None` before any model is
    /// fit), and the second return names which source answered. The default
    /// delegates to `respond` and reports no route — single-oracle sessions
    /// stay byte-for-byte what they were.
    fn respond_routed(
        &mut self,
        space: &CandidateSpace,
        train: &Dataset,
        query_dataset: &Dataset,
        idx: usize,
        uncertainty: Option<f64>,
    ) -> (Option<LabelFunction>, Option<RouteChoice>) {
        let _ = uncertainty;
        (self.respond(space, train, query_dataset, idx), None)
    }

    /// Captures the oracle's mutable state for a session snapshot, when the
    /// oracle supports it. The default is `None`: a custom oracle (a human
    /// behind a UI, say) has no replayable state, and `Engine::snapshot`
    /// reports `SnapshotUnsupported` for such sessions instead of silently
    /// writing one that cannot resume faithfully.
    fn save_state(&self) -> Option<UserState> {
        None
    }

    /// Restores state captured by [`Oracle::save_state`]. Returns `false`
    /// (the default) when the oracle cannot replay it, which makes resuming
    /// fail loudly rather than continue with a desynchronised oracle.
    fn load_state(&mut self, state: &UserState) -> bool {
        let _ = state;
        false
    }

    /// The oracle's RNG stream position alone — what a per-step event
    /// records (the rest of the oracle's state is reconstructed from the
    /// logged LFs at replay time). The default derives it from
    /// [`Oracle::save_state`]; oracles with a cheaper accessor should
    /// override it, since this runs once per journalled step.
    fn rng_words(&self) -> Option<[u64; 4]> {
        self.save_state().map(|s| s.rng)
    }

    /// Routing state beyond [`Oracle::save_state`] — `None` (the default)
    /// for single-source oracles, the cheap side + stats for a router.
    fn save_routed(&self) -> Option<RoutedState> {
        None
    }

    /// Restores state captured by [`Oracle::save_routed`]. `false` (the
    /// default) means this oracle has no routed side to restore.
    fn load_routed(&mut self, state: &RoutedState) -> bool {
        let _ = state;
        false
    }

    /// The cheap side's RNG words, when there is one.
    fn cheap_rng_words(&self) -> Option<[u64; 4]> {
        None
    }

    /// Accumulated routing totals, when this oracle routes.
    fn route_stats(&self) -> Option<RouteStats> {
        None
    }
}

impl Oracle for SimulatedUser {
    fn respond(
        &mut self,
        space: &CandidateSpace,
        train: &Dataset,
        query_dataset: &Dataset,
        idx: usize,
    ) -> Option<LabelFunction> {
        SimulatedUser::respond(self, space, train, query_dataset, idx)
    }

    fn save_state(&self) -> Option<UserState> {
        Some(SimulatedUser::state(self))
    }

    fn load_state(&mut self, state: &UserState) -> bool {
        // The config (thresholds, noise rate) stays whatever this user was
        // constructed with — the snapshot's `SessionConfig` rebuilds it —
        // so only the mutable parts are replayed here.
        *self = SimulatedUser::from_state(self.config(), state);
        true
    }

    fn rng_words(&self) -> Option<[u64; 4]> {
        Some(SimulatedUser::rng_state(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_data::{FeatureSet, Task};
    use adp_linalg::CsrMatrix;

    fn tiny_text() -> Dataset {
        Dataset {
            name: "t".into(),
            task: Task::SpamClassification,
            n_classes: 2,
            features: FeatureSet::Sparse(CsrMatrix::empty(2, 1)),
            labels: vec![1, 0],
            texts: None,
            encoded_docs: Some(vec![vec![0], vec![0]]),
        }
    }

    #[test]
    fn simulated_user_implements_oracle() {
        let d = tiny_text();
        let space = CandidateSpace::build(&d);
        let mut user: Box<dyn Oracle> = Box::new(SimulatedUser::with_defaults(0));
        // Token 0 has accuracy 0.5 on each label -> below threshold -> None.
        assert!(user.respond(&space, &d, &d, 0).is_none());
        // A plain user has no routed side.
        assert!(user.save_routed().is_none());
        assert!(user.cheap_rng_words().is_none());
        assert!(user.route_stats().is_none());
    }

    #[test]
    fn default_routed_respond_reports_no_route() {
        let d = tiny_text();
        let space = CandidateSpace::build(&d);
        let mut user = SimulatedUser::with_defaults(0);
        let (lf, route) = user.respond_routed(&space, &d, &d, 0, Some(0.4));
        assert!(lf.is_none());
        assert!(route.is_none());
    }

    #[test]
    fn route_choice_tags_roundtrip() {
        for choice in [
            RouteChoice::Cheap,
            RouteChoice::Expensive,
            RouteChoice::Escalated,
        ] {
            assert_eq!(RouteChoice::from_tag(choice.tag()), Some(choice));
        }
        assert_eq!(RouteChoice::from_tag(3), None);
    }

    #[test]
    fn route_stats_fractions() {
        let stats = RouteStats {
            cheap_queries: 3,
            expensive_queries: 1,
            escalations: 1,
            cheap_cost: 3.0,
            expensive_cost: 10.0,
        };
        assert_eq!(stats.total_cost(), 13.0);
        assert_eq!(stats.cheap_fraction(), 0.75);
        assert_eq!(RouteStats::default().cheap_fraction(), 0.0);
    }
}
