//! Vocabulary construction with document-frequency pruning.

use std::collections::HashMap;

/// Immutable token ↔ id mapping with per-token document frequencies.
///
/// Ids are assigned deterministically: tokens are ranked by descending
/// document frequency, ties broken lexicographically, so two builds over the
/// same corpus produce identical id spaces regardless of hash order.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    token_to_id: HashMap<String, u32>,
    id_to_token: Vec<String>,
    doc_freq: Vec<u32>,
    n_docs: usize,
}

impl Vocabulary {
    /// Number of tokens in the vocabulary.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// `true` when no token survived pruning.
    pub fn is_empty(&self) -> bool {
        self.id_to_token.is_empty()
    }

    /// Number of documents the vocabulary was built from.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Id of `token`, if present.
    pub fn id(&self, token: &str) -> Option<u32> {
        self.token_to_id.get(token).copied()
    }

    /// Token string for `id`.
    ///
    /// # Panics
    /// Panics when `id` is out of range.
    pub fn token(&self, id: u32) -> &str {
        &self.id_to_token[id as usize]
    }

    /// Document frequency of the token with this id.
    pub fn doc_freq(&self, id: u32) -> u32 {
        self.doc_freq[id as usize]
    }

    /// Encodes a tokenized document into ids, silently dropping
    /// out-of-vocabulary tokens. Duplicates are preserved.
    pub fn encode(&self, tokens: &[String]) -> Vec<u32> {
        tokens.iter().filter_map(|t| self.id(t)).collect()
    }
}

/// Streaming vocabulary builder: feed documents, then prune and freeze.
#[derive(Debug, Default)]
pub struct VocabularyBuilder {
    doc_freq: HashMap<String, u32>,
    n_docs: usize,
}

impl VocabularyBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one document's distinct tokens.
    pub fn add_doc(&mut self, tokens: &[String]) {
        self.n_docs += 1;
        let mut seen: Vec<&String> = Vec::with_capacity(tokens.len());
        for t in tokens {
            if !seen.contains(&t) {
                seen.push(t);
                *self.doc_freq.entry(t.clone()).or_insert(0) += 1;
            }
        }
    }

    /// Freezes the vocabulary.
    ///
    /// * `min_df` — drop tokens appearing in fewer than this many documents;
    /// * `max_df_ratio` — drop tokens appearing in more than this fraction of
    ///   documents (stopword pruning);
    /// * `max_size` — keep at most this many tokens (highest df first),
    ///   `usize::MAX` for unbounded.
    pub fn finish(self, min_df: u32, max_df_ratio: f64, max_size: usize) -> Vocabulary {
        let max_df = (max_df_ratio * self.n_docs as f64).ceil() as u32;
        let mut kept: Vec<(String, u32)> = self
            .doc_freq
            .into_iter()
            .filter(|&(_, df)| df >= min_df && df <= max_df)
            .collect();
        kept.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        kept.truncate(max_size);

        let mut token_to_id = HashMap::with_capacity(kept.len());
        let mut id_to_token = Vec::with_capacity(kept.len());
        let mut doc_freq = Vec::with_capacity(kept.len());
        for (i, (tok, df)) in kept.into_iter().enumerate() {
            token_to_id.insert(tok.clone(), i as u32);
            id_to_token.push(tok);
            doc_freq.push(df);
        }
        Vocabulary {
            token_to_id,
            id_to_token,
            doc_freq,
            n_docs: self.n_docs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    fn small_vocab() -> Vocabulary {
        let mut b = VocabularyBuilder::new();
        b.add_doc(&toks(&["spam", "check", "channel"]));
        b.add_doc(&toks(&["check", "reviews"]));
        b.add_doc(&toks(&["spam", "check"]));
        b.finish(1, 1.0, usize::MAX)
    }

    #[test]
    fn ids_ranked_by_df_then_lexicographic() {
        let v = small_vocab();
        // df: check=3, spam=2, channel=1, reviews=1.
        assert_eq!(v.id("check"), Some(0));
        assert_eq!(v.id("spam"), Some(1));
        assert_eq!(v.id("channel"), Some(2));
        assert_eq!(v.id("reviews"), Some(3));
        assert_eq!(v.token(0), "check");
        assert_eq!(v.doc_freq(0), 3);
    }

    #[test]
    fn duplicate_tokens_count_once_per_doc() {
        let mut b = VocabularyBuilder::new();
        b.add_doc(&toks(&["spam", "spam", "spam"]));
        let v = b.finish(1, 1.0, usize::MAX);
        assert_eq!(v.doc_freq(v.id("spam").unwrap()), 1);
    }

    #[test]
    fn min_df_prunes_rare_tokens() {
        let mut b = VocabularyBuilder::new();
        b.add_doc(&toks(&["common", "rare"]));
        b.add_doc(&toks(&["common"]));
        let v = b.finish(2, 1.0, usize::MAX);
        assert_eq!(v.len(), 1);
        assert!(v.id("rare").is_none());
    }

    #[test]
    fn max_df_prunes_stopwords() {
        let mut b = VocabularyBuilder::new();
        for _ in 0..10 {
            b.add_doc(&toks(&["the", "word"]));
        }
        b.add_doc(&toks(&["word2"]));
        // "the"/"word" appear in 10/11 docs > 0.8 ratio.
        let v = b.finish(1, 0.8, usize::MAX);
        assert!(v.id("the").is_none());
        assert!(v.id("word2").is_some());
    }

    #[test]
    fn max_size_keeps_most_frequent() {
        let v = {
            let mut b = VocabularyBuilder::new();
            b.add_doc(&toks(&["a1", "b2"]));
            b.add_doc(&toks(&["a1"]));
            b
        }
        .finish(1, 1.0, 1);
        assert_eq!(v.len(), 1);
        assert!(v.id("a1").is_some());
    }

    #[test]
    fn encode_drops_oov_keeps_duplicates() {
        let v = small_vocab();
        let enc = v.encode(&toks(&["check", "unknown", "check"]));
        assert_eq!(enc, vec![0, 0]);
    }

    #[test]
    fn empty_builder_yields_empty_vocab() {
        let v = VocabularyBuilder::new().finish(1, 1.0, usize::MAX);
        assert!(v.is_empty());
        assert_eq!(v.n_docs(), 0);
    }

    #[test]
    fn determinism_across_builds() {
        let build = || {
            let mut b = VocabularyBuilder::new();
            b.add_doc(&toks(&["x", "y", "z"]));
            b.add_doc(&toks(&["y", "z"]));
            b.add_doc(&toks(&["z"]));
            b.finish(1, 1.0, usize::MAX)
        };
        let v1 = build();
        let v2 = build();
        for t in ["x", "y", "z"] {
            assert_eq!(v1.id(t), v2.id(t));
        }
    }
}
