//! Unicode-naive word tokenizer.
//!
//! Splits on anything that is not alphanumeric, lowercases, and drops tokens
//! shorter than a configurable minimum. The synthetic corpora in `adp-data`
//! are plain space-separated words, but the tokenizer stays robust to real
//! text (punctuation, mixed case, digits).

/// Tokenizer settings.
#[derive(Debug, Clone, Copy)]
pub struct TokenizerConfig {
    /// Lowercase tokens before emitting.
    pub lowercase: bool,
    /// Minimum token length in characters; shorter tokens are dropped.
    pub min_len: usize,
}

impl Default for TokenizerConfig {
    fn default() -> Self {
        TokenizerConfig {
            lowercase: true,
            min_len: 2,
        }
    }
}

/// Tokenizes `text` into owned tokens according to `cfg`.
pub fn tokenize(text: &str, cfg: TokenizerConfig) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            if cfg.lowercase {
                current.extend(ch.to_lowercase());
            } else {
                current.push(ch);
            }
        } else if !current.is_empty() {
            flush(&mut current, &mut tokens, cfg.min_len);
        }
    }
    if !current.is_empty() {
        flush(&mut current, &mut tokens, cfg.min_len);
    }
    tokens
}

fn flush(current: &mut String, tokens: &mut Vec<String>, min_len: usize) {
    if current.chars().count() >= min_len {
        tokens.push(std::mem::take(current));
    } else {
        current.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        let t = tokenize("check out, my channel!", TokenizerConfig::default());
        assert_eq!(t, vec!["check", "out", "my", "channel"]);
    }

    #[test]
    fn lowercases_by_default() {
        let t = tokenize("Check OUT", TokenizerConfig::default());
        assert_eq!(t, vec!["check", "out"]);
    }

    #[test]
    fn preserves_case_when_disabled() {
        let cfg = TokenizerConfig {
            lowercase: false,
            min_len: 1,
        };
        assert_eq!(tokenize("Check", cfg), vec!["Check"]);
    }

    #[test]
    fn drops_short_tokens() {
        let t = tokenize("a an the i", TokenizerConfig::default());
        assert_eq!(t, vec!["an", "the"]);
    }

    #[test]
    fn min_len_one_keeps_everything() {
        let cfg = TokenizerConfig {
            lowercase: true,
            min_len: 1,
        };
        assert_eq!(tokenize("a b", cfg), vec!["a", "b"]);
    }

    #[test]
    fn handles_digits_and_mixed() {
        let t = tokenize("room 42 is occupied-now", TokenizerConfig::default());
        assert_eq!(t, vec!["room", "42", "is", "occupied", "now"]);
    }

    #[test]
    fn empty_and_symbol_only_inputs() {
        assert!(tokenize("", TokenizerConfig::default()).is_empty());
        assert!(tokenize("!!! ... ??", TokenizerConfig::default()).is_empty());
    }

    #[test]
    fn unicode_words_survive() {
        let cfg = TokenizerConfig {
            lowercase: true,
            min_len: 2,
        };
        assert_eq!(tokenize("Café prêt", cfg), vec!["café", "prêt"]);
    }
}
