//! TF-IDF vectorisation (scikit-learn compatible weighting).
//!
//! * term frequency = raw in-document count,
//! * idf(t) = ln((1 + n) / (1 + df(t))) + 1   (smooth idf),
//! * every row L2-normalised.
//!
//! Tokenisation and row weighting are embarrassingly parallel per
//! document, so both fan out through [`adp_linalg::parallel::map_chunks`]
//! under its fixed-chunk determinism contract: each document's tokens and
//! weighted entries are a pure function of that document alone, chunk
//! results come back in chunk-index order, and the vocabulary/CSR assembly
//! stays sequential — so serial and parallel execution are **bitwise
//! identical** (pinned by `fit_transform_serial_matches_parallel`).

use crate::tokenize::{tokenize, TokenizerConfig};
use crate::vocab::{Vocabulary, VocabularyBuilder};
use adp_linalg::parallel::{self, Execution};
use adp_linalg::{CsrBuilder, CsrMatrix};
use std::collections::HashMap;

/// Documents per [`parallel::map_chunks`] chunk. Fixed (never derived from
/// the machine) so chunk boundaries — and therefore any grouping-sensitive
/// arithmetic — are identical at every thread count.
const DOC_CHUNK: usize = 64;

/// Below this many documents the corpus fans out to a single chunk anyway;
/// skip the scoped-thread setup entirely.
const MIN_PARALLEL_DOCS: usize = 2 * DOC_CHUNK;

/// The TF-IDF design matrix together with the vocabulary that indexes it.
#[derive(Debug, Clone)]
pub struct TfidfMatrix {
    /// Documents × vocabulary, L2-normalised rows.
    pub matrix: CsrMatrix,
    /// Encoded documents: vocabulary ids per document (duplicates preserved,
    /// OOV dropped). Used by `adp-lf` for keyword-LF evaluation.
    pub encoded_docs: Vec<Vec<u32>>,
}

/// Fits a vocabulary + idf weights on a corpus and transforms documents.
#[derive(Debug, Clone)]
pub struct TfidfVectorizer {
    tokenizer: TokenizerConfig,
    min_df: u32,
    max_df_ratio: f64,
    max_vocab: usize,
    vocab: Option<Vocabulary>,
    idf: Vec<f64>,
}

impl Default for TfidfVectorizer {
    fn default() -> Self {
        TfidfVectorizer {
            tokenizer: TokenizerConfig::default(),
            min_df: 2,
            max_df_ratio: 0.9,
            max_vocab: 50_000,
            vocab: None,
            idf: vec![],
        }
    }
}

impl TfidfVectorizer {
    /// A vectorizer with explicit pruning knobs.
    pub fn new(
        tokenizer: TokenizerConfig,
        min_df: u32,
        max_df_ratio: f64,
        max_vocab: usize,
    ) -> Self {
        TfidfVectorizer {
            tokenizer,
            min_df,
            max_df_ratio,
            max_vocab,
            vocab: None,
            idf: vec![],
        }
    }

    /// Fits the vocabulary and idf table on `docs`.
    pub fn fit(&mut self, docs: &[String]) {
        self.fit_with(docs, parallel::auto(docs.len(), MIN_PARALLEL_DOCS));
    }

    /// [`TfidfVectorizer::fit`] under an explicit execution policy.
    /// Serial and parallel runs are bitwise identical (see module docs).
    pub fn fit_with(&mut self, docs: &[String], exec: Execution) {
        let tokenized = tokenize_all(docs, self.tokenizer, exec);
        let mut builder = VocabularyBuilder::new();
        for t in &tokenized {
            builder.add_doc(t);
        }
        let vocab = builder.finish(self.min_df, self.max_df_ratio, self.max_vocab);
        let n = docs.len() as f64;
        self.idf = (0..vocab.len() as u32)
            .map(|id| ((1.0 + n) / (1.0 + vocab.doc_freq(id) as f64)).ln() + 1.0)
            .collect();
        self.vocab = Some(vocab);
    }

    /// The fitted vocabulary.
    ///
    /// # Panics
    /// Panics when called before [`TfidfVectorizer::fit`].
    pub fn vocabulary(&self) -> &Vocabulary {
        self.vocab.as_ref().expect("TfidfVectorizer not fitted")
    }

    /// idf weight of a vocabulary id.
    pub fn idf(&self, id: u32) -> f64 {
        self.idf[id as usize]
    }

    /// Transforms documents with the fitted vocabulary.
    ///
    /// # Panics
    /// Panics when called before [`TfidfVectorizer::fit`].
    pub fn transform(&self, docs: &[String]) -> TfidfMatrix {
        self.transform_with(docs, parallel::auto(docs.len(), MIN_PARALLEL_DOCS))
    }

    /// [`TfidfVectorizer::transform`] under an explicit execution policy.
    /// Serial and parallel runs are bitwise identical (see module docs).
    ///
    /// # Panics
    /// Panics when called before [`TfidfVectorizer::fit`].
    pub fn transform_with(&self, docs: &[String], exec: Execution) -> TfidfMatrix {
        let vocab = self.vocabulary();
        // Per-document weighting is pure; fan it out, then assemble the CSR
        // matrix sequentially in document order.
        let rows = parallel::map_chunks(docs.len(), DOC_CHUNK, exec, |range| {
            let mut counts: HashMap<u32, f64> = HashMap::new();
            range
                .map(|i| {
                    let tokens = tokenize(&docs[i], self.tokenizer);
                    let ids = vocab.encode(&tokens);
                    counts.clear();
                    for &id in &ids {
                        *counts.entry(id).or_insert(0.0) += 1.0;
                    }
                    // Order of the HashMap iteration is irrelevant: each
                    // vocabulary id appears once per document, and the CSR
                    // builder sorts entries by column.
                    let entries: Vec<(u32, f64)> = counts
                        .iter()
                        .map(|(&id, &tf)| (id, tf * self.idf[id as usize]))
                        .collect();
                    (entries, ids)
                })
                .collect::<Vec<_>>()
        });
        let mut b = CsrBuilder::new(vocab.len());
        let mut encoded_docs = Vec::with_capacity(docs.len());
        for (entries, ids) in rows.into_iter().flatten() {
            b.push_row(entries);
            encoded_docs.push(ids);
        }
        let mut matrix = b.finish();
        matrix.l2_normalize_rows();
        TfidfMatrix {
            matrix,
            encoded_docs,
        }
    }

    /// `fit` followed by `transform` on the same corpus.
    pub fn fit_transform(&mut self, docs: &[String]) -> TfidfMatrix {
        self.fit(docs);
        self.transform(docs)
    }

    /// [`TfidfVectorizer::fit_transform`] under an explicit execution
    /// policy (used by the serial-vs-parallel equality tests and benches).
    pub fn fit_transform_with(&mut self, docs: &[String], exec: Execution) -> TfidfMatrix {
        self.fit_with(docs, exec);
        self.transform_with(docs, exec)
    }
}

/// Tokenises every document, fanning chunks of documents out under `exec`.
fn tokenize_all(docs: &[String], config: TokenizerConfig, exec: Execution) -> Vec<Vec<String>> {
    parallel::map_chunks(docs.len(), DOC_CHUNK, exec, |range| {
        range
            .map(|i| tokenize(&docs[i], config))
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<String> {
        vec![
            "check out my channel".into(),
            "check the reviews".into(),
            "great product great price".into(),
            "terrible product".into(),
        ]
    }

    fn fitted() -> (TfidfVectorizer, TfidfMatrix) {
        let mut v = TfidfVectorizer::new(TokenizerConfig::default(), 1, 1.0, usize::MAX);
        let m = v.fit_transform(&corpus());
        (v, m)
    }

    #[test]
    fn shapes_match_corpus() {
        let (v, m) = fitted();
        assert_eq!(m.matrix.nrows(), 4);
        assert_eq!(m.matrix.ncols(), v.vocabulary().len());
        assert_eq!(m.encoded_docs.len(), 4);
    }

    #[test]
    fn rows_are_unit_norm() {
        let (_, m) = fitted();
        for i in 0..m.matrix.nrows() {
            let (_, vals) = m.matrix.row(i);
            let norm: f64 = vals.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9, "row {i} norm {norm}");
        }
    }

    #[test]
    fn idf_formula_matches_sklearn_smooth() {
        let (v, _) = fitted();
        let vocab = v.vocabulary();
        let id = vocab.id("check").unwrap();
        // "check" appears in 2 of 4 docs: idf = ln(5/3) + 1.
        let expected = (5.0_f64 / 3.0).ln() + 1.0;
        assert!((v.idf(id) - expected).abs() < 1e-12);
    }

    #[test]
    fn rarer_terms_weigh_more() {
        let (v, m) = fitted();
        let vocab = v.vocabulary();
        // doc 0 contains "check" (df=2) and "channel" (df=1), both once.
        let check = vocab.id("check").unwrap();
        let channel = vocab.id("channel").unwrap();
        let d = m.matrix.to_dense();
        assert!(d[(0, channel as usize)] > d[(0, check as usize)]);
    }

    #[test]
    fn repeated_terms_raise_tf() {
        let (v, m) = fitted();
        let vocab = v.vocabulary();
        let great = vocab.id("great").unwrap();
        let product = vocab.id("product").unwrap();
        let d = m.matrix.to_dense();
        // "great" occurs twice in doc 2 and is rarer than "product".
        assert!(d[(2, great as usize)] > d[(2, product as usize)]);
    }

    #[test]
    fn transform_unseen_doc_drops_oov() {
        let (v, _) = fitted();
        let out = v.transform(&["check the zzzz".to_string()]);
        let vocab = v.vocabulary();
        assert_eq!(
            out.encoded_docs[0],
            vec![vocab.id("check").unwrap(), vocab.id("the").unwrap()]
        );
        // Row still unit-norm despite the dropped token.
        let (_, vals) = out.matrix.row(0);
        let norm: f64 = vals.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_document_yields_empty_row() {
        let (v, _) = fitted();
        let out = v.transform(&["".to_string()]);
        assert_eq!(out.matrix.row(0).0.len(), 0);
        assert!(out.encoded_docs[0].is_empty());
    }

    #[test]
    fn min_df_two_removes_singletons() {
        let mut v = TfidfVectorizer::new(TokenizerConfig::default(), 2, 1.0, usize::MAX);
        v.fit(&corpus());
        assert!(v.vocabulary().id("channel").is_none());
        assert!(v.vocabulary().id("check").is_some());
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn transform_before_fit_panics() {
        let v = TfidfVectorizer::default();
        v.transform(&["x".to_string()]);
    }

    /// A corpus big enough to span many `DOC_CHUNK` chunks, with repeated
    /// and unique terms so tf, idf and the L2 norms all do real work.
    fn large_corpus() -> Vec<String> {
        (0..500)
            .map(|i| {
                let mut words: Vec<String> = (0..(3 + i % 7))
                    .map(|k| format!("w{}", (i * 31 + k * 17) % 97))
                    .collect();
                words.push(format!("unique{i}"));
                if i % 3 == 0 {
                    words.push("w0 w0".to_string());
                }
                words.join(" ")
            })
            .collect()
    }

    #[test]
    fn fit_transform_serial_matches_parallel() {
        let docs = large_corpus();
        let mut vs = TfidfVectorizer::default();
        let ms = vs.fit_transform_with(&docs, Execution::Serial);
        let mut vp = TfidfVectorizer::default();
        let mp = vp.fit_transform_with(&docs, Execution::parallel());

        // Same vocabulary and idf table, bit for bit.
        assert_eq!(vs.vocabulary().len(), vp.vocabulary().len());
        for id in 0..vs.vocabulary().len() as u32 {
            assert_eq!(vs.idf(id).to_bits(), vp.idf(id).to_bits(), "idf {id}");
        }
        // Same encoded docs and bitwise-identical matrix rows.
        assert_eq!(ms.encoded_docs, mp.encoded_docs);
        assert_eq!(ms.matrix.nrows(), mp.matrix.nrows());
        assert_eq!(ms.matrix.ncols(), mp.matrix.ncols());
        for i in 0..ms.matrix.nrows() {
            let (si, sv) = ms.matrix.row(i);
            let (pi, pv) = mp.matrix.row(i);
            assert_eq!(si, pi, "row {i} columns");
            let sb: Vec<u64> = sv.iter().map(|x| x.to_bits()).collect();
            let pb: Vec<u64> = pv.iter().map(|x| x.to_bits()).collect();
            assert_eq!(sb, pb, "row {i} values");
        }
    }

    #[test]
    fn transform_unseen_serial_matches_parallel() {
        let docs = large_corpus();
        let mut v = TfidfVectorizer::default();
        v.fit(&docs);
        let unseen: Vec<String> = (0..200).map(|i| format!("w1 w2 fresh{i}")).collect();
        let s = v.transform_with(&unseen, Execution::Serial);
        let p = v.transform_with(&unseen, Execution::parallel());
        assert_eq!(s.encoded_docs, p.encoded_docs);
        for i in 0..s.matrix.nrows() {
            assert_eq!(s.matrix.row(i).0, p.matrix.row(i).0);
            let sb: Vec<u64> = s.matrix.row(i).1.iter().map(|x| x.to_bits()).collect();
            let pb: Vec<u64> = p.matrix.row(i).1.iter().map(|x| x.to_bits()).collect();
            assert_eq!(sb, pb);
        }
    }
}
