//! Text feature pipeline: tokenizer → vocabulary → TF-IDF.
//!
//! Reimplements the scikit-learn TF-IDF path the paper uses for its textual
//! datasets ("we extract the TF-IDF representation of the input text"):
//! raw term counts weighted by smoothed inverse document frequency and
//! L2-normalised per document, emitted as a [`adp_linalg::CsrMatrix`].
//!
//! The same [`Vocabulary`] doubles as the id space for keyword label
//! functions in `adp-lf`: an LF "check → SPAM" is stored as the vocabulary
//! id of "check", so LF evaluation is a set lookup on encoded documents.

pub mod tfidf;
pub mod tokenize;
pub mod vocab;

pub use tfidf::{TfidfMatrix, TfidfVectorizer};
pub use tokenize::{tokenize, TokenizerConfig};
pub use vocab::{Vocabulary, VocabularyBuilder};
