//! Shared fixtures for the Criterion benchmark harness.
//!
//! Three bench targets live in `benches/`:
//!
//! * `kernels` — microbenchmarks of the computational substrates (TF-IDF,
//!   graphical lasso, label models, logistic regression, samplers);
//! * `paper_tables` — one benchmark per paper table (2, 3, 4, 5), each
//!   running the corresponding experiment configuration at bench scale;
//! * `paper_fig3` — one benchmark per Figure 3 method on a common dataset.
//!
//! Benchmarks run miniature versions of the experiments (tiny scale, short
//! budgets) so `cargo bench` finishes in minutes; the experiment binaries
//! in `adp-experiments` regenerate the full artefacts.

use adp_data::{generate, DatasetId, Scale, SplitDataset};
use adp_lf::LabelMatrix;
use rand::{Rng, SeedableRng};

/// Deterministic tiny dataset for session benches.
pub fn bench_dataset(id: DatasetId) -> SplitDataset {
    generate(id, Scale::Tiny, 99).expect("bench dataset generates")
}

/// Planted weak-label matrix for label-model benches: `m` LFs with linearly
/// spaced accuracies, firing with probability `cov` on `n` instances.
pub fn planted_votes(n: usize, m: usize, cov: f64, seed: u64) -> LabelMatrix {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<i8>> = (0..n)
        .map(|_| {
            let y = usize::from(rng.gen::<f64>() < 0.5);
            (0..m)
                .map(|j| {
                    if rng.gen::<f64>() < cov {
                        let acc = 0.6 + 0.35 * (j as f64 / m.max(1) as f64);
                        let correct = rng.gen::<f64>() < acc;
                        (if correct { y } else { 1 - y }) as i8
                    } else {
                        adp_lf::ABSTAIN
                    }
                })
                .collect()
        })
        .collect();
    LabelMatrix::from_votes(&rows).expect("rows share a length")
}

/// Synthetic documents for text-pipeline benches.
pub fn bench_corpus(n_docs: usize) -> Vec<String> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    (0..n_docs)
        .map(|_| {
            let len = 8 + rng.gen_range(0..20);
            (0..len)
                .map(|_| format!("w{:03}", rng.gen_range(0..400)))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let d = bench_dataset(DatasetId::Youtube);
        assert!(d.train.len() >= 100);
        let m = planted_votes(50, 5, 0.6, 1);
        assert_eq!(m.n_instances(), 50);
        assert_eq!(m.n_lfs(), 5);
        assert_eq!(bench_corpus(10).len(), 10);
    }
}
