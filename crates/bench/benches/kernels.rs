//! Microbenchmarks of the computational substrates.

use adp_bench::{bench_corpus, bench_dataset, planted_votes};
use adp_classifier::{LogRegConfig, LogisticRegression, Targets};
use adp_data::DatasetId;
use adp_glasso::{graphical_lasso, graphical_lasso_with, GlassoConfig};
use adp_labelmodel::{DawidSkene, LabelModel, TripletMetal};
use adp_lf::CandidateSpace;
use adp_linalg::{covariance_matrix, Cholesky, Execution, Matrix};
use adp_text::TfidfVectorizer;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_tfidf(c: &mut Criterion) {
    let corpus = bench_corpus(500);
    c.bench_function("tfidf_fit_transform_500_docs", |b| {
        b.iter_batched(
            TfidfVectorizer::default,
            |mut v| black_box(v.fit_transform(&corpus)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_cholesky(c: &mut Criterion) {
    let base = Matrix::from_fn(40, 40, |i, j| (((i * 31 + j * 17) % 13) as f64 - 6.0) / 6.0);
    let mut spd = base.matmul(&base.transpose()).expect("square product");
    spd.add_diagonal(40.0).expect("square");
    c.bench_function("cholesky_factor_40x40", |b| {
        b.iter(|| black_box(Cholesky::factor(&spd).expect("SPD")))
    });
}

fn bench_glasso(c: &mut Criterion) {
    let data = Matrix::from_fn(300, 20, |i, j| {
        (((i * 7 + j * 13) % 23) as f64 - 11.0) * 0.1 + (i % 3) as f64 * 0.05 * j as f64
    });
    let cov = covariance_matrix(&data).expect("non-empty data");
    c.bench_function("graphical_lasso_p20", |b| {
        b.iter(|| black_box(graphical_lasso(&cov, GlassoConfig::default()).expect("well-posed")))
    });
}

fn bench_label_models(c: &mut Criterion) {
    let votes = planted_votes(2000, 25, 0.4, 3);
    c.bench_function("triplet_fit_2000x25", |b| {
        b.iter(|| {
            let mut m = TripletMetal::new(2);
            m.fit(black_box(&votes), None).expect("fit succeeds");
            black_box(m)
        })
    });
    c.bench_function("dawid_skene_fit_2000x25", |b| {
        b.iter(|| {
            let mut m = DawidSkene::new(2);
            m.fit(black_box(&votes), None).expect("fit succeeds");
            black_box(m)
        })
    });
}

fn bench_logreg(c: &mut Criterion) {
    let data = bench_dataset(DatasetId::Imdb);
    let rows: Vec<usize> = (0..data.train.len()).collect();
    let labels = data.train.labels.clone();
    c.bench_function("logreg_fit_sparse_tfidf", |b| {
        b.iter(|| {
            let mut m = LogisticRegression::new(
                2,
                adp_linalg::Features::ncols(&data.train.features),
                LogRegConfig {
                    max_iters: 50,
                    ..LogRegConfig::default()
                },
            );
            m.fit(&data.train.features, &rows, Targets::Hard(&labels), None)
                .expect("fit succeeds");
            black_box(m)
        })
    });
}

/// Serial vs parallel batch-gradient descent on a dense 12k×64 problem —
/// the speedup this prints is the headline number for the `adp-linalg`
/// `parallel` routing (the two paths are asserted bitwise identical in
/// `adp-classifier`'s tests).
fn bench_logreg_grad_parallel(c: &mut Criterion) {
    let n = 12_000;
    let d = 64;
    let x = Matrix::from_fn(n, d, |i, j| {
        let signal = if (i % 2 == 0) == (j % 2 == 0) {
            0.8
        } else {
            -0.8
        };
        signal + (((i * 31 + j * 17) % 23) as f64 - 11.0) * 0.03
    });
    let rows: Vec<usize> = (0..n).collect();
    let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
    for (name, parallel) in [
        ("logreg_grad_serial_12000x64", false),
        ("logreg_grad_parallel_12000x64", true),
    ] {
        c.bench_function(name, |b| {
            b.iter(|| {
                let mut m = LogisticRegression::new(
                    2,
                    d,
                    LogRegConfig {
                        max_iters: 10,
                        parallel,
                        ..LogRegConfig::default()
                    },
                );
                m.fit(&x, &rows, Targets::Hard(&labels), None)
                    .expect("fit succeeds");
                black_box(m)
            })
        });
    }
}

/// Serial vs parallel Dawid–Skene EM — the label-model refit hot path,
/// routed through `adp_linalg::parallel` (bitwise identical either way;
/// the workspace `tests/determinism.rs` harness pins it).
fn bench_dawid_skene_parallel(c: &mut Criterion) {
    let votes = planted_votes(8000, 40, 0.5, 3);
    for (name, exec) in [
        ("dawid_skene_em_serial", Execution::Serial),
        ("dawid_skene_em_parallel", Execution::parallel()),
    ] {
        c.bench_function(name, |b| {
            b.iter(|| {
                let mut m = DawidSkene::new(2);
                m.fit_with(black_box(&votes), None, exec)
                    .expect("fit succeeds");
                black_box(m)
            })
        });
    }
}

/// Serial vs parallel glasso column sweeps at p = 128 — above
/// `MIN_PARALLEL_DIM`, where the per-column inner ops genuinely split into
/// multiple chunks (LabelPick's cap-sized p = 65 problems stay on the
/// zero-overhead serial path by design) — same bitwise-identical contract.
fn bench_glasso_sweep_parallel(c: &mut Criterion) {
    let data = Matrix::from_fn(600, 128, |i, j| {
        (((i * 7 + j * 13) % 23) as f64 - 11.0) * 0.1 + (i % 3) as f64 * 0.05 * (j % 9) as f64
    });
    let cov = covariance_matrix(&data).expect("non-empty data");
    let cfg = GlassoConfig {
        rho: 0.1,
        ..GlassoConfig::default()
    };
    for (name, exec) in [
        ("glasso_sweep_serial", Execution::Serial),
        ("glasso_sweep_parallel", Execution::parallel()),
    ] {
        c.bench_function(name, |b| {
            b.iter(|| black_box(graphical_lasso_with(&cov, cfg, exec).expect("well-posed")))
        });
    }
}

/// Encode+decode of a mid-run session snapshot — the hot path of hub
/// `save_all`/`load_all` and of shipping sessions over the wire. Sized at
/// ~2k and ~12k train instances (IMDB at custom scale factors) so the
/// dominant costs (probability tables, vote matrices) are realistic.
fn bench_snapshot_roundtrip(c: &mut Criterion) {
    use activedp::{Engine, SessionConfig, SessionSnapshot};
    use adp_data::Scale;

    for (name, factor) in [
        ("snapshot_roundtrip_2k", 0.1),
        ("snapshot_roundtrip_12k", 0.6),
    ] {
        let data = adp_data::generate(DatasetId::Imdb, Scale::Custom(factor), 99)
            .expect("bench dataset generates");
        let n_train = data.train.len();
        let mut engine = Engine::builder(data)
            .config(SessionConfig::paper_defaults(true, 99))
            .build()
            .expect("engine builds");
        engine.run(6).expect("mid-run steps");
        let snapshot = engine.snapshot().expect("snapshot captures");
        let encoded_len = snapshot.to_bytes().len();
        eprintln!("{name}: {n_train} train instances, {encoded_len} encoded bytes");
        c.bench_function(name, |b| {
            b.iter(|| {
                let bytes = black_box(&snapshot).to_bytes();
                black_box(SessionSnapshot::from_bytes(&bytes).expect("roundtrips"))
            })
        });
    }
}

/// The write-ahead log's two hot paths: appending a 1000-event batch
/// (999 in-batch events plus one fsynced commit — the shape a large
/// `step_batch` journals) and recovering it (re-open the directory and
/// decode every event, CRCs checked — the `load_all` tail-replay read).
fn bench_wal(c: &mut Criterion) {
    use activedp::{ScenarioSpec, StepEvent};
    use adp_data::{DatasetSpec, Scale};
    use adp_lf::LabelFunction;
    use adp_wal::Journal;

    const EVENTS: usize = 1000;
    let spec = ScenarioSpec::new(DatasetSpec {
        id: DatasetId::Youtube,
        scale: Scale::Tiny,
        seed: 7,
    });
    let events: Vec<StepEvent> = (1..=EVENTS)
        .map(|iteration| StepEvent {
            iteration,
            query: Some(iteration % 512),
            lf: Some(LabelFunction::Keyword {
                token: (iteration % 300) as u32,
                label: iteration % 2,
            }),
            sampler_rng: [iteration as u64; 4],
            oracle_rng: [!(iteration as u64); 4],
            route: None,
            commit: iteration == EVENTS,
        })
        .collect();
    let dir = std::env::temp_dir().join(format!("adp-wal-bench-{}", std::process::id()));

    c.bench_function("wal_append_1k", |b| {
        b.iter_batched(
            || Journal::create(&dir, 1, spec.clone(), 0).expect("journal creates"),
            |mut journal| {
                for event in &events {
                    journal.append(event).expect("appends");
                }
                black_box(journal.durable_iteration())
            },
            BatchSize::PerIteration,
        )
    });

    let mut journal = Journal::create(&dir, 1, spec.clone(), 0).expect("journal creates");
    for event in &events {
        journal.append(event).expect("appends");
    }
    drop(journal);
    c.bench_function("wal_replay_1k", |b| {
        b.iter(|| {
            let journal = Journal::open(black_box(&dir)).expect("journal opens");
            black_box(journal.events().expect("events decode").len())
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// Dual-oracle routing throughput: 1000 consults through an
/// `OracleRouter` under the uncertainty policy, hints alternating so both
/// the cheap noisy oracle and the expensive simulated user answer — the
/// per-query overhead the router adds to a labelling session.
fn bench_oracle_route(c: &mut Criterion) {
    use activedp::{ConfusionSpec, LatencyModel, NoisyOracle, Oracle, OracleRouter, RoutePolicy};
    use adp_lf::SimulatedUser;

    const QUERIES: usize = 1000;
    let split = bench_dataset(DatasetId::Youtube);
    let space = CandidateSpace::build(&split.train);
    let n = split.train.labels.len();
    c.bench_function("oracle_route_1k", |b| {
        b.iter_batched(
            || {
                OracleRouter::new(
                    SimulatedUser::with_defaults(7),
                    NoisyOracle::new(ConfusionSpec::Uniform { accuracy: 0.8 }, 0.6, 8),
                    RoutePolicy::UncertaintyThreshold { tau: 0.3 },
                    LatencyModel::default(),
                )
            },
            |mut router| {
                for q in 0..QUERIES {
                    let hint = Some(if q % 2 == 0 { 0.1 } else { 0.45 });
                    let (lf, choice) =
                        router.respond_routed(&space, &split.train, &split.train, q % n, hint);
                    black_box((lf, choice));
                }
                black_box(router.stats().total_cost())
            },
            BatchSize::PerIteration,
        )
    });
}

/// Drift application over a dense pool: the per-boundary cost of
/// regenerating the drifted splits when a `covariate:AT,ROT` spec fires
/// (`DriftSpec::apply` clones and rotates train/valid/test).
fn bench_drift_regen(c: &mut Criterion) {
    use adp_data::DriftSpec;

    let base = bench_dataset(DatasetId::Census);
    let drift = DriftSpec::CovariateDrift {
        at: 6,
        rotation: 0.4,
    };
    c.bench_function("drift_regen_pool", |b| {
        b.iter(|| {
            let drifted = black_box(&drift)
                .apply(black_box(&base))
                .expect("covariate drift rewrites the split");
            black_box(drifted.train.labels.len())
        })
    });
}

/// Expansion of a full-size sweep grid into concrete `ScenarioSpec`s —
/// the `adp-sweep` planner (8 datasets × 6 samplers × 3 label models ×
/// 4 schedules × 5 seeds = 2880 specs), plus each spec's wire encoding
/// (what a distributed sweep would ship to workers).
fn bench_sweep_expand_grid(c: &mut Criterion) {
    use activedp::{LabelModelKind, SamplerChoice};
    use adp_data::Scale;
    use adp_experiments::SweepGrid;

    let grid = SweepGrid {
        datasets: DatasetId::all().to_vec(),
        scale: Scale::Paper,
        data_seed: 7,
        samplers: SamplerChoice::all().to_vec(),
        label_models: LabelModelKind::all().to_vec(),
        ks: vec![1, 4, 16, 64],
        budget: 300,
        seeds: vec![1, 2, 3, 4, 5],
        candidates: activedp::CandidateStrategy::Exact,
        oracles: vec![activedp::OracleKind::Simulated],
        drifts: vec![adp_data::DriftSpec::None],
    };
    assert_eq!(grid.len(), 2880);
    c.bench_function("sweep_expand_grid_2880", |b| {
        b.iter(|| black_box(black_box(&grid).expand()))
    });
    let specs = grid.expand();
    c.bench_function("sweep_encode_grid_2880", |b| {
        b.iter(|| {
            specs
                .iter()
                .map(|s| black_box(s).to_bytes().len())
                .sum::<usize>()
        })
    });
}

/// Sampler scoring over large unlabeled pools: the exact path walks every
/// row (entropy of a logistic model's posterior), the ANN path routes
/// through a prebuilt `adp-index` IVF — score ≤ 8 probe members per list to
/// rank the lists, then score only the `nprobe` most uncertain lists, as
/// the engine's `CandidateStrategy::Ann` does. The printed ratio at 100k is
/// the README "Large pools" crossover number (recall is pinned ≥ 0.9 by
/// `adp-index`'s planted-cluster test).
fn bench_sampler_pool(c: &mut Criterion) {
    use adp_index::{IvfIndex, IvfParams};

    const DIM: usize = 16;
    const NPROBE: usize = 8;
    const PROBE_SAMPLE: usize = 8;
    let entropy = |p: f64| {
        let q = 1.0 - p;
        let term = |v: f64| if v > 0.0 { -v * v.ln() } else { 0.0 };
        term(p) + term(q)
    };
    let weights: Vec<f64> = (0..DIM).map(|j| ((j % 5) as f64 - 2.0) * 0.3).collect();
    let score = |x: &Matrix, i: usize| {
        let mut z = 0.0;
        for (j, w) in weights.iter().enumerate() {
            z += x[(i, j)] * w;
        }
        entropy(1.0 / (1.0 + (-z).exp()))
    };

    for (tag, n) in [("10k", 10_000usize), ("100k", 100_000)] {
        // A pool with planted cluster structure (what makes IVF routing
        // meaningful) plus per-row jitter.
        let x = Matrix::from_fn(n, DIM, |i, j| {
            let centre = ((i * 37) % 64) as f64 * 0.5;
            centre + (((i * 31 + j * 17) % 23) as f64 - 11.0) * 0.05
        });

        c.bench_function(&format!("sampler_pool_{tag}_exact"), |b| {
            b.iter(|| {
                let mut best = (f64::NEG_INFINITY, 0usize);
                for i in 0..n {
                    let h = score(&x, i);
                    if h > best.0 {
                        best = (h, i);
                    }
                }
                black_box(best)
            })
        });

        let index = IvfIndex::build(&x, &IvfParams::default());
        c.bench_function(&format!("sampler_pool_{tag}_ann"), |b| {
            b.iter(|| {
                // Rank lists by the mean entropy of their first few members…
                let mut ranked: Vec<(f64, usize)> = (0..index.nlist())
                    .map(|l| {
                        let members = index.list(l);
                        let probe = &members[..members.len().min(PROBE_SAMPLE)];
                        let mean = if probe.is_empty() {
                            f64::NEG_INFINITY
                        } else {
                            probe.iter().map(|&i| score(&x, i)).sum::<f64>() / probe.len() as f64
                        };
                        (mean, l)
                    })
                    .collect();
                ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
                // …then score only the members of the top-nprobe lists.
                let mut best = (f64::NEG_INFINITY, 0usize);
                for &(_, l) in ranked.iter().take(NPROBE) {
                    for &i in index.list(l) {
                        let h = score(&x, i);
                        if h > best.0 {
                            best = (h, i);
                        }
                    }
                }
                black_box(best)
            })
        });
    }
}

/// Cost of (re)building the IVF index over a 100k-row pool — what the
/// engine pays lazily at the first `Ann` selection and again after every
/// `refresh_every` refits. Amortised over a selection round it must stay
/// small next to exact scoring for ANN to win end-to-end.
fn bench_index_build(c: &mut Criterion) {
    use adp_index::{IvfIndex, IvfParams};

    let n = 100_000;
    let x = Matrix::from_fn(n, 16, |i, j| {
        let centre = ((i * 37) % 64) as f64 * 0.5;
        centre + (((i * 31 + j * 17) % 23) as f64 - 11.0) * 0.05
    });
    c.bench_function("index_build_100k", |b| {
        b.iter(|| black_box(IvfIndex::build(&x, &IvfParams::default())))
    });
}

fn bench_candidate_space(c: &mut Criterion) {
    let data = bench_dataset(DatasetId::Youtube);
    c.bench_function("candidate_space_build_text", |b| {
        b.iter(|| black_box(CandidateSpace::build(&data.train)))
    });
    let space = CandidateSpace::build(&data.train);
    c.bench_function("candidates_for_query", |b| {
        b.iter(|| black_box(space.candidates_for(&data.train, &data.train, 5, 1, 0.6)))
    });
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_tfidf,
        bench_cholesky,
        bench_glasso,
        bench_label_models,
        bench_logreg,
        bench_logreg_grad_parallel,
        bench_dawid_skene_parallel,
        bench_glasso_sweep_parallel,
        bench_snapshot_roundtrip,
        bench_wal,
        bench_oracle_route,
        bench_drift_regen,
        bench_sweep_expand_grid,
        bench_sampler_pool,
        bench_index_build,
        bench_candidate_space
);
criterion_main!(kernels);
