//! One benchmark per paper table: each runs the corresponding experiment
//! configuration at bench scale (tiny datasets, short budget), so the
//! harness both times the pipelines and proves every table's code path is
//! runnable end to end. The binaries in `adp-experiments` regenerate the
//! full artefacts.

use activedp::{ActiveDpSession, SamplerChoice, SessionConfig};
use adp_bench::bench_dataset;
use adp_data::{generate, DatasetId, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const BUDGET: usize = 20;

fn session_auc(data: &adp_data::SharedDataset, cfg: SessionConfig) -> f64 {
    let mut session = ActiveDpSession::new(data.clone(), cfg).expect("session builds");
    let mut acc = 0.0;
    let mut evals = 0;
    for it in 1..=BUDGET {
        session.step().expect("step succeeds");
        if it % 10 == 0 {
            acc += session
                .evaluate_downstream()
                .expect("evaluation succeeds")
                .test_accuracy;
            evals += 1;
        }
    }
    acc / evals as f64
}

/// Table 2: dataset generation for all eight benchmarks.
fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_generate_all_datasets", |b| {
        b.iter(|| {
            for id in DatasetId::all() {
                black_box(generate(id, Scale::Tiny, 1).expect("generation succeeds"));
            }
        })
    });
}

/// Table 3: the four ablation variants on one dataset.
fn bench_table3(c: &mut Criterion) {
    let data = bench_dataset(DatasetId::Youtube).into_shared();
    c.bench_function("table3_ablation_row", |b| {
        b.iter(|| {
            for (lp, cf) in [(false, false), (true, false), (false, true), (true, true)] {
                let cfg = SessionConfig {
                    use_labelpick: lp,
                    use_confusion: cf,
                    ..SessionConfig::paper_defaults(true, 9)
                };
                black_box(session_auc(&data, cfg));
            }
        })
    });
}

/// Table 4: the five sampler choices on one dataset.
fn bench_table4(c: &mut Criterion) {
    let data = bench_dataset(DatasetId::Occupancy).into_shared();
    c.bench_function("table4_sampler_row", |b| {
        b.iter(|| {
            for sampler in [
                SamplerChoice::Passive,
                SamplerChoice::Uncertainty,
                SamplerChoice::Lal,
                SamplerChoice::Seu,
                SamplerChoice::Adp,
            ] {
                let cfg = SessionConfig {
                    sampler,
                    ..SessionConfig::paper_defaults(false, 9)
                };
                black_box(session_auc(&data, cfg));
            }
        })
    });
}

/// Table 5: the four label-noise levels on one dataset.
fn bench_table5(c: &mut Criterion) {
    let data = bench_dataset(DatasetId::Youtube).into_shared();
    c.bench_function("table5_noise_row", |b| {
        b.iter(|| {
            for noise in [0.0, 0.05, 0.10, 0.15] {
                let cfg = SessionConfig {
                    noise_rate: noise,
                    ..SessionConfig::paper_defaults(true, 9)
                };
                black_box(session_auc(&data, cfg));
            }
        })
    });
}

criterion_group!(
    name = paper_tables;
    config = Criterion::default().sample_size(10);
    targets = bench_table2, bench_table3, bench_table4, bench_table5
);
criterion_main!(paper_tables);
