//! Benchmarks for the sweep backends: the local grid runner at one and
//! several worker threads (the `adp-sweep --jobs` speedup), and the
//! distributed coordinator's dispatch overhead over in-process servers
//! (what `adp-coord` pays beyond the engine work itself).

use activedp::{CandidateStrategy, LabelModelKind, SamplerChoice};
use adp_data::{DatasetId, Scale};
use adp_experiments::{run_distributed, run_grid_jobs, CoordOpts, SweepGrid};
use adp_serve::{Server, SessionHub};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

/// A 2×2 grid small enough to iterate: two samplers × two schedules on
/// tiny Youtube, budget 6.
fn bench_grid() -> SweepGrid {
    SweepGrid {
        datasets: vec![DatasetId::Youtube],
        scale: Scale::Tiny,
        data_seed: 7,
        samplers: vec![SamplerChoice::Uncertainty, SamplerChoice::Adp],
        label_models: vec![LabelModelKind::Triplet],
        ks: vec![1, 4],
        budget: 6,
        seeds: vec![1],
        candidates: CandidateStrategy::Exact,
        oracles: vec![activedp::OracleKind::Simulated],
        drifts: vec![adp_data::DriftSpec::None],
    }
}

fn bench_sweep_backends(c: &mut Criterion) {
    let grid = bench_grid();
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);

    group.bench_function("sweep_local_parallel_1", |b| {
        b.iter(|| {
            let out = run_grid_jobs(&grid, 1);
            assert!(out.is_clean());
            black_box(out.rows.len())
        })
    });

    group.bench_function("sweep_local_parallel_4", |b| {
        b.iter(|| {
            let out = run_grid_jobs(&grid, 4);
            assert!(out.is_clean());
            black_box(out.rows.len())
        })
    });

    // Fleet set up outside the timing loop: the measurement is dispatch +
    // wire + merge, i.e. what adp-coord costs over the engines themselves.
    let servers: Vec<Server> = (0..2)
        .map(|_| Server::bind("127.0.0.1:0", Arc::new(SessionHub::new(2))).unwrap())
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.addr().to_string()).collect();
    let opts = CoordOpts {
        checkpoint_batches: 0,
        ..CoordOpts::default()
    };
    group.bench_function("coord_dispatch_overhead", |b| {
        b.iter(|| {
            let report = run_distributed(&grid, &addrs, &opts).expect("fleet serves");
            assert!(report.outcome.is_clean());
            black_box(report.outcome.rows.len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_sweep_backends);
criterion_main!(benches);
