//! One benchmark per Figure 3 method: ActiveDP and all four baselines
//! driven through the same bench-scale protocol on a common dataset.

use activedp::{ActiveDpSession, SessionConfig};
use adp_baselines::{Framework, Iws, Nemo, RevisingLf, UncertaintySampling};
use adp_bench::bench_dataset;
use adp_data::DatasetId;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const BUDGET: usize = 20;

fn drive(fw: &mut dyn Framework) -> f64 {
    for _ in 0..BUDGET {
        fw.step().expect("step succeeds");
    }
    fw.evaluate().expect("evaluate succeeds").test_accuracy
}

fn bench_fig3(c: &mut Criterion) {
    let data = bench_dataset(DatasetId::Youtube).into_shared();
    let mut group = c.benchmark_group("fig3_endtoend");
    group.sample_size(10);

    group.bench_function("activedp", |b| {
        b.iter(|| {
            let cfg = SessionConfig::paper_defaults(true, 9);
            let mut fw = ActiveDpSession::new(data.clone(), cfg).expect("session builds");
            black_box(drive(&mut fw))
        })
    });
    group.bench_function("nemo", |b| {
        b.iter(|| black_box(drive(&mut Nemo::new(&data, 9))))
    });
    group.bench_function("iws", |b| {
        b.iter(|| black_box(drive(&mut Iws::new(&data, 9))))
    });
    group.bench_function("rlf", |b| {
        b.iter(|| black_box(drive(&mut RevisingLf::new(&data, 9))))
    });
    group.bench_function("us", |b| {
        b.iter(|| black_box(drive(&mut UncertaintySampling::new(&data, 9))))
    });
    group.finish();
}

criterion_group!(paper_fig3, bench_fig3);
criterion_main!(paper_fig3);
