//! Throughput benchmarks for the `adp-serve` SessionHub: many concurrent
//! sessions stepped through the sharded registry, versus the same work on
//! one engine, and single-step versus batched stepping.

use activedp::Engine;
use adp_bench::bench_dataset;
use adp_data::{DatasetId, SharedDataset};
use adp_serve::SessionHub;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const SESSIONS: u64 = 8;
const STEPS: usize = 10;

fn data() -> SharedDataset {
    bench_dataset(DatasetId::Youtube).into_shared()
}

/// N sessions × STEPS iterations through the hub, clients on one thread.
fn bench_hub_throughput(c: &mut Criterion) {
    let data = data();
    let mut group = c.benchmark_group("session_hub");
    group.sample_size(10);

    group.bench_function("hub_8_sessions_sequential_clients", |b| {
        b.iter(|| {
            let hub = SessionHub::new(4);
            let ids: Vec<_> = (0..SESSIONS)
                .map(|seed| {
                    hub.open(Engine::builder(data.clone()).seed(seed))
                        .expect("session opens")
                })
                .collect();
            for _ in 0..STEPS {
                for &id in &ids {
                    black_box(hub.step(id).expect("step succeeds"));
                }
            }
            black_box(hub.session_count())
        })
    });

    group.bench_function("hub_8_sessions_concurrent_clients", |b| {
        b.iter(|| {
            let hub = SessionHub::new(4);
            let ids: Vec<_> = (0..SESSIONS)
                .map(|seed| {
                    hub.open(Engine::builder(data.clone()).seed(seed))
                        .expect("session opens")
                })
                .collect();
            std::thread::scope(|scope| {
                for &id in &ids {
                    let hub = &hub;
                    scope.spawn(move || {
                        for _ in 0..STEPS {
                            black_box(hub.step(id).expect("step succeeds"));
                        }
                    });
                }
            });
            black_box(hub.session_count())
        })
    });

    // The no-hub baseline: the same total work on bare engines, serially.
    group.bench_function("solo_8_sessions_baseline", |b| {
        b.iter(|| {
            for seed in 0..SESSIONS {
                let mut e = Engine::builder(data.clone())
                    .seed(seed)
                    .build()
                    .expect("engine builds");
                e.run(STEPS).expect("engine runs");
                black_box(e.state().iteration);
            }
        })
    });

    // Batched stepping: same query budget, one refit per batch of 5.
    group.bench_function("hub_8_sessions_step_batch_5", |b| {
        b.iter(|| {
            let hub = SessionHub::new(4);
            let ids: Vec<_> = (0..SESSIONS)
                .map(|seed| {
                    hub.open(Engine::builder(data.clone()).seed(seed))
                        .expect("session opens")
                })
                .collect();
            for _ in 0..STEPS / 5 {
                for &id in &ids {
                    black_box(hub.step_batch(id, 5).expect("batch succeeds"));
                }
            }
            black_box(hub.session_count())
        })
    });

    group.finish();
}

criterion_group!(session_hub, bench_hub_throughput);
criterion_main!(session_hub);
