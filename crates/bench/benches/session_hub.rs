//! Throughput benchmarks for the `adp-serve` SessionHub: many concurrent
//! sessions stepped through the sharded registry, versus the same work on
//! one engine, and single-step versus batched stepping.

use activedp::{Engine, SessionConfig};
use adp_bench::bench_dataset;
use adp_data::{DatasetId, DatasetSpec, Scale, SharedDataset};
use adp_serve::{HubMetrics, Op, SessionHub};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

const SESSIONS: u64 = 8;
const STEPS: usize = 10;

fn data() -> SharedDataset {
    bench_dataset(DatasetId::Youtube).into_shared()
}

/// N sessions × STEPS iterations through the hub, clients on one thread.
fn bench_hub_throughput(c: &mut Criterion) {
    let data = data();
    let mut group = c.benchmark_group("session_hub");
    group.sample_size(10);

    group.bench_function("hub_8_sessions_sequential_clients", |b| {
        b.iter(|| {
            let hub = SessionHub::new(4);
            let ids: Vec<_> = (0..SESSIONS)
                .map(|seed| {
                    hub.open(Engine::builder(data.clone()).seed(seed))
                        .expect("session opens")
                })
                .collect();
            for _ in 0..STEPS {
                for &id in &ids {
                    black_box(hub.step(id).expect("step succeeds"));
                }
            }
            black_box(hub.session_count().expect("all shards alive"))
        })
    });

    group.bench_function("hub_8_sessions_concurrent_clients", |b| {
        b.iter(|| {
            let hub = SessionHub::new(4);
            let ids: Vec<_> = (0..SESSIONS)
                .map(|seed| {
                    hub.open(Engine::builder(data.clone()).seed(seed))
                        .expect("session opens")
                })
                .collect();
            std::thread::scope(|scope| {
                for &id in &ids {
                    let hub = &hub;
                    scope.spawn(move || {
                        for _ in 0..STEPS {
                            black_box(hub.step(id).expect("step succeeds"));
                        }
                    });
                }
            });
            black_box(hub.session_count().expect("all shards alive"))
        })
    });

    // The no-hub baseline: the same total work on bare engines, serially.
    group.bench_function("solo_8_sessions_baseline", |b| {
        b.iter(|| {
            for seed in 0..SESSIONS {
                let mut e = Engine::builder(data.clone())
                    .seed(seed)
                    .build()
                    .expect("engine builds");
                e.run(STEPS).expect("engine runs");
                black_box(e.state().iteration);
            }
        })
    });

    // Batched stepping: same query budget, one refit per batch of 5.
    group.bench_function("hub_8_sessions_step_batch_5", |b| {
        b.iter(|| {
            let hub = SessionHub::new(4);
            let ids: Vec<_> = (0..SESSIONS)
                .map(|seed| {
                    hub.open(Engine::builder(data.clone()).seed(seed))
                        .expect("session opens")
                })
                .collect();
            for _ in 0..STEPS / 5 {
                for &id in &ids {
                    black_box(hub.step_batch(id, 5).expect("batch succeeds"));
                }
            }
            black_box(hub.session_count().expect("all shards alive"))
        })
    });

    group.finish();
}

/// One evict → resume-on-touch roundtrip: snapshot + atomic spill write +
/// WAL checkpoint + engine drop, then spill read + rebuild + journal
/// re-attach. This is the latency a cold session adds to its next touch.
fn bench_evict_resume(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("adp-bench-evict-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let hub = SessionHub::with_spill_dir(1, &dir);
    let id = hub
        .open_spec(
            DatasetSpec {
                id: DatasetId::Youtube,
                scale: Scale::Tiny,
                seed: 7,
            },
            SessionConfig::paper_defaults(true, 1),
        )
        .expect("session opens");
    hub.run(id, 5).expect("warms up");

    let mut group = c.benchmark_group("session_hub");
    group.sample_size(10);
    group.bench_function("hub_evict_resume_roundtrip", |b| {
        b.iter(|| {
            assert!(hub.evict(id).expect("evicts"));
            // Snapshot touches the session, resuming it from the spill
            // without advancing the trajectory — a pure resume.
            black_box(hub.snapshot(id).expect("resumes"));
        })
    });
    group.finish();
    drop(hub);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The metrics layer alone: what one `record` (two atomic counters + a
/// histogram observe) costs on the hub's hot path, and what a full
/// Prometheus render costs a scraper.
fn bench_metrics_overhead(c: &mut Criterion) {
    let metrics = HubMetrics::new();
    for k in 0..10_000u64 {
        metrics.record(Op::Step, Duration::from_micros(k % 3000), k % 64 == 0);
    }
    let mut group = c.benchmark_group("session_hub");
    group.bench_function("metrics_overhead_record", |b| {
        b.iter(|| metrics.record(Op::Step, black_box(Duration::from_micros(180)), false))
    });
    group.bench_function("metrics_overhead_render", |b| {
        b.iter(|| black_box(metrics.render()).len())
    });
    group.finish();
}

criterion_group!(
    session_hub,
    bench_hub_throughput,
    bench_evict_resume,
    bench_metrics_overhead
);
criterion_main!(session_hub);
