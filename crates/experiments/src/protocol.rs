//! Protocol runner: iterate → evaluate every k → average over seeds.

use activedp::{ActiveDpError, ActiveDpSession, SessionConfig};
use adp_baselines::{Framework, Iws, Nemo, RevisingLf, UncertaintySampling};
use adp_data::{generate, DatasetId, Scale};

/// Protocol parameters (§4.1.3).
#[derive(Debug, Clone)]
pub struct ProtocolConfig {
    /// Rounds of simulated supervision (paper: 300).
    pub iterations: usize,
    /// Evaluate the downstream model every this many rounds (paper: 10).
    pub eval_every: usize,
    /// Seeds to average over (paper: 5).
    pub seeds: Vec<u64>,
    /// Dataset scale.
    pub scale: Scale,
}

impl ProtocolConfig {
    /// Paper-scale protocol: 300 iterations, eval@10, 5 seeds, full sizes.
    pub fn paper() -> Self {
        ProtocolConfig {
            iterations: 300,
            eval_every: 10,
            seeds: vec![1, 2, 3, 4, 5],
            scale: Scale::Paper,
        }
    }

    /// Reduced-scale default for the experiment binaries: ≈20% data,
    /// 100 iterations, 2 seeds — minutes instead of hours, same shape.
    pub fn reduced() -> Self {
        ProtocolConfig {
            iterations: 100,
            eval_every: 10,
            seeds: vec![1, 2],
            scale: Scale::Reduced,
        }
    }

    /// Tiny protocol for tests and Criterion benches.
    pub fn tiny() -> Self {
        ProtocolConfig {
            iterations: 20,
            eval_every: 10,
            seeds: vec![1],
            scale: Scale::Tiny,
        }
    }
}

/// The five frameworks of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// The paper's framework.
    ActiveDp,
    /// Nemo (textual datasets only, as in the paper).
    Nemo,
    /// Interactive weak supervision (IWS-LSE-a).
    Iws,
    /// Revising LF.
    Rlf,
    /// Uncertainty sampling.
    Us,
}

impl Method {
    /// All methods, in the paper's legend order.
    pub fn all() -> [Method; 5] {
        [
            Method::ActiveDp,
            Method::Nemo,
            Method::Iws,
            Method::Rlf,
            Method::Us,
        ]
    }

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            Method::ActiveDp => "ActiveDP",
            Method::Nemo => "Nemo",
            Method::Iws => "IWS",
            Method::Rlf => "RLF",
            Method::Us => "US",
        }
    }

    /// Nemo's SEU is text-specific; the paper evaluates it on the six
    /// textual datasets only.
    pub fn supports(self, id: DatasetId) -> bool {
        !matches!(self, Method::Nemo) || id.is_textual()
    }
}

/// A performance curve: `(iteration, mean test accuracy across seeds)`.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Method/config label.
    pub label: String,
    /// Evaluation points.
    pub points: Vec<(usize, f64)>,
}

impl Curve {
    /// Average accuracy over the curve — the paper's summary metric
    /// ("average test accuracy during the run, corresponding to the area
    /// under the performance curve").
    pub fn auc(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, a)| a).sum::<f64>() / self.points.len() as f64
    }

    /// Final-iteration accuracy.
    pub fn last(&self) -> f64 {
        self.points.last().map_or(0.0, |&(_, a)| a)
    }
}

fn drive(fw: &mut dyn Framework, cfg: &ProtocolConfig) -> Result<Vec<(usize, f64)>, ActiveDpError> {
    let mut points = Vec::new();
    for it in 1..=cfg.iterations {
        fw.step()?;
        if it % cfg.eval_every == 0 {
            let eval = fw.evaluate()?;
            points.push((it, eval.test_accuracy));
        }
    }
    Ok(points)
}

fn average_seed_points(per_seed: Vec<Vec<(usize, f64)>>, label: String) -> Curve {
    let n_seeds = per_seed.len().max(1);
    let n_points = per_seed.first().map_or(0, |p| p.len());
    let mut points = Vec::with_capacity(n_points);
    for k in 0..n_points {
        let it = per_seed[0][k].0;
        let mean = per_seed.iter().map(|p| p[k].1).sum::<f64>() / n_seeds as f64;
        points.push((it, mean));
    }
    Curve { label, points }
}

/// Runs one Figure-3 method on one dataset across the protocol's seeds.
/// Seeds run in parallel (one thread each).
pub fn run_framework_curve(
    id: DatasetId,
    method: Method,
    cfg: &ProtocolConfig,
) -> Result<Curve, ActiveDpError> {
    let per_seed = parallel_over_seeds(cfg, |seed| {
        let data = generate(id, cfg.scale, seed).map_err(|e| ActiveDpError::BadConfig {
            reason: format!("dataset generation failed: {e}"),
        })?;
        match method {
            Method::ActiveDp => {
                let session_cfg = SessionConfig::paper_defaults(id.is_textual(), seed);
                let mut fw = ActiveDpSession::new(data, session_cfg)?;
                drive(&mut fw, cfg)
            }
            Method::Nemo => {
                let mut fw = Nemo::new(&data, seed);
                drive(&mut fw, cfg)
            }
            Method::Iws => {
                let mut fw = Iws::new(&data, seed);
                drive(&mut fw, cfg)
            }
            Method::Rlf => {
                let mut fw = RevisingLf::new(&data, seed);
                drive(&mut fw, cfg)
            }
            Method::Us => {
                let mut fw = UncertaintySampling::new(&data, seed);
                drive(&mut fw, cfg)
            }
        }
    })?;
    Ok(average_seed_points(per_seed, method.label().to_string()))
}

/// Runs an ActiveDP session variant (ablations, sampler study, noise study)
/// given a per-seed config factory.
pub fn run_session_curve(
    id: DatasetId,
    label: &str,
    cfg: &ProtocolConfig,
    make_session: impl Fn(bool, u64) -> SessionConfig + Sync,
) -> Result<Curve, ActiveDpError> {
    let per_seed = parallel_over_seeds(cfg, |seed| {
        let data = generate(id, cfg.scale, seed).map_err(|e| ActiveDpError::BadConfig {
            reason: format!("dataset generation failed: {e}"),
        })?;
        let mut fw = ActiveDpSession::new(data, make_session(id.is_textual(), seed))?;
        drive(&mut fw, cfg)
    })?;
    Ok(average_seed_points(per_seed, label.to_string()))
}

fn parallel_over_seeds(
    cfg: &ProtocolConfig,
    run: impl Fn(u64) -> Result<Vec<(usize, f64)>, ActiveDpError> + Sync,
) -> Result<Vec<Vec<(usize, f64)>>, ActiveDpError> {
    let run = &run;
    let results: Vec<Result<Vec<(usize, f64)>, ActiveDpError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = cfg
            .seeds
            .iter()
            .map(|&seed| scope.spawn(move || run(seed)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("seed thread panicked"))
            .collect()
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_auc_and_last() {
        let c = Curve {
            label: "x".into(),
            points: vec![(10, 0.5), (20, 0.7), (30, 0.9)],
        };
        assert!((c.auc() - 0.7).abs() < 1e-12);
        assert_eq!(c.last(), 0.9);
        let empty = Curve {
            label: "e".into(),
            points: vec![],
        };
        assert_eq!(empty.auc(), 0.0);
    }

    #[test]
    fn method_metadata() {
        assert_eq!(Method::all().len(), 5);
        assert!(Method::Nemo.supports(DatasetId::Youtube));
        assert!(!Method::Nemo.supports(DatasetId::Census));
        assert!(Method::Us.supports(DatasetId::Census));
        assert_eq!(Method::ActiveDp.label(), "ActiveDP");
    }

    #[test]
    fn tiny_protocol_runs_every_method_on_text() {
        let cfg = ProtocolConfig::tiny();
        for method in Method::all() {
            let curve = run_framework_curve(DatasetId::Youtube, method, &cfg).unwrap();
            assert_eq!(curve.points.len(), 2, "{}", method.label());
            assert!(curve.auc() > 0.3, "{} auc {}", method.label(), curve.auc());
        }
    }

    #[test]
    fn session_curve_runs_ablation_config() {
        let cfg = ProtocolConfig::tiny();
        let curve = run_session_curve(DatasetId::Occupancy, "Baseline", &cfg, |textual, seed| {
            SessionConfig::ablation_baseline(textual, seed)
        })
        .unwrap();
        assert_eq!(curve.label, "Baseline");
        assert_eq!(curve.points.len(), 2);
    }

    #[test]
    fn seed_averaging_is_pointwise() {
        let avg = average_seed_points(
            vec![vec![(10, 0.4), (20, 0.6)], vec![(10, 0.6), (20, 1.0)]],
            "m".into(),
        );
        assert_eq!(avg.points, vec![(10, 0.5), (20, 0.8)]);
    }
}
