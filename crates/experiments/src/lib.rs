//! The evaluation protocol of paper §4.1.3 and the machinery behind every
//! table and figure.
//!
//! The protocol simulates `iterations` rounds of human supervision,
//! evaluates the downstream model every `eval_every` rounds, repeats over
//! several seeds, and reports the *average test accuracy during the run* —
//! the area under the performance curve the paper's tables print.
//!
//! Binaries in `src/bin/` regenerate each artefact:
//! `table2`, `fig2`, `fig3`, `table3`, `table4`, `table5`.
//!
//! The budget/latency sweep additionally scales out: [`sweep`] runs a
//! grid over local worker threads (`adp-sweep --jobs N`) and [`coord`]
//! dispatches the same grid across a fleet of `adp-served` processes
//! (`adp-coord`), with byte-identical artefacts either way.

pub mod args;
pub mod coord;
pub mod protocol;
pub mod sweep;
pub mod tables;

pub use args::{RunOpts, SweepOpts};
pub use coord::{run_distributed, CoordError, CoordOpts, CoordReport, WorkerReport};
pub use protocol::{run_framework_curve, run_session_curve, Curve, Method, ProtocolConfig};
pub use sweep::{
    grid_table, run_grid, run_grid_jobs, run_grid_jobs_streaming, run_spec, run_spec_over,
    CellFailure, SweepCell, SweepGrid, SweepOutcome, SweepRow, SWEEP_ROW_MAGIC, SWEEP_ROW_VERSION,
    SWEEP_ROW_VERSION_ROUTING,
};
pub use tables::{format_row, write_csv, TableWriter};
