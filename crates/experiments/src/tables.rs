//! Table formatting and CSV output.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Formats one aligned table row.
pub fn format_row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::new();
    for (cell, &w) in cells.iter().zip(widths) {
        let _ = write!(out, "{cell:<w$}  ");
    }
    out.trim_end().to_string()
}

/// Accumulates a table and renders it aligned, plus as CSV.
#[derive(Debug, Default, Clone)]
pub struct TableWriter {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableWriter {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TableWriter {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: vec![],
        }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    /// Panics on a column-count mismatch — table construction is test/
    /// binary code where that is a bug.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row has {} cells, header has {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the CSV form.
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Writes a CSV file, creating parent directories.
pub fn write_csv(path: &Path, table: &TableWriter) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, table.to_csv())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableWriter {
        let mut t = TableWriter::new(&["Name", "Acc"]);
        t.add_row(vec!["Youtube".into(), "0.889".into()]);
        t.add_row(vec!["IMDB".into(), "0.801".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("Name"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("Youtube"));
        // Columns aligned: "Acc" column starts at the same offset everywhere.
        let pos_header = lines[0].find("Acc").unwrap();
        let pos_row = lines[2].find("0.889").unwrap();
        assert_eq!(pos_header, pos_row);
    }

    #[test]
    fn csv_output_and_escaping() {
        let mut t = TableWriter::new(&["a", "b"]);
        t.add_row(vec!["x,y".into(), "quote\"d".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"quote\"\"d\""));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn add_row_checks_arity() {
        let mut t = TableWriter::new(&["a"]);
        t.add_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("adp_tables_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        write_csv(&path, &sample()).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("Name,Acc"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
