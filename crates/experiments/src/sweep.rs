//! The budget/latency sweep: a grid of [`ScenarioSpec`]s expanded into
//! deterministic runs (ROADMAP's "k vs. accuracy-per-refit and wall-clock"
//! study).
//!
//! A [`SweepGrid`] is the cartesian product sampler × label model × batch
//! size × dataset × seed; [`SweepGrid::expand`] turns it into concrete
//! specs in a fixed nesting order, [`run_grid`] drives each one through
//! `Engine::from_spec_over` + `Engine::run_schedule` (sharing one
//! generated split per dataset spec), and [`grid_table`] renders the
//! Table-style artefact the `adp-sweep` binary writes: per combination,
//! the refit count, the final downstream accuracy, accuracy per refit, and
//! the loop wall-clock. Runs are deterministic in the spec, so rows
//! reproduce bit-for-bit (wall-clock aside) across invocations.

use activedp::{
    ActiveDpError, BudgetSchedule, CandidateStrategy, Engine, LabelModelKind, OracleKind,
    SamplerChoice, ScenarioSpec,
};
use adp_data::{DatasetId, DatasetSpec, DriftSpec, Scale, SharedDataset};
use adp_wire::{read_envelope, write_envelope};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The spec grid a sweep expands (see the module docs).
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Datasets to sweep.
    pub datasets: Vec<DatasetId>,
    /// Scale every dataset generates at.
    pub scale: Scale,
    /// Generator seed for every dataset.
    pub data_seed: u64,
    /// Query-instance selectors to sweep.
    pub samplers: Vec<SamplerChoice>,
    /// Label models to sweep.
    pub label_models: Vec<LabelModelKind>,
    /// Queries-per-refit batch sizes (`k = 1` is the paper's loop).
    pub ks: Vec<usize>,
    /// Labelling budget per run.
    pub budget: usize,
    /// Session seeds each combination averages over.
    pub seeds: Vec<u64>,
    /// Candidate strategy every run scores with (`Exact` replays the
    /// paper's loop; `Ann` exercises the sublinear large-pool path).
    pub candidates: CandidateStrategy,
    /// Label oracles to sweep (`Simulated` is the paper's user;
    /// `Noisy` routes between it and a cheap confusion-matrix oracle).
    pub oracles: Vec<OracleKind>,
    /// Streaming scenarios to sweep (`None` is the paper's static pool).
    pub drifts: Vec<DriftSpec>,
}

impl SweepGrid {
    /// The ROADMAP study's default grid: {US, QBC, ADP} × {Triplet,
    /// DawidSkene} × k ∈ {1, 4, 16} on one dataset.
    pub fn default_study(dataset: DatasetId) -> Self {
        SweepGrid {
            datasets: vec![dataset],
            scale: Scale::Tiny,
            data_seed: 7,
            samplers: vec![
                SamplerChoice::Uncertainty,
                SamplerChoice::Qbc,
                SamplerChoice::Adp,
            ],
            label_models: vec![LabelModelKind::Triplet, LabelModelKind::DawidSkene],
            ks: vec![1, 4, 16],
            budget: 48,
            seeds: vec![1],
            candidates: CandidateStrategy::Exact,
            oracles: vec![OracleKind::Simulated],
            drifts: vec![DriftSpec::None],
        }
    }

    /// Number of specs [`SweepGrid::expand`] produces.
    pub fn len(&self) -> usize {
        self.datasets.len()
            * self.samplers.len()
            * self.label_models.len()
            * self.ks.len()
            * self.oracles.len()
            * self.drifts.len()
            * self.seeds.len()
    }

    /// `true` when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the cartesian product into concrete specs, outermost axis
    /// first: dataset → sampler → label model → k → oracle → drift →
    /// seed. The order is part of the artefact contract (rows land in
    /// this order); single-entry oracle/drift axes — the defaults —
    /// reproduce the pre-routing expansion exactly.
    pub fn expand(&self) -> Vec<ScenarioSpec> {
        let mut specs = Vec::with_capacity(self.len());
        for &dataset in &self.datasets {
            for &sampler in &self.samplers {
                for &label_model in &self.label_models {
                    for &k in &self.ks {
                        for &oracle in &self.oracles {
                            for &drift in &self.drifts {
                                for &seed in &self.seeds {
                                    let mut spec = ScenarioSpec::new(DatasetSpec {
                                        id: dataset,
                                        scale: self.scale,
                                        seed: self.data_seed,
                                    });
                                    spec.session.seed = seed;
                                    spec.session.sampler = sampler;
                                    spec.session.label_model = label_model;
                                    spec.session.candidates = self.candidates;
                                    spec.session.oracle = oracle;
                                    spec.schedule = if k == 1 {
                                        BudgetSchedule::FixedStep
                                    } else {
                                        BudgetSchedule::FixedBatch { k }
                                    };
                                    spec.budget = self.budget;
                                    spec.drift = drift;
                                    specs.push(spec);
                                }
                            }
                        }
                    }
                }
            }
        }
        specs
    }

    /// [`SweepGrid::expand`] with stable cell ids attached: a cell's id is
    /// its position in expand order, so the same grid always names the
    /// same cell the same way — the identity the distributed coordinator
    /// dispatches, reschedules and merges by.
    pub fn cells(&self) -> Vec<SweepCell> {
        self.expand()
            .into_iter()
            .enumerate()
            .map(|(id, spec)| SweepCell {
                id: id as u64,
                spec,
            })
            .collect()
    }
}

/// One grid cell: a stable id (the cell's position in
/// [`SweepGrid::expand`] order) plus the spec it runs.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Position in expand order — stable across runs of the same grid.
    pub id: u64,
    /// The cell's scenario.
    pub spec: ScenarioSpec,
}

/// Magic prefix of an encoded [`SweepRow`].
pub const SWEEP_ROW_MAGIC: &[u8; 8] = b"ADPSWROW";
/// Current [`SweepRow`] encoding version: v2 appended the routing/drift
/// columns (cheap fraction, routed cost, recovery); v1 rows decode with
/// those at 0 — exactly what every v1 run measured.
pub const SWEEP_ROW_VERSION: u32 = 2;
/// First version carrying the routing/drift columns.
pub const SWEEP_ROW_VERSION_ROUTING: u32 = 2;

/// One finished run of the sweep.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// The cell that produced the row (its [`SweepGrid::expand`] index;
    /// 0 for standalone [`run_spec`]/[`run_spec_over`] runs).
    pub cell: u64,
    /// The spec that produced the row.
    pub spec: ScenarioSpec,
    /// Loop iterations actually consumed (≤ budget when the pool ran dry).
    pub iterations: usize,
    /// Refit batches actually started.
    pub refits: usize,
    /// Final downstream test accuracy.
    pub test_accuracy: f64,
    /// Training + evaluation wall-clock, milliseconds (dataset generation
    /// excluded — the artefact measures the loop, not the generator).
    pub wall_ms: f64,
    /// Fraction of oracle queries the cheap noisy oracle answered
    /// (escalations excluded); 0 for simulated-user runs.
    pub cheap_fraction: f64,
    /// Total routed cost under the spec's latency model (cheap +
    /// expensive spend); 0 for simulated-user runs.
    pub routed_cost: f64,
    /// Post-drift accuracy recovery: final test accuracy minus the
    /// accuracy evaluated at the drift boundary (negative when the run
    /// never recovers); 0 for drift-free runs.
    pub recovery: f64,
}

impl SweepRow {
    /// Accuracy bought per refit — the sweep's headline trade-off column.
    pub fn accuracy_per_refit(&self) -> f64 {
        self.test_accuracy / self.refits.max(1) as f64
    }

    /// Encodes the row as a versioned artefact (`ADPSWROW` v1) — the form
    /// `adp-coord --spool` persists per completed cell, so an interrupted
    /// coordinator restart skips cells already computed.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = write_envelope(SWEEP_ROW_MAGIC, SWEEP_ROW_VERSION);
        w.put_u64(self.cell);
        let spec = self.spec.to_bytes();
        w.put_u64(spec.len() as u64);
        w.put_bytes(&spec);
        w.put_usize(self.iterations);
        w.put_usize(self.refits);
        w.put_f64(self.test_accuracy);
        w.put_f64(self.wall_ms);
        // v2: routing/drift columns, appended so v1 bodies are an exact
        // prefix of v2 bodies.
        w.put_f64(self.cheap_fraction);
        w.put_f64(self.routed_cost);
        w.put_f64(self.recovery);
        w.into_bytes()
    }

    /// Decodes a row written by [`SweepRow::to_bytes`], rejecting foreign
    /// magic, newer versions, truncation and trailing garbage.
    pub fn from_bytes(bytes: &[u8]) -> Result<SweepRow, ActiveDpError> {
        let (mut r, version) = read_envelope(bytes, SWEEP_ROW_MAGIC, SWEEP_ROW_VERSION)?;
        let cell = r.get_u64()?;
        let spec_len = r.get_len("sweep row spec", 1)?;
        let spec = ScenarioSpec::from_bytes(r.get_bytes(spec_len)?)?;
        let mut row = SweepRow {
            cell,
            spec,
            iterations: r.get_usize()?,
            refits: r.get_usize()?,
            test_accuracy: r.get_f64()?,
            wall_ms: r.get_f64()?,
            cheap_fraction: 0.0,
            routed_cost: 0.0,
            recovery: 0.0,
        };
        if version >= SWEEP_ROW_VERSION_ROUTING {
            row.cheap_fraction = r.get_f64()?;
            row.routed_cost = r.get_f64()?;
            row.recovery = r.get_f64()?;
        }
        r.finish()?;
        Ok(row)
    }
}

/// A cell the sweep could not run: a degenerate spec, or a dataset that
/// failed to generate. Failures are collected, not propagated — one bad
/// cell must not abort a 2,880-cell sweep.
#[derive(Debug)]
pub struct CellFailure {
    /// The cell's stable id (expand-order index).
    pub cell: u64,
    /// The spec that failed.
    pub spec: ScenarioSpec,
    /// The typed engine error.
    pub error: ActiveDpError,
}

/// Everything a grid run produced: the successful rows (in expand order)
/// plus every per-cell failure (also in expand order).
#[derive(Debug, Default)]
pub struct SweepOutcome {
    /// Rows of the cells that ran, ordered by cell id.
    pub rows: Vec<SweepRow>,
    /// Cells that failed, ordered by cell id.
    pub failures: Vec<CellFailure>,
}

impl SweepOutcome {
    /// `true` when every cell produced a row.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Zeroes every row's wall-clock column — the `--zero-wall` mode that
    /// makes the rendered artefact byte-comparable across runs, worker
    /// counts and failure interleavings (wall time is the one
    /// non-deterministic column).
    pub fn zero_wall(&mut self) {
        for row in &mut self.rows {
            row.wall_ms = 0.0;
        }
    }
}

/// Runs one spec over an already-generated split (provenance must match;
/// see `Engine::from_spec_over`).
pub fn run_spec_over(spec: ScenarioSpec, data: SharedDataset) -> Result<SweepRow, ActiveDpError> {
    let schedule = spec.schedule.clone();
    let mut engine = Engine::from_spec_over(spec.clone(), data)?;
    let start = std::time::Instant::now();
    // For mutating drift, pause at the boundary and evaluate once against
    // the still-pristine pool — the baseline the recovery column measures
    // from. Evaluation is read-only (no session RNG), so the trajectory is
    // bitwise the run that never paused.
    let boundary_accuracy = match spec.drift.boundary().filter(|&at| at < spec.budget) {
        Some(at) => {
            engine.run_schedule_batches(schedule.n_batches(at))?;
            Some(engine.evaluate_downstream()?.test_accuracy)
        }
        None => None,
    };
    engine.run_schedule()?;
    let report = engine.evaluate_downstream()?;
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let iterations = engine.state().iteration;
    let stats = engine.route_stats();
    Ok(SweepRow {
        cell: 0,
        spec,
        iterations,
        // Boundaries are absolute, so the batches covering the consumed
        // iterations are exactly the batches that ran.
        refits: schedule.batch_sizes(iterations).len(),
        test_accuracy: report.test_accuracy,
        wall_ms,
        cheap_fraction: stats.map_or(0.0, |s| s.cheap_fraction()),
        routed_cost: stats.map_or(0.0, |s| s.total_cost()),
        recovery: boundary_accuracy.map_or(0.0, |a| report.test_accuracy - a),
    })
}

/// Runs one spec, generating its dataset first.
pub fn run_spec(spec: ScenarioSpec) -> Result<SweepRow, ActiveDpError> {
    let data = spec
        .dataset
        .generate()
        .map_err(|e| ActiveDpError::BadConfig {
            reason: format!("dataset spec failed to generate: {e}"),
        })?
        .into_shared();
    run_spec_over(spec, data)
}

/// Expands and runs a whole grid serially, generating each distinct
/// dataset spec once and sharing the split across every run that names
/// it. Rows come back in [`SweepGrid::expand`] order; failing cells land
/// in [`SweepOutcome::failures`] instead of aborting the sweep.
pub fn run_grid(grid: &SweepGrid) -> SweepOutcome {
    run_grid_jobs(grid, 1)
}

/// Fetches (or generates exactly once) the split a spec names. The lock
/// is held across generation on purpose: two cells racing for the same
/// dataset must not both pay the generator — the loser blocks and reuses
/// the winner's split, exactly like the serving hub's dataset cache.
fn cached_dataset(
    cache: &Mutex<HashMap<(DatasetId, u64, u64), SharedDataset>>,
    spec: &ScenarioSpec,
) -> Result<SharedDataset, ActiveDpError> {
    let mut cache = cache.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(data) = cache.get(&spec.dataset.cache_key()) {
        return Ok(data.clone());
    }
    let data = spec
        .dataset
        .generate()
        .map_err(|e| ActiveDpError::BadConfig {
            reason: format!("dataset spec failed to generate: {e}"),
        })?
        .into_shared();
    cache.insert(spec.dataset.cache_key(), data.clone());
    Ok(data)
}

/// [`run_grid`] over `jobs` worker threads. Workers pull the next
/// unclaimed cell from a shared counter (work-stealing: a slow cell never
/// stalls the rest of the grid), runs are independent and deterministic
/// in the spec, and results are reassembled by cell id afterwards — so
/// the outcome is bitwise identical (wall-clock aside) for every `jobs`
/// value, pinned by this module's tests.
pub fn run_grid_jobs(grid: &SweepGrid, jobs: usize) -> SweepOutcome {
    run_grid_jobs_streaming(grid, jobs, |_, _, _| {})
}

/// [`run_grid_jobs`] with a partial-result hook: `on_row(done, total,
/// row)` fires for every successful cell **in completion order** — which
/// worker count and cell latency interleave freely — while the returned
/// outcome still merges rows in expand order, so anything derived from it
/// (the CSV artefact included) is byte-identical to the hook-free run.
/// The hook runs under the results lock; keep it cheap (a progress line).
pub fn run_grid_jobs_streaming(
    grid: &SweepGrid,
    jobs: usize,
    on_row: impl Fn(usize, usize, &SweepRow) + Sync,
) -> SweepOutcome {
    let cells = grid.cells();
    let total = cells.len();
    let cache: Mutex<HashMap<(DatasetId, u64, u64), SharedDataset>> = Mutex::new(HashMap::new());
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(u64, Result<SweepRow, ActiveDpError>)>> =
        Mutex::new(Vec::with_capacity(cells.len()));
    let workers = jobs.max(1).min(cells.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else { break };
                let result = cached_dataset(&cache, &cell.spec).and_then(|data| {
                    run_spec_over(cell.spec.clone(), data).map(|mut row| {
                        row.cell = cell.id;
                        row
                    })
                });
                let mut results = results.lock().unwrap_or_else(|e| e.into_inner());
                results.push((cell.id, result));
                let done = results.len();
                if let Some((_, Ok(row))) = results.last() {
                    on_row(done, total, row);
                }
            });
        }
    });
    let mut results = results.into_inner().unwrap_or_else(|e| e.into_inner());
    results.sort_by_key(|(id, _)| *id);
    let mut outcome = SweepOutcome::default();
    for ((id, result), cell) in results.into_iter().zip(cells) {
        debug_assert_eq!(id, cell.id);
        match result {
            Ok(row) => outcome.rows.push(row),
            Err(error) => outcome.failures.push(CellFailure {
                cell: cell.id,
                spec: cell.spec,
                error,
            }),
        }
    }
    outcome
}

/// Renders sweep rows as the budget/latency artefact table, averaging the
/// seed axis per (dataset, sampler, label model, schedule) combination.
pub fn grid_table(rows: &[SweepRow]) -> crate::tables::TableWriter {
    let mut table = crate::tables::TableWriter::new(&[
        "Dataset",
        "Sampler",
        "LabelModel",
        "Schedule",
        "Oracle",
        "Drift",
        "Budget",
        "Seeds",
        "Iterations",
        "Refits",
        "Accuracy",
        "AccPerRefit",
        "CheapFrac",
        "RoutedCost",
        "Recovery",
        "WallMs",
    ]);
    // Group rows by combination, preserving first-appearance order (rows
    // arrive in expand order, so seeds of one combination are adjacent).
    let mut groups: Vec<(String, Vec<&SweepRow>)> = Vec::new();
    for row in rows {
        let key = format!(
            "{}|{}|{}|{}|{}|{}",
            row.spec.dataset.id,
            row.spec.session.sampler,
            row.spec.session.label_model,
            row.spec.schedule.label(),
            row.spec.session.oracle,
            row.spec.drift,
        );
        match groups.last_mut() {
            Some((last, members)) if *last == key => members.push(row),
            _ => groups.push((key, vec![row])),
        }
    }
    for (_, members) in &groups {
        let n = members.len() as f64;
        let mean = |f: &dyn Fn(&SweepRow) -> f64| members.iter().map(|r| f(r)).sum::<f64>() / n;
        let first = members[0];
        table.add_row(vec![
            first.spec.dataset.id.to_string(),
            first.spec.session.sampler.to_string(),
            first.spec.session.label_model.to_string(),
            first.spec.schedule.label(),
            first.spec.session.oracle.to_string(),
            first.spec.drift.to_string(),
            first.spec.budget.to_string(),
            members.len().to_string(),
            format!("{:.1}", mean(&|r| r.iterations as f64)),
            format!("{:.1}", mean(&|r| r.refits as f64)),
            format!("{:.4}", mean(&|r| r.test_accuracy)),
            format!("{:.4}", mean(&|r| r.accuracy_per_refit())),
            format!("{:.4}", mean(&|r| r.cheap_fraction)),
            format!("{:.2}", mean(&|r| r.routed_cost)),
            format!("{:+.4}", mean(&|r| r.recovery)),
            format!("{:.1}", mean(&|r| r.wall_ms)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> SweepGrid {
        SweepGrid {
            datasets: vec![DatasetId::Youtube],
            scale: Scale::Tiny,
            data_seed: 7,
            samplers: vec![SamplerChoice::Uncertainty, SamplerChoice::Adp],
            label_models: vec![LabelModelKind::Triplet],
            ks: vec![1, 4],
            budget: 6,
            seeds: vec![1],
            candidates: CandidateStrategy::Exact,
            oracles: vec![OracleKind::Simulated],
            drifts: vec![DriftSpec::None],
        }
    }

    #[test]
    fn expand_is_the_cartesian_product_in_fixed_order() {
        let grid = tiny_grid();
        let specs = grid.expand();
        assert_eq!(specs.len(), grid.len());
        assert_eq!(specs.len(), 4);
        // sampler is the outer axis, k the inner.
        assert_eq!(specs[0].session.sampler, SamplerChoice::Uncertainty);
        assert_eq!(specs[0].schedule, BudgetSchedule::FixedStep);
        assert_eq!(specs[1].schedule, BudgetSchedule::FixedBatch { k: 4 });
        assert_eq!(specs[2].session.sampler, SamplerChoice::Adp);
        // Every spec validates and carries the grid's budget and strategy.
        for spec in &specs {
            spec.validate().unwrap();
            assert_eq!(spec.budget, 6);
            assert_eq!(spec.session.candidates, CandidateStrategy::Exact);
        }

        // A non-default strategy reaches every spec too.
        let mut ann_grid = tiny_grid();
        ann_grid.candidates = CandidateStrategy::ann();
        for spec in ann_grid.expand() {
            assert_eq!(spec.session.candidates, CandidateStrategy::ann());
        }
    }

    #[test]
    fn empty_axes_expand_to_nothing() {
        let mut grid = tiny_grid();
        grid.ks.clear();
        assert!(grid.is_empty());
        assert!(grid.expand().is_empty());
    }

    #[test]
    fn run_grid_emits_one_row_per_spec_and_rows_parse() {
        let grid = tiny_grid();
        let out = run_grid(&grid);
        assert!(out.is_clean());
        let rows = out.rows;
        assert_eq!(rows.len(), 4);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.cell, i as u64);
        }
        for row in &rows {
            assert_eq!(row.iterations, 6);
            let expected_refits = row.spec.schedule.n_batches(6);
            assert_eq!(row.refits, expected_refits);
            assert!((0.0..=1.0).contains(&row.test_accuracy));
            assert!(row.accuracy_per_refit() <= row.test_accuracy + 1e-12);
            assert!(row.wall_ms >= 0.0);
        }
        // Batching cuts refits: k=4 rows refit less than k=1 rows.
        assert!(rows[1].refits < rows[0].refits);

        // The artefact table carries one parsed row per combination.
        let table = grid_table(&rows);
        let csv = table.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 4, "{csv}");
        for line in &lines[1..] {
            // Default rows ("simulated"/"none") contain no quoted cells,
            // so a naive split is still exact here.
            let cells: Vec<&str> = line.split(',').collect();
            assert_eq!(cells.len(), 16, "{line}");
            assert_eq!(cells[4], "simulated", "{line}");
            assert_eq!(cells[5], "none", "{line}");
            for numeric in [10, 11, 12, 13, 14, 15] {
                assert!(cells[numeric].parse::<f64>().is_ok(), "{line}");
            }
            // Simulated cells route nothing and measure no recovery.
            assert_eq!(cells[12].parse::<f64>().unwrap(), 0.0, "{line}");
            assert_eq!(cells[13].parse::<f64>().unwrap(), 0.0, "{line}");
            assert_eq!(cells[14].parse::<f64>().unwrap(), 0.0, "{line}");
        }
    }

    #[test]
    fn runs_are_deterministic_in_the_spec() {
        let spec = tiny_grid().expand().swap_remove(1);
        let a = run_spec(spec.clone()).unwrap();
        let b = run_spec(spec).unwrap();
        assert_eq!(a.test_accuracy.to_bits(), b.test_accuracy.to_bits());
        assert_eq!(a.refits, b.refits);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn seed_axis_averages_into_one_table_row() {
        let mut grid = tiny_grid();
        grid.samplers = vec![SamplerChoice::Uncertainty];
        grid.ks = vec![4];
        grid.seeds = vec![1, 2];
        let out = run_grid(&grid);
        assert!(out.is_clean());
        let rows = out.rows;
        assert_eq!(rows.len(), 2);
        let table = grid_table(&rows);
        let csv = table.to_csv();
        assert_eq!(csv.lines().count(), 2, "{csv}");
        assert!(csv.lines().nth(1).unwrap().contains(",2,"), "{csv}");
    }

    #[test]
    fn parallel_grid_is_bitwise_identical_to_serial() {
        let grid = tiny_grid();
        let mut serial = run_grid_jobs(&grid, 1);
        let mut parallel = run_grid_jobs(&grid, 4);
        assert!(serial.is_clean() && parallel.is_clean());
        assert_eq!(serial.rows.len(), parallel.rows.len());
        for (a, b) in serial.rows.iter().zip(&parallel.rows) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.iterations, b.iterations);
            assert_eq!(a.refits, b.refits);
            assert_eq!(a.test_accuracy.to_bits(), b.test_accuracy.to_bits());
        }
        // With wall-clock zeroed the rendered artefacts byte-compare.
        serial.zero_wall();
        parallel.zero_wall();
        assert_eq!(
            grid_table(&serial.rows).to_csv(),
            grid_table(&parallel.rows).to_csv()
        );
        // More workers than cells degrades gracefully too.
        let crowd = run_grid_jobs(&grid, 64);
        assert_eq!(crowd.rows.len(), serial.rows.len());
    }

    #[test]
    fn a_degenerate_cell_fails_alone_without_aborting_the_sweep() {
        let mut grid = tiny_grid();
        grid.ks = vec![1, 0]; // k = 0 fails BudgetSchedule validation.
        let out = run_grid(&grid);
        assert!(!out.is_clean());
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.failures.len(), 2);
        // Failures keep their cell identity and a typed error.
        for failure in &out.failures {
            assert_eq!(failure.spec.schedule, BudgetSchedule::FixedBatch { k: 0 });
            assert!(
                matches!(failure.error, ActiveDpError::BadConfig { .. }),
                "{:?}",
                failure.error
            );
        }
        assert_eq!(out.failures[0].cell, 1);
        assert_eq!(out.failures[1].cell, 3);
        // The healthy cells still ran to completion.
        for row in &out.rows {
            assert_eq!(row.iterations, 6);
        }
    }

    #[test]
    fn sweep_rows_roundtrip_through_the_codec() {
        let grid = tiny_grid();
        let out = run_grid(&grid);
        for row in &out.rows {
            let bytes = row.to_bytes();
            let back = SweepRow::from_bytes(&bytes).unwrap();
            assert_eq!(back.cell, row.cell);
            assert_eq!(back.spec, row.spec);
            assert_eq!(back.iterations, row.iterations);
            assert_eq!(back.refits, row.refits);
            assert_eq!(back.test_accuracy.to_bits(), row.test_accuracy.to_bits());
            assert_eq!(back.wall_ms.to_bits(), row.wall_ms.to_bits());
            assert_eq!(back.cheap_fraction.to_bits(), row.cheap_fraction.to_bits());
            assert_eq!(back.routed_cost.to_bits(), row.routed_cost.to_bits());
            assert_eq!(back.recovery.to_bits(), row.recovery.to_bits());
        }
    }

    #[test]
    fn sweep_row_codec_rejects_corruption() {
        let row = run_spec(tiny_grid().expand().swap_remove(0)).unwrap();
        let bytes = row.to_bytes();
        // Foreign magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(SweepRow::from_bytes(&bad).is_err());
        // Truncation.
        assert!(SweepRow::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(SweepRow::from_bytes(&long).is_err());
        // Future version.
        let mut newer = bytes;
        newer[8] = 0xFF;
        assert!(SweepRow::from_bytes(&newer).is_err());
    }

    #[test]
    fn v1_row_bodies_decode_with_zeroed_routing_columns() {
        let row = run_spec(tiny_grid().expand().swap_remove(0)).unwrap();
        let mut bytes = row.to_bytes();
        // A v1 body is the exact prefix of a v2 body: drop the three
        // appended routing f64s and rewind the version stamp.
        bytes.truncate(bytes.len() - 24);
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        let back = SweepRow::from_bytes(&bytes).unwrap();
        assert_eq!(back.spec, row.spec);
        assert_eq!(back.test_accuracy.to_bits(), row.test_accuracy.to_bits());
        assert_eq!(back.cheap_fraction, 0.0);
        assert_eq!(back.routed_cost, 0.0);
        assert_eq!(back.recovery, 0.0);
    }

    /// A routed, drifted grid for the oracle/drift axis tests: one cell
    /// per (oracle, drift) pair on tiny Youtube.
    fn routed_grid() -> SweepGrid {
        let mut grid = tiny_grid();
        grid.samplers = vec![SamplerChoice::Uncertainty];
        grid.ks = vec![1];
        grid.budget = 8;
        grid.oracles = vec![OracleKind::Simulated, OracleKind::noisy()];
        grid.drifts = vec![DriftSpec::None, DriftSpec::LabelShift { at: 4, prior: 0.8 }];
        grid
    }

    #[test]
    fn oracle_and_drift_axes_multiply_the_grid() {
        let grid = routed_grid();
        let specs = grid.expand();
        assert_eq!(specs.len(), 4);
        assert_eq!(specs.len(), grid.len());
        // drift is the inner axis of the pair.
        assert_eq!(specs[0].session.oracle, OracleKind::Simulated);
        assert_eq!(specs[0].drift, DriftSpec::None);
        assert_eq!(specs[1].drift, DriftSpec::LabelShift { at: 4, prior: 0.8 });
        assert_eq!(specs[2].session.oracle, OracleKind::noisy());
        for spec in &specs {
            spec.validate().unwrap();
        }
    }

    #[test]
    fn routed_drifted_cells_fill_the_new_columns() {
        let out = run_grid(&routed_grid());
        assert!(out.is_clean());
        let rows = out.rows;
        assert_eq!(rows.len(), 4);
        // Simulated cells: no routing, no cost.
        assert_eq!(rows[0].cheap_fraction, 0.0);
        assert_eq!(rows[0].routed_cost, 0.0);
        assert_eq!(rows[0].recovery, 0.0);
        // Noisy cells route every query somewhere and pay for it.
        for row in &rows[2..] {
            assert!(row.cheap_fraction > 0.0, "{row:?}");
            assert!(row.cheap_fraction <= 1.0, "{row:?}");
            assert!(row.routed_cost > 0.0, "{row:?}");
        }
        // Drift-free cells report zero recovery; drifted cells report
        // final minus boundary accuracy, which is finite either way.
        assert_eq!(rows[2].recovery, 0.0);
        assert!(rows[1].recovery.is_finite());
        assert!(rows[3].recovery.is_finite());

        // The drifted rows render with their comma-bearing drift label
        // quoted, keeping the CSV parseable.
        let csv = grid_table(&rows).to_csv();
        assert!(csv.contains("\"label-shift:4,0.8\""), "{csv}");

        // And routed runs stay deterministic: a rerun is bitwise equal.
        let again = run_grid(&routed_grid());
        for (a, b) in rows.iter().zip(&again.rows) {
            assert_eq!(a.test_accuracy.to_bits(), b.test_accuracy.to_bits());
            assert_eq!(a.cheap_fraction.to_bits(), b.cheap_fraction.to_bits());
            assert_eq!(a.routed_cost.to_bits(), b.routed_cost.to_bits());
            assert_eq!(a.recovery.to_bits(), b.recovery.to_bits());
        }
    }

    #[test]
    fn recovery_pause_does_not_perturb_the_trajectory() {
        // A drifted cell's paused-and-evaluated run must equal the same
        // spec run straight through (evaluation is read-only).
        let spec = routed_grid().expand().swap_remove(3);
        assert_ne!(spec.drift, DriftSpec::None);
        let row = run_spec(spec.clone()).unwrap();
        let mut engine = Engine::from_spec(spec).unwrap();
        engine.run_schedule().unwrap();
        let unpaused = engine.evaluate_downstream().unwrap().test_accuracy;
        assert_eq!(row.test_accuracy.to_bits(), unpaused.to_bits());
    }

    #[test]
    fn streaming_rows_arrive_per_cell_and_leave_the_outcome_unchanged() {
        use std::sync::Mutex;
        let grid = tiny_grid();
        let seen: Mutex<Vec<(usize, usize, u64)>> = Mutex::new(Vec::new());
        let streamed = run_grid_jobs_streaming(&grid, 2, |done, total, row| {
            seen.lock().unwrap().push((done, total, row.cell));
        });
        assert!(streamed.is_clean());
        let seen = seen.into_inner().unwrap();
        // Every cell reported exactly once, with a monotone done count.
        assert_eq!(seen.len(), 4);
        let mut cells: Vec<u64> = seen.iter().map(|&(_, _, c)| c).collect();
        cells.sort_unstable();
        assert_eq!(cells, vec![0, 1, 2, 3]);
        for (i, &(done, total, _)) in seen.iter().enumerate() {
            assert_eq!(done, i + 1);
            assert_eq!(total, 4);
        }
        // The merged outcome is the hook-free one.
        let plain = run_grid_jobs(&grid, 2);
        assert_eq!(streamed.rows.len(), plain.rows.len());
        for (a, b) in streamed.rows.iter().zip(&plain.rows) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.test_accuracy.to_bits(), b.test_accuracy.to_bits());
        }
    }
}
