//! The budget/latency sweep: a grid of [`ScenarioSpec`]s expanded into
//! deterministic runs (ROADMAP's "k vs. accuracy-per-refit and wall-clock"
//! study).
//!
//! A [`SweepGrid`] is the cartesian product sampler × label model × batch
//! size × dataset × seed; [`SweepGrid::expand`] turns it into concrete
//! specs in a fixed nesting order, [`run_grid`] drives each one through
//! `Engine::from_spec_over` + `Engine::run_schedule` (sharing one
//! generated split per dataset spec), and [`grid_table`] renders the
//! Table-style artefact the `adp-sweep` binary writes: per combination,
//! the refit count, the final downstream accuracy, accuracy per refit, and
//! the loop wall-clock. Runs are deterministic in the spec, so rows
//! reproduce bit-for-bit (wall-clock aside) across invocations.

use activedp::{
    ActiveDpError, BudgetSchedule, CandidateStrategy, Engine, LabelModelKind, SamplerChoice,
    ScenarioSpec,
};
use adp_data::{DatasetId, DatasetSpec, Scale, SharedDataset};
use std::collections::HashMap;

/// The spec grid a sweep expands (see the module docs).
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Datasets to sweep.
    pub datasets: Vec<DatasetId>,
    /// Scale every dataset generates at.
    pub scale: Scale,
    /// Generator seed for every dataset.
    pub data_seed: u64,
    /// Query-instance selectors to sweep.
    pub samplers: Vec<SamplerChoice>,
    /// Label models to sweep.
    pub label_models: Vec<LabelModelKind>,
    /// Queries-per-refit batch sizes (`k = 1` is the paper's loop).
    pub ks: Vec<usize>,
    /// Labelling budget per run.
    pub budget: usize,
    /// Session seeds each combination averages over.
    pub seeds: Vec<u64>,
    /// Candidate strategy every run scores with (`Exact` replays the
    /// paper's loop; `Ann` exercises the sublinear large-pool path).
    pub candidates: CandidateStrategy,
}

impl SweepGrid {
    /// The ROADMAP study's default grid: {US, QBC, ADP} × {Triplet,
    /// DawidSkene} × k ∈ {1, 4, 16} on one dataset.
    pub fn default_study(dataset: DatasetId) -> Self {
        SweepGrid {
            datasets: vec![dataset],
            scale: Scale::Tiny,
            data_seed: 7,
            samplers: vec![
                SamplerChoice::Uncertainty,
                SamplerChoice::Qbc,
                SamplerChoice::Adp,
            ],
            label_models: vec![LabelModelKind::Triplet, LabelModelKind::DawidSkene],
            ks: vec![1, 4, 16],
            budget: 48,
            seeds: vec![1],
            candidates: CandidateStrategy::Exact,
        }
    }

    /// Number of specs [`SweepGrid::expand`] produces.
    pub fn len(&self) -> usize {
        self.datasets.len()
            * self.samplers.len()
            * self.label_models.len()
            * self.ks.len()
            * self.seeds.len()
    }

    /// `true` when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the cartesian product into concrete specs, outermost axis
    /// first: dataset → sampler → label model → k → seed. The order is
    /// part of the artefact contract (rows land in this order).
    pub fn expand(&self) -> Vec<ScenarioSpec> {
        let mut specs = Vec::with_capacity(self.len());
        for &dataset in &self.datasets {
            for &sampler in &self.samplers {
                for &label_model in &self.label_models {
                    for &k in &self.ks {
                        for &seed in &self.seeds {
                            let mut spec = ScenarioSpec::new(DatasetSpec {
                                id: dataset,
                                scale: self.scale,
                                seed: self.data_seed,
                            });
                            spec.session.seed = seed;
                            spec.session.sampler = sampler;
                            spec.session.label_model = label_model;
                            spec.session.candidates = self.candidates;
                            spec.schedule = if k == 1 {
                                BudgetSchedule::FixedStep
                            } else {
                                BudgetSchedule::FixedBatch { k }
                            };
                            spec.budget = self.budget;
                            specs.push(spec);
                        }
                    }
                }
            }
        }
        specs
    }
}

/// One finished run of the sweep.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// The spec that produced the row.
    pub spec: ScenarioSpec,
    /// Loop iterations actually consumed (≤ budget when the pool ran dry).
    pub iterations: usize,
    /// Refit batches actually started.
    pub refits: usize,
    /// Final downstream test accuracy.
    pub test_accuracy: f64,
    /// Training + evaluation wall-clock, milliseconds (dataset generation
    /// excluded — the artefact measures the loop, not the generator).
    pub wall_ms: f64,
}

impl SweepRow {
    /// Accuracy bought per refit — the sweep's headline trade-off column.
    pub fn accuracy_per_refit(&self) -> f64 {
        self.test_accuracy / self.refits.max(1) as f64
    }
}

/// Runs one spec over an already-generated split (provenance must match;
/// see `Engine::from_spec_over`).
pub fn run_spec_over(spec: ScenarioSpec, data: SharedDataset) -> Result<SweepRow, ActiveDpError> {
    let schedule = spec.schedule.clone();
    let mut engine = Engine::from_spec_over(spec.clone(), data)?;
    let start = std::time::Instant::now();
    engine.run_schedule()?;
    let report = engine.evaluate_downstream()?;
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let iterations = engine.state().iteration;
    Ok(SweepRow {
        spec,
        iterations,
        // Boundaries are absolute, so the batches covering the consumed
        // iterations are exactly the batches that ran.
        refits: schedule.batch_sizes(iterations).len(),
        test_accuracy: report.test_accuracy,
        wall_ms,
    })
}

/// Runs one spec, generating its dataset first.
pub fn run_spec(spec: ScenarioSpec) -> Result<SweepRow, ActiveDpError> {
    let data = spec
        .dataset
        .generate()
        .map_err(|e| ActiveDpError::BadConfig {
            reason: format!("dataset spec failed to generate: {e}"),
        })?
        .into_shared();
    run_spec_over(spec, data)
}

/// Expands and runs a whole grid, generating each distinct dataset spec
/// once and sharing the split across every run that names it. Rows come
/// back in [`SweepGrid::expand`] order.
pub fn run_grid(grid: &SweepGrid) -> Result<Vec<SweepRow>, ActiveDpError> {
    let mut cache: HashMap<(DatasetId, u64, u64), SharedDataset> = HashMap::new();
    let mut rows = Vec::with_capacity(grid.len());
    for spec in grid.expand() {
        let data = match cache.get(&spec.dataset.cache_key()) {
            Some(data) => data.clone(),
            None => {
                let data = spec
                    .dataset
                    .generate()
                    .map_err(|e| ActiveDpError::BadConfig {
                        reason: format!("dataset spec failed to generate: {e}"),
                    })?
                    .into_shared();
                cache.insert(spec.dataset.cache_key(), data.clone());
                data
            }
        };
        rows.push(run_spec_over(spec, data)?);
    }
    Ok(rows)
}

/// Renders sweep rows as the budget/latency artefact table, averaging the
/// seed axis per (dataset, sampler, label model, schedule) combination.
pub fn grid_table(rows: &[SweepRow]) -> crate::tables::TableWriter {
    let mut table = crate::tables::TableWriter::new(&[
        "Dataset",
        "Sampler",
        "LabelModel",
        "Schedule",
        "Budget",
        "Seeds",
        "Iterations",
        "Refits",
        "Accuracy",
        "AccPerRefit",
        "WallMs",
    ]);
    // Group rows by combination, preserving first-appearance order (rows
    // arrive in expand order, so seeds of one combination are adjacent).
    let mut groups: Vec<(String, Vec<&SweepRow>)> = Vec::new();
    for row in rows {
        let key = format!(
            "{}|{}|{}|{}",
            row.spec.dataset.id,
            row.spec.session.sampler,
            row.spec.session.label_model,
            row.spec.schedule.label(),
        );
        match groups.last_mut() {
            Some((last, members)) if *last == key => members.push(row),
            _ => groups.push((key, vec![row])),
        }
    }
    for (_, members) in &groups {
        let n = members.len() as f64;
        let mean = |f: &dyn Fn(&SweepRow) -> f64| members.iter().map(|r| f(r)).sum::<f64>() / n;
        let first = members[0];
        table.add_row(vec![
            first.spec.dataset.id.to_string(),
            first.spec.session.sampler.to_string(),
            first.spec.session.label_model.to_string(),
            first.spec.schedule.label(),
            first.spec.budget.to_string(),
            members.len().to_string(),
            format!("{:.1}", mean(&|r| r.iterations as f64)),
            format!("{:.1}", mean(&|r| r.refits as f64)),
            format!("{:.4}", mean(&|r| r.test_accuracy)),
            format!("{:.4}", mean(&|r| r.accuracy_per_refit())),
            format!("{:.1}", mean(&|r| r.wall_ms)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> SweepGrid {
        SweepGrid {
            datasets: vec![DatasetId::Youtube],
            scale: Scale::Tiny,
            data_seed: 7,
            samplers: vec![SamplerChoice::Uncertainty, SamplerChoice::Adp],
            label_models: vec![LabelModelKind::Triplet],
            ks: vec![1, 4],
            budget: 6,
            seeds: vec![1],
            candidates: CandidateStrategy::Exact,
        }
    }

    #[test]
    fn expand_is_the_cartesian_product_in_fixed_order() {
        let grid = tiny_grid();
        let specs = grid.expand();
        assert_eq!(specs.len(), grid.len());
        assert_eq!(specs.len(), 4);
        // sampler is the outer axis, k the inner.
        assert_eq!(specs[0].session.sampler, SamplerChoice::Uncertainty);
        assert_eq!(specs[0].schedule, BudgetSchedule::FixedStep);
        assert_eq!(specs[1].schedule, BudgetSchedule::FixedBatch { k: 4 });
        assert_eq!(specs[2].session.sampler, SamplerChoice::Adp);
        // Every spec validates and carries the grid's budget and strategy.
        for spec in &specs {
            spec.validate().unwrap();
            assert_eq!(spec.budget, 6);
            assert_eq!(spec.session.candidates, CandidateStrategy::Exact);
        }

        // A non-default strategy reaches every spec too.
        let mut ann_grid = tiny_grid();
        ann_grid.candidates = CandidateStrategy::ann();
        for spec in ann_grid.expand() {
            assert_eq!(spec.session.candidates, CandidateStrategy::ann());
        }
    }

    #[test]
    fn empty_axes_expand_to_nothing() {
        let mut grid = tiny_grid();
        grid.ks.clear();
        assert!(grid.is_empty());
        assert!(grid.expand().is_empty());
    }

    #[test]
    fn run_grid_emits_one_row_per_spec_and_rows_parse() {
        let grid = tiny_grid();
        let rows = run_grid(&grid).unwrap();
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row.iterations, 6);
            let expected_refits = row.spec.schedule.n_batches(6);
            assert_eq!(row.refits, expected_refits);
            assert!((0.0..=1.0).contains(&row.test_accuracy));
            assert!(row.accuracy_per_refit() <= row.test_accuracy + 1e-12);
            assert!(row.wall_ms >= 0.0);
        }
        // Batching cuts refits: k=4 rows refit less than k=1 rows.
        assert!(rows[1].refits < rows[0].refits);

        // The artefact table carries one parsed row per combination.
        let table = grid_table(&rows);
        let csv = table.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 4, "{csv}");
        for line in &lines[1..] {
            let cells: Vec<&str> = line.split(',').collect();
            assert_eq!(cells.len(), 11, "{line}");
            assert!(cells[8].parse::<f64>().is_ok(), "{line}");
            assert!(cells[9].parse::<f64>().is_ok(), "{line}");
            assert!(cells[10].parse::<f64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn runs_are_deterministic_in_the_spec() {
        let spec = tiny_grid().expand().swap_remove(1);
        let a = run_spec(spec.clone()).unwrap();
        let b = run_spec(spec).unwrap();
        assert_eq!(a.test_accuracy.to_bits(), b.test_accuracy.to_bits());
        assert_eq!(a.refits, b.refits);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn seed_axis_averages_into_one_table_row() {
        let mut grid = tiny_grid();
        grid.samplers = vec![SamplerChoice::Uncertainty];
        grid.ks = vec![4];
        grid.seeds = vec![1, 2];
        let rows = run_grid(&grid).unwrap();
        assert_eq!(rows.len(), 2);
        let table = grid_table(&rows);
        let csv = table.to_csv();
        assert_eq!(csv.lines().count(), 2, "{csv}");
        assert!(csv.lines().nth(1).unwrap().contains(",2,"), "{csv}");
    }
}
