//! `adp-sweep` — the budget/latency study: expands a [`ScenarioSpec`]
//! grid (sampler × label model × queries-per-refit) into deterministic
//! runs and emits the Table-style artefact the ROADMAP asks for — per
//! combination, k vs. accuracy, accuracy-per-refit and wall-clock.
//!
//! Default grid: {US, QBC, ADP} × {Triplet, DawidSkene} × k ∈ {1, 4, 16}
//! on Youtube at tiny scale, budget 48. Every axis is a flag:
//!
//! ```text
//! adp-sweep --dataset youtube --scale tiny --sampler us --sampler adp \
//!           --label-model triplet --k 1 --k 4 --budget 12 --seeds 2 \
//!           --out results
//! ```
//!
//! Writes `<out>/sweep_budget_latency.csv` next to the rendered table.
//!
//! [`ScenarioSpec`]: activedp::ScenarioSpec

use adp_experiments::{grid_table, run_grid, write_csv, SweepOpts};
use std::path::Path;

fn main() {
    let opts = match SweepOpts::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if opts.grid.is_empty() {
        eprintln!("the sweep grid is empty (every axis needs at least one value)");
        std::process::exit(2);
    }
    println!(
        "Budget/latency sweep: {} runs ({} datasets x {} samplers x {} label models x {} schedules x {} seeds), budget {}, scale {}",
        opts.grid.len(),
        opts.grid.datasets.len(),
        opts.grid.samplers.len(),
        opts.grid.label_models.len(),
        opts.grid.ks.len(),
        opts.grid.seeds.len(),
        opts.grid.budget,
        opts.grid.scale,
    );
    println!();

    let rows = match run_grid(&opts.grid) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        }
    };
    let table = grid_table(&rows);
    println!("{}", table.render());

    let out = Path::new(&opts.out_dir).join("sweep_budget_latency.csv");
    match write_csv(&out, &table) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
}
