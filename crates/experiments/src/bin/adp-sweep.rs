//! `adp-sweep` — the budget/latency study: expands a [`ScenarioSpec`]
//! grid (sampler × label model × queries-per-refit) into deterministic
//! runs and emits the Table-style artefact the ROADMAP asks for — per
//! combination, k vs. accuracy, accuracy-per-refit and wall-clock.
//!
//! Default grid: {US, QBC, ADP} × {Triplet, DawidSkene} × k ∈ {1, 4, 16}
//! on Youtube at tiny scale, budget 48. Every axis is a flag, including
//! the scenario-diversity axes `--oracle` and `--drift`:
//!
//! ```text
//! adp-sweep --dataset youtube --scale tiny --sampler us --sampler adp \
//!           --label-model triplet --k 1 --k 4 --budget 12 --seeds 2 \
//!           --oracle simulated --oracle noisy:0.85 \
//!           --drift none --drift label-shift:8,0.8 \
//!           --jobs 4 --out results
//! ```
//!
//! Cells run over `--jobs N` local worker threads (default: every
//! available core). Each row is echoed the moment its cell finishes — in
//! completion order, so a long cell doesn't hold back the others — while
//! the artefact still merges rows in expand order, making it bitwise
//! identical for every `--jobs` value. `--zero-wall` zeroes the one
//! non-deterministic column so two artefacts byte-compare. A degenerate
//! cell fails alone: its typed error is reported at the end and the exit
//! code is non-zero, but every healthy cell still lands in the CSV.
//!
//! Writes `<out>/sweep_budget_latency.csv` next to the rendered table.
//!
//! [`ScenarioSpec`]: activedp::ScenarioSpec

use adp_experiments::{grid_table, run_grid_jobs_streaming, write_csv, SweepOpts};
use std::path::Path;

fn main() {
    let opts = match SweepOpts::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if opts.grid.is_empty() {
        eprintln!("the sweep grid is empty (every axis needs at least one value)");
        std::process::exit(2);
    }
    let jobs = opts.jobs.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    println!(
        "Budget/latency sweep: {} runs ({} datasets x {} samplers x {} label models x {} schedules x {} oracles x {} drifts x {} seeds), budget {}, scale {}, {} jobs",
        opts.grid.len(),
        opts.grid.datasets.len(),
        opts.grid.samplers.len(),
        opts.grid.label_models.len(),
        opts.grid.ks.len(),
        opts.grid.oracles.len(),
        opts.grid.drifts.len(),
        opts.grid.seeds.len(),
        opts.grid.budget,
        opts.grid.scale,
        jobs,
    );
    println!();

    // Rows stream out as cells finish (completion order); the table and
    // CSV below still merge in expand order, byte-identical to a silent
    // run.
    let mut outcome = run_grid_jobs_streaming(&opts.grid, jobs, |done, total, row| {
        println!(
            "[{done}/{total}] cell {}: {} / {} / {} / {} / {} / {} -> acc {:.4}, cheap {:.2}, recovery {:+.4}",
            row.cell,
            row.spec.dataset.id,
            row.spec.session.sampler,
            row.spec.session.label_model,
            row.spec.schedule.label(),
            row.spec.session.oracle,
            row.spec.drift,
            row.test_accuracy,
            row.cheap_fraction,
            row.recovery,
        );
    });
    println!();
    if opts.zero_wall {
        outcome.zero_wall();
    }
    let table = grid_table(&outcome.rows);
    println!("{}", table.render());

    let out = Path::new(&opts.out_dir).join("sweep_budget_latency.csv");
    match write_csv(&out, &table) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
    if !outcome.is_clean() {
        eprintln!("{} cell(s) failed:", outcome.failures.len());
        for failure in &outcome.failures {
            eprintln!(
                "  cell {} ({} / {} / {} / {}): {}",
                failure.cell,
                failure.spec.dataset.id,
                failure.spec.session.sampler,
                failure.spec.session.label_model,
                failure.spec.schedule.label(),
                failure.error,
            );
        }
        std::process::exit(1);
    }
}
