//! Regenerates **Table 3**: performance of ablated versions of ActiveDP.
//!
//! Four rows: Baseline (no LabelPick, no ConFusion), LabelPick only,
//! ConFusion only, and full ActiveDP — each reported as the average test
//! accuracy during the run, per dataset.

use activedp::SessionConfig;
use adp_experiments::{run_session_curve, write_csv, RunOpts, TableWriter};
use std::path::Path;

fn main() {
    let opts = match RunOpts::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let cfg = opts.protocol();
    println!(
        "Table 3: Performance of ablated versions of ActiveDP ({})",
        opts.describe()
    );
    println!();

    type ConfigFactory = fn(bool, u64) -> SessionConfig;
    let variants: [(&str, ConfigFactory); 4] = [
        ("Baseline", |t, s| SessionConfig::ablation_baseline(t, s)),
        ("LabelPick", |t, s| SessionConfig {
            use_confusion: false,
            ..SessionConfig::paper_defaults(t, s)
        }),
        ("ConFusion", |t, s| SessionConfig {
            use_labelpick: false,
            ..SessionConfig::paper_defaults(t, s)
        }),
        ("ActiveDP", |t, s| SessionConfig::paper_defaults(t, s)),
    ];

    let datasets = opts.dataset_list();
    let mut header: Vec<&str> = vec!["Method"];
    let names: Vec<String> = datasets.iter().map(|d| d.name().to_string()).collect();
    header.extend(names.iter().map(|s| s.as_str()));
    let mut table = TableWriter::new(&header);

    let mut baseline_aucs: Vec<f64> = vec![];
    for (label, factory) in variants {
        let mut row = vec![label.to_string()];
        let mut aucs = vec![];
        for (k, &id) in datasets.iter().enumerate() {
            match run_session_curve(id, label, &cfg, factory) {
                Ok(curve) => {
                    let auc = curve.auc();
                    aucs.push(auc);
                    row.push(format!("{auc:.4}"));
                    if label != "Baseline" && k < baseline_aucs.len() {
                        // improvement printed in the summary below
                    }
                }
                Err(e) => {
                    eprintln!("{label} on {} failed: {e}", id.name());
                    row.push("err".to_string());
                }
            }
        }
        if label == "Baseline" {
            baseline_aucs = aucs.clone();
        } else if !baseline_aucs.is_empty() && aucs.len() == baseline_aucs.len() {
            let mean_gain: f64 = aucs
                .iter()
                .zip(&baseline_aucs)
                .map(|(a, b)| a - b)
                .sum::<f64>()
                / aucs.len() as f64;
            println!(
                "{label}: average improvement over Baseline {:+.1}%",
                mean_gain * 100.0
            );
        }
        table.add_row(row);
    }

    println!();
    println!("{}", table.render());
    println!("(paper: LabelPick +1.9%, ConFusion +5.0%, ActiveDP +6.3% over Baseline)");
    let out = Path::new(&opts.out_dir).join("table3_ablation.csv");
    match write_csv(&out, &table) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}
