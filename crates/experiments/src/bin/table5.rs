//! Regenerates **Table 5**: performance of ActiveDP with different
//! simulated label-noise rates (0%, 5%, 10%, 15%).

use activedp::SessionConfig;
use adp_experiments::{run_session_curve, write_csv, RunOpts, TableWriter};
use std::path::Path;

fn main() {
    let opts = match RunOpts::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let cfg = opts.protocol();
    println!(
        "Table 5: ActiveDP with different simulated label noise rates ({})",
        opts.describe()
    );
    println!();

    let noise_levels = [0.0, 0.05, 0.10, 0.15];
    let datasets = opts.dataset_list();
    let mut header: Vec<&str> = vec!["Label noise"];
    let names: Vec<String> = datasets.iter().map(|d| d.name().to_string()).collect();
    header.extend(names.iter().map(|s| s.as_str()));
    let mut table = TableWriter::new(&header);

    let mut clean_mean = None;
    for noise in noise_levels {
        let label = format!("{:.0}%", noise * 100.0);
        let mut row = vec![label.clone()];
        let mut aucs = vec![];
        for &id in &datasets {
            let result = run_session_curve(id, &label, &cfg, move |textual, seed| SessionConfig {
                noise_rate: noise,
                ..SessionConfig::paper_defaults(textual, seed)
            });
            match result {
                Ok(curve) => {
                    let auc = curve.auc();
                    aucs.push(auc);
                    row.push(format!("{auc:.4}"));
                }
                Err(e) => {
                    eprintln!("noise {label} on {} failed: {e}", id.name());
                    row.push("err".to_string());
                }
            }
        }
        let mean = aucs.iter().sum::<f64>() / aucs.len().max(1) as f64;
        match clean_mean {
            None => clean_mean = Some(mean),
            Some(clean) => println!(
                "noise {label}: average degradation {:+.1}% (paper: -1.1/-1.6/-2.7% at 5/10/15%)",
                (mean - clean) * 100.0
            ),
        }
        table.add_row(row);
    }

    println!();
    println!("{}", table.render());
    let out = Path::new(&opts.out_dir).join("table5_noise.csv");
    match write_csv(&out, &table) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}
