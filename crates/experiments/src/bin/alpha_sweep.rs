//! Ablation of the ADP sampler's trade-off factor α (paper §3.3).
//!
//! The paper fixes α = 0.5 for textual datasets and α = 0.99 for tabular
//! ones, arguing the AL model deserves more weight where a small labelled
//! budget already classifies well. This sweep regenerates the evidence
//! behind that choice: average test accuracy as a function of α on one
//! textual and one tabular dataset.

use activedp::SessionConfig;
use adp_data::DatasetId;
use adp_experiments::{run_session_curve, write_csv, RunOpts, TableWriter};
use std::path::Path;

fn main() {
    let opts = match RunOpts::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let cfg = opts.protocol();
    println!(
        "Ablation: ADP sampler trade-off factor α ({})",
        opts.describe()
    );
    println!("(paper setting: α = 0.5 for text, α = 0.99 for tabular)\n");

    let alphas = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99];
    let datasets = opts
        .datasets
        .clone()
        .unwrap_or_else(|| vec![DatasetId::Imdb, DatasetId::Occupancy]);

    let mut header: Vec<&str> = vec!["alpha"];
    let names: Vec<String> = datasets.iter().map(|d| d.name().to_string()).collect();
    header.extend(names.iter().map(|s| s.as_str()));
    let mut table = TableWriter::new(&header);

    for alpha in alphas {
        let label = format!("{alpha:.2}");
        let mut row = vec![label.clone()];
        for &id in &datasets {
            let result = run_session_curve(id, &label, &cfg, move |textual, seed| SessionConfig {
                alpha,
                ..SessionConfig::paper_defaults(textual, seed)
            });
            match result {
                Ok(curve) => row.push(format!("{:.4}", curve.auc())),
                Err(e) => {
                    eprintln!("alpha {alpha} on {} failed: {e}", id.name());
                    row.push("err".to_string());
                }
            }
        }
        table.add_row(row);
    }

    println!("{}", table.render());
    let out = Path::new(&opts.out_dir).join("alpha_sweep.csv");
    match write_csv(&out, &table) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}
