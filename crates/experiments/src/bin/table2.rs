//! Regenerates **Table 2**: datasets used in the evaluation.
//!
//! Prints the paper's split sizes alongside the sizes actually generated at
//! the requested scale, plus empirical class balance as a sanity check on
//! the generators.

use adp_data::generate;
use adp_experiments::{write_csv, RunOpts, TableWriter};
use std::path::Path;

fn main() {
    let opts = match RunOpts::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let cfg = opts.protocol();
    println!("Table 2: Datasets used in Evaluation ({})", opts.describe());
    println!();

    let mut table = TableWriter::new(&[
        "Name",
        "Task",
        "#Train",
        "#Valid",
        "#Test",
        "Generated",
        "P(y=1)",
    ]);
    for id in opts.dataset_list() {
        let (tr, va, te) = id.paper_sizes();
        let data = generate(id, cfg.scale, cfg.seeds[0]).expect("generation succeeds");
        let (_, task, gtr, gva, gte) = data.table2_row();
        let balance = data.train.class_balance();
        table.add_row(vec![
            id.name().to_string(),
            task.to_string(),
            tr.to_string(),
            va.to_string(),
            te.to_string(),
            format!("{gtr}/{gva}/{gte}"),
            format!("{:.3}", balance[1]),
        ]);
    }
    println!("{}", table.render());
    let out = Path::new(&opts.out_dir).join("table2.csv");
    match write_csv(&out, &table) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}
