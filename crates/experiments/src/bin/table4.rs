//! Regenerates **Table 4**: performance of ActiveDP with different sample
//! selectors (Passive, US, LAL, SEU, ADP).

use activedp::{SamplerChoice, SessionConfig};
use adp_experiments::{run_session_curve, write_csv, RunOpts, TableWriter};
use std::path::Path;

fn main() {
    let opts = match RunOpts::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let cfg = opts.protocol();
    println!(
        "Table 4: Performance of ActiveDP with different sample selectors ({})",
        opts.describe()
    );
    println!();

    let samplers = [
        SamplerChoice::Passive,
        SamplerChoice::Uncertainty,
        SamplerChoice::Lal,
        SamplerChoice::Seu,
        SamplerChoice::Adp,
    ];

    let datasets = opts.dataset_list();
    let mut header: Vec<&str> = vec!["Sampler"];
    let names: Vec<String> = datasets.iter().map(|d| d.name().to_string()).collect();
    header.extend(names.iter().map(|s| s.as_str()));
    let mut table = TableWriter::new(&header);

    // Track per-dataset winners to report how often ADP comes out on top
    // (paper: best on 7 of 8 datasets).
    let mut best: Vec<(String, f64)> = vec![(String::new(), f64::NEG_INFINITY); datasets.len()];
    for sampler in samplers {
        let mut row = vec![sampler.label().to_string()];
        for (k, &id) in datasets.iter().enumerate() {
            let result = run_session_curve(id, sampler.label(), &cfg, move |textual, seed| {
                SessionConfig {
                    sampler,
                    ..SessionConfig::paper_defaults(textual, seed)
                }
            });
            match result {
                Ok(curve) => {
                    let auc = curve.auc();
                    if auc > best[k].1 {
                        best[k] = (sampler.label().to_string(), auc);
                    }
                    row.push(format!("{auc:.4}"));
                }
                Err(e) => {
                    eprintln!("{} on {} failed: {e}", sampler.label(), id.name());
                    row.push("err".to_string());
                }
            }
        }
        table.add_row(row);
    }

    println!("{}", table.render());
    let adp_wins = best.iter().filter(|(label, _)| label == "ADP").count();
    println!(
        "ADP wins on {adp_wins} of {} datasets (paper: 7 of 8)",
        datasets.len()
    );
    let out = Path::new(&opts.out_dir).join("table4_samplers.csv");
    match write_csv(&out, &table) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}
