//! `adp-coord` — the distributed budget/latency sweep: the same grid
//! `adp-sweep` runs locally, dispatched across a fleet of `adp-served`
//! workers with work-stealing and fault-tolerant rescheduling (see
//! [`adp_experiments::coord`]).
//!
//! ```text
//! adp-served --addr 127.0.0.1:7777 &
//! adp-served --addr 127.0.0.1:7778 &
//! adp-coord --worker 127.0.0.1:7777 --worker 127.0.0.1:7778 \
//!           --sampler us --sampler adp --label-model triplet \
//!           --k 1 --k 4 --budget 12 --zero-wall --out results
//! ```
//!
//! Coordinator flags: `--worker ADDR` (repeatable, required),
//! `--checkpoint-every N` (refit batches per slice; `0` = no
//! checkpointing), `--retries N` (re-queues per cell after worker
//! deaths), `--spool DIR` (persist finished rows; a restart skips them).
//! Every other flag is the sweep grid's, exactly as `adp-sweep` takes
//! them.
//!
//! Writes the same `<out>/sweep_budget_latency.csv` artefact as
//! `adp-sweep` — byte-identical to a local run under `--zero-wall`, no
//! matter how many workers served it or which of them died.

use adp_experiments::{grid_table, run_distributed, write_csv, CoordOpts, SweepOpts};
use std::path::Path;

fn usage(e: impl std::fmt::Display) -> ! {
    eprintln!("{e}");
    eprintln!(
        "coordinator flags: --worker ADDR (repeatable, required) --checkpoint-every N \
         --retries N --spool DIR; every other flag is adp-sweep's"
    );
    std::process::exit(2);
}

fn main() {
    let mut workers: Vec<String> = Vec::new();
    let mut coord = CoordOpts::default();
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| match args.next() {
            Some(v) => v,
            None => usage(format!("{flag} needs a value")),
        };
        match arg.as_str() {
            "--worker" => workers.push(value("--worker")),
            "--checkpoint-every" => {
                let n = value("--checkpoint-every");
                coord.checkpoint_batches = match n.parse() {
                    Ok(n) => n,
                    Err(_) => usage(format!("bad --checkpoint-every {n}")),
                };
            }
            "--retries" => {
                let n = value("--retries");
                coord.max_attempts = match n.parse() {
                    Ok(n) => n,
                    Err(_) => usage(format!("bad --retries {n}")),
                };
            }
            "--spool" => coord.spool = Some(value("--spool").into()),
            _ => rest.push(arg),
        }
    }
    if workers.is_empty() {
        usage("at least one --worker ADDR is required");
    }
    let opts = match SweepOpts::parse(rest.into_iter()) {
        Ok(o) => o,
        Err(e) => usage(e),
    };
    if opts.grid.is_empty() {
        usage("the sweep grid is empty (every axis needs at least one value)");
    }
    println!(
        "Distributed sweep: {} cells over {} worker(s), checkpoint every {} batch(es)",
        opts.grid.len(),
        workers.len(),
        coord.checkpoint_batches,
    );

    let report = match run_distributed(&opts.grid, &workers, &coord) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("distributed sweep failed: {e}");
            std::process::exit(1);
        }
    };
    for worker in &report.workers {
        println!(
            "  worker {}: {} cell(s){}",
            worker.addr,
            worker.cells,
            if worker.alive { "" } else { " [died]" },
        );
    }
    if report.requeued > 0 {
        println!(
            "  rescheduled {} cell(s) after worker deaths ({} resumed from a checkpoint)",
            report.requeued, report.resumed,
        );
    }
    if report.spooled_skips > 0 {
        println!("  skipped {} cell(s) already spooled", report.spooled_skips);
    }
    if report.spool_write_errors > 0 {
        eprintln!("  {} spool write(s) failed", report.spool_write_errors);
    }
    println!();

    let mut outcome = report.outcome;
    if opts.zero_wall {
        outcome.zero_wall();
    }
    let table = grid_table(&outcome.rows);
    println!("{}", table.render());

    let out = Path::new(&opts.out_dir).join("sweep_budget_latency.csv");
    match write_csv(&out, &table) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
    if !outcome.is_clean() {
        eprintln!("{} cell(s) failed:", outcome.failures.len());
        for failure in &outcome.failures {
            eprintln!(
                "  cell {} ({} / {} / {} / {}): {}",
                failure.cell,
                failure.spec.dataset.id,
                failure.spec.session.sampler,
                failure.spec.session.label_model,
                failure.spec.schedule.label(),
                failure.error,
            );
        }
        std::process::exit(1);
    }
}
