//! Regenerates **Figure 3**: end-to-end performance comparison between
//! ActiveDP and the baseline methods, plus the §4.2 average-improvement
//! summary.
//!
//! For every dataset it prints the per-method test-accuracy series (one
//! point per 10 queries — the paper's performance curves) and a final AUC
//! table. Nemo runs on textual datasets only, as in the paper.

use adp_experiments::{run_framework_curve, write_csv, Method, RunOpts, TableWriter};
use std::path::Path;

fn main() {
    let opts = match RunOpts::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let cfg = opts.protocol();
    println!(
        "Figure 3: End-to-end performance comparison ({})",
        opts.describe()
    );

    let mut auc_table = TableWriter::new(&["Dataset", "ActiveDP", "Nemo", "IWS", "RLF", "US"]);
    let mut curve_table = TableWriter::new(&["Dataset", "Method", "Iteration", "TestAccuracy"]);
    // Average improvement of ActiveDP over each baseline (§4.2 text).
    let mut gaps: std::collections::HashMap<&'static str, Vec<f64>> = Default::default();

    for id in opts.dataset_list() {
        println!("\n=== {} ===", id.name());
        let mut aucs: Vec<String> = vec![id.name().to_string()];
        let mut activedp_auc = None;
        for method in Method::all() {
            if !method.supports(id) {
                aucs.push("-".to_string());
                continue;
            }
            let curve = match run_framework_curve(id, method, &cfg) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("{} on {} failed: {e}", method.label(), id.name());
                    aucs.push("err".to_string());
                    continue;
                }
            };
            let series: Vec<String> = curve
                .points
                .iter()
                .map(|&(it, a)| format!("{it}:{a:.3}"))
                .collect();
            println!("{:>9}  {}", method.label(), series.join(" "));
            for &(it, a) in &curve.points {
                curve_table.add_row(vec![
                    id.name().to_string(),
                    method.label().to_string(),
                    it.to_string(),
                    format!("{a:.4}"),
                ]);
            }
            let auc = curve.auc();
            aucs.push(format!("{auc:.4}"));
            match method {
                Method::ActiveDp => activedp_auc = Some(auc),
                _ => {
                    if let Some(adp) = activedp_auc {
                        gaps.entry(method.label()).or_default().push(adp - auc);
                    }
                }
            }
        }
        auc_table.add_row(aucs);
    }

    println!("\nAverage test accuracy during the run (area under the curve):");
    println!("{}", auc_table.render());

    println!("ActiveDP average improvement over baselines (paper §4.2: Nemo +4.4%, IWS +13.5%, RLF +2.6%, US +6.5%):");
    for method in ["Nemo", "IWS", "RLF", "US"] {
        if let Some(diffs) = gaps.get(method) {
            let mean = diffs.iter().sum::<f64>() / diffs.len() as f64;
            println!("  vs {method:<5} {:+.1}%", mean * 100.0);
        }
    }

    let out_dir = Path::new(&opts.out_dir);
    for (name, table) in [
        ("fig3_auc.csv", &auc_table),
        ("fig3_curves.csv", &curve_table),
    ] {
        let path = out_dir.join(name);
        match write_csv(&path, table) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}
