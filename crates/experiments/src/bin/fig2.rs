//! Regenerates **Figure 2**: the LabelPick workflow on a live session.
//!
//! Runs a short ActiveDP session on a chosen dataset (default Youtube) and
//! prints each collected LF with its validation accuracy, coverage, and
//! whether LabelPick kept it — the pipeline Figure 2 depicts: accuracy
//! filter, dependency-structure estimation, Markov-blanket selection.

use activedp::{ActiveDpSession, SessionConfig};
use adp_data::{generate, DatasetId};
use adp_experiments::{write_csv, RunOpts, TableWriter};
use adp_lf::LabelMatrix;
use std::path::Path;

fn main() {
    let opts = match RunOpts::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let cfg = opts.protocol();
    let id = opts
        .datasets
        .as_ref()
        .and_then(|d| d.first().copied())
        .unwrap_or(DatasetId::Youtube);
    let iterations = opts.iterations.unwrap_or(40);

    println!(
        "Figure 2: LabelPick workflow on {} ({} iterations, {})",
        id.name(),
        iterations,
        opts.describe()
    );
    println!();

    let data = generate(id, cfg.scale, cfg.seeds[0])
        .expect("generation succeeds")
        .into_shared();
    let session_cfg = SessionConfig::paper_defaults(id.is_textual(), cfg.seeds[0]);
    let mut session = ActiveDpSession::new(data.clone(), session_cfg).expect("session builds");
    session.run(iterations).expect("session runs");

    let lfs = session.lfs().to_vec();
    let selected: std::collections::HashSet<usize> = session.selected().iter().copied().collect();
    let valid_matrix = LabelMatrix::from_lfs(&lfs, &data.valid);

    let mut table = TableWriter::new(&["LF", "Rule", "Valid acc", "Coverage", "LabelPick"]);
    for (j, lf) in lfs.iter().enumerate() {
        let acc = valid_matrix
            .lf_accuracy(j, &data.valid.labels)
            .map_or("n/a".to_string(), |a| format!("{a:.3}"));
        table.add_row(vec![
            format!("λ{}", j + 1),
            lf.describe(data.vocab.as_ref()),
            acc,
            format!("{:.3}", valid_matrix.lf_coverage(j)),
            if selected.contains(&j) {
                "selected"
            } else {
                "pruned"
            }
            .to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "{} of {} LFs selected (Markov blanket of the label after the accuracy filter)",
        selected.len(),
        lfs.len()
    );
    let out = Path::new(&opts.out_dir).join("fig2_labelpick.csv");
    match write_csv(&out, &table) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}
