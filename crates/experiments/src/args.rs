//! Minimal command-line options shared by the experiment binaries.
//!
//! Name parsing routes through the types' own `FromStr` impls
//! (`DatasetId`, `Scale`, `SamplerChoice`, `LabelModelKind`) — one source
//! of truth for the valid options and the error messages listing them.

use crate::protocol::ProtocolConfig;
use activedp::{LabelModelKind, SamplerChoice};
use adp_data::{DatasetId, Scale};

/// Parsed binary options.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Paper-scale protocol (300 iterations, 5 seeds, full data).
    pub full: bool,
    /// Restrict to specific datasets.
    pub datasets: Option<Vec<DatasetId>>,
    /// Override iteration count.
    pub iterations: Option<usize>,
    /// Override seed count.
    pub seeds: Option<usize>,
    /// Output directory for CSVs.
    pub out_dir: String,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            full: false,
            datasets: None,
            iterations: None,
            seeds: None,
            out_dir: "results".into(),
        }
    }
}

impl RunOpts {
    /// Parses `--full`, `--dataset <name>` (repeatable), `--iters N`,
    /// `--seeds N`, `--out DIR`. Unknown flags abort with a usage message.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<RunOpts, String> {
        let mut opts = RunOpts::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--full" => opts.full = true,
                "--dataset" => {
                    let name = args.next().ok_or("--dataset needs a name")?;
                    let id = parse_dataset(&name)?;
                    opts.datasets.get_or_insert_with(Vec::new).push(id);
                }
                "--iters" => {
                    let n = args.next().ok_or("--iters needs a number")?;
                    opts.iterations = Some(n.parse().map_err(|_| format!("bad --iters {n}"))?);
                }
                "--seeds" => {
                    let n = args.next().ok_or("--seeds needs a number")?;
                    opts.seeds = Some(n.parse().map_err(|_| format!("bad --seeds {n}"))?);
                }
                "--out" => {
                    opts.out_dir = args.next().ok_or("--out needs a directory")?;
                }
                other => {
                    return Err(format!(
                        "unknown flag {other}; supported: --full --dataset <name> --iters N --seeds N --out DIR"
                    ));
                }
            }
        }
        Ok(opts)
    }

    /// The protocol this invocation asks for.
    pub fn protocol(&self) -> ProtocolConfig {
        let mut cfg = if self.full {
            ProtocolConfig::paper()
        } else {
            ProtocolConfig::reduced()
        };
        if let Some(iters) = self.iterations {
            cfg.iterations = iters.max(cfg.eval_every);
        }
        if let Some(seeds) = self.seeds {
            cfg.seeds = (1..=seeds.max(1) as u64).collect();
        }
        cfg
    }

    /// The datasets this invocation covers (default: all eight).
    pub fn dataset_list(&self) -> Vec<DatasetId> {
        self.datasets
            .clone()
            .unwrap_or_else(|| DatasetId::all().to_vec())
    }

    /// Scale description for logging.
    pub fn describe(&self) -> String {
        let cfg = self.protocol();
        format!(
            "{} scale, {} iterations, eval every {}, {} seeds",
            match cfg.scale {
                Scale::Paper => "paper",
                Scale::Reduced => "reduced (~20%)",
                Scale::Tiny => "tiny",
                Scale::Custom(_) => "custom",
            },
            cfg.iterations,
            cfg.eval_every,
            cfg.seeds.len()
        )
    }
}

fn parse_dataset(name: &str) -> Result<DatasetId, String> {
    name.parse().map_err(|e: adp_data::DataError| e.to_string())
}

/// Options of the `adp-sweep` binary: the spec-grid axes plus output
/// location (see [`crate::sweep::SweepGrid`]).
#[derive(Debug, Clone)]
pub struct SweepOpts {
    /// The grid to expand and run.
    pub grid: crate::sweep::SweepGrid,
    /// Output directory for the artefact CSV.
    pub out_dir: String,
    /// Local worker threads (`None` = all available cores).
    pub jobs: Option<usize>,
    /// Zero the wall-clock column so artefacts byte-compare across runs.
    pub zero_wall: bool,
}

impl Default for SweepOpts {
    fn default() -> Self {
        SweepOpts {
            grid: crate::sweep::SweepGrid::default_study(DatasetId::Youtube),
            out_dir: "results".into(),
            jobs: None,
            zero_wall: false,
        }
    }
}

impl SweepOpts {
    /// Parses `--dataset <name>`*, `--scale <name>`, `--data-seed N`,
    /// `--sampler <name>`*, `--label-model <name>`*, `--k N`*,
    /// `--budget N`, `--seeds N`,
    /// `--candidates <exact|ann:NPROBE[,REFRESH]>`,
    /// `--oracle <simulated|noisy:ACC[>BIAS][@POLICY][!CHEAP/EXP]>`*,
    /// `--drift <none|label-shift:AT,PRIOR|covariate:AT,ROT|arriving:PER>`*,
    /// `--out DIR`, `--jobs N`, `--zero-wall`
    /// (`*` = repeatable, replacing that axis's default). Unknown names
    /// abort with the typed errors' valid-option lists.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<SweepOpts, String> {
        let mut opts = SweepOpts::default();
        let mut datasets: Vec<DatasetId> = Vec::new();
        let mut samplers: Vec<SamplerChoice> = Vec::new();
        let mut label_models: Vec<LabelModelKind> = Vec::new();
        let mut ks: Vec<usize> = Vec::new();
        let mut oracles: Vec<activedp::OracleKind> = Vec::new();
        let mut drifts: Vec<adp_data::DriftSpec> = Vec::new();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
            match arg.as_str() {
                "--dataset" => datasets.push(parse_dataset(&value("--dataset")?)?),
                "--scale" => {
                    opts.grid.scale = value("--scale")?
                        .parse()
                        .map_err(|e: adp_data::DataError| e.to_string())?;
                }
                "--data-seed" => {
                    let n = value("--data-seed")?;
                    opts.grid.data_seed = n.parse().map_err(|_| format!("bad --data-seed {n}"))?;
                }
                "--sampler" => samplers.push(
                    value("--sampler")?
                        .parse()
                        .map_err(|e: activedp::UnknownSampler| e.to_string())?,
                ),
                "--label-model" => label_models.push(
                    value("--label-model")?
                        .parse()
                        .map_err(|e: adp_labelmodel::UnknownLabelModel| e.to_string())?,
                ),
                "--k" => {
                    let n = value("--k")?;
                    let k: usize = n.parse().map_err(|_| format!("bad --k {n}"))?;
                    if k == 0 {
                        return Err("--k must be >= 1".into());
                    }
                    ks.push(k);
                }
                "--budget" => {
                    let n = value("--budget")?;
                    opts.grid.budget = n.parse().map_err(|_| format!("bad --budget {n}"))?;
                }
                "--seeds" => {
                    let n = value("--seeds")?;
                    let seeds: u64 = n.parse().map_err(|_| format!("bad --seeds {n}"))?;
                    if seeds == 0 {
                        return Err("--seeds must be >= 1".into());
                    }
                    opts.grid.seeds = (1..=seeds).collect();
                }
                "--candidates" => {
                    opts.grid.candidates = value("--candidates")?
                        .parse()
                        .map_err(|e: activedp::UnknownCandidateStrategy| e.to_string())?;
                }
                "--oracle" => oracles.push(
                    value("--oracle")?
                        .parse()
                        .map_err(|e: activedp::UnknownOracleKind| e.to_string())?,
                ),
                "--drift" => drifts.push(
                    value("--drift")?
                        .parse()
                        .map_err(|e: adp_data::UnknownDrift| e.to_string())?,
                ),
                "--out" => opts.out_dir = value("--out")?,
                "--jobs" => {
                    let n = value("--jobs")?;
                    let jobs: usize = n.parse().map_err(|_| format!("bad --jobs {n}"))?;
                    if jobs == 0 {
                        return Err("--jobs must be >= 1".into());
                    }
                    opts.jobs = Some(jobs);
                }
                "--zero-wall" => opts.zero_wall = true,
                other => {
                    return Err(format!(
                        "unknown flag {other}; supported: --dataset <name> --scale <name> \
                         --data-seed N --sampler <name> --label-model <name> --k N \
                         --budget N --seeds N --candidates <exact|ann:NPROBE[,REFRESH]> \
                         --oracle <simulated|noisy:...> --drift <none|label-shift:AT,PRIOR|\
                         covariate:AT,ROT|arriving:PER> --out DIR --jobs N --zero-wall"
                    ));
                }
            }
        }
        if !datasets.is_empty() {
            opts.grid.datasets = datasets;
        }
        if !samplers.is_empty() {
            opts.grid.samplers = samplers;
        }
        if !label_models.is_empty() {
            opts.grid.label_models = label_models;
        }
        if !ks.is_empty() {
            opts.grid.ks = ks;
        }
        if !oracles.is_empty() {
            opts.grid.oracles = oracles;
        }
        if !drifts.is_empty() {
            opts.grid.drifts = drifts;
        }
        Ok(opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<RunOpts, String> {
        RunOpts::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_reduced_scale() {
        let opts = parse(&[]).unwrap();
        assert!(!opts.full);
        let cfg = opts.protocol();
        assert_eq!(cfg.iterations, 100);
        assert_eq!(cfg.seeds.len(), 2);
        assert_eq!(opts.dataset_list().len(), 8);
    }

    #[test]
    fn full_flag_selects_paper_protocol() {
        let cfg = parse(&["--full"]).unwrap().protocol();
        assert_eq!(cfg.iterations, 300);
        assert_eq!(cfg.seeds.len(), 5);
        assert_eq!(cfg.scale, Scale::Paper);
    }

    #[test]
    fn dataset_filter_and_overrides() {
        let opts = parse(&[
            "--dataset",
            "youtube",
            "--dataset",
            "Census",
            "--iters",
            "50",
            "--seeds",
            "3",
        ])
        .unwrap();
        assert_eq!(
            opts.dataset_list(),
            vec![DatasetId::Youtube, DatasetId::Census]
        );
        let cfg = opts.protocol();
        assert_eq!(cfg.iterations, 50);
        assert_eq!(cfg.seeds, vec![1, 2, 3]);
    }

    #[test]
    fn rejects_unknown_flag_and_dataset() {
        assert!(parse(&["--nope"]).is_err());
        assert!(parse(&["--dataset", "mnist"]).is_err());
        assert!(parse(&["--iters", "abc"]).is_err());
    }

    #[test]
    fn describe_mentions_scale() {
        assert!(parse(&[]).unwrap().describe().contains("reduced"));
        assert!(parse(&["--full"]).unwrap().describe().contains("paper"));
    }

    fn parse_sweep(args: &[&str]) -> Result<SweepOpts, String> {
        SweepOpts::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn sweep_defaults_are_the_roadmap_study() {
        let opts = parse_sweep(&[]).unwrap();
        assert_eq!(opts.grid.datasets, vec![DatasetId::Youtube]);
        assert_eq!(
            opts.grid.samplers,
            vec![
                SamplerChoice::Uncertainty,
                SamplerChoice::Qbc,
                SamplerChoice::Adp
            ]
        );
        assert_eq!(
            opts.grid.label_models,
            vec![LabelModelKind::Triplet, LabelModelKind::DawidSkene]
        );
        assert_eq!(opts.grid.ks, vec![1, 4, 16]);
        assert_eq!(opts.out_dir, "results");
    }

    #[test]
    fn sweep_flags_replace_axes() {
        let opts = parse_sweep(&[
            "--dataset",
            "census",
            "--scale",
            "tiny",
            "--sampler",
            "us",
            "--sampler",
            "adp",
            "--label-model",
            "ds",
            "--k",
            "2",
            "--budget",
            "12",
            "--seeds",
            "3",
            "--candidates",
            "ann:6,2",
            "--out",
            "/tmp/sweep",
        ])
        .unwrap();
        assert_eq!(opts.grid.datasets, vec![DatasetId::Census]);
        assert_eq!(
            opts.grid.samplers,
            vec![SamplerChoice::Uncertainty, SamplerChoice::Adp]
        );
        assert_eq!(opts.grid.label_models, vec![LabelModelKind::DawidSkene]);
        assert_eq!(opts.grid.ks, vec![2]);
        assert_eq!(opts.grid.budget, 12);
        assert_eq!(opts.grid.seeds, vec![1, 2, 3]);
        assert_eq!(
            opts.grid.candidates,
            activedp::CandidateStrategy::Ann {
                nprobe: 6,
                refresh_every: 2
            }
        );
        assert_eq!(opts.out_dir, "/tmp/sweep");
    }

    #[test]
    fn sweep_rejects_unknown_names_with_option_lists() {
        let err = parse_sweep(&["--sampler", "oracle"]).unwrap_err();
        assert!(err.contains("ADP"), "{err}");
        let err = parse_sweep(&["--label-model", "snorkel"]).unwrap_err();
        assert!(err.contains("Triplet"), "{err}");
        let err = parse_sweep(&["--dataset", "mnist"]).unwrap_err();
        assert!(err.contains("Youtube"), "{err}");
        let err = parse_sweep(&["--candidates", "hnsw"]).unwrap_err();
        assert!(err.contains("ann:NPROBE"), "{err}");
        assert!(parse_sweep(&["--k", "0"]).is_err());
        assert!(parse_sweep(&["--seeds", "0"]).is_err());
        assert!(parse_sweep(&["--warp", "9"]).is_err());
    }

    #[test]
    fn sweep_jobs_and_zero_wall_flags_parse() {
        let opts = parse_sweep(&[]).unwrap();
        assert_eq!(opts.jobs, None);
        assert!(!opts.zero_wall);
        let opts = parse_sweep(&["--jobs", "4", "--zero-wall"]).unwrap();
        assert_eq!(opts.jobs, Some(4));
        assert!(opts.zero_wall);
        assert!(parse_sweep(&["--jobs", "0"]).is_err());
        assert!(parse_sweep(&["--jobs", "four"]).is_err());
        assert!(parse_sweep(&["--jobs"]).is_err());
    }

    #[test]
    fn sweep_oracle_and_drift_flags_replace_their_axes() {
        let opts = parse_sweep(&[]).unwrap();
        assert_eq!(opts.grid.oracles, vec![activedp::OracleKind::Simulated]);
        assert_eq!(opts.grid.drifts, vec![adp_data::DriftSpec::None]);

        let opts = parse_sweep(&[
            "--oracle",
            "simulated",
            "--oracle",
            "noisy:0.85",
            "--drift",
            "label-shift:8,0.8",
            "--drift",
            "none",
        ])
        .unwrap();
        assert_eq!(opts.grid.oracles.len(), 2);
        assert_eq!(opts.grid.oracles[0], activedp::OracleKind::Simulated);
        assert!(matches!(
            opts.grid.oracles[1],
            activedp::OracleKind::Noisy { .. }
        ));
        assert_eq!(
            opts.grid.drifts,
            vec![
                adp_data::DriftSpec::LabelShift { at: 8, prior: 0.8 },
                adp_data::DriftSpec::None
            ]
        );

        // Unknown names abort with the grammars' option lists.
        let err = parse_sweep(&["--oracle", "psychic"]).unwrap_err();
        assert!(err.contains("noisy:ACC"), "{err}");
        let err = parse_sweep(&["--drift", "tectonic"]).unwrap_err();
        assert!(err.contains("label-shift:AT"), "{err}");
        assert!(parse_sweep(&["--oracle"]).is_err());
        assert!(parse_sweep(&["--drift"]).is_err());
    }

    #[test]
    fn sweep_default_candidates_are_exact() {
        assert_eq!(
            parse_sweep(&[]).unwrap().grid.candidates,
            activedp::CandidateStrategy::Exact
        );
    }
}
