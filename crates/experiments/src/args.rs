//! Minimal command-line options shared by the experiment binaries.

use crate::protocol::ProtocolConfig;
use adp_data::{DatasetId, Scale};

/// Parsed binary options.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Paper-scale protocol (300 iterations, 5 seeds, full data).
    pub full: bool,
    /// Restrict to specific datasets.
    pub datasets: Option<Vec<DatasetId>>,
    /// Override iteration count.
    pub iterations: Option<usize>,
    /// Override seed count.
    pub seeds: Option<usize>,
    /// Output directory for CSVs.
    pub out_dir: String,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            full: false,
            datasets: None,
            iterations: None,
            seeds: None,
            out_dir: "results".into(),
        }
    }
}

impl RunOpts {
    /// Parses `--full`, `--dataset <name>` (repeatable), `--iters N`,
    /// `--seeds N`, `--out DIR`. Unknown flags abort with a usage message.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<RunOpts, String> {
        let mut opts = RunOpts::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--full" => opts.full = true,
                "--dataset" => {
                    let name = args.next().ok_or("--dataset needs a name")?;
                    let id = parse_dataset(&name)?;
                    opts.datasets.get_or_insert_with(Vec::new).push(id);
                }
                "--iters" => {
                    let n = args.next().ok_or("--iters needs a number")?;
                    opts.iterations = Some(n.parse().map_err(|_| format!("bad --iters {n}"))?);
                }
                "--seeds" => {
                    let n = args.next().ok_or("--seeds needs a number")?;
                    opts.seeds = Some(n.parse().map_err(|_| format!("bad --seeds {n}"))?);
                }
                "--out" => {
                    opts.out_dir = args.next().ok_or("--out needs a directory")?;
                }
                other => {
                    return Err(format!(
                        "unknown flag {other}; supported: --full --dataset <name> --iters N --seeds N --out DIR"
                    ));
                }
            }
        }
        Ok(opts)
    }

    /// The protocol this invocation asks for.
    pub fn protocol(&self) -> ProtocolConfig {
        let mut cfg = if self.full {
            ProtocolConfig::paper()
        } else {
            ProtocolConfig::reduced()
        };
        if let Some(iters) = self.iterations {
            cfg.iterations = iters.max(cfg.eval_every);
        }
        if let Some(seeds) = self.seeds {
            cfg.seeds = (1..=seeds.max(1) as u64).collect();
        }
        cfg
    }

    /// The datasets this invocation covers (default: all eight).
    pub fn dataset_list(&self) -> Vec<DatasetId> {
        self.datasets
            .clone()
            .unwrap_or_else(|| DatasetId::all().to_vec())
    }

    /// Scale description for logging.
    pub fn describe(&self) -> String {
        let cfg = self.protocol();
        format!(
            "{} scale, {} iterations, eval every {}, {} seeds",
            match cfg.scale {
                Scale::Paper => "paper",
                Scale::Reduced => "reduced (~20%)",
                Scale::Tiny => "tiny",
                Scale::Custom(_) => "custom",
            },
            cfg.iterations,
            cfg.eval_every,
            cfg.seeds.len()
        )
    }
}

fn parse_dataset(name: &str) -> Result<DatasetId, String> {
    DatasetId::from_name(name).ok_or_else(|| {
        format!(
            "unknown dataset {name}; expected one of {}",
            DatasetId::all()
                .iter()
                .map(|d| d.name())
                .collect::<Vec<_>>()
                .join(", ")
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<RunOpts, String> {
        RunOpts::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_reduced_scale() {
        let opts = parse(&[]).unwrap();
        assert!(!opts.full);
        let cfg = opts.protocol();
        assert_eq!(cfg.iterations, 100);
        assert_eq!(cfg.seeds.len(), 2);
        assert_eq!(opts.dataset_list().len(), 8);
    }

    #[test]
    fn full_flag_selects_paper_protocol() {
        let cfg = parse(&["--full"]).unwrap().protocol();
        assert_eq!(cfg.iterations, 300);
        assert_eq!(cfg.seeds.len(), 5);
        assert_eq!(cfg.scale, Scale::Paper);
    }

    #[test]
    fn dataset_filter_and_overrides() {
        let opts = parse(&[
            "--dataset",
            "youtube",
            "--dataset",
            "Census",
            "--iters",
            "50",
            "--seeds",
            "3",
        ])
        .unwrap();
        assert_eq!(
            opts.dataset_list(),
            vec![DatasetId::Youtube, DatasetId::Census]
        );
        let cfg = opts.protocol();
        assert_eq!(cfg.iterations, 50);
        assert_eq!(cfg.seeds, vec![1, 2, 3]);
    }

    #[test]
    fn rejects_unknown_flag_and_dataset() {
        assert!(parse(&["--nope"]).is_err());
        assert!(parse(&["--dataset", "mnist"]).is_err());
        assert!(parse(&["--iters", "abc"]).is_err());
    }

    #[test]
    fn describe_mentions_scale() {
        assert!(parse(&[]).unwrap().describe().contains("reduced"));
        assert!(parse(&["--full"]).unwrap().describe().contains("paper"));
    }
}
