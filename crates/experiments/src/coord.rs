//! The distributed sweep coordinator: a [`SweepGrid`] fanned out over a
//! fleet of `adp-served` workers.
//!
//! [`run_distributed`] expands the grid into stable-id cells
//! ([`SweepGrid::cells`]), then runs one dispatcher thread per worker
//! address. Dispatch is **work-stealing**: threads pull the next
//! unclaimed cell from a shared queue the moment they go idle, so a slow
//! cell never stalls the rest of the fleet, and adding a worker mid-grid
//! just drains the queue faster. Each cell runs over the serving layer's
//! `run_spec` command — by default in checkpointed slices
//! ([`CoordOpts::checkpoint_batches`] refit batches per slice), so the
//! coordinator always holds a recent engine snapshot for every in-flight
//! cell.
//!
//! **Fault tolerance.** A worker that dies mid-cell (connection drop,
//! crash, SIGKILL) loses at most its current slice: the dispatcher thread
//! that owned it re-queues the cell *with its latest checkpoint* and
//! retires; a surviving worker picks the cell up and resumes from the
//! snapshot instead of from scratch. Engine slices are bitwise identical
//! to uninterrupted runs (pinned in `activedp` and `adp-serve`), so the
//! merged artefact does not depend on which worker ran what, how many
//! workers there were, or which of them died — the coordinator's CSV is
//! byte-identical to a single-process [`run_grid`](crate::sweep::run_grid)
//! (wall-clock aside; see [`SweepOutcome::zero_wall`]).
//!
//! A typed *server* error (a degenerate spec failing validation) is not a
//! worker death: the cell is recorded as a [`CellFailure`] and never
//! retried — a spec that fails on one healthy worker fails on all of
//! them.
//!
//! **Merge determinism.** Results land in a slot vector indexed by cell
//! id; after the queue drains, rows and failures are read out in
//! expand order regardless of completion order.
//!
//! With `--spool DIR`, every finished row is also persisted as a
//! versioned `cell-<id>.adprow` artefact ([`SweepRow::to_bytes`]); a
//! restarted coordinator decodes the spool first and only enqueues the
//! cells that are still missing.

use crate::sweep::{CellFailure, SweepCell, SweepGrid, SweepOutcome, SweepRow};
use activedp::ActiveDpError;
use adp_serve::{CellProgressReply, CellRowReply, Client, ClientError};
use std::collections::VecDeque;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex};

/// Coordinator policy knobs.
#[derive(Debug, Clone)]
pub struct CoordOpts {
    /// Refit batches per `run_spec` slice. `0` runs each cell in one
    /// uncheckpointed shot (fastest, but a worker death loses the whole
    /// cell's progress).
    pub checkpoint_batches: u64,
    /// Times a cell may be re-queued after worker deaths before it is
    /// recorded as failed.
    pub max_attempts: usize,
    /// Directory finished rows are spooled to (and recovered from), when
    /// set.
    pub spool: Option<PathBuf>,
}

impl Default for CoordOpts {
    fn default() -> Self {
        CoordOpts {
            checkpoint_batches: 4,
            max_attempts: 3,
            spool: None,
        }
    }
}

/// Coordinator-level failures (cell-level failures land in
/// [`SweepOutcome::failures`] instead).
#[derive(Debug)]
pub enum CoordError {
    /// No worker addresses were given.
    NoWorkers,
    /// Every worker died (or never answered) with cells still unfinished.
    AllWorkersDead {
        /// Cells left without a result.
        missing: usize,
    },
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordError::NoWorkers => write!(f, "distributed sweep needs at least one worker"),
            CoordError::AllWorkersDead { missing } => write!(
                f,
                "every worker died with {missing} cell(s) still unfinished"
            ),
        }
    }
}

impl std::error::Error for CoordError {}

/// One worker's tally after the sweep.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// The worker's address as given.
    pub addr: String,
    /// Cells this worker completed.
    pub cells: usize,
    /// `false` when the worker died (or never connected) during the
    /// sweep.
    pub alive: bool,
}

/// Everything [`run_distributed`] produced.
#[derive(Debug)]
pub struct CoordReport {
    /// Rows and per-cell failures, merged in expand order.
    pub outcome: SweepOutcome,
    /// Cells re-queued after a worker death.
    pub requeued: usize,
    /// Re-queued cells that resumed from a checkpoint (rather than from
    /// scratch).
    pub resumed: usize,
    /// Cells skipped because the spool already held their row.
    pub spooled_skips: usize,
    /// Spool writes that failed (best-effort; never fatal).
    pub spool_write_errors: usize,
    /// Per-worker tallies, in the order the addresses were given.
    pub workers: Vec<WorkerReport>,
}

/// A unit of dispatch: a cell plus the progress rescheduling preserves.
struct Task {
    cell: SweepCell,
    /// Latest boundary snapshot, once a slice has completed.
    checkpoint: Option<Vec<u8>>,
    /// Wall-clock already accumulated across completed slices.
    wall_ms: f64,
    /// Dispatch attempts so far.
    attempts: usize,
}

struct State {
    queue: VecDeque<Task>,
    in_flight: usize,
    /// One slot per cell, indexed by cell id — the deterministic merge.
    slots: Vec<Option<Result<SweepRow, ActiveDpError>>>,
    requeued: usize,
    resumed: usize,
    spool_write_errors: usize,
}

/// Why a dispatcher thread gave a task back.
enum TaskEnd {
    /// The cell finished; its row is ready.
    Row(SweepRow),
    /// The server rejected the cell with a typed error — permanent.
    Rejected(String),
    /// The worker died mid-cell; the task carries the latest checkpoint.
    WorkerDied(Task),
}

fn run_task(client: &mut Client, mut task: Task, opts: &CoordOpts) -> TaskEnd {
    loop {
        let progress = match (&task.checkpoint, opts.checkpoint_batches) {
            (None, 0) => client
                .run_spec(&task.cell.spec)
                .map(CellProgressReply::Done),
            (None, cap) => client.run_spec_batches(&task.cell.spec, cap),
            (Some(snapshot), cap) => client.resume_spec_batches(snapshot, cap.max(1)),
        };
        match progress {
            Ok(CellProgressReply::Done(CellRowReply {
                iterations,
                refits,
                test_accuracy,
                wall_ms,
                cheap_fraction,
                routed_cost,
                recovery,
            })) => {
                return TaskEnd::Row(SweepRow {
                    cell: task.cell.id,
                    spec: task.cell.spec,
                    iterations: iterations as usize,
                    refits: refits as usize,
                    test_accuracy,
                    wall_ms: task.wall_ms + wall_ms,
                    cheap_fraction,
                    routed_cost,
                    recovery,
                });
            }
            Ok(CellProgressReply::Partial {
                wall_ms, snapshot, ..
            }) => {
                task.wall_ms += wall_ms;
                task.checkpoint = Some(snapshot);
            }
            Err(ClientError::Server(e)) => return TaskEnd::Rejected(e),
            Err(ClientError::Io(_)) | Err(ClientError::Protocol(_)) => {
                return TaskEnd::WorkerDied(task);
            }
        }
    }
}

fn spool_path(dir: &Path, cell: u64) -> PathBuf {
    dir.join(format!("cell-{cell}.adprow"))
}

/// Best-effort atomic spool write: temp file + rename, errors reported to
/// the caller's counter rather than aborting the sweep.
fn spool_row(dir: &Path, row: &SweepRow) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join(format!(".cell-{}.tmp", row.cell));
    std::fs::write(&tmp, row.to_bytes())?;
    std::fs::rename(&tmp, spool_path(dir, row.cell))
}

/// Loads the rows an earlier (interrupted) coordinator already spooled
/// for this grid. A spooled row only counts when its spec matches the
/// cell's — a stale spool from a different grid is ignored, not trusted.
fn spooled_rows(dir: &Path, cells: &[SweepCell]) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    for cell in cells {
        let Ok(bytes) = std::fs::read(spool_path(dir, cell.id)) else {
            continue;
        };
        match SweepRow::from_bytes(&bytes) {
            Ok(row) if row.cell == cell.id && row.spec == cell.spec => rows.push(row),
            _ => {}
        }
    }
    rows
}

/// Runs the grid over the worker fleet (see the module docs).
pub fn run_distributed(
    grid: &SweepGrid,
    workers: &[String],
    opts: &CoordOpts,
) -> Result<CoordReport, CoordError> {
    if workers.is_empty() {
        return Err(CoordError::NoWorkers);
    }
    let cells = grid.cells();
    let n_cells = cells.len();
    let mut slots: Vec<Option<Result<SweepRow, ActiveDpError>>> = Vec::new();
    slots.resize_with(n_cells, || None);

    // Recover spooled rows before enqueuing anything.
    let mut spooled_skips = 0;
    if let Some(dir) = &opts.spool {
        for row in spooled_rows(dir, &cells) {
            let slot = row.cell as usize;
            slots[slot] = Some(Ok(row));
            spooled_skips += 1;
        }
    }
    let queue: VecDeque<Task> = cells
        .into_iter()
        .filter(|cell| slots[cell.id as usize].is_none())
        .map(|cell| Task {
            cell,
            checkpoint: None,
            wall_ms: 0.0,
            attempts: 0,
        })
        .collect();

    let state = Mutex::new(State {
        queue,
        in_flight: 0,
        slots,
        requeued: 0,
        resumed: 0,
        spool_write_errors: 0,
    });
    let idle = Condvar::new();
    let tallies: Vec<Mutex<WorkerReport>> = workers
        .iter()
        .map(|addr| {
            Mutex::new(WorkerReport {
                addr: addr.clone(),
                cells: 0,
                alive: true,
            })
        })
        .collect();

    std::thread::scope(|scope| {
        for (addr, tally) in workers.iter().zip(&tallies) {
            let state = &state;
            let idle = &idle;
            scope.spawn(move || dispatch_loop(addr, tally, state, idle, opts));
        }
    });

    let state = state.into_inner().unwrap_or_else(|e| e.into_inner());
    let missing = state.slots.iter().filter(|s| s.is_none()).count();
    if missing > 0 {
        return Err(CoordError::AllWorkersDead { missing });
    }
    let mut outcome = SweepOutcome::default();
    let specs = grid.expand();
    for (slot, (id, spec)) in state.slots.into_iter().zip(specs.into_iter().enumerate()) {
        match slot.expect("checked above") {
            Ok(row) => outcome.rows.push(row),
            Err(error) => outcome.failures.push(CellFailure {
                cell: id as u64,
                spec,
                error,
            }),
        }
    }
    Ok(CoordReport {
        outcome,
        requeued: state.requeued,
        resumed: state.resumed,
        spooled_skips,
        spool_write_errors: state.spool_write_errors,
        workers: tallies
            .into_iter()
            .map(|t| t.into_inner().unwrap_or_else(|e| e.into_inner()))
            .collect(),
    })
}

/// One worker's dispatcher: connect, then pull-run-record until the queue
/// drains or the worker dies.
fn dispatch_loop(
    addr: &str,
    tally: &Mutex<WorkerReport>,
    state: &Mutex<State>,
    idle: &Condvar,
    opts: &CoordOpts,
) {
    let mark_dead = || {
        tally.lock().unwrap_or_else(|e| e.into_inner()).alive = false;
        // Other dispatchers may be waiting on work this one will never
        // produce; wake them so they can re-check the exit condition.
        idle.notify_all();
    };
    // A worker that never answers a health probe takes no cells at all.
    let mut client = match Client::connect(addr).and_then(|mut c| c.health().map(|_| c)) {
        Ok(client) => client,
        Err(_) => return mark_dead(),
    };
    loop {
        let task = {
            let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(task) = st.queue.pop_front() {
                    st.in_flight += 1;
                    break task;
                }
                if st.in_flight == 0 {
                    return;
                }
                st = idle.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        // Probe before dispatch: a dead worker must not claim a cell it
        // cannot run (the queue would stall until another thread's error
        // path noticed).
        if client.health().is_err() {
            let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
            st.in_flight -= 1;
            st.queue.push_front(task);
            drop(st);
            return mark_dead();
        }
        let resumed = task.checkpoint.is_some();
        let cell = task.cell.id;
        match run_task(&mut client, task, opts) {
            TaskEnd::Row(row) => {
                let mut spool_err = false;
                if let Some(dir) = &opts.spool {
                    spool_err = spool_row(dir, &row).is_err();
                }
                let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
                st.slots[cell as usize] = Some(Ok(row));
                st.in_flight -= 1;
                if resumed {
                    st.resumed += 1;
                }
                if spool_err {
                    st.spool_write_errors += 1;
                }
                drop(st);
                tally.lock().unwrap_or_else(|e| e.into_inner()).cells += 1;
                idle.notify_all();
            }
            TaskEnd::Rejected(reason) => {
                let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
                st.slots[cell as usize] = Some(Err(ActiveDpError::BadConfig { reason }));
                st.in_flight -= 1;
                drop(st);
                idle.notify_all();
            }
            TaskEnd::WorkerDied(mut task) => {
                task.attempts += 1;
                let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
                st.in_flight -= 1;
                if task.attempts > opts.max_attempts {
                    st.slots[cell as usize] = Some(Err(ActiveDpError::BadConfig {
                        reason: format!(
                            "cell {cell} abandoned after {} worker deaths",
                            task.attempts
                        ),
                    }));
                } else {
                    st.requeued += 1;
                    st.queue.push_front(task);
                }
                drop(st);
                return mark_dead();
            }
        }
    }
}
