//! End-to-end tests of the distributed sweep coordinator: real servers,
//! real sockets, a real SIGKILL — and the one invariant that matters,
//! that the merged artefact is byte-identical to a single-process run no
//! matter how the fleet behaved.

use adp_experiments::{
    grid_table, run_distributed, run_grid, CoordError, CoordOpts, SweepGrid, SweepOutcome,
};
use adp_serve::{Server, SessionHub};
use std::path::PathBuf;
use std::sync::Arc;

fn tiny_grid() -> SweepGrid {
    let mut grid = SweepGrid::default_study(adp_data::DatasetId::Youtube);
    grid.samplers = vec![
        activedp::SamplerChoice::Uncertainty,
        activedp::SamplerChoice::Adp,
    ];
    grid.label_models = vec![activedp::LabelModelKind::Triplet];
    grid.ks = vec![1, 4];
    grid.budget = 6;
    grid
}

fn unique_tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "adp-coord-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Asserts two outcomes carry identical rows (wall-clock aside) and that
/// their rendered artefacts byte-compare once wall time is zeroed.
fn assert_same_rows(mut a: SweepOutcome, mut b: SweepOutcome) {
    assert_eq!(a.rows.len(), b.rows.len());
    for (x, y) in a.rows.iter().zip(&b.rows) {
        assert_eq!(x.cell, y.cell);
        assert_eq!(x.spec, y.spec);
        assert_eq!(x.iterations, y.iterations);
        assert_eq!(x.refits, y.refits);
        assert_eq!(x.test_accuracy.to_bits(), y.test_accuracy.to_bits());
    }
    a.zero_wall();
    b.zero_wall();
    assert_eq!(grid_table(&a.rows).to_csv(), grid_table(&b.rows).to_csv());
}

fn in_process_fleet(n: usize) -> (Vec<Server>, Vec<String>) {
    let servers: Vec<Server> = (0..n)
        .map(|_| Server::bind("127.0.0.1:0", Arc::new(SessionHub::new(2))).unwrap())
        .collect();
    let addrs = servers.iter().map(|s| s.addr().to_string()).collect();
    (servers, addrs)
}

#[test]
fn distributed_sweep_matches_the_local_run_bitwise() {
    let grid = tiny_grid();
    let (servers, addrs) = in_process_fleet(2);

    // Checkpoint every batch: the hardest slicing the protocol supports.
    let opts = CoordOpts {
        checkpoint_batches: 1,
        ..CoordOpts::default()
    };
    let report = run_distributed(&grid, &addrs, &opts).unwrap();
    assert!(report.outcome.is_clean());
    assert_eq!(report.requeued, 0);
    assert_eq!(report.spooled_skips, 0);
    assert!(report.workers.iter().all(|w| w.alive));
    assert_eq!(
        report.workers.iter().map(|w| w.cells).sum::<usize>(),
        grid.len()
    );

    // The serving metrics saw every completed cell, fleet-wide.
    let served: u64 = servers
        .iter()
        .map(|s| s.hub().metrics().sweep_cells_total.get())
        .sum();
    assert_eq!(served as usize, grid.len());

    let local = run_grid(&grid);
    assert!(local.is_clean());
    assert_same_rows(report.outcome, local);
}

#[test]
fn uncheckpointed_and_single_worker_runs_merge_identically_too() {
    let grid = tiny_grid();
    let (_servers, addrs) = in_process_fleet(1);
    let opts = CoordOpts {
        checkpoint_batches: 0,
        ..CoordOpts::default()
    };
    let report = run_distributed(&grid, &addrs, &opts).unwrap();
    assert!(report.outcome.is_clean());
    assert_same_rows(report.outcome, run_grid(&grid));
}

#[test]
fn degenerate_cells_fail_typed_without_retries() {
    let mut grid = tiny_grid();
    grid.ks = vec![1, 0]; // k = 0 fails server-side validation.
    let (_servers, addrs) = in_process_fleet(2);
    let report = run_distributed(&grid, &addrs, &CoordOpts::default()).unwrap();
    // A spec rejection is not a worker death: nothing was re-queued and
    // every worker is still alive.
    assert_eq!(report.requeued, 0);
    assert!(report.workers.iter().all(|w| w.alive));
    assert_eq!(report.outcome.rows.len(), 2);
    assert_eq!(report.outcome.failures.len(), 2);
    assert_eq!(report.outcome.failures[0].cell, 1);
    assert_eq!(report.outcome.failures[1].cell, 3);
    for failure in &report.outcome.failures {
        assert!(
            matches!(&failure.error, activedp::ActiveDpError::BadConfig { .. }),
            "{:?}",
            failure.error
        );
    }
}

#[test]
fn no_workers_and_dead_fleets_are_typed_coordinator_errors() {
    let grid = tiny_grid();
    assert!(matches!(
        run_distributed(&grid, &[], &CoordOpts::default()),
        Err(CoordError::NoWorkers)
    ));
    // An address nothing listens on: the whole fleet is dead on arrival.
    let err =
        run_distributed(&grid, &["127.0.0.1:1".to_string()], &CoordOpts::default()).unwrap_err();
    assert!(matches!(
        err,
        CoordError::AllWorkersDead { missing } if missing == grid.len()
    ));
}

#[test]
fn spooled_rows_survive_a_coordinator_restart() {
    let grid = tiny_grid();
    let spool = unique_tempdir("spool");
    let opts = CoordOpts {
        spool: Some(spool.clone()),
        ..CoordOpts::default()
    };

    let (_servers, addrs) = in_process_fleet(2);
    let first = run_distributed(&grid, &addrs, &opts).unwrap();
    assert!(first.outcome.is_clean());
    assert_eq!(first.spooled_skips, 0);
    assert_eq!(first.spool_write_errors, 0);

    // Corrupt one spooled row: the restart must re-run that cell only.
    std::fs::write(spool.join("cell-2.adprow"), b"not a sweep row").unwrap();

    // "Restart": a fresh fleet and a fresh coordinator over the same
    // spool. All but the corrupted cell come back without touching a
    // worker.
    let (_servers2, addrs2) = in_process_fleet(2);
    let second = run_distributed(&grid, &addrs2, &opts).unwrap();
    assert_eq!(second.spooled_skips, grid.len() - 1);
    assert_eq!(
        second.workers.iter().map(|w| w.cells).sum::<usize>(),
        1,
        "only the corrupted cell re-ran"
    );
    assert_same_rows(first.outcome, second.outcome);
    let _ = std::fs::remove_dir_all(&spool);
}

/// A real `adp-served` child process, SIGKILL-able mid-cell.
struct ServedProc {
    child: std::process::Child,
    addr: String,
}

impl ServedProc {
    fn spawn() -> ServedProc {
        use std::io::BufRead;
        let mut child = std::process::Command::new(served_bin())
            .args(["--addr", "127.0.0.1:0", "--shards", "2"])
            .env_remove("ADP_SPILL_DIR")
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawns adp-served");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("adp-served exited before listening")
                .expect("readable stdout");
            if let Some(addr) = line.strip_prefix("adp-served listening on ") {
                break addr.to_string();
            }
        };
        std::thread::spawn(move || for _ in lines {});
        ServedProc { child, addr }
    }
}

impl Drop for ServedProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The `adp-served` binary next to this test's own artefact dir. The
/// full-workspace test build always produces it; a package-scoped run
/// (`cargo test -p adp-experiments`) builds it on demand.
fn served_bin() -> PathBuf {
    let mut dir = std::env::current_exe().expect("test binary path");
    dir.pop();
    if dir.ends_with("deps") {
        dir.pop();
    }
    let bin = dir.join(format!("adp-served{}", std::env::consts::EXE_SUFFIX));
    if !bin.exists() {
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
        let mut build = std::process::Command::new(cargo);
        build.args(["build", "-p", "adp-serve", "--bin", "adp-served"]);
        if dir.ends_with("release") {
            build.arg("--release");
        }
        let status = build.status().expect("builds adp-served");
        assert!(status.success(), "cargo build adp-served failed");
    }
    bin
}

#[test]
fn sigkill_mid_cell_reschedules_onto_the_survivor_bitwise() {
    // A grid big enough that the sweep is still in flight a few hundred
    // milliseconds in: 12 cells, 24 single-iteration slices each.
    let mut grid = tiny_grid();
    grid.samplers = vec![
        activedp::SamplerChoice::Uncertainty,
        activedp::SamplerChoice::Adp,
    ];
    grid.label_models = vec![
        activedp::LabelModelKind::Triplet,
        activedp::LabelModelKind::DawidSkene,
    ];
    grid.ks = vec![1];
    grid.budget = 24;
    grid.seeds = vec![1, 2, 3];
    assert_eq!(grid.len(), 12);

    let victim = ServedProc::spawn();
    let survivor = ServedProc::spawn();
    let addrs = vec![victim.addr.clone(), survivor.addr.clone()];
    let opts = CoordOpts {
        checkpoint_batches: 1,
        ..CoordOpts::default()
    };

    let report = std::thread::scope(|scope| {
        let coordinator = scope.spawn(|| run_distributed(&grid, &addrs, &opts));
        // SIGKILL one worker while cells are mid-slice. No graceful path:
        // the socket just dies under the coordinator.
        std::thread::sleep(std::time::Duration::from_millis(300));
        let mut victim = victim;
        victim.child.kill().expect("SIGKILL lands");
        let _ = victim.child.wait();
        coordinator.join().expect("coordinator thread")
    })
    .expect("sweep completes on the survivor");

    assert!(report.outcome.is_clean(), "{:?}", report.outcome.failures);
    let dead = report.workers.iter().filter(|w| !w.alive).count();
    assert_eq!(dead, 1, "exactly the killed worker is reported dead");
    assert!(
        report.requeued >= 1,
        "the killed worker's in-flight cell was rescheduled"
    );
    assert!(report.resumed <= report.requeued);

    // The merged artefact does not remember the failure: byte-identical
    // to an uninterrupted single-process sweep.
    let local = run_grid(&grid);
    assert!(local.is_clean());
    assert_same_rows(report.outcome, local);
}
