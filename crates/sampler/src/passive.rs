//! Uniform random (passive) selection.

use crate::{Sampler, SamplerContext};
use rand::{Rng, SeedableRng};

/// Picks an unqueried instance uniformly at random.
#[derive(Debug)]
pub struct Passive {
    rng: rand::rngs::StdRng,
}

impl Passive {
    /// A passive sampler with its own deterministic stream.
    pub fn new(seed: u64) -> Self {
        Passive {
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }
}

impl Sampler for Passive {
    fn select(&mut self, ctx: &SamplerContext<'_>) -> Option<usize> {
        let pool: Vec<usize> = ctx.unqueried().collect();
        if pool.is_empty() {
            None
        } else {
            Some(pool[self.rng.gen_range(0..pool.len())])
        }
    }

    fn name(&self) -> &'static str {
        "Passive"
    }

    fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    fn restore_rng_state(&mut self, state: [u64; 4]) {
        self.rng = rand::rngs::StdRng::from_state(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::pool;

    fn ctx<'a>(d: &'a adp_data::Dataset, queried: &'a [bool]) -> SamplerContext<'a> {
        SamplerContext {
            train: d,
            queried,
            al_probs: None,
            lm_probs: None,
            n_labeled: 0,
            space: None,
            seen_lfs: None,
            candidates: None,
        }
    }

    #[test]
    fn selects_only_unqueried() {
        let d = pool(10);
        let mut queried = vec![false; 10];
        let mut s = Passive::new(0);
        for _ in 0..10 {
            let i = s.select(&ctx(&d, &queried)).unwrap();
            assert!(!queried[i]);
            queried[i] = true;
        }
        assert!(s.select(&ctx(&d, &queried)).is_none());
    }

    #[test]
    fn deterministic_by_seed() {
        let d = pool(50);
        let queried = vec![false; 50];
        let run = |seed| {
            let mut s = Passive::new(seed);
            (0..5)
                .map(|_| s.select(&ctx(&d, &queried)).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Passive::new(0).name(), "Passive");
    }
}
