//! Nemo's Select-by-Expected-Utility sampler (Hsieh et al., VLDB 2022).
//!
//! SEU scores an unlabeled instance by the utility a user-created LF from
//! that instance would bring:
//!
//! ```text
//!   u(x) = Σ_{λ ∈ Λ(x)} P(user returns λ | x) · Σ_{x' ∈ cov(λ)} (1 − conf(x'))
//! ```
//!
//! where `P(λ|x)` follows the same coverage-proportional user model the
//! simulation uses and `conf(x')` is the label model's top-class
//! probability. LFs the user already returned contribute nothing.
//!
//! Computing `Σ_{x'∈cov(λ)} (1 − conf(x'))` naively per candidate is
//! O(candidates × pool); the scorer instead precomputes per-token
//! uncertainty mass (text) or per-feature prefix sums over value-sorted
//! instances (tabular), making each candidate O(1)/O(log n).

use crate::{Sampler, SamplerContext};
use adp_data::Dataset;
use adp_lf::{LabelFunction, LfKey, StumpOp};
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// SEU sampler with a per-iteration utility scorer.
#[derive(Debug)]
pub struct Seu {
    rng: rand::rngs::StdRng,
    /// Pool instances scored per selection (subsampled for cost, as in
    /// Nemo's implementation).
    pub max_scored: usize,
}

impl Seu {
    /// An SEU sampler with a deterministic subsampling stream.
    pub fn new(seed: u64) -> Self {
        Seu {
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            max_scored: 150,
        }
    }
}

/// Per-iteration scoring structure.
#[derive(Debug)]
pub struct SeuScorer {
    kind: ScorerKind,
}

#[derive(Debug)]
enum ScorerKind {
    /// utility[token] = Σ_{docs containing token} (1 − conf(doc)).
    Text {
        token_utility: Vec<f64>,
        token_coverage: Vec<f64>,
    },
    /// Per feature: instances sorted by value with prefix sums of
    /// uncertainty mass, so range utilities are two lookups.
    Tabular {
        sorted_values: Vec<Vec<f64>>,
        prefix_uncertainty: Vec<Vec<f64>>,
        n: usize,
    },
}

impl SeuScorer {
    /// Builds the scorer for the pool given the label model's confidence
    /// (`None` ⇒ uniform, i.e. every instance contributes 1 − 1/C).
    pub fn build(train: &Dataset, lm_probs: Option<&[Vec<f64>]>) -> Self {
        let n = train.len();
        let uncertainty: Vec<f64> = (0..n)
            .map(|i| match lm_probs {
                Some(p) => 1.0 - p[i].iter().fold(0.0_f64, |m, &v| m.max(v)),
                None => 1.0 - 1.0 / train.n_classes as f64,
            })
            .collect();
        if let Some(docs) = &train.encoded_docs {
            let vocab = train.features.ncols();
            let mut token_utility = vec![0.0; vocab];
            let mut token_count = vec![0usize; vocab];
            let mut seen: Vec<bool> = vec![false; vocab];
            for (i, doc) in docs.iter().enumerate() {
                for &t in doc {
                    let t = t as usize;
                    if !seen[t] {
                        seen[t] = true;
                        token_utility[t] += uncertainty[i];
                        token_count[t] += 1;
                    }
                }
                for &t in doc {
                    seen[t as usize] = false;
                }
            }
            let token_coverage = token_count
                .iter()
                .map(|&c| c as f64 / n.max(1) as f64)
                .collect();
            SeuScorer {
                kind: ScorerKind::Text {
                    token_utility,
                    token_coverage,
                },
            }
        } else {
            let x = train.features.as_dense();
            let d = x.ncols();
            let mut sorted_values = Vec::with_capacity(d);
            let mut prefix_uncertainty = Vec::with_capacity(d);
            for j in 0..d {
                let mut pairs: Vec<(f64, f64)> =
                    (0..n).map(|i| (x[(i, j)], uncertainty[i])).collect();
                pairs.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("finite features"));
                let mut prefix = Vec::with_capacity(n + 1);
                prefix.push(0.0);
                let mut acc = 0.0;
                for &(_, u) in &pairs {
                    acc += u;
                    prefix.push(acc);
                }
                sorted_values.push(pairs.into_iter().map(|(v, _)| v).collect());
                prefix_uncertainty.push(prefix);
            }
            SeuScorer {
                kind: ScorerKind::Tabular {
                    sorted_values,
                    prefix_uncertainty,
                    n,
                },
            }
        }
    }

    /// Utility mass covered by one LF.
    pub fn lf_utility(&self, lf: &LabelFunction) -> f64 {
        match (&self.kind, lf) {
            (ScorerKind::Text { token_utility, .. }, LabelFunction::Keyword { token, .. }) => {
                token_utility.get(*token as usize).copied().unwrap_or(0.0)
            }
            (
                ScorerKind::Tabular {
                    sorted_values,
                    prefix_uncertainty,
                    n,
                },
                LabelFunction::Stump {
                    feature,
                    threshold,
                    op,
                    ..
                },
            ) => {
                let vals = &sorted_values[*feature];
                let prefix = &prefix_uncertainty[*feature];
                // partition_point gives the count of values < or <= threshold.
                match op {
                    StumpOp::Le => {
                        let k = vals.partition_point(|&v| v <= *threshold);
                        prefix[k]
                    }
                    StumpOp::Ge => {
                        let k = vals.partition_point(|&v| v < *threshold);
                        prefix[*n] - prefix[k]
                    }
                }
            }
            _ => 0.0,
        }
    }

    /// Coverage of one LF over the pool (for the user-model weighting).
    pub fn lf_coverage(&self, lf: &LabelFunction) -> f64 {
        match (&self.kind, lf) {
            (ScorerKind::Text { token_coverage, .. }, LabelFunction::Keyword { token, .. }) => {
                token_coverage.get(*token as usize).copied().unwrap_or(0.0)
            }
            (
                ScorerKind::Tabular {
                    sorted_values, n, ..
                },
                LabelFunction::Stump {
                    feature,
                    threshold,
                    op,
                    ..
                },
            ) => {
                let vals = &sorted_values[*feature];
                let covered = match op {
                    StumpOp::Le => vals.partition_point(|&v| v <= *threshold),
                    StumpOp::Ge => *n - vals.partition_point(|&v| v < *threshold),
                };
                covered as f64 / (*n).max(1) as f64
            }
            _ => 0.0,
        }
    }

    /// The SEU score of instance `idx`: expectation of LF utility under the
    /// coverage-proportional user model, skipping already-returned LFs.
    pub fn score_instance(
        &self,
        train: &Dataset,
        idx: usize,
        seen: Option<&HashSet<LfKey>>,
    ) -> f64 {
        let lfs = self.instance_lfs(train, idx);
        if lfs.is_empty() {
            return 0.0;
        }
        let mut total_cov = 0.0;
        let mut score = 0.0;
        for lf in &lfs {
            let cov = self.lf_coverage(lf);
            total_cov += cov;
            if seen.is_some_and(|s| Self::seen_any_label(s, lf, train.n_classes)) {
                continue;
            }
            score += cov * self.lf_utility(lf);
        }
        if total_cov > 0.0 {
            score / total_cov
        } else {
            0.0
        }
    }

    /// Utility LFs carry a placeholder label, while user-returned LFs carry
    /// real votes — match them regardless of label.
    fn seen_any_label(seen: &HashSet<LfKey>, lf: &LabelFunction, n_classes: usize) -> bool {
        (0..n_classes).any(|label| {
            let key = match lf {
                LabelFunction::Keyword { token, .. } => LfKey::Keyword(*token, label),
                LabelFunction::Stump {
                    feature,
                    threshold,
                    op,
                    ..
                } => LfKey::Stump(*feature, threshold.to_bits(), *op, label),
            };
            seen.contains(&key)
        })
    }

    /// The LFs a user could plausibly build from instance `idx` (one per
    /// distinct token / per feature-direction; labels don't affect utility).
    fn instance_lfs(&self, train: &Dataset, idx: usize) -> Vec<LabelFunction> {
        match &self.kind {
            ScorerKind::Text { .. } => {
                let docs = train
                    .encoded_docs
                    .as_ref()
                    .expect("text scorer on text data");
                let mut seen = Vec::new();
                let mut out = Vec::new();
                for &t in &docs[idx] {
                    if !seen.contains(&t) {
                        seen.push(t);
                        out.push(LabelFunction::Keyword { token: t, label: 0 });
                    }
                }
                out
            }
            ScorerKind::Tabular { .. } => {
                let x = train.features.as_dense();
                let mut out = Vec::new();
                for feature in 0..x.ncols() {
                    for op in StumpOp::both() {
                        out.push(LabelFunction::Stump {
                            feature,
                            threshold: x[(idx, feature)],
                            op,
                            label: 0,
                        });
                    }
                }
                out
            }
        }
    }
}

impl Sampler for Seu {
    fn select(&mut self, ctx: &SamplerContext<'_>) -> Option<usize> {
        let pool: Vec<usize> = ctx.unqueried().collect();
        if pool.is_empty() {
            return None;
        }
        let scorer = SeuScorer::build(ctx.train, ctx.lm_probs);
        let candidates: Vec<usize> = if pool.len() <= self.max_scored {
            pool
        } else {
            let mut copy = pool;
            let mut picked = Vec::with_capacity(self.max_scored);
            for k in 0..self.max_scored {
                let j = k + self.rng.gen_range(0..copy.len() - k);
                copy.swap(k, j);
                picked.push(copy[k]);
            }
            picked
        };
        candidates
            .into_iter()
            .map(|i| (i, scorer.score_instance(ctx.train, i, ctx.seen_lfs)))
            .max_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("finite scores")
                    .then(b.0.cmp(&a.0))
            })
            .map(|(i, _)| i)
    }

    fn name(&self) -> &'static str {
        "SEU"
    }
    fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    fn restore_rng_state(&mut self, state: [u64; 4]) {
        self.rng = rand::rngs::StdRng::from_state(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_data::{FeatureSet, Task};
    use adp_linalg::{CsrMatrix, Matrix};

    fn text_pool() -> Dataset {
        // token 0 in docs {0,1,2}; token 1 in {3}; token 2 in {0}.
        Dataset {
            name: "t".into(),
            task: Task::SpamClassification,
            n_classes: 2,
            features: FeatureSet::Sparse(CsrMatrix::empty(4, 3)),
            labels: vec![1, 1, 0, 0],
            texts: None,
            encoded_docs: Some(vec![vec![0, 2], vec![0], vec![0], vec![1]]),
        }
    }

    #[test]
    fn text_utilities_weight_uncertain_docs() {
        let d = text_pool();
        // Docs 0,1 uncertain (conf .5), docs 2,3 certain (conf 1.0).
        let lm = vec![
            vec![0.5, 0.5],
            vec![0.5, 0.5],
            vec![1.0, 0.0],
            vec![1.0, 0.0],
        ];
        let scorer = SeuScorer::build(&d, Some(&lm));
        let u = |t| scorer.lf_utility(&LabelFunction::Keyword { token: t, label: 0 });
        assert!((u(0) - 1.0).abs() < 1e-12); // 0.5 + 0.5 + 0.0
        assert!((u(1) - 0.0).abs() < 1e-12);
        assert!((u(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_model_means_uniform_uncertainty() {
        let d = text_pool();
        let scorer = SeuScorer::build(&d, None);
        let u0 = scorer.lf_utility(&LabelFunction::Keyword { token: 0, label: 0 });
        assert!((u0 - 1.5).abs() < 1e-12); // 3 docs × 0.5
    }

    #[test]
    fn seen_lfs_contribute_nothing() {
        let d = text_pool();
        let scorer = SeuScorer::build(&d, None);
        let mut seen = HashSet::new();
        let s_before = scorer.score_instance(&d, 1, Some(&seen));
        assert!(s_before > 0.0);
        // Doc 1 contains only token 0; once seen, the score collapses.
        seen.insert(LabelFunction::Keyword { token: 0, label: 0 }.key());
        let s_after = scorer.score_instance(&d, 1, Some(&seen));
        assert_eq!(s_after, 0.0);
    }

    #[test]
    fn seen_matching_ignores_lf_label() {
        // A user-returned LF votes class 1; SEU's utility LF for the same
        // token uses a placeholder label but must still count as seen.
        let d = text_pool();
        let scorer = SeuScorer::build(&d, None);
        let mut seen = HashSet::new();
        seen.insert(LabelFunction::Keyword { token: 0, label: 1 }.key());
        assert_eq!(scorer.score_instance(&d, 1, Some(&seen)), 0.0);
    }

    #[test]
    fn tabular_prefix_sums_match_naive() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let d = Dataset {
            name: "tab".into(),
            task: Task::OccupancyPrediction,
            n_classes: 2,
            features: FeatureSet::Dense(x),
            labels: vec![0, 0, 1, 1],
            texts: None,
            encoded_docs: None,
        };
        let lm = vec![
            vec![0.9, 0.1],
            vec![0.6, 0.4],
            vec![0.7, 0.3],
            vec![0.5, 0.5],
        ];
        // uncertainty = [0.1, 0.4, 0.3, 0.5]
        let scorer = SeuScorer::build(&d, Some(&lm));
        let le = |thr| {
            scorer.lf_utility(&LabelFunction::Stump {
                feature: 0,
                threshold: thr,
                op: StumpOp::Le,
                label: 0,
            })
        };
        let ge = |thr| {
            scorer.lf_utility(&LabelFunction::Stump {
                feature: 0,
                threshold: thr,
                op: StumpOp::Ge,
                label: 0,
            })
        };
        assert!((le(1.0) - 0.5).abs() < 1e-12); // rows 0,1
        assert!((le(3.0) - 1.3).abs() < 1e-12); // all
        assert!((ge(2.0) - 0.8).abs() < 1e-12); // rows 2,3
        assert!((ge(9.0) - 0.0).abs() < 1e-12);
        // Coverage agrees with a direct count.
        let cov = scorer.lf_coverage(&LabelFunction::Stump {
            feature: 0,
            threshold: 1.0,
            op: StumpOp::Le,
            label: 0,
        });
        assert!((cov - 0.5).abs() < 1e-12);
    }

    #[test]
    fn selects_instance_with_most_useful_unseen_lfs() {
        let d = text_pool();
        let queried = vec![false; 4];
        let ctx = SamplerContext {
            train: &d,
            queried: &queried,
            al_probs: None,
            lm_probs: None,
            n_labeled: 0,
            space: None,
            seen_lfs: None,
            candidates: None,
        };
        // Token 0 has coverage 3/4 and utility 1.5; doc 1/2 (only token 0)
        // score 1.5; doc 0 mixes token 2 (utility .5) in, lowering the
        // expectation; doc 3 scores 0.5.
        let pick = Seu::new(0).select(&ctx).unwrap();
        assert!(pick == 1 || pick == 2, "picked {pick}");
    }

    #[test]
    fn exhausted_pool_returns_none() {
        let d = text_pool();
        let queried = vec![true; 4];
        let ctx = SamplerContext {
            train: &d,
            queried: &queried,
            al_probs: None,
            lm_probs: None,
            n_labeled: 0,
            space: None,
            seen_lfs: None,
            candidates: None,
        };
        assert_eq!(Seu::new(0).select(&ctx), None);
    }
}
