//! Learning Active Learning (Konyushkova, Sznitman & Fua, NeurIPS 2017).
//!
//! LAL replaces hand-designed selection heuristics with a regressor trained
//! to predict, from (classifier-state, candidate) features, how much the
//! test error would drop if the candidate were labelled. The original uses
//! random-forest regression over episodes on synthetic data; this
//! reproduction keeps the defining structure — Monte-Carlo AL episodes on
//! synthetic Gaussian tasks, then regression from state features to
//! measured error reduction — with ridge regression as the learner (the
//! only regressor in our dependency budget; see DESIGN.md §1).

use crate::{Sampler, SamplerContext};
use adp_classifier::{LogRegConfig, LogisticRegression, Targets};
use adp_linalg::{ridge_regression, Matrix};
use rand::{Rng, SeedableRng};

const N_FEATURES: usize = 5;

/// LAL sampler: ridge regressor over state features trained on synthetic
/// AL episodes at construction time.
#[derive(Debug)]
pub struct Lal {
    weights: Vec<f64>,
    rng: rand::rngs::StdRng,
    /// Candidates scored per selection (subsampled for cost).
    pub max_candidates: usize,
}

impl Lal {
    /// Trains the error-reduction regressor on `n_episodes` synthetic
    /// episodes (the paper's LALindependent strategy) and returns the
    /// ready-to-use sampler.
    pub fn new(seed: u64, n_episodes: usize) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xA1A1_A1A1);
        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        for _ in 0..n_episodes {
            run_episode(&mut rng, &mut xs, &mut ys);
        }
        let weights = if xs.is_empty() {
            vec![0.0; N_FEATURES]
        } else {
            let x = Matrix::from_rows(&xs).expect("episodes produce features");
            ridge_regression(&x, &ys, 1e-3).unwrap_or_else(|_| vec![0.0; N_FEATURES])
        };
        Lal {
            weights,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            max_candidates: 256,
        }
    }

    /// Default construction used in the experiments (30 episodes).
    pub fn with_defaults(seed: u64) -> Self {
        Lal::new(seed, 30)
    }

    /// The learned regression weights (tests/diagnostics).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    fn score(&self, feats: &[f64]) -> f64 {
        adp_linalg::dot(&self.weights, feats)
    }
}

/// State features for a candidate: bias, predictive entropy, labelled-set
/// saturation, pool mean entropy, and the entropy × saturation interaction
/// (so the learned policy can re-weight uncertainty as labelling
/// progresses). Top-1 probability and margin are deterministic functions of
/// entropy on binary tasks and are deliberately excluded — collinear copies
/// only let ridge split the weight arbitrarily.
fn features(p: &[f64], n_labeled: usize, pool_mean_entropy: f64) -> Vec<f64> {
    let h = adp_linalg::entropy(p);
    let sat = n_labeled as f64 / (n_labeled as f64 + 10.0);
    vec![1.0, h, sat, pool_mean_entropy, h * sat]
}

/// One Monte-Carlo episode on a 2-D Gaussian task: grow a labelled set with
/// random selection, and at every step record (candidate features, measured
/// error reduction from labelling that candidate).
fn run_episode(rng: &mut rand::rngs::StdRng, xs: &mut Vec<Vec<f64>>, ys: &mut Vec<f64>) {
    let n_pool = 100;
    let n_test = 300;
    let sep = 0.8 + rng.gen::<f64>() * 1.4;
    let normal = |rng: &mut rand::rngs::StdRng| {
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    let gen_set = |rng: &mut rand::rngs::StdRng, n: usize| {
        let mut x = Matrix::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let label = usize::from(rng.gen::<f64>() < 0.5);
            let sign = if label == 1 { 0.5 } else { -0.5 };
            x[(i, 0)] = sign * sep + normal(rng);
            x[(i, 1)] = sign * sep + normal(rng);
            y.push(label);
        }
        (x, y)
    };
    let (pool_x, pool_y) = gen_set(rng, n_pool);
    let (test_x, test_y) = gen_set(rng, n_test);

    // 0/1 test error, as in the original LAL: log-loss would reward points
    // that merely sharpen confidence, inverting the uncertainty signal.
    let test_error = |model: &LogisticRegression| {
        let wrong = (0..n_test)
            .filter(|&i| model.predict(&test_x, i) != test_y[i])
            .count();
        wrong as f64 / n_test as f64
    };

    // Seed with one example of each class.
    let mut labeled: Vec<usize> = vec![];
    for class in 0..2 {
        if let Some(i) = (0..n_pool).find(|&i| pool_y[i] == class) {
            labeled.push(i);
        }
    }
    if labeled.len() < 2 {
        return;
    }
    let cfg = LogRegConfig {
        max_iters: 80,
        ..LogRegConfig::default()
    };
    let mut model = LogisticRegression::new(2, 2, cfg);

    for _step in 0..12 {
        let lab_targets: Vec<usize> = labeled.iter().map(|&i| pool_y[i]).collect();
        if model
            .fit(&pool_x, &labeled, Targets::Hard(&lab_targets), None)
            .is_err()
        {
            return;
        }
        let err_before = test_error(&model);
        let pool_probs: Vec<Vec<f64>> = (0..n_pool)
            .map(|i| model.predict_proba(&pool_x, i))
            .collect();
        let mean_h = adp_linalg::mean(
            &pool_probs
                .iter()
                .map(|p| adp_linalg::entropy(p))
                .collect::<Vec<_>>(),
        );

        // Probe several random unlabelled candidates. Raw reductions mix a
        // large step-level component (how far training has progressed) with
        // the candidate-level signal we want to learn, so the probes of a
        // step are centred before being recorded: only within-step
        // differences reach the regressor, and at selection time constant
        // offsets cannot change the ranking of a linear score.
        let cands: Vec<usize> = (0..n_pool).filter(|i| !labeled.contains(i)).collect();
        if cands.is_empty() {
            return;
        }
        // Probe set spans the confidence spectrum — most uncertain, most
        // certain, plus random fill — so each step's centred probes carry
        // feature variance the regressor can attach the target to.
        let mut probe_set: Vec<usize> = Vec::with_capacity(4);
        let by_entropy = |&i: &usize| {
            let h = adp_linalg::entropy(&pool_probs[i]);
            (h * 1e12) as i64
        };
        if let Some(&most) = cands.iter().max_by_key(|i| by_entropy(i)) {
            probe_set.push(most);
        }
        if let Some(&least) = cands.iter().min_by_key(|i| by_entropy(i)) {
            if !probe_set.contains(&least) {
                probe_set.push(least);
            }
        }
        while probe_set.len() < 4.min(cands.len()) {
            let cand = cands[rng.gen_range(0..cands.len())];
            if !probe_set.contains(&cand) {
                probe_set.push(cand);
            }
        }

        // Shared random continuation: the probes of a step are compared on
        // the error after labelling (probe + continuation), a short-horizon
        // value estimate that is paired across probes to control noise.
        let continuation: Vec<usize> = {
            let mut cont = Vec::with_capacity(3);
            while cont.len() < 6.min(cands.len().saturating_sub(1)) {
                let c = cands[rng.gen_range(0..cands.len())];
                if !cont.contains(&c) {
                    cont.push(c);
                }
            }
            cont
        };
        let mut step_feats: Vec<Vec<f64>> = Vec::with_capacity(4);
        let mut step_targets: Vec<f64> = Vec::with_capacity(4);
        let mut advanced = None;
        for &cand in &probe_set {
            let mut with = labeled.clone();
            with.push(cand);
            for &c in &continuation {
                if c != cand {
                    with.push(c);
                }
            }
            let with_targets: Vec<usize> = with.iter().map(|&i| pool_y[i]).collect();
            let mut probe = LogisticRegression::new(2, 2, cfg);
            if probe
                .fit(&pool_x, &with, Targets::Hard(&with_targets), None)
                .is_err()
            {
                return;
            }
            let err_after = test_error(&probe);
            step_feats.push(features(&pool_probs[cand], labeled.len(), mean_h));
            step_targets.push(err_before - err_after);
            advanced = Some(cand);
        }
        let t_mean = adp_linalg::mean(&step_targets);
        let mut f_mean = vec![0.0; N_FEATURES];
        for f in &step_feats {
            adp_linalg::axpy(1.0 / step_feats.len() as f64, f, &mut f_mean);
        }
        for (f, t) in step_feats.iter().zip(&step_targets) {
            let centred: Vec<f64> = f.iter().zip(&f_mean).map(|(a, b)| a - b).collect();
            xs.push(centred);
            ys.push(t - t_mean);
        }
        match advanced {
            Some(cand) => labeled.push(cand),
            None => return,
        }
    }
}

impl Sampler for Lal {
    fn select(&mut self, ctx: &SamplerContext<'_>) -> Option<usize> {
        let pool: Vec<usize> = ctx.unqueried().collect();
        if pool.is_empty() {
            return None;
        }
        // Without a trained model LAL has no state features; act passively.
        if ctx.al_probs.is_none() && ctx.lm_probs.is_none() {
            return Some(pool[self.rng.gen_range(0..pool.len())]);
        }
        let candidates: Vec<usize> = if pool.len() <= self.max_candidates {
            pool
        } else {
            let mut picked = Vec::with_capacity(self.max_candidates);
            // Sample without replacement via partial Fisher-Yates on a copy.
            let mut copy = pool;
            for k in 0..self.max_candidates {
                let j = k + self.rng.gen_range(0..copy.len() - k);
                copy.swap(k, j);
                picked.push(copy[k]);
            }
            picked
        };
        let mean_h = {
            let hs: Vec<f64> = candidates
                .iter()
                .map(|&i| adp_linalg::entropy(&ctx.primary_probs(i)))
                .collect();
            adp_linalg::mean(&hs)
        };
        candidates
            .into_iter()
            .map(|i| {
                let f = features(&ctx.primary_probs(i), ctx.n_labeled, mean_h);
                (i, self.score(&f))
            })
            .max_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("finite scores")
                    .then(b.0.cmp(&a.0))
            })
            .map(|(i, _)| i)
    }

    fn name(&self) -> &'static str {
        "LAL"
    }
    fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    fn restore_rng_state(&mut self, state: [u64; 4]) {
        self.rng = rand::rngs::StdRng::from_state(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{pool, probs};

    #[test]
    fn training_produces_finite_weights() {
        let lal = Lal::new(1, 5);
        assert_eq!(lal.weights().len(), N_FEATURES);
        assert!(lal.weights().iter().all(|w| w.is_finite()));
        assert!(lal.weights().iter().any(|&w| w != 0.0));
    }

    #[test]
    fn selects_unqueried_instance() {
        let d = pool(6);
        let queried = vec![true, false, false, true, false, true];
        let al = probs(&[0.9, 0.6, 0.5, 0.5, 0.99, 0.5]);
        let ctx = SamplerContext {
            train: &d,
            queried: &queried,
            al_probs: Some(&al),
            lm_probs: None,
            n_labeled: 2,
            space: None,
            seen_lfs: None,
            candidates: None,
        };
        let mut lal = Lal::new(2, 5);
        let i = lal.select(&ctx).unwrap();
        assert!(!queried[i]);
    }

    #[test]
    fn uncertain_candidates_score_higher() {
        // The learned regressor should, on average, give an uncertain point
        // (p=0.5) a higher predicted error-reduction than a sure one (p=0.99).
        let lal = Lal::new(3, 30);
        let f_unc = features(&[0.5, 0.5], 5, 0.3);
        let f_sure = features(&[0.01, 0.99], 5, 0.3);
        assert!(
            lal.score(&f_unc) > lal.score(&f_sure),
            "uncertain {:.4} vs sure {:.4}",
            lal.score(&f_unc),
            lal.score(&f_sure)
        );
    }

    #[test]
    fn cold_start_acts_passively_and_deterministically() {
        let d = pool(10);
        let queried = vec![false; 10];
        let ctx = SamplerContext {
            train: &d,
            queried: &queried,
            al_probs: None,
            lm_probs: None,
            n_labeled: 0,
            space: None,
            seen_lfs: None,
            candidates: None,
        };
        let a = Lal::new(4, 3).select(&ctx);
        let b = Lal::new(4, 3).select(&ctx);
        assert_eq!(a, b);
        assert!(a.is_some());
    }

    #[test]
    fn exhausted_pool_returns_none() {
        let d = pool(2);
        let queried = vec![true, true];
        let ctx = SamplerContext {
            train: &d,
            queried: &queried,
            al_probs: None,
            lm_probs: None,
            n_labeled: 0,
            space: None,
            seen_lfs: None,
            candidates: None,
        };
        assert_eq!(Lal::new(0, 2).select(&ctx), None);
    }
}

#[cfg(test)]
mod episode_tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn episodes_show_positive_entropy_value() {
        // The within-step regression signal that LAL learns from: across
        // many episodes, higher-entropy probes must carry higher measured
        // error reduction (slope > 0), otherwise the sampler degenerates
        // into certainty-seeking.
        let mut rng = rand::rngs::StdRng::seed_from_u64(123);
        let mut xs: Vec<Vec<f64>> = vec![];
        let mut ys: Vec<f64> = vec![];
        for _ in 0..40 {
            run_episode(&mut rng, &mut xs, &mut ys);
        }
        assert!(ys.len() > 500, "episodes produced {} samples", ys.len());
        let ent: Vec<f64> = xs.iter().map(|f| f[1]).collect();
        let num: f64 = ent.iter().zip(&ys).map(|(a, b)| a * b).sum();
        let den: f64 = ent.iter().map(|a| a * a).sum();
        assert!(num / den > 0.0, "slope {:.6}", num / den);
    }
}
