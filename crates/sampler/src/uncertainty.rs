//! Uncertainty sampling (Lewis 1995): maximum predictive entropy.

use crate::{Sampler, SamplerContext};
use rand::{Rng, SeedableRng};

/// Selects the unqueried instance with the highest predictive entropy under
/// the context's primary model (AL model, else label model). Before any
/// model exists every instance ties at maximum entropy; ties break randomly
/// so the cold start is not index-biased.
///
/// The per-instance entropy scoring runs through [`crate::score_items`]
/// under the fixed-chunk contract; the RNG-consuming reservoir tie-break is
/// a serial pass over the scores, so selections (and the tie-break stream)
/// are bitwise identical at every thread count.
#[derive(Debug)]
pub struct Uncertainty {
    rng: rand::rngs::StdRng,
    /// Fan the per-instance scoring out over scoped threads when the pool
    /// is large enough (scheduling only; selections are identical).
    pub parallel: bool,
}

impl Uncertainty {
    /// An uncertainty sampler with a deterministic tie-break stream.
    pub fn new(seed: u64) -> Self {
        Uncertainty {
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            parallel: true,
        }
    }
}

impl Sampler for Uncertainty {
    fn select(&mut self, ctx: &SamplerContext<'_>) -> Option<usize> {
        let pool: Vec<usize> = ctx.candidate_pool();
        let scores = crate::score_items(&pool, self.parallel, |&i| {
            adp_linalg::entropy(&ctx.primary_probs(i))
        });
        let mut best: Option<(usize, f64)> = None;
        let mut ties = 0usize;
        for (&i, &h) in pool.iter().zip(&scores) {
            match best {
                None => {
                    best = Some((i, h));
                    ties = 1;
                }
                Some((_, bh)) if h > bh + 1e-12 => {
                    best = Some((i, h));
                    ties = 1;
                }
                Some((_, bh)) if (h - bh).abs() <= 1e-12 => {
                    // Reservoir sampling over tied maxima.
                    ties += 1;
                    if self.rng.gen_range(0..ties) == 0 {
                        best = Some((i, h));
                    }
                }
                _ => {}
            }
        }
        best.map(|(i, _)| i)
    }

    fn name(&self) -> &'static str {
        "US"
    }

    fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    fn restore_rng_state(&mut self, state: [u64; 4]) {
        self.rng = rand::rngs::StdRng::from_state(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{pool, probs};

    #[test]
    fn picks_most_uncertain() {
        let d = pool(4);
        let queried = vec![false; 4];
        let al = probs(&[0.9, 0.55, 0.99, 0.2]);
        let ctx = SamplerContext {
            train: &d,
            queried: &queried,
            al_probs: Some(&al),
            lm_probs: None,
            n_labeled: 0,
            space: None,
            seen_lfs: None,
            candidates: None,
        };
        assert_eq!(Uncertainty::new(0).select(&ctx), Some(1));
    }

    #[test]
    fn respects_queried_mask() {
        let d = pool(3);
        let queried = vec![false, true, false];
        let al = probs(&[0.9, 0.5, 0.8]);
        let ctx = SamplerContext {
            train: &d,
            queried: &queried,
            al_probs: Some(&al),
            lm_probs: None,
            n_labeled: 0,
            space: None,
            seen_lfs: None,
            candidates: None,
        };
        // Index 1 is most uncertain but already queried; 2 is next.
        assert_eq!(Uncertainty::new(0).select(&ctx), Some(2));
    }

    #[test]
    fn cold_start_ties_break_randomly_but_deterministically() {
        let d = pool(20);
        let queried = vec![false; 20];
        let ctx = SamplerContext {
            train: &d,
            queried: &queried,
            al_probs: None,
            lm_probs: None,
            n_labeled: 0,
            space: None,
            seen_lfs: None,
            candidates: None,
        };
        let a = Uncertainty::new(5).select(&ctx);
        let b = Uncertainty::new(5).select(&ctx);
        assert_eq!(a, b);
        // Different seeds spread over the pool (probabilistic but with 20
        // candidates two fixed seeds colliding is unlikely; use three).
        let picks: std::collections::HashSet<_> = (0..3)
            .map(|s| Uncertainty::new(s).select(&ctx).unwrap())
            .collect();
        assert!(picks.len() > 1, "ties never vary: {picks:?}");
    }

    #[test]
    fn exhausted_pool_returns_none() {
        let d = pool(2);
        let queried = vec![true, true];
        let ctx = SamplerContext {
            train: &d,
            queried: &queried,
            al_probs: None,
            lm_probs: None,
            n_labeled: 0,
            space: None,
            seen_lfs: None,
            candidates: None,
        };
        assert_eq!(Uncertainty::new(0).select(&ctx), None);
    }
}
