//! Query-by-committee (Seung, Opper & Sompolinsky, COLT 1992).
//!
//! Not part of the paper's Table 4 but cited in its related work (§2.2);
//! provided as an extension so the sampler study can be widened. A
//! committee of logistic-regression models is trained on bootstrap
//! resamples of the labelled pool; the next query is the instance with the
//! highest *vote entropy* — the classic disagreement measure. Ties (and
//! the cold start, where no labelled pool exists) break uniformly.

use crate::{Sampler, SamplerContext};
use adp_classifier::{LogRegConfig, LogisticRegression, Targets};
use adp_linalg::Features;
use rand::{Rng, SeedableRng};

/// Query-by-committee sampler over bootstrap logistic regressions.
///
/// Unlike the purely context-driven samplers, QBC needs the labelled pool
/// itself: callers supply it through [`Committee::set_labeled`] whenever
/// the pool changes (the ActiveDP session does this with its
/// pseudo-labelled set).
#[derive(Debug)]
pub struct Committee {
    rng: rand::rngs::StdRng,
    /// Committee size (paper-typical: 5).
    pub n_members: usize,
    /// Candidates scored per selection (subsampled for cost).
    pub max_candidates: usize,
    /// Fan the per-candidate vote-entropy scoring out over scoped threads
    /// when the candidate set is large enough. Member *training* stays
    /// serial (it consumes the bootstrap RNG stream); only the pure
    /// per-candidate prediction/entropy pass parallelises, so selections
    /// are bitwise identical either way.
    pub parallel: bool,
    labeled: Vec<usize>,
    labels: Vec<usize>,
}

impl Committee {
    /// A committee sampler with `n_members` bootstrap members.
    pub fn new(seed: u64, n_members: usize) -> Self {
        Committee {
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            n_members: n_members.max(2),
            max_candidates: 256,
            parallel: true,
            labeled: vec![],
            labels: vec![],
        }
    }

    /// Updates the labelled pool the committee trains on.
    pub fn set_labeled(&mut self, labeled: &[usize], labels: &[usize]) {
        debug_assert_eq!(labeled.len(), labels.len());
        self.labeled = labeled.to_vec();
        self.labels = labels.to_vec();
    }

    /// Trains the committee on bootstrap resamples of the labelled pool.
    /// Consumes the bootstrap RNG stream member by member — strictly
    /// serial, so the stream position after training is independent of how
    /// the later scoring pass is scheduled.
    fn members<F: Features + ?Sized>(
        &mut self,
        x: &F,
        n_classes: usize,
    ) -> Option<Vec<LogisticRegression>> {
        let n = self.labeled.len();
        if n < 2 {
            return None;
        }
        let cfg = LogRegConfig {
            max_iters: 80,
            ..LogRegConfig::default()
        };
        let mut members = Vec::with_capacity(self.n_members);
        for _ in 0..self.n_members {
            // Bootstrap resample of the labelled pool.
            let mut rows = Vec::with_capacity(n);
            let mut ys = Vec::with_capacity(n);
            for _ in 0..n {
                let k = self.rng.gen_range(0..n);
                rows.push(self.labeled[k]);
                ys.push(self.labels[k]);
            }
            let mut model = LogisticRegression::new(n_classes, x.ncols(), cfg);
            if model.fit(x, &rows, Targets::Hard(&ys), None).is_err() {
                return None;
            }
            members.push(model);
        }
        Some(members)
    }
}

/// Vote entropy of one candidate's committee votes.
fn vote_entropy(votes: &[usize], n_classes: usize) -> f64 {
    let mut counts = vec![0.0f64; n_classes];
    for &v in votes {
        counts[v] += 1.0;
    }
    let total: f64 = counts.iter().sum();
    for c in &mut counts {
        *c /= total;
    }
    adp_linalg::entropy(&counts)
}

impl Sampler for Committee {
    fn select(&mut self, ctx: &SamplerContext<'_>) -> Option<usize> {
        let pool: Vec<usize> = ctx.candidate_pool();
        if pool.is_empty() {
            return None;
        }
        let candidates: Vec<usize> = if pool.len() <= self.max_candidates {
            pool.clone()
        } else {
            let mut copy = pool.clone();
            let mut picked = Vec::with_capacity(self.max_candidates);
            for k in 0..self.max_candidates {
                let j = k + self.rng.gen_range(0..copy.len() - k);
                copy.swap(k, j);
                picked.push(copy[k]);
            }
            picked
        };
        let n_classes = ctx.train.n_classes;
        let Some(members) = self.members(&ctx.train.features, n_classes) else {
            // Cold start: uniform random.
            return Some(pool[self.rng.gen_range(0..pool.len())]);
        };
        // Per-candidate disagreement: pure prediction + entropy work, fanned
        // out under the fixed-chunk contract.
        let features = &ctx.train.features;
        let scores = crate::score_items(&candidates, self.parallel, |&i| {
            let member_votes: Vec<usize> = members.iter().map(|m| m.predict(features, i)).collect();
            vote_entropy(&member_votes, n_classes)
        });
        let mut best: Option<(usize, f64)> = None;
        let mut ties = 0usize;
        for (&i, &h) in candidates.iter().zip(&scores) {
            match best {
                None => {
                    best = Some((i, h));
                    ties = 1;
                }
                Some((_, bh)) if h > bh + 1e-12 => {
                    best = Some((i, h));
                    ties = 1;
                }
                Some((_, bh)) if (h - bh).abs() <= 1e-12 => {
                    ties += 1;
                    if self.rng.gen_range(0..ties) == 0 {
                        best = Some((i, h));
                    }
                }
                _ => {}
            }
        }
        best.map(|(i, _)| i)
    }

    fn name(&self) -> &'static str {
        "QBC"
    }

    fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    fn restore_rng_state(&mut self, state: [u64; 4]) {
        self.rng = rand::rngs::StdRng::from_state(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::pool;

    fn ctx<'a>(d: &'a adp_data::Dataset, queried: &'a [bool]) -> SamplerContext<'a> {
        SamplerContext {
            train: d,
            queried,
            al_probs: None,
            lm_probs: None,
            n_labeled: 0,
            space: None,
            seen_lfs: None,
            candidates: None,
        }
    }

    #[test]
    fn vote_entropy_values() {
        assert_eq!(vote_entropy(&[1, 1, 1], 2), 0.0);
        let h = vote_entropy(&[0, 1, 0, 1], 2);
        assert!((h - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn cold_start_is_random_but_valid() {
        let d = pool(10);
        let queried = vec![false; 10];
        let mut qbc = Committee::new(3, 5);
        let pick = qbc.select(&ctx(&d, &queried)).unwrap();
        assert!(!queried[pick]);
    }

    #[test]
    fn disagreement_targets_the_boundary() {
        // Pool = line of points, classes split at the middle; with labels at
        // the extremes the committee disagrees most near the centre. The
        // feature is scaled to [-1, 1]: on the raw 0..39 scale the
        // Lipschitz-derived step size leaves the 80-iteration members
        // under-trained and their disagreement systematically skews to low
        // indices — a conditioning artefact, not the property under test.
        let n = 40;
        let x = adp_linalg::Matrix::from_fn(n, 1, |i, _| i as f64 / (n - 1) as f64 * 2.0 - 1.0);
        let d = adp_data::Dataset {
            name: "line".into(),
            task: adp_data::Task::OccupancyPrediction,
            n_classes: 2,
            features: adp_data::FeatureSet::Dense(x),
            labels: (0..n).map(|i| usize::from(i >= n / 2)).collect(),
            texts: None,
            encoded_docs: None,
        };
        let queried = vec![false; 40];
        let mut qbc = Committee::new(4, 7);
        qbc.set_labeled(&[0, 1, 38, 39], &[0, 0, 1, 1]);
        let pick = qbc.select(&ctx(&d, &queried)).unwrap();
        assert!(
            (8..32).contains(&pick),
            "expected a near-boundary pick, got {pick}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let d = pool(20);
        let queried = vec![false; 20];
        let run = |seed| {
            let mut qbc = Committee::new(seed, 5);
            qbc.set_labeled(&[0, 19], &[0, 1]);
            qbc.select(&ctx(&d, &queried))
        };
        assert_eq!(run(6), run(6));
    }

    #[test]
    fn exhausted_pool_returns_none() {
        let d = pool(3);
        let queried = vec![true; 3];
        let mut qbc = Committee::new(0, 3);
        assert_eq!(qbc.select(&ctx(&d, &queried)), None);
    }

    #[test]
    fn committee_size_floor() {
        let qbc = Committee::new(0, 0);
        assert_eq!(qbc.n_members, 2);
        assert_eq!(qbc.name(), "QBC");
    }
}
