//! Active-learning sample selectors (paper §4.3.2, Table 4).
//!
//! Everything a selector may consult lives in [`SamplerContext`]; the
//! [`Sampler`] trait then picks the next query instance from the unqueried
//! pool. Implemented here:
//!
//! * [`Passive`] — uniform random (the "Passive" row of Table 4);
//! * [`Uncertainty`] — maximum predictive entropy (Lewis 1995);
//! * [`Lal`] — "learning active learning" (Konyushkova et al. 2017): a
//!   regressor trained offline on Monte-Carlo AL episodes predicts each
//!   candidate's expected error reduction;
//! * [`Seu`] — Nemo's select-by-expected-utility (Hsieh et al. 2022):
//!   scores an instance by the expected utility of the LFs a user would
//!   create from it;
//! * [`Committee`] — query-by-committee vote entropy (Seung et al. 1992),
//!   an extension beyond Table 4 from the paper's related-work section.
//!
//! The paper's own ADP sampler needs both the AL model and the label model
//! and lives with the rest of the ActiveDP framework in the `activedp`
//! crate, implementing the same trait.

pub mod committee;
pub mod lal;
pub mod passive;
pub mod seu;
pub mod uncertainty;

pub use committee::Committee;
pub use lal::Lal;
pub use passive::Passive;
pub use seu::Seu;
pub use uncertainty::Uncertainty;

use adp_data::Dataset;
use adp_lf::{CandidateSpace, LfKey};
use adp_linalg::parallel::{self, Execution};
use std::collections::HashSet;

/// Pool instances per parallel scoring chunk. Fixed (machine-independent)
/// per the `adp_linalg::parallel` contract, so chunk boundaries — and
/// therefore every scored float — are identical at every thread count.
pub const SCORE_CHUNK: usize = 1024;

/// Minimum pool size before scoring threads pay for themselves; below it
/// [`score_items`] stays on the calling thread.
pub const MIN_PARALLEL_SCORE: usize = 4096;

/// Scores every item of a candidate pool, fanning fixed-size chunks out
/// over scoped threads when `parallel` is set and the pool is large enough.
///
/// Each score is a pure function of its item, so the output — and any
/// serial argmax/tie-break pass consuming it afterwards — is **bitwise
/// identical** at every thread count. This is the split the samplers use:
/// the embarrassingly parallel per-instance scoring goes through here, the
/// RNG-consuming reservoir tie-break stays a serial pass over the returned
/// scores, and the selection (plus the sampler's RNG stream position) comes
/// out the same either way.
pub fn score_items<T: Sync>(
    items: &[T],
    parallel: bool,
    score: impl Fn(&T) -> f64 + Sync,
) -> Vec<f64> {
    let exec = if parallel {
        parallel::auto(items.len(), MIN_PARALLEL_SCORE)
    } else {
        Execution::Serial
    };
    score_items_with(items, exec, score)
}

/// [`score_items`] under an explicit execution policy (the determinism
/// harness sweeps thread counts through this).
pub fn score_items_with<T: Sync>(
    items: &[T],
    exec: Execution,
    score: impl Fn(&T) -> f64 + Sync,
) -> Vec<f64> {
    parallel::map_chunks(items.len(), SCORE_CHUNK, exec, |range| {
        range.map(|k| score(&items[k])).collect::<Vec<f64>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Everything a sampler may look at when choosing the next query.
pub struct SamplerContext<'a> {
    /// The unlabeled pool (the training split).
    pub train: &'a Dataset,
    /// `queried[i]` is true once instance `i` has been shown to the user.
    pub queried: &'a [bool],
    /// Active-learning model probabilities per pool instance, when trained.
    pub al_probs: Option<&'a [Vec<f64>]>,
    /// Label-model probabilities per pool instance, when LFs exist.
    pub lm_probs: Option<&'a [Vec<f64>]>,
    /// Number of labelled/pseudo-labelled instances so far.
    pub n_labeled: usize,
    /// Candidate-LF space (needed by SEU).
    pub space: Option<&'a CandidateSpace>,
    /// LFs already returned by the user (SEU discounts them).
    pub seen_lfs: Option<&'a HashSet<LfKey>>,
    /// Restricted candidate set (ascending pool indices) from an
    /// approximate index, when the engine runs a sublinear candidate
    /// strategy. `None` means score the full unqueried pool. Samplers
    /// consume it through [`SamplerContext::candidate_pool`].
    pub candidates: Option<&'a [usize]>,
}

impl<'a> SamplerContext<'a> {
    /// Indices not yet queried.
    pub fn unqueried(&self) -> impl Iterator<Item = usize> + '_ {
        self.queried
            .iter()
            .enumerate()
            .filter_map(|(i, &q)| (!q).then_some(i))
    }

    /// The pool a selector should score: the restricted candidate set when
    /// one is supplied (minus anything queried since it was computed),
    /// else every unqueried index. Falls back to the full unqueried pool
    /// when the candidate set has been exhausted by querying, so a stale
    /// set can narrow the search but never fake pool exhaustion.
    pub fn candidate_pool(&self) -> Vec<usize> {
        if let Some(cands) = self.candidates {
            let pool: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| !self.queried[i])
                .collect();
            if !pool.is_empty() {
                return pool;
            }
        }
        self.unqueried().collect()
    }

    /// The "primary" model distribution for instance `i`: the AL model when
    /// available, else the label model, else uniform.
    pub fn primary_probs(&self, i: usize) -> Vec<f64> {
        if let Some(p) = self.al_probs {
            return p[i].clone();
        }
        if let Some(p) = self.lm_probs {
            return p[i].clone();
        }
        vec![1.0 / self.train.n_classes as f64; self.train.n_classes]
    }
}

/// A query-instance selector.
pub trait Sampler: Send {
    /// Picks the next instance to show the user, or `None` when the pool is
    /// exhausted.
    fn select(&mut self, ctx: &SamplerContext<'_>) -> Option<usize>;

    /// Short name for tables/logs.
    fn name(&self) -> &'static str;

    /// The sampler's internal RNG stream (xoshiro state words), for session
    /// snapshot/restore. Every decision input *other* than the stream — the
    /// queried mask, model probabilities, the labelled pool — is recoverable
    /// from `(SessionConfig, SessionState)`, so the stream is the only state
    /// a snapshot must carry per sampler.
    fn rng_state(&self) -> [u64; 4];

    /// Repositions the RNG stream to words previously captured with
    /// [`Sampler::rng_state`].
    fn restore_rng_state(&mut self, state: [u64; 4]);
}

#[cfg(test)]
pub(crate) mod testutil {
    use adp_data::{Dataset, FeatureSet, Task};
    use adp_linalg::Matrix;

    /// A tiny tabular pool with one feature equal to the index.
    pub fn pool(n: usize) -> Dataset {
        let x = Matrix::from_fn(n, 1, |i, _| i as f64);
        Dataset {
            name: "pool".into(),
            task: Task::OccupancyPrediction,
            n_classes: 2,
            features: FeatureSet::Dense(x),
            labels: (0..n).map(|i| usize::from(i >= n / 2)).collect(),
            texts: None,
            encoded_docs: None,
        }
    }

    /// Probability rows with the given positive-class probabilities.
    pub fn probs(ps: &[f64]) -> Vec<Vec<f64>> {
        ps.iter().map(|&p| vec![1.0 - p, p]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::{pool, probs};

    #[test]
    fn context_unqueried_iterates_pool() {
        let d = pool(4);
        let queried = vec![false, true, false, true];
        let ctx = SamplerContext {
            train: &d,
            queried: &queried,
            al_probs: None,
            lm_probs: None,
            n_labeled: 0,
            space: None,
            seen_lfs: None,
            candidates: None,
        };
        assert_eq!(ctx.unqueried().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn primary_probs_fallback_chain() {
        let d = pool(2);
        let queried = vec![false, false];
        let al = probs(&[0.9, 0.9]);
        let lm = probs(&[0.2, 0.2]);
        let mut ctx = SamplerContext {
            train: &d,
            queried: &queried,
            al_probs: Some(&al),
            lm_probs: Some(&lm),
            n_labeled: 0,
            space: None,
            seen_lfs: None,
            candidates: None,
        };
        assert_eq!(ctx.primary_probs(0)[1], 0.9);
        ctx.al_probs = None;
        assert_eq!(ctx.primary_probs(0)[1], 0.2);
        ctx.lm_probs = None;
        assert_eq!(ctx.primary_probs(0), vec![0.5, 0.5]);
    }
}
