//! Synthetic keyword-mixture text corpora.
//!
//! Each binary dataset is defined by two pools of signal *concepts* (one
//! pool per class) and a pool of uninformative *background words*. A
//! document of class `y` activates each class-`y` concept independently
//! with probability `p_c` and each opposite-class concept with probability
//! `p_c · leak_c`; an active concept emits each of its 1–3 synonym variant
//! words with probability `variant_activation`; background words are drawn
//! uniformly. With balanced classes every variant's keyword LF `w → y` has
//! accuracy `1 / (1 + leak_c)`, and variants of the same concept are
//! strongly correlated — the redundancy LabelPick's Markov-blanket
//! selection exists to prune (paper §3.4). Irreducible label-flip noise
//! caps the downstream model's attainable accuracy, reproducing each
//! dataset's difficulty ordering.

use crate::dataset::{Dataset, FeatureSet, SplitDataset, Task};
use crate::error::DataError;
use adp_text::{TfidfVectorizer, TokenizerConfig};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generator parameters for one textual dataset.
#[derive(Debug, Clone)]
pub struct TextSpec {
    /// Dataset name.
    pub name: String,
    /// Task category (Table 2).
    pub task: Task,
    /// Split sizes.
    pub n_train: usize,
    /// Validation size.
    pub n_valid: usize,
    /// Test size.
    pub n_test: usize,
    /// P(Y = 1).
    pub class_balance: f64,
    /// Signal concepts per class.
    pub n_signal_per_class: usize,
    /// In-class activation probability range for signal concepts.
    pub signal_freq: (f64, f64),
    /// Leak-ratio range; LF accuracy = 1/(1+leak) under balanced classes.
    pub leak: (f64, f64),
    /// Synonym variants per concept (uniform inclusive range). Sizes above
    /// one create correlated keyword LFs.
    pub variants_per_signal: (usize, usize),
    /// P(variant word emitted | concept active).
    pub variant_activation: f64,
    /// Background vocabulary size.
    pub n_background: usize,
    /// Background words per document (uniform inclusive range).
    pub background_per_doc: (usize, usize),
    /// Irreducible label-flip probability.
    pub label_noise: f64,
}

impl TextSpec {
    fn validate(&self) -> Result<(), DataError> {
        let bad = |reason: String| Err(DataError::InvalidSpec { reason });
        if self.n_train == 0 || self.n_valid == 0 || self.n_test == 0 {
            return bad("split sizes must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.class_balance) {
            return bad(format!(
                "class_balance {} outside [0,1]",
                self.class_balance
            ));
        }
        if !(0.0..0.5).contains(&self.label_noise) {
            return bad(format!("label_noise {} outside [0,0.5)", self.label_noise));
        }
        for (lo, hi, what) in [
            (self.signal_freq.0, self.signal_freq.1, "signal_freq"),
            (self.leak.0, self.leak.1, "leak"),
        ] {
            if lo < 0.0 || hi > 2.0 || lo > hi {
                return bad(format!("{what} range ({lo}, {hi}) invalid"));
            }
        }
        if self.n_signal_per_class == 0 {
            return bad("need at least one signal concept per class".into());
        }
        if self.variants_per_signal.0 == 0
            || self.variants_per_signal.0 > self.variants_per_signal.1
        {
            return bad(format!(
                "variants_per_signal range {:?} invalid",
                self.variants_per_signal
            ));
        }
        if !(0.0..=1.0).contains(&self.variant_activation) {
            return bad(format!(
                "variant_activation {} outside [0,1]",
                self.variant_activation
            ));
        }
        Ok(())
    }
}

struct Concept {
    variants: Vec<String>,
    class: usize,
    freq: f64,
    leak: f64,
}

/// Generates a [`SplitDataset`] from `spec`, deterministically in `seed`.
///
/// TF-IDF is fitted on the training documents only; validation/test are
/// transformed with the training vocabulary, matching the standard pipeline.
pub fn generate_text(spec: &TextSpec, seed: u64) -> Result<SplitDataset, DataError> {
    spec.validate()?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    // Per-concept parameters.
    let mut signals = Vec::with_capacity(2 * spec.n_signal_per_class);
    for class in 0..2usize {
        for idx in 0..spec.n_signal_per_class {
            let n_variants = rng.gen_range(spec.variants_per_signal.0..=spec.variants_per_signal.1);
            signals.push(Concept {
                variants: (0..n_variants)
                    .map(|v| format!("s{class}c{idx:03}v{v}"))
                    .collect(),
                class,
                freq: rng.gen_range(spec.signal_freq.0..=spec.signal_freq.1),
                leak: rng.gen_range(spec.leak.0..=spec.leak.1),
            });
        }
    }
    let background: Vec<String> = (0..spec.n_background)
        .map(|i| format!("bg{i:04}"))
        .collect();

    let total = spec.n_train + spec.n_valid + spec.n_test;
    let mut texts = Vec::with_capacity(total);
    let mut labels = Vec::with_capacity(total);
    let mut words: Vec<&str> = Vec::new();
    for _ in 0..total {
        let y = usize::from(rng.gen::<f64>() < spec.class_balance);
        words.clear();
        for s in &signals {
            let p = if s.class == y {
                s.freq
            } else {
                s.freq * s.leak
            };
            if rng.gen::<f64>() < p {
                // Concept active: emit correlated synonym variants.
                for v in &s.variants {
                    if rng.gen::<f64>() < spec.variant_activation {
                        words.push(v);
                    }
                }
            }
        }
        if !background.is_empty() {
            let n_bg = rng.gen_range(spec.background_per_doc.0..=spec.background_per_doc.1);
            for _ in 0..n_bg {
                words.push(&background[rng.gen_range(0..background.len())]);
            }
        }
        words.shuffle(&mut rng);
        texts.push(words.join(" "));
        let observed = if rng.gen::<f64>() < spec.label_noise {
            1 - y
        } else {
            y
        };
        labels.push(observed);
    }

    let train_texts = &texts[..spec.n_train];
    let valid_texts = &texts[spec.n_train..spec.n_train + spec.n_valid];
    let test_texts = &texts[spec.n_train + spec.n_valid..];

    let mut vectorizer = TfidfVectorizer::new(TokenizerConfig::default(), 2, 0.98, 50_000);
    vectorizer.fit(&texts[..spec.n_train]);
    let vocab = vectorizer.vocabulary().clone();

    let make = |docs: &[String], labels: &[usize], what: &str| -> Dataset {
        let tf = vectorizer.transform(docs);
        Dataset {
            name: spec.name.clone(),
            task: spec.task,
            n_classes: 2,
            features: FeatureSet::Sparse(tf.matrix),
            labels: labels.to_vec(),
            texts: Some(docs.to_vec()),
            encoded_docs: Some(tf.encoded_docs),
        }
        .tap_validate(what)
    };

    let split = SplitDataset {
        train: make(train_texts, &labels[..spec.n_train], "train"),
        valid: make(
            valid_texts,
            &labels[spec.n_train..spec.n_train + spec.n_valid],
            "valid",
        ),
        test: make(test_texts, &labels[spec.n_train + spec.n_valid..], "test"),
        vocab: Some(vocab),
        provenance: None,
    };
    split.validate()?;
    Ok(split)
}

trait TapValidate {
    fn tap_validate(self, what: &str) -> Self;
}

impl TapValidate for Dataset {
    fn tap_validate(self, what: &str) -> Self {
        debug_assert!(self.validate().is_ok(), "invalid {what} split");
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn small_spec() -> TextSpec {
        TextSpec {
            name: "unit-text".into(),
            task: Task::SpamClassification,
            n_train: 300,
            n_valid: 60,
            n_test: 60,
            class_balance: 0.5,
            n_signal_per_class: 15,
            signal_freq: (0.05, 0.3),
            leak: (0.05, 0.5),
            variants_per_signal: (1, 3),
            variant_activation: 0.8,
            n_background: 60,
            background_per_doc: (3, 8),
            label_noise: 0.03,
        }
    }

    #[test]
    fn shapes_and_validity() {
        let ds = generate_text(&small_spec(), 1).unwrap();
        assert_eq!(ds.train.len(), 300);
        assert_eq!(ds.valid.len(), 60);
        assert_eq!(ds.test.len(), 60);
        assert!(ds.is_textual());
        assert!(ds.vocab.is_some());
        ds.validate().unwrap();
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate_text(&small_spec(), 9).unwrap();
        let b = generate_text(&small_spec(), 9).unwrap();
        assert_eq!(a.train.texts, b.train.texts);
        assert_eq!(a.train.labels, b.train.labels);
        let c = generate_text(&small_spec(), 10).unwrap();
        assert_ne!(a.train.texts, c.train.texts);
    }

    #[test]
    fn classes_roughly_balanced() {
        let ds = generate_text(&small_spec(), 2).unwrap();
        let balance = ds.train.class_balance();
        assert!((balance[1] - 0.5).abs() < 0.1, "balance {:?}", balance);
    }

    #[test]
    fn signal_words_predict_labels() {
        // A class-1 signal word should appear far more often in class-1 docs.
        let ds = generate_text(&small_spec(), 3).unwrap();
        let vocab = ds.vocab.as_ref().unwrap();
        // find any class-1 signal word present in the vocabulary
        let id = (0..15)
            .filter_map(|i| vocab.id(&format!("s1c{i:03}v0")))
            .next()
            .expect("some signal word in vocab");
        let docs = ds.train.encoded_docs.as_ref().unwrap();
        let mut in_c1 = 0usize;
        let mut in_c0 = 0usize;
        for (doc, &y) in docs.iter().zip(&ds.train.labels) {
            if doc.contains(&id) {
                if y == 1 {
                    in_c1 += 1;
                } else {
                    in_c0 += 1;
                }
            }
        }
        assert!(in_c1 > in_c0, "in_c1={in_c1} in_c0={in_c0}");
    }

    #[test]
    fn tfidf_features_align_with_docs() {
        let ds = generate_text(&small_spec(), 4).unwrap();
        let m = ds.train.features.as_sparse();
        assert_eq!(m.nrows(), ds.train.len());
        assert_eq!(m.ncols(), ds.vocab.as_ref().unwrap().len());
    }

    #[test]
    fn rejects_invalid_specs() {
        let mut s = small_spec();
        s.n_train = 0;
        assert!(generate_text(&s, 0).is_err());
        let mut s = small_spec();
        s.label_noise = 0.6;
        assert!(generate_text(&s, 0).is_err());
        let mut s = small_spec();
        s.leak = (0.9, 0.2);
        assert!(generate_text(&s, 0).is_err());
        let mut s = small_spec();
        s.n_signal_per_class = 0;
        assert!(generate_text(&s, 0).is_err());
    }

    #[test]
    fn label_noise_flips_some_labels() {
        let mut s = small_spec();
        s.label_noise = 0.0;
        let clean = generate_text(&s, 5).unwrap();
        s.label_noise = 0.3;
        let noisy = generate_text(&s, 5).unwrap();
        // Same rng stream up to the flip decisions => documents identical,
        // labels partially flipped.
        let diff = clean
            .train
            .labels
            .iter()
            .zip(&noisy.train.labels)
            .filter(|(a, b)| a != b)
            .count();
        assert!(diff > 0);
    }
}
