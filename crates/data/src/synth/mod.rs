//! Synthetic dataset generators standing in for the paper's corpora.
//!
//! See DESIGN.md §1: the algorithms interact with data only through the
//! feature matrix and the label-function space, and these generators control
//! both. `text` produces keyword-mixture documents whose induced keyword-LF
//! accuracies/coverages are set by the spec; `tabular` produces Gaussian
//! class mixtures whose decision-stump LF quality is set by per-feature
//! mean separations.

pub mod tabular;
pub mod text;

pub use tabular::{generate_tabular, TabularSpec};
pub use text::{generate_text, TextSpec};

use rand::Rng;

/// Standard normal draw via Box–Muller (`rand_distr` is outside the allowed
/// dependency set, and two uniforms per draw is plenty fast here).
pub(crate) fn sample_standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.gen::<f64>();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| sample_standard_normal(&mut rng))
            .collect();
        let mean = adp_linalg::mean(&samples);
        let var = adp_linalg::variance(&samples);
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
