//! Synthetic tabular datasets (Gaussian class mixtures).
//!
//! Feature `j` is drawn from `N(±sep_j/2, 1)` with the sign set by the
//! class; `sep_j = 0` makes a pure noise feature. Decision-stump LFs on a
//! feature with separation `s` have a best-case accuracy of `Φ(s/2)`, so the
//! separation vector directly controls the stump-LF space the simulated
//! user works with. Irreducible flip noise caps downstream accuracy, as for
//! the text generator.

use crate::dataset::{Dataset, FeatureSet, SplitDataset, Task};
use crate::error::DataError;
use crate::synth::sample_standard_normal;
use adp_linalg::Matrix;
use rand::{Rng, SeedableRng};

/// Generator parameters for one tabular dataset.
#[derive(Debug, Clone)]
pub struct TabularSpec {
    /// Dataset name.
    pub name: String,
    /// Task category (Table 2).
    pub task: Task,
    /// Training-set size.
    pub n_train: usize,
    /// Validation-set size.
    pub n_valid: usize,
    /// Test-set size.
    pub n_test: usize,
    /// P(Y = 1).
    pub class_balance: f64,
    /// Per-feature class-mean separations (0 ⇒ noise feature).
    pub separations: Vec<f64>,
    /// Irreducible label-flip probability.
    pub label_noise: f64,
}

impl TabularSpec {
    fn validate(&self) -> Result<(), DataError> {
        let bad = |reason: String| Err(DataError::InvalidSpec { reason });
        if self.n_train == 0 || self.n_valid == 0 || self.n_test == 0 {
            return bad("split sizes must be positive".into());
        }
        if self.separations.is_empty() {
            return bad("need at least one feature".into());
        }
        if self.separations.iter().any(|s| *s < 0.0 || !s.is_finite()) {
            return bad("separations must be finite and non-negative".into());
        }
        if !(0.0..=1.0).contains(&self.class_balance) {
            return bad(format!(
                "class_balance {} outside [0,1]",
                self.class_balance
            ));
        }
        if !(0.0..0.5).contains(&self.label_noise) {
            return bad(format!("label_noise {} outside [0,0.5)", self.label_noise));
        }
        Ok(())
    }
}

/// Generates a [`SplitDataset`] from `spec`, deterministically in `seed`.
///
/// Features are z-scored with training-split statistics (the standard
/// pipeline); stump thresholds therefore live in standardised space too.
///
/// Rows stream directly into their split's matrix: peak memory is the
/// three matrices the splits keep anyway, with no `total × d` staging
/// buffer and no per-split submatrix copies. That is what makes
/// million-instance pools (`Scale::Custom` factors above 1) practical.
/// The draw order is row-major over the concatenated splits — the same
/// order the buffered implementation used — so outputs are bitwise
/// unchanged.
pub fn generate_tabular(spec: &TabularSpec, seed: u64) -> Result<SplitDataset, DataError> {
    spec.validate()?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let d = spec.separations.len();
    let n_train = spec.n_train;

    let sizes = [n_train, spec.n_valid, spec.n_test];
    let mut xs = sizes.map(|n| Matrix::zeros(n, d));
    let mut labels = sizes.map(Vec::with_capacity);
    for (x, labels) in xs.iter_mut().zip(labels.iter_mut()) {
        for i in 0..x.nrows() {
            let y = usize::from(rng.gen::<f64>() < spec.class_balance);
            let sign = if y == 1 { 0.5 } else { -0.5 };
            for (j, &sep) in spec.separations.iter().enumerate() {
                x[(i, j)] = sign * sep + sample_standard_normal(&mut rng);
            }
            let observed = if rng.gen::<f64>() < spec.label_noise {
                1 - y
            } else {
                y
            };
            labels.push(observed);
        }
    }

    // Standardise every split with train statistics. Element-wise, so
    // visiting the splits one matrix at a time changes nothing.
    for j in 0..d {
        let col: Vec<f64> = (0..n_train).map(|i| xs[0][(i, j)]).collect();
        let mu = adp_linalg::mean(&col);
        let sd = adp_linalg::variance(&col).sqrt().max(1e-12);
        for x in &mut xs {
            for i in 0..x.nrows() {
                x[(i, j)] = (x[(i, j)] - mu) / sd;
            }
        }
    }

    let make = |x: Matrix, labels: Vec<usize>| -> Dataset {
        Dataset {
            name: spec.name.clone(),
            task: spec.task,
            n_classes: 2,
            features: FeatureSet::Dense(x),
            labels,
            texts: None,
            encoded_docs: None,
        }
    };

    let [train_x, valid_x, test_x] = xs;
    let [train_l, valid_l, test_l] = labels;
    let split = SplitDataset {
        train: make(train_x, train_l),
        valid: make(valid_x, valid_l),
        test: make(test_x, test_l),
        vocab: None,
        provenance: None,
    };
    split.validate()?;
    Ok(split)
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn small_spec() -> TabularSpec {
        TabularSpec {
            name: "unit-tab".into(),
            task: Task::OccupancyPrediction,
            n_train: 400,
            n_valid: 80,
            n_test: 80,
            class_balance: 0.5,
            separations: vec![2.5, 2.0, 0.0],
            label_noise: 0.01,
        }
    }

    #[test]
    fn shapes_and_validity() {
        let ds = generate_tabular(&small_spec(), 1).unwrap();
        assert_eq!(ds.train.len(), 400);
        assert_eq!(ds.valid.len(), 80);
        assert_eq!(ds.test.len(), 80);
        assert!(!ds.is_textual());
        assert_eq!(ds.train.features.ncols(), 3);
        ds.validate().unwrap();
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate_tabular(&small_spec(), 5).unwrap();
        let b = generate_tabular(&small_spec(), 5).unwrap();
        assert_eq!(a.train.labels, b.train.labels);
        assert_eq!(
            a.train.features.as_dense().as_slice(),
            b.train.features.as_dense().as_slice()
        );
    }

    #[test]
    fn train_features_are_standardised() {
        let ds = generate_tabular(&small_spec(), 2).unwrap();
        let m = ds.train.features.as_dense();
        for j in 0..3 {
            let col = m.col(j);
            assert!(adp_linalg::mean(&col).abs() < 1e-9);
            assert!((adp_linalg::variance(&col) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn informative_feature_separates_classes() {
        let ds = generate_tabular(&small_spec(), 3).unwrap();
        let m = ds.train.features.as_dense();
        let mut mean1 = 0.0;
        let mut mean0 = 0.0;
        let (mut n1, mut n0) = (0.0, 0.0);
        for (i, &y) in ds.train.labels.iter().enumerate() {
            if y == 1 {
                mean1 += m[(i, 0)];
                n1 += 1.0;
            } else {
                mean0 += m[(i, 0)];
                n0 += 1.0;
            }
        }
        // separation 2.5 with unit variance ⇒ standardized gap ≈ 2.5/√(1+2.5²/4) ≈ 1.56
        let gap = mean1 / n1 - mean0 / n0;
        assert!(gap > 1.0, "gap {gap}");
    }

    #[test]
    fn noise_feature_uninformative() {
        let ds = generate_tabular(&small_spec(), 4).unwrap();
        let m = ds.train.features.as_dense();
        let mut mean1 = 0.0;
        let mut mean0 = 0.0;
        let (mut n1, mut n0) = (0.0, 0.0);
        for (i, &y) in ds.train.labels.iter().enumerate() {
            if y == 1 {
                mean1 += m[(i, 2)];
                n1 += 1.0;
            } else {
                mean0 += m[(i, 2)];
                n0 += 1.0;
            }
        }
        assert!((mean1 / n1 - mean0 / n0).abs() < 0.3);
    }

    #[test]
    fn imbalanced_class_prior_respected() {
        let mut s = small_spec();
        s.class_balance = 0.25;
        s.label_noise = 0.0;
        let ds = generate_tabular(&s, 6).unwrap();
        let b = ds.train.class_balance();
        assert!((b[1] - 0.25).abs() < 0.07, "balance {:?}", b);
    }

    /// Bit patterns captured from the buffered (`total × d` staging
    /// matrix + submatrix copies) implementation this generator replaced.
    /// Streaming straight into the per-split matrices must not move a
    /// single bit, or every committed fixture and golden trajectory over
    /// tabular data silently shifts.
    #[test]
    fn streaming_matches_the_buffered_generator_bit_for_bit() {
        let ds = generate_tabular(&small_spec(), 1).unwrap();
        let tr = ds.train.features.as_dense();
        assert_eq!(tr[(0, 0)].to_bits(), 0xbfd3_efd6_8e02_2b51);
        assert_eq!(tr[(399, 2)].to_bits(), 0x3ff2_278e_489d_59e6);
        assert_eq!(
            ds.valid.features.as_dense()[(0, 0)].to_bits(),
            0x3fee_90b1_25d8_1d20
        );
        assert_eq!(
            ds.test.features.as_dense()[(79, 1)].to_bits(),
            0x3fe0_a591_7ffb_ac60
        );
        assert_eq!(&ds.train.labels[..8], &[0, 1, 0, 1, 0, 1, 1, 1]);
        assert_eq!(ds.valid.labels[0], 1);
        assert_eq!(ds.test.labels[0], 1);
    }

    /// The point of streaming: a million-instance pool generates without a
    /// `total × d` staging buffer. Heavy (~10⁷ normal draws), so ignored by
    /// default; run with `cargo test -p adp-data -- --ignored`.
    #[test]
    #[ignore = "heavy: generates a million-instance pool"]
    fn million_instance_pools_generate() {
        let spec = TabularSpec {
            name: "mega-tab".into(),
            task: Task::OccupancyPrediction,
            n_train: 1_000_000,
            n_valid: 10_000,
            n_test: 10_000,
            class_balance: 0.5,
            separations: vec![2.5, 2.0, 1.5, 0.0, 0.0, 0.0, 0.0, 0.0],
            label_noise: 0.01,
        };
        let ds = generate_tabular(&spec, 11).unwrap();
        assert_eq!(ds.train.len(), 1_000_000);
        let m = ds.train.features.as_dense();
        let col = m.col(0);
        assert!(adp_linalg::mean(&col).abs() < 1e-9);
        assert!((adp_linalg::variance(&col) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_invalid_specs() {
        let mut s = small_spec();
        s.separations.clear();
        assert!(generate_tabular(&s, 0).is_err());
        let mut s = small_spec();
        s.separations = vec![-1.0];
        assert!(generate_tabular(&s, 0).is_err());
        let mut s = small_spec();
        s.n_valid = 0;
        assert!(generate_tabular(&s, 0).is_err());
    }
}
