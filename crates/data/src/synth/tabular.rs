//! Synthetic tabular datasets (Gaussian class mixtures).
//!
//! Feature `j` is drawn from `N(±sep_j/2, 1)` with the sign set by the
//! class; `sep_j = 0` makes a pure noise feature. Decision-stump LFs on a
//! feature with separation `s` have a best-case accuracy of `Φ(s/2)`, so the
//! separation vector directly controls the stump-LF space the simulated
//! user works with. Irreducible flip noise caps downstream accuracy, as for
//! the text generator.

use crate::dataset::{Dataset, FeatureSet, SplitDataset, Task};
use crate::error::DataError;
use crate::synth::sample_standard_normal;
use adp_linalg::Matrix;
use rand::{Rng, SeedableRng};

/// Generator parameters for one tabular dataset.
#[derive(Debug, Clone)]
pub struct TabularSpec {
    /// Dataset name.
    pub name: String,
    /// Task category (Table 2).
    pub task: Task,
    /// Training-set size.
    pub n_train: usize,
    /// Validation-set size.
    pub n_valid: usize,
    /// Test-set size.
    pub n_test: usize,
    /// P(Y = 1).
    pub class_balance: f64,
    /// Per-feature class-mean separations (0 ⇒ noise feature).
    pub separations: Vec<f64>,
    /// Irreducible label-flip probability.
    pub label_noise: f64,
}

impl TabularSpec {
    fn validate(&self) -> Result<(), DataError> {
        let bad = |reason: String| Err(DataError::InvalidSpec { reason });
        if self.n_train == 0 || self.n_valid == 0 || self.n_test == 0 {
            return bad("split sizes must be positive".into());
        }
        if self.separations.is_empty() {
            return bad("need at least one feature".into());
        }
        if self.separations.iter().any(|s| *s < 0.0 || !s.is_finite()) {
            return bad("separations must be finite and non-negative".into());
        }
        if !(0.0..=1.0).contains(&self.class_balance) {
            return bad(format!(
                "class_balance {} outside [0,1]",
                self.class_balance
            ));
        }
        if !(0.0..0.5).contains(&self.label_noise) {
            return bad(format!("label_noise {} outside [0,0.5)", self.label_noise));
        }
        Ok(())
    }
}

/// Generates a [`SplitDataset`] from `spec`, deterministically in `seed`.
///
/// Features are z-scored with training-split statistics (the standard
/// pipeline); stump thresholds therefore live in standardised space too.
pub fn generate_tabular(spec: &TabularSpec, seed: u64) -> Result<SplitDataset, DataError> {
    spec.validate()?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let d = spec.separations.len();
    let total = spec.n_train + spec.n_valid + spec.n_test;

    let mut x = Matrix::zeros(total, d);
    let mut labels = Vec::with_capacity(total);
    for i in 0..total {
        let y = usize::from(rng.gen::<f64>() < spec.class_balance);
        let sign = if y == 1 { 0.5 } else { -0.5 };
        for (j, &sep) in spec.separations.iter().enumerate() {
            x[(i, j)] = sign * sep + sample_standard_normal(&mut rng);
        }
        let observed = if rng.gen::<f64>() < spec.label_noise {
            1 - y
        } else {
            y
        };
        labels.push(observed);
    }

    // Standardise with train statistics.
    let n_train = spec.n_train;
    for j in 0..d {
        let col: Vec<f64> = (0..n_train).map(|i| x[(i, j)]).collect();
        let mu = adp_linalg::mean(&col);
        let sd = adp_linalg::variance(&col).sqrt().max(1e-12);
        for i in 0..total {
            x[(i, j)] = (x[(i, j)] - mu) / sd;
        }
    }

    let make = |rows: std::ops::Range<usize>, labels: &[usize]| -> Dataset {
        let idx: Vec<usize> = rows.collect();
        let sub = x.submatrix(&idx, &(0..d).collect::<Vec<_>>());
        Dataset {
            name: spec.name.clone(),
            task: spec.task,
            n_classes: 2,
            features: FeatureSet::Dense(sub),
            labels: labels.to_vec(),
            texts: None,
            encoded_docs: None,
        }
    };

    let split = SplitDataset {
        train: make(0..n_train, &labels[..n_train]),
        valid: make(
            n_train..n_train + spec.n_valid,
            &labels[n_train..n_train + spec.n_valid],
        ),
        test: make(
            n_train + spec.n_valid..total,
            &labels[n_train + spec.n_valid..],
        ),
        vocab: None,
        provenance: None,
    };
    split.validate()?;
    Ok(split)
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn small_spec() -> TabularSpec {
        TabularSpec {
            name: "unit-tab".into(),
            task: Task::OccupancyPrediction,
            n_train: 400,
            n_valid: 80,
            n_test: 80,
            class_balance: 0.5,
            separations: vec![2.5, 2.0, 0.0],
            label_noise: 0.01,
        }
    }

    #[test]
    fn shapes_and_validity() {
        let ds = generate_tabular(&small_spec(), 1).unwrap();
        assert_eq!(ds.train.len(), 400);
        assert_eq!(ds.valid.len(), 80);
        assert_eq!(ds.test.len(), 80);
        assert!(!ds.is_textual());
        assert_eq!(ds.train.features.ncols(), 3);
        ds.validate().unwrap();
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate_tabular(&small_spec(), 5).unwrap();
        let b = generate_tabular(&small_spec(), 5).unwrap();
        assert_eq!(a.train.labels, b.train.labels);
        assert_eq!(
            a.train.features.as_dense().as_slice(),
            b.train.features.as_dense().as_slice()
        );
    }

    #[test]
    fn train_features_are_standardised() {
        let ds = generate_tabular(&small_spec(), 2).unwrap();
        let m = ds.train.features.as_dense();
        for j in 0..3 {
            let col = m.col(j);
            assert!(adp_linalg::mean(&col).abs() < 1e-9);
            assert!((adp_linalg::variance(&col) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn informative_feature_separates_classes() {
        let ds = generate_tabular(&small_spec(), 3).unwrap();
        let m = ds.train.features.as_dense();
        let mut mean1 = 0.0;
        let mut mean0 = 0.0;
        let (mut n1, mut n0) = (0.0, 0.0);
        for (i, &y) in ds.train.labels.iter().enumerate() {
            if y == 1 {
                mean1 += m[(i, 0)];
                n1 += 1.0;
            } else {
                mean0 += m[(i, 0)];
                n0 += 1.0;
            }
        }
        // separation 2.5 with unit variance ⇒ standardized gap ≈ 2.5/√(1+2.5²/4) ≈ 1.56
        let gap = mean1 / n1 - mean0 / n0;
        assert!(gap > 1.0, "gap {gap}");
    }

    #[test]
    fn noise_feature_uninformative() {
        let ds = generate_tabular(&small_spec(), 4).unwrap();
        let m = ds.train.features.as_dense();
        let mut mean1 = 0.0;
        let mut mean0 = 0.0;
        let (mut n1, mut n0) = (0.0, 0.0);
        for (i, &y) in ds.train.labels.iter().enumerate() {
            if y == 1 {
                mean1 += m[(i, 2)];
                n1 += 1.0;
            } else {
                mean0 += m[(i, 2)];
                n0 += 1.0;
            }
        }
        assert!((mean1 / n1 - mean0 / n0).abs() < 0.3);
    }

    #[test]
    fn imbalanced_class_prior_respected() {
        let mut s = small_spec();
        s.class_balance = 0.25;
        s.label_noise = 0.0;
        let ds = generate_tabular(&s, 6).unwrap();
        let b = ds.train.class_balance();
        assert!((b[1] - 0.25).abs() < 0.07, "balance {:?}", b);
    }

    #[test]
    fn rejects_invalid_specs() {
        let mut s = small_spec();
        s.separations.clear();
        assert!(generate_tabular(&s, 0).is_err());
        let mut s = small_spec();
        s.separations = vec![-1.0];
        assert!(generate_tabular(&s, 0).is_err());
        let mut s = small_spec();
        s.n_valid = 0;
        assert!(generate_tabular(&s, 0).is_err());
    }
}
