//! Shuffled train/validation/test partitioning (paper §4.1.1: 80/10/10).

use crate::error::DataError;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The three index lists of a split: `(train, valid, test)`.
pub type SplitIndices = (Vec<usize>, Vec<usize>, Vec<usize>);

/// Randomly partitions `0..n` into train/valid/test index sets with the
/// given ratios (which must be positive and sum to 1 within 1e-9).
///
/// The validation and test sets receive `round(n·ratio)` elements and the
/// training set the remainder, so every index lands in exactly one split.
pub fn split_indices(
    n: usize,
    ratios: (f64, f64, f64),
    seed: u64,
) -> Result<SplitIndices, DataError> {
    let (tr, va, te) = ratios;
    if tr <= 0.0 || va <= 0.0 || te <= 0.0 || ((tr + va + te) - 1.0).abs() > 1e-9 {
        return Err(DataError::BadSplit { ratios });
    }
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let n_valid = (va * n as f64).round() as usize;
    let n_test = (te * n as f64).round() as usize;
    let n_train = n.saturating_sub(n_valid + n_test);
    let train = idx[..n_train].to_vec();
    let valid = idx[n_train..n_train + n_valid].to_vec();
    let test = idx[n_train + n_valid..].to_vec();
    Ok((train, valid, test))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn partition_is_exhaustive_and_disjoint() {
        let (tr, va, te) = split_indices(100, (0.8, 0.1, 0.1), 7).unwrap();
        assert_eq!(tr.len(), 80);
        assert_eq!(va.len(), 10);
        assert_eq!(te.len(), 10);
        let all: HashSet<usize> = tr.iter().chain(&va).chain(&te).copied().collect();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = split_indices(50, (0.8, 0.1, 0.1), 42).unwrap();
        let b = split_indices(50, (0.8, 0.1, 0.1), 42).unwrap();
        assert_eq!(a, b);
        let c = split_indices(50, (0.8, 0.1, 0.1), 43).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn actually_shuffles() {
        let (tr, _, _) = split_indices(1000, (0.8, 0.1, 0.1), 1).unwrap();
        // The first 800 natural numbers in order would be astronomically
        // unlikely after a shuffle.
        assert_ne!(tr, (0..800).collect::<Vec<_>>());
    }

    #[test]
    fn rejects_bad_ratios() {
        assert!(split_indices(10, (0.9, 0.2, 0.1), 0).is_err());
        assert!(split_indices(10, (1.0, 0.0, 0.0), 0).is_err());
        assert!(split_indices(10, (-0.5, 1.0, 0.5), 0).is_err());
    }

    #[test]
    fn small_n_never_panics() {
        for n in 0..5 {
            let (tr, va, te) = split_indices(n, (0.8, 0.1, 0.1), 3).unwrap();
            assert_eq!(tr.len() + va.len() + te.len(), n);
        }
    }
}
