//! Streaming scenarios: deterministic drift applied to a generated
//! dataset at refit boundaries.
//!
//! A [`DriftSpec`] describes how the world changes mid-run. Drift is a
//! *pure function* of the pristine base dataset and the spec — no RNG, no
//! mutable drift state — so a resumed or replayed session re-derives the
//! exact post-drift pool from the scenario bytes alone, and serial and
//! parallel runs see identical data.
//!
//! The `at` boundaries are expressed in absolute iterations and must land
//! on a refit (batch) boundary of the session's `BudgetSchedule`; the
//! engine validates that when it assembles, so drift never lands mid-batch
//! where the label model would be refit against a pool it half-saw.

use crate::dataset::{Dataset, FeatureSet, SplitDataset};
use adp_wire::{Decode, Encode, Reader, WireError, Writer};

/// How (and whether) the data stream drifts mid-session.
///
/// The grammar round-trips through `Display`/`FromStr`: `none`,
/// `label-shift:AT,PRIOR`, `covariate:AT,ROT`, `arriving:PER`.
///
/// ```
/// use adp_data::DriftSpec;
///
/// assert_eq!(DriftSpec::default(), DriftSpec::None);
/// let shift: DriftSpec = "label-shift:20,0.8".parse().unwrap();
/// assert_eq!(shift, DriftSpec::LabelShift { at: 20, prior: 0.8 });
/// assert_eq!(shift.to_string(), "label-shift:20,0.8");
/// let pool: DriftSpec = "arriving:50".parse().unwrap();
/// assert_eq!(pool, DriftSpec::ArrivingPool { per_refit: 50 });
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DriftSpec {
    /// Static i.i.d. pool — the paper's setting and the default, pinned
    /// bitwise to the golden trajectory.
    #[default]
    None,
    /// At iteration `at`, the class prior shifts: labels flip
    /// deterministically (evenly spread through the donor class) until the
    /// empirical `P(y = 1)` reaches `prior`, on every split.
    LabelShift {
        /// Absolute iteration of the shift; must be a refit boundary.
        at: usize,
        /// Target positive-class prior in `(0, 1)`.
        prior: f64,
    },
    /// At iteration `at`, the input distribution moves: each consecutive
    /// feature pair rotates by `rotation` radians (labels untouched), on
    /// every split. Dense (tabular) features only.
    CovariateDrift {
        /// Absolute iteration of the drift; must be a refit boundary.
        at: usize,
        /// Rotation angle in radians.
        rotation: f64,
    },
    /// The pool streams in: only the first half of the training instances
    /// are visible at the start, and `per_refit` more arrive at every
    /// completed refit. Candidate selection is gated; the data itself is
    /// untouched.
    ArrivingPool {
        /// Instances arriving per completed refit batch.
        per_refit: usize,
    },
}

impl DriftSpec {
    /// The absolute iteration this drift mutates the dataset at, when it
    /// has one (`None` and `ArrivingPool` never mutate the data).
    pub fn boundary(&self) -> Option<usize> {
        match *self {
            DriftSpec::LabelShift { at, .. } | DriftSpec::CovariateDrift { at, .. } => Some(at),
            DriftSpec::None | DriftSpec::ArrivingPool { .. } => None,
        }
    }

    /// Checks numeric ranges; `textual` gates the dense-only covariate
    /// rotation.
    pub fn validate(&self, textual: bool) -> Result<(), String> {
        match *self {
            DriftSpec::None => Ok(()),
            DriftSpec::LabelShift { at, prior } => {
                if at == 0 {
                    return Err("label-shift boundary must be > 0".into());
                }
                if !(prior > 0.0 && prior < 1.0) {
                    return Err(format!("label-shift prior {prior} outside (0,1)"));
                }
                Ok(())
            }
            DriftSpec::CovariateDrift { at, rotation } => {
                if at == 0 {
                    return Err("covariate-drift boundary must be > 0".into());
                }
                if !rotation.is_finite() || rotation == 0.0 {
                    return Err(format!(
                        "covariate rotation {rotation} must be finite and non-zero"
                    ));
                }
                if textual {
                    return Err(
                        "covariate drift rotates dense features; textual datasets have none".into(),
                    );
                }
                Ok(())
            }
            DriftSpec::ArrivingPool { per_refit } => {
                if per_refit == 0 {
                    return Err("arriving pool must deliver at least 1 instance per refit".into());
                }
                Ok(())
            }
        }
    }

    /// The post-drift dataset, when this drift mutates one: a fresh
    /// `SplitDataset` derived from the pristine `base` (provenance kept).
    /// `None` for the non-mutating kinds.
    pub fn apply(&self, base: &SplitDataset) -> Option<SplitDataset> {
        match *self {
            DriftSpec::None | DriftSpec::ArrivingPool { .. } => None,
            DriftSpec::LabelShift { prior, .. } => {
                let mut drifted = base.clone();
                for split in [&mut drifted.train, &mut drifted.valid, &mut drifted.test] {
                    shift_labels(split, prior);
                }
                Some(drifted)
            }
            DriftSpec::CovariateDrift { rotation, .. } => {
                let mut drifted = base.clone();
                for split in [&mut drifted.train, &mut drifted.valid, &mut drifted.test] {
                    rotate_features(split, rotation);
                }
                Some(drifted)
            }
        }
    }

    /// How many training instances are visible to the sampler after
    /// `batches_done` completed refit batches, for a pool of `n`. `None`
    /// when this drift does not gate visibility (everything is visible).
    pub fn visible_len(&self, n: usize, batches_done: usize) -> Option<usize> {
        match *self {
            DriftSpec::ArrivingPool { per_refit } => {
                let initial = n.div_ceil(2);
                Some((initial + per_refit.saturating_mul(batches_done)).min(n))
            }
            _ => None,
        }
    }
}

/// Flips labels of donor-class instances, evenly spread through the donor
/// list, until the empirical positive prior reaches `prior`. Deterministic
/// and RNG-free: the flipped set is a pure function of the labels and the
/// target.
fn shift_labels(split: &mut Dataset, prior: f64) {
    let n = split.labels.len();
    if n == 0 {
        return;
    }
    debug_assert!(split.n_classes == 2, "label shift assumes binary");
    let target_ones = ((prior * n as f64).round() as usize).min(n);
    let ones = split.labels.iter().filter(|&&y| y == 1).count();
    let (donor, flips) = if target_ones > ones {
        (0usize, target_ones - ones)
    } else {
        (1usize, ones - target_ones)
    };
    let donors: Vec<usize> = (0..n).filter(|&i| split.labels[i] == donor).collect();
    let flips = flips.min(donors.len());
    if flips == 0 {
        return;
    }
    for j in 0..flips {
        let idx = donors[(j * donors.len()) / flips];
        split.labels[idx] = 1 - donor;
    }
}

/// Rotates each consecutive feature pair `(2i, 2i+1)` by `rotation`
/// radians in every row. Dense features only; an odd trailing column is
/// left untouched.
fn rotate_features(split: &mut Dataset, rotation: f64) {
    let FeatureSet::Dense(matrix) = &mut split.features else {
        debug_assert!(false, "covariate drift requires dense features");
        return;
    };
    let (c, s) = (rotation.cos(), rotation.sin());
    let pairs = matrix.ncols() / 2;
    for i in 0..matrix.nrows() {
        let row = matrix.row_mut(i);
        for p in 0..pairs {
            let (x, y) = (row[2 * p], row[2 * p + 1]);
            row[2 * p] = c * x - s * y;
            row[2 * p + 1] = s * x + c * y;
        }
    }
}

impl std::fmt::Display for DriftSpec {
    /// `none`, `label-shift:AT,PRIOR`, `covariate:AT,ROT`, or
    /// `arriving:PER` — what [`DriftSpec::from_str`] parses back.
    ///
    /// [`DriftSpec::from_str`]: std::str::FromStr::from_str
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            DriftSpec::None => f.write_str("none"),
            DriftSpec::LabelShift { at, prior } => write!(f, "label-shift:{at},{prior}"),
            DriftSpec::CovariateDrift { at, rotation } => write!(f, "covariate:{at},{rotation}"),
            DriftSpec::ArrivingPool { per_refit } => write!(f, "arriving:{per_refit}"),
        }
    }
}

/// A drift spec that failed to parse; [`Display`] shows the accepted
/// grammar.
///
/// [`Display`]: std::fmt::Display
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownDrift {
    /// The string that failed to parse.
    pub given: String,
}

impl std::fmt::Display for UnknownDrift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown drift {:?}; expected none, label-shift:AT,PRIOR, covariate:AT,ROT, or arriving:PER",
            self.given
        )
    }
}

impl std::error::Error for UnknownDrift {}

impl std::str::FromStr for DriftSpec {
    type Err = UnknownDrift;

    /// Parses the `Display` grammar, case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        let err = || UnknownDrift { given: s.into() };
        if lower == "none" {
            return Ok(DriftSpec::None);
        }
        if let Some(rest) = lower.strip_prefix("arriving:") {
            return Ok(DriftSpec::ArrivingPool {
                per_refit: rest.trim().parse().map_err(|_| err())?,
            });
        }
        let (kind, rest) = lower.split_once(':').ok_or_else(err)?;
        let (at, value) = rest.split_once(',').ok_or_else(err)?;
        let at: usize = at.trim().parse().map_err(|_| err())?;
        let value: f64 = value.trim().parse().map_err(|_| err())?;
        let spec = match kind {
            "label-shift" => DriftSpec::LabelShift { at, prior: value },
            "covariate" => DriftSpec::CovariateDrift {
                at,
                rotation: value,
            },
            _ => return Err(err()),
        };
        spec.validate(false).map_err(|_| err())?;
        Ok(spec)
    }
}

impl Encode for DriftSpec {
    /// Stable tags: `None = 0`, `LabelShift = 1`, `CovariateDrift = 2`,
    /// `ArrivingPool = 3`.
    fn encode(&self, w: &mut Writer) {
        match *self {
            DriftSpec::None => w.put_u8(0),
            DriftSpec::LabelShift { at, prior } => {
                w.put_u8(1);
                w.put_usize(at);
                w.put_f64(prior);
            }
            DriftSpec::CovariateDrift { at, rotation } => {
                w.put_u8(2);
                w.put_usize(at);
                w.put_f64(rotation);
            }
            DriftSpec::ArrivingPool { per_refit } => {
                w.put_u8(3);
                w.put_usize(per_refit);
            }
        }
    }
}

impl Decode for DriftSpec {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => DriftSpec::None,
            1 => DriftSpec::LabelShift {
                at: r.get_usize()?,
                prior: r.get_f64()?,
            },
            2 => DriftSpec::CovariateDrift {
                at: r.get_usize()?,
                rotation: r.get_f64()?,
            },
            3 => DriftSpec::ArrivingPool {
                per_refit: r.get_usize()?,
            },
            tag => return Err(WireError::BadTag { what: "drift", tag }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{generate, DatasetId, Scale};

    #[test]
    fn grammar_roundtrips() {
        for spec in [
            DriftSpec::None,
            DriftSpec::LabelShift { at: 20, prior: 0.8 },
            DriftSpec::CovariateDrift {
                at: 12,
                rotation: 0.5,
            },
            DriftSpec::ArrivingPool { per_refit: 50 },
        ] {
            assert_eq!(spec.to_string().parse::<DriftSpec>().unwrap(), spec);
        }
        for bad in [
            "drift",
            "label-shift:20",
            "label-shift:0,0.8",
            "label-shift:20,1.5",
            "covariate:20,0",
            "arriving:x",
            "arriving:",
        ] {
            let err = bad.parse::<DriftSpec>().unwrap_err();
            assert_eq!(err.given, bad);
            assert!(err.to_string().contains("label-shift:AT"), "{err}");
        }
    }

    #[test]
    fn wire_roundtrips() {
        for spec in [
            DriftSpec::None,
            DriftSpec::LabelShift { at: 20, prior: 0.8 },
            DriftSpec::CovariateDrift {
                at: 12,
                rotation: -0.25,
            },
            DriftSpec::ArrivingPool { per_refit: 3 },
        ] {
            let mut w = Writer::new();
            w.put(&spec);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            let back: DriftSpec = r.get().unwrap();
            r.finish().unwrap();
            assert_eq!(spec, back);
        }
        let mut r = Reader::new(&[9u8]);
        assert!(matches!(
            DriftSpec::decode(&mut r),
            Err(WireError::BadTag { what: "drift", .. })
        ));
    }

    #[test]
    fn label_shift_hits_the_target_prior_deterministically() {
        let base = generate(DatasetId::Youtube, Scale::Tiny, 7).unwrap();
        let spec = DriftSpec::LabelShift { at: 10, prior: 0.8 };
        let a = spec.apply(&base).unwrap();
        let b = spec.apply(&base).unwrap();
        for (da, db) in [
            (&a.train, &b.train),
            (&a.valid, &b.valid),
            (&a.test, &b.test),
        ] {
            assert_eq!(da.labels, db.labels, "shift must be deterministic");
        }
        for split in [&a.train, &a.valid, &a.test] {
            let ones = split.labels.iter().filter(|&&y| y == 1).count();
            let target = (0.8 * split.len() as f64).round() as usize;
            assert_eq!(ones, target, "{}", split.name);
        }
        // Features and texts are untouched; only labels moved.
        assert_eq!(
            base.train.encoded_docs, a.train.encoded_docs,
            "label shift must not touch the docs"
        );
        assert!(a.provenance.is_some());
    }

    #[test]
    fn covariate_drift_rotates_pairs_and_keeps_labels() {
        let base = generate(DatasetId::Occupancy, Scale::Tiny, 7).unwrap();
        let spec = DriftSpec::CovariateDrift {
            at: 10,
            rotation: std::f64::consts::FRAC_PI_2,
        };
        let drifted = spec.apply(&base).unwrap();
        assert_eq!(base.train.labels, drifted.train.labels);
        let before = base.train.features.as_dense();
        let after = drifted.train.features.as_dense();
        // A π/2 rotation maps (x, y) -> (-y, x) exactly.
        for i in 0..before.nrows().min(10) {
            let (b, a) = (before.row(i), after.row(i));
            for p in 0..before.ncols() / 2 {
                assert!((a[2 * p] - (-b[2 * p + 1])).abs() < 1e-12);
                assert!((a[2 * p + 1] - b[2 * p]).abs() < 1e-12);
            }
        }
        // A full 2π rotation is (numerically) the identity.
        let full = DriftSpec::CovariateDrift {
            at: 10,
            rotation: std::f64::consts::TAU,
        };
        let back = full.apply(&base).unwrap();
        let round = back.train.features.as_dense();
        for i in 0..before.nrows().min(10) {
            for (x, y) in before.row(i).iter().zip(round.row(i)) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn arriving_pool_visibility_grows_to_the_full_pool() {
        let spec = DriftSpec::ArrivingPool { per_refit: 10 };
        assert_eq!(spec.visible_len(101, 0), Some(51));
        assert_eq!(spec.visible_len(101, 1), Some(61));
        assert_eq!(spec.visible_len(101, 5), Some(101));
        assert_eq!(spec.visible_len(101, 50), Some(101));
        assert_eq!(DriftSpec::None.visible_len(101, 3), None);
        assert_eq!(
            DriftSpec::LabelShift { at: 5, prior: 0.5 }.visible_len(101, 3),
            None
        );
    }

    #[test]
    fn validate_gates_modality_and_ranges() {
        assert!(DriftSpec::None.validate(true).is_ok());
        assert!(DriftSpec::LabelShift { at: 5, prior: 0.7 }
            .validate(true)
            .is_ok());
        assert!(DriftSpec::CovariateDrift {
            at: 5,
            rotation: 0.3
        }
        .validate(false)
        .is_ok());
        assert!(DriftSpec::CovariateDrift {
            at: 5,
            rotation: 0.3
        }
        .validate(true)
        .unwrap_err()
        .contains("textual"));
        assert!(DriftSpec::ArrivingPool { per_refit: 0 }
            .validate(false)
            .is_err());
        assert!(DriftSpec::LabelShift { at: 0, prior: 0.7 }
            .validate(false)
            .is_err());
    }
}
