//! Core dataset types.

use crate::error::DataError;
use adp_linalg::{CsrMatrix, Features, Matrix};
use adp_text::Vocabulary;
use std::sync::Arc;

/// A split dataset behind an atomically reference-counted handle.
///
/// The owned `Engine` and the concurrent `SessionHub` hold datasets by
/// `SharedDataset` so many sessions (possibly on different threads) can
/// share one immutable copy without lifetimes tying them to a caller.
pub type SharedDataset = Arc<SplitDataset>;

/// The classification task a dataset poses (Table 2's "Task" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Task {
    /// Spam classification (Youtube).
    SpamClassification,
    /// Sentiment analysis (IMDB, Yelp, Amazon).
    SentimentAnalysis,
    /// Biography classification (Bios-PT, Bios-JP).
    BiographyClassification,
    /// Office-room occupancy prediction (Occupancy).
    OccupancyPrediction,
    /// Income >50K classification (Census).
    IncomeClassification,
}

impl Task {
    /// Table 2's task label.
    pub fn label(self) -> &'static str {
        match self {
            Task::SpamClassification => "Spam classification",
            Task::SentimentAnalysis => "Sentiment analysis",
            Task::BiographyClassification => "Biography classification",
            Task::OccupancyPrediction => "Occupancy prediction",
            Task::IncomeClassification => "Income classification",
        }
    }
}

/// Feature matrix representation: dense for tabular data, CSR TF-IDF for text.
#[derive(Debug, Clone)]
pub enum FeatureSet {
    /// Dense (standardised) tabular features.
    Dense(Matrix),
    /// Sparse TF-IDF features.
    Sparse(CsrMatrix),
}

impl FeatureSet {
    /// Number of samples.
    pub fn nrows(&self) -> usize {
        match self {
            FeatureSet::Dense(m) => m.nrows(),
            FeatureSet::Sparse(m) => m.nrows(),
        }
    }

    /// Number of features.
    pub fn ncols(&self) -> usize {
        match self {
            FeatureSet::Dense(m) => m.ncols(),
            FeatureSet::Sparse(m) => m.ncols(),
        }
    }

    /// Borrow the dense matrix.
    ///
    /// # Panics
    /// Panics when the features are sparse; callers branch on the dataset
    /// kind before using this.
    pub fn as_dense(&self) -> &Matrix {
        match self {
            FeatureSet::Dense(m) => m,
            FeatureSet::Sparse(_) => panic!("expected dense features"),
        }
    }

    /// Borrow the sparse matrix.
    ///
    /// # Panics
    /// Panics when the features are dense.
    pub fn as_sparse(&self) -> &CsrMatrix {
        match self {
            FeatureSet::Sparse(m) => m,
            FeatureSet::Dense(_) => panic!("expected sparse features"),
        }
    }
}

impl Features for FeatureSet {
    fn nrows(&self) -> usize {
        FeatureSet::nrows(self)
    }
    fn ncols(&self) -> usize {
        FeatureSet::ncols(self)
    }
    fn row_dot(&self, i: usize, w: &[f64]) -> f64 {
        match self {
            FeatureSet::Dense(m) => m.row_dot(i, w),
            FeatureSet::Sparse(m) => m.row_dot(i, w),
        }
    }
    fn row_axpy(&self, i: usize, alpha: f64, out: &mut [f64]) {
        match self {
            FeatureSet::Dense(m) => m.row_axpy(i, alpha, out),
            FeatureSet::Sparse(m) => m.row_axpy(i, alpha, out),
        }
    }
    fn row_sq_norm(&self, i: usize) -> f64 {
        match self {
            FeatureSet::Dense(m) => m.row_sq_norm(i),
            FeatureSet::Sparse(m) => m.row_sq_norm(i),
        }
    }
}

/// One split (train/valid/test) of a benchmark dataset.
///
/// Ground-truth `labels` exist for every instance because the evaluation
/// protocol simulates users from them (paper §4.1.4); the frameworks under
/// test only access them through the simulated user and the validation set.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name, e.g. "youtube".
    pub name: String,
    /// Task category.
    pub task: Task,
    /// Number of classes (2 for every paper dataset).
    pub n_classes: usize,
    /// Feature matrix (rows = instances).
    pub features: FeatureSet,
    /// Ground-truth labels in `0..n_classes`.
    pub labels: Vec<usize>,
    /// Raw documents (textual datasets only).
    pub texts: Option<Vec<String>>,
    /// Vocabulary ids per document, for keyword-LF evaluation (text only).
    pub encoded_docs: Option<Vec<Vec<u32>>>,
}

impl Dataset {
    /// Number of instances.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the dataset has no instances.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// `true` for textual datasets (keyword LF space).
    pub fn is_textual(&self) -> bool {
        self.encoded_docs.is_some()
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), DataError> {
        if self.features.nrows() != self.labels.len() {
            return Err(DataError::LengthMismatch {
                features: self.features.nrows(),
                labels: self.labels.len(),
            });
        }
        if let Some(docs) = &self.encoded_docs {
            if docs.len() != self.labels.len() {
                return Err(DataError::LengthMismatch {
                    features: docs.len(),
                    labels: self.labels.len(),
                });
            }
        }
        if let Some(l) = self.labels.iter().find(|&&l| l >= self.n_classes) {
            return Err(DataError::InvalidSpec {
                reason: format!("label {l} out of range for {} classes", self.n_classes),
            });
        }
        Ok(())
    }

    /// Empirical class distribution.
    pub fn class_balance(&self) -> Vec<f64> {
        let mut counts = vec![0usize; self.n_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        let n = self.labels.len().max(1) as f64;
        counts.into_iter().map(|c| c as f64 / n).collect()
    }
}

/// A benchmark dataset partitioned into train / validation / test.
#[derive(Debug, Clone)]
pub struct SplitDataset {
    /// Training split (the pool the frameworks label).
    pub train: Dataset,
    /// Holdout validation split used for threshold tuning and LF pruning.
    pub valid: Dataset,
    /// Test split for downstream-model evaluation.
    pub test: Dataset,
    /// Shared vocabulary for textual datasets.
    pub vocab: Option<Vocabulary>,
    /// How this split was generated, when it came from
    /// [`registry::generate`](crate::registry::generate) — the provenance a
    /// declarative scenario records so the identical split can be
    /// regenerated later. `None` for hand-built splits, which therefore
    /// cannot be described by a serializable scenario.
    pub provenance: Option<crate::registry::DatasetSpec>,
}

impl SplitDataset {
    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.train.name
    }

    /// `true` for textual datasets.
    pub fn is_textual(&self) -> bool {
        self.train.is_textual()
    }

    /// Table 2 row: `(name, task, #train, #valid, #test)`.
    pub fn table2_row(&self) -> (String, &'static str, usize, usize, usize) {
        (
            self.train.name.clone(),
            self.train.task.label(),
            self.train.len(),
            self.valid.len(),
            self.test.len(),
        )
    }

    /// Validates all three splits.
    pub fn validate(&self) -> Result<(), DataError> {
        self.train.validate()?;
        self.valid.validate()?;
        self.test.validate()
    }

    /// Moves the split behind a [`SharedDataset`] handle for owned engines
    /// and concurrent sessions.
    pub fn into_shared(self) -> SharedDataset {
        Arc::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dense(labels: Vec<usize>) -> Dataset {
        let n = labels.len();
        Dataset {
            name: "tiny".into(),
            task: Task::OccupancyPrediction,
            n_classes: 2,
            features: FeatureSet::Dense(Matrix::zeros(n, 3)),
            labels,
            texts: None,
            encoded_docs: None,
        }
    }

    #[test]
    fn validate_accepts_consistent() {
        assert!(tiny_dense(vec![0, 1, 0]).validate().is_ok());
    }

    #[test]
    fn validate_rejects_length_mismatch() {
        let mut d = tiny_dense(vec![0, 1, 0]);
        d.labels.push(1);
        assert!(matches!(
            d.validate().unwrap_err(),
            DataError::LengthMismatch { .. }
        ));
    }

    #[test]
    fn validate_rejects_label_out_of_range() {
        let d = tiny_dense(vec![0, 2, 0]);
        assert!(matches!(
            d.validate().unwrap_err(),
            DataError::InvalidSpec { .. }
        ));
    }

    #[test]
    fn class_balance_counts() {
        let d = tiny_dense(vec![0, 0, 0, 1]);
        let b = d.class_balance();
        assert!((b[0] - 0.75).abs() < 1e-12);
        assert!((b[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn task_labels_match_table2() {
        assert_eq!(Task::SentimentAnalysis.label(), "Sentiment analysis");
        assert_eq!(Task::IncomeClassification.label(), "Income classification");
    }

    #[test]
    fn featureset_features_trait_dispatch() {
        let dense = FeatureSet::Dense(Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap());
        assert_eq!(Features::nrows(&dense), 1);
        assert_eq!(dense.row_dot(0, &[2.0, 0.5]), 3.0);
        let mut out = vec![0.0; 2];
        dense.row_axpy(0, 1.0, &mut out);
        assert_eq!(out, vec![1.0, 2.0]);
        assert_eq!(dense.row_sq_norm(0), 5.0);
    }

    #[test]
    #[should_panic(expected = "expected dense")]
    fn as_dense_panics_on_sparse() {
        FeatureSet::Sparse(CsrMatrix::empty(1, 1)).as_dense();
    }
}
