//! The eight named benchmark datasets of Table 2.
//!
//! Each [`DatasetId`] carries the paper's split sizes and a tuned generator
//! spec (see `synth`). The per-dataset knobs were chosen so the *relative*
//! difficulty ordering of the paper holds: Youtube is easy (clean, short
//! docs, strong keywords), Amazon is the hardest text task (weak, leaky
//! keywords, heavy label noise), Occupancy is nearly separable, Census is a
//! noisy imbalanced tabular task.

use crate::dataset::{SplitDataset, Task};
use crate::error::DataError;
use crate::synth::{generate_tabular, generate_text, TabularSpec, TextSpec};

/// Identifier for one of the paper's eight benchmark datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// Youtube comment spam (Alberto et al. 2015).
    Youtube,
    /// IMDB movie-review sentiment (Maas et al. 2011).
    Imdb,
    /// Yelp review sentiment (Zhang et al. 2015).
    Yelp,
    /// Amazon review sentiment (He & McAuley 2016).
    Amazon,
    /// BiasBios professor-vs-teacher (De-Arteaga et al. 2019).
    BiosPT,
    /// BiasBios journalist-vs-photographer.
    BiosJP,
    /// Office-room occupancy (Candanedo & Feldheim 2016).
    Occupancy,
    /// Census income (Kohavi 1996).
    Census,
}

impl DatasetId {
    /// All eight datasets in the paper's presentation order.
    pub fn all() -> [DatasetId; 8] {
        [
            DatasetId::Youtube,
            DatasetId::Imdb,
            DatasetId::Yelp,
            DatasetId::Amazon,
            DatasetId::BiosPT,
            DatasetId::BiosJP,
            DatasetId::Occupancy,
            DatasetId::Census,
        ]
    }

    /// The six textual datasets (Nemo is only evaluated on these).
    pub fn textual() -> [DatasetId; 6] {
        [
            DatasetId::Youtube,
            DatasetId::Imdb,
            DatasetId::Yelp,
            DatasetId::Amazon,
            DatasetId::BiosPT,
            DatasetId::BiosJP,
        ]
    }

    /// Dataset name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::Youtube => "Youtube",
            DatasetId::Imdb => "IMDB",
            DatasetId::Yelp => "Yelp",
            DatasetId::Amazon => "Amazon",
            DatasetId::BiosPT => "Bios-PT",
            DatasetId::BiosJP => "Bios-JP",
            DatasetId::Occupancy => "Occupancy",
            DatasetId::Census => "Census",
        }
    }

    /// `true` for keyword-LF (textual) datasets.
    pub fn is_textual(self) -> bool {
        !matches!(self, DatasetId::Occupancy | DatasetId::Census)
    }

    /// Parses a dataset name as used by CLIs and the serving front end
    /// (case-insensitive table name, e.g. `"youtube"`, `"bios-pt"`).
    pub fn from_name(name: &str) -> Option<DatasetId> {
        DatasetId::all()
            .into_iter()
            .find(|id| id.name().eq_ignore_ascii_case(name))
    }

    /// Paper split sizes `(#train, #valid, #test)` from Table 2.
    pub fn paper_sizes(self) -> (usize, usize, usize) {
        match self {
            DatasetId::Youtube => (1_566, 195, 195),
            DatasetId::Imdb => (20_000, 2_500, 2_500),
            DatasetId::Yelp => (20_000, 2_500, 2_500),
            DatasetId::Amazon => (20_000, 2_500, 2_500),
            DatasetId::BiosPT => (19_672, 2_458, 2_458),
            DatasetId::BiosJP => (25_808, 3_225, 3_225),
            DatasetId::Occupancy => (14_317, 1_789, 1_789),
            DatasetId::Census => (25_541, 3_192, 3_192),
        }
    }

    /// The ADP sampler trade-off factor used in the paper (§3.3):
    /// α = 0.5 for text, α = 0.99 for tabular.
    pub fn paper_alpha(self) -> f64 {
        if self.is_textual() {
            0.5
        } else {
            0.99
        }
    }
}

impl std::fmt::Display for DatasetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for DatasetId {
    type Err = DataError;

    /// [`DatasetId::from_name`] behind the standard parsing trait, with a
    /// typed error listing the valid table names.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DatasetId::from_name(s).ok_or_else(|| DataError::UnknownName {
            what: "dataset",
            given: s.to_string(),
            expected: DatasetId::all()
                .iter()
                .map(|d| d.name())
                .collect::<Vec<_>>()
                .join(", "),
        })
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scale::Paper => f.write_str("paper"),
            Scale::Reduced => f.write_str("reduced"),
            Scale::Tiny => f.write_str("tiny"),
            Scale::Custom(x) => write!(f, "x{x}"),
        }
    }
}

impl std::str::FromStr for Scale {
    type Err = DataError;

    /// Parses `"paper"`, `"reduced"`, `"tiny"` or a custom multiplier
    /// written `"x0.125"` (the [`Scale::Custom`] display form).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(named) = Scale::from_name(s) {
            return Ok(named);
        }
        if let Some(factor) = s.strip_prefix('x').and_then(|f| f.parse::<f64>().ok()) {
            if factor > 0.0 && factor <= 64.0 {
                return Ok(Scale::Custom(factor));
            }
        }
        Err(DataError::UnknownName {
            what: "scale",
            given: s.to_string(),
            expected: "paper, reduced, tiny, x<factor in (0,64]>".into(),
        })
    }
}

/// Dataset size multiplier.
#[derive(Debug, Clone, Copy)]
pub enum Scale {
    /// Paper-scale sizes (Table 2).
    Paper,
    /// ≈20% of paper scale; the experiment binaries' default.
    Reduced,
    /// ≈3% of paper scale; used by unit/integration tests and benches.
    Tiny,
    /// Custom multiplier in (0, 64]. Factors above 1 upscale past the
    /// paper's sizes — e.g. `x25` on a ~40k-train dataset is a
    /// million-instance pool for stressing the sublinear sampler path.
    Custom(f64),
}

/// A scale *is* its multiplier: generation depends only on
/// [`Scale::factor`], so `Scale::Reduced == Scale::Custom(0.2)` — the two
/// describe bitwise-identical splits and must compare (and cache, see
/// [`DatasetSpec::cache_key`]) as the same provenance. Compared by the
/// factor's bit pattern, like the cache key.
impl PartialEq for Scale {
    fn eq(&self, other: &Scale) -> bool {
        self.factor().to_bits() == other.factor().to_bits()
    }
}

impl Scale {
    /// The multiplier.
    pub fn factor(self) -> f64 {
        match self {
            Scale::Paper => 1.0,
            Scale::Reduced => 0.2,
            Scale::Tiny => 0.03,
            Scale::Custom(f) => f,
        }
    }

    fn apply(self, n: usize, floor: usize) -> usize {
        // Never exceed the paper's own split size through the floor.
        ((n as f64 * self.factor()).round() as usize).max(floor.min(n))
    }

    /// Parses a scale name as used by CLIs and the serving front end
    /// (`"paper"`, `"reduced"`, `"tiny"`; custom multipliers are
    /// constructed programmatically).
    pub fn from_name(name: &str) -> Option<Scale> {
        match name.to_ascii_lowercase().as_str() {
            "paper" => Some(Scale::Paper),
            "reduced" => Some(Scale::Reduced),
            "tiny" => Some(Scale::Tiny),
            _ => None,
        }
    }
}

/// Full provenance of a generated dataset: which one, at what scale, under
/// which seed. Two sessions with equal specs run over interchangeable
/// (bitwise-identical) splits, which is what lets the serving layer
/// persist a session *without* its dataset and regenerate the split at
/// load time — and share one `SharedDataset` between all sessions that
/// name the same spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Which benchmark dataset.
    pub id: DatasetId,
    /// Size multiplier.
    pub scale: Scale,
    /// Generator seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Generates the split this spec describes (deterministic in the spec).
    pub fn generate(&self) -> Result<SplitDataset, DataError> {
        generate(self.id, self.scale, self.seed)
    }

    /// A hashable identity (the scale contributes its factor's bit
    /// pattern, so `Custom` multipliers key correctly despite `f64`).
    pub fn cache_key(&self) -> (DatasetId, u64, u64) {
        (self.id, self.scale.factor().to_bits(), self.seed)
    }
}

/// Generates dataset `id` at `scale`, deterministically in `seed`.
///
/// The returned split carries its [`DatasetSpec`] as
/// [`SplitDataset::provenance`], so any consumer — a serializable
/// scenario, the serving layer's spill files — can regenerate the
/// identical split from the split itself.
pub fn generate(id: DatasetId, scale: Scale, seed: u64) -> Result<SplitDataset, DataError> {
    let provenance = DatasetSpec { id, scale, seed };
    let f = scale.factor();
    if !(f > 0.0 && f <= 64.0) {
        return Err(DataError::InvalidSpec {
            reason: format!("scale factor {f} outside (0, 64]"),
        });
    }
    let (tr, va, te) = id.paper_sizes();
    // Floors keep evaluation meaningful: below ~150 test instances the
    // accuracy granularity swamps the method differences. Tiny scale keeps
    // small floors so unit tests stay fast.
    let (f_tr, f_va, f_te) = if scale.factor() < 0.1 {
        (120, 40, 40)
    } else {
        (600, 120, 150)
    };
    let (n_train, n_valid, n_test) = (
        scale.apply(tr, f_tr),
        scale.apply(va, f_va),
        scale.apply(te, f_te),
    );
    // Mix the dataset id into the seed so different datasets at the same
    // seed are independent draws.
    let seed = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(id as u64 + 1);

    let mut split = match id {
        DatasetId::Youtube => generate_text(
            &TextSpec {
                name: id.name().into(),
                task: Task::SpamClassification,
                n_train,
                n_valid,
                n_test,
                class_balance: 0.5,
                n_signal_per_class: 60,
                signal_freq: (0.02, 0.12),
                leak: (0.05, 0.55),
                variants_per_signal: (1, 3),
                variant_activation: 0.75,
                n_background: 300,
                background_per_doc: (4, 10),
                label_noise: 0.04,
            },
            seed,
        ),
        DatasetId::Imdb => generate_text(
            &TextSpec {
                name: id.name().into(),
                task: Task::SentimentAnalysis,
                n_train,
                n_valid,
                n_test,
                class_balance: 0.5,
                n_signal_per_class: 100,
                signal_freq: (0.010, 0.070),
                leak: (0.15, 0.85),
                variants_per_signal: (1, 3),
                variant_activation: 0.75,
                n_background: 800,
                background_per_doc: (15, 40),
                label_noise: 0.13,
            },
            seed,
        ),
        DatasetId::Yelp => generate_text(
            &TextSpec {
                name: id.name().into(),
                task: Task::SentimentAnalysis,
                n_train,
                n_valid,
                n_test,
                class_balance: 0.5,
                n_signal_per_class: 100,
                signal_freq: (0.010, 0.070),
                leak: (0.20, 0.90),
                variants_per_signal: (1, 3),
                variant_activation: 0.75,
                n_background: 800,
                background_per_doc: (15, 40),
                label_noise: 0.15,
            },
            seed,
        ),
        DatasetId::Amazon => generate_text(
            &TextSpec {
                name: id.name().into(),
                task: Task::SentimentAnalysis,
                n_train,
                n_valid,
                n_test,
                class_balance: 0.5,
                n_signal_per_class: 100,
                signal_freq: (0.008, 0.060),
                leak: (0.30, 0.95),
                variants_per_signal: (1, 3),
                variant_activation: 0.75,
                n_background: 800,
                background_per_doc: (15, 40),
                label_noise: 0.20,
            },
            seed,
        ),
        DatasetId::BiosPT => generate_text(
            &TextSpec {
                name: id.name().into(),
                task: Task::BiographyClassification,
                n_train,
                n_valid,
                n_test,
                class_balance: 0.5,
                n_signal_per_class: 80,
                signal_freq: (0.015, 0.090),
                leak: (0.10, 0.70),
                variants_per_signal: (1, 3),
                variant_activation: 0.75,
                n_background: 600,
                background_per_doc: (10, 25),
                label_noise: 0.08,
            },
            seed,
        ),
        DatasetId::BiosJP => generate_text(
            &TextSpec {
                name: id.name().into(),
                task: Task::BiographyClassification,
                n_train,
                n_valid,
                n_test,
                class_balance: 0.5,
                n_signal_per_class: 80,
                signal_freq: (0.015, 0.100),
                leak: (0.08, 0.60),
                variants_per_signal: (1, 3),
                variant_activation: 0.75,
                n_background: 600,
                background_per_doc: (10, 25),
                label_noise: 0.06,
            },
            seed,
        ),
        DatasetId::Occupancy => generate_tabular(
            &TabularSpec {
                name: id.name().into(),
                task: Task::OccupancyPrediction,
                n_train,
                n_valid,
                n_test,
                class_balance: 0.5,
                // Light, CO2, temperature, humidity, humidity ratio — the
                // first two are nearly deterministic sensors in the real data.
                separations: vec![3.5, 2.8, 2.0, 1.2, 0.0],
                label_noise: 0.004,
            },
            seed,
        ),
        DatasetId::Census => generate_tabular(
            &TabularSpec {
                name: id.name().into(),
                task: Task::IncomeClassification,
                n_train,
                n_valid,
                n_test,
                class_balance: 0.24,
                separations: vec![1.2, 1.0, 0.9, 0.7, 0.5, 0.3, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
                label_noise: 0.10,
            },
            seed,
        ),
    }?;
    split.provenance = Some(provenance);
    Ok(split)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ids_cover_eight_datasets() {
        assert_eq!(DatasetId::all().len(), 8);
        assert_eq!(DatasetId::textual().len(), 6);
        assert!(DatasetId::textual().iter().all(|d| d.is_textual()));
        assert!(!DatasetId::Occupancy.is_textual());
    }

    #[test]
    fn paper_sizes_match_table2() {
        assert_eq!(DatasetId::Youtube.paper_sizes(), (1566, 195, 195));
        assert_eq!(DatasetId::Census.paper_sizes(), (25541, 3192, 3192));
        assert_eq!(DatasetId::BiosJP.paper_sizes(), (25808, 3225, 3225));
    }

    #[test]
    fn paper_alpha_per_modality() {
        assert_eq!(DatasetId::Imdb.paper_alpha(), 0.5);
        assert_eq!(DatasetId::Census.paper_alpha(), 0.99);
    }

    #[test]
    fn tiny_scale_generates_every_dataset() {
        for id in DatasetId::all() {
            let ds = generate(id, Scale::Tiny, 0).unwrap();
            assert_eq!(ds.name(), id.name());
            assert_eq!(ds.is_textual(), id.is_textual());
            assert!(ds.train.len() >= 120, "{}", id.name());
            ds.validate().unwrap();
        }
    }

    #[test]
    fn scale_factors() {
        assert_eq!(Scale::Paper.factor(), 1.0);
        assert!(Scale::Tiny.factor() < Scale::Reduced.factor());
        assert!(generate(DatasetId::Youtube, Scale::Custom(65.0), 0).is_err());
        assert!(generate(DatasetId::Youtube, Scale::Custom(0.0), 0).is_err());
    }

    #[test]
    fn upscaling_factors_grow_the_pool_past_paper_size() {
        let (paper_train, _, _) = DatasetId::Youtube.paper_sizes();
        let ds = generate(DatasetId::Youtube, Scale::Custom(2.0), 0).unwrap();
        assert_eq!(ds.train.len(), paper_train * 2);
        ds.validate().unwrap();
    }

    #[test]
    fn scale_equality_is_the_factor() {
        // A named scale and the equivalent custom multiplier generate the
        // same split, so they are the same provenance — equality and the
        // cache key must agree on that.
        assert_eq!(Scale::Reduced, Scale::Custom(0.2));
        assert_eq!(Scale::Paper, Scale::Custom(1.0));
        assert_ne!(Scale::Tiny, Scale::Reduced);
        let named = DatasetSpec {
            id: DatasetId::Youtube,
            scale: Scale::Reduced,
            seed: 7,
        };
        let custom = DatasetSpec {
            scale: Scale::Custom(0.2),
            ..named
        };
        assert_eq!(named, custom);
        assert_eq!(named.cache_key(), custom.cache_key());
    }

    #[test]
    fn different_datasets_same_seed_differ() {
        let a = generate(DatasetId::Imdb, Scale::Tiny, 7).unwrap();
        let b = generate(DatasetId::Yelp, Scale::Tiny, 7).unwrap();
        assert_ne!(a.train.labels, b.train.labels);
    }

    #[test]
    fn generated_splits_carry_their_provenance() {
        let spec = DatasetSpec {
            id: DatasetId::Yelp,
            scale: Scale::Tiny,
            seed: 11,
        };
        assert_eq!(spec.generate().unwrap().provenance, Some(spec));
        // And through the free function too.
        let split = generate(DatasetId::Occupancy, Scale::Tiny, 3).unwrap();
        assert_eq!(
            split.provenance,
            Some(DatasetSpec {
                id: DatasetId::Occupancy,
                scale: Scale::Tiny,
                seed: 3,
            })
        );
    }

    #[test]
    fn names_parse_back_through_fromstr() {
        for id in DatasetId::all() {
            assert_eq!(id.to_string().parse::<DatasetId>().unwrap(), id);
        }
        assert_eq!("bios-pt".parse::<DatasetId>().unwrap(), DatasetId::BiosPT);
        let err = "mnist".parse::<DatasetId>().unwrap_err();
        assert!(matches!(
            err,
            DataError::UnknownName {
                what: "dataset",
                ..
            }
        ));
        assert!(err.to_string().contains("Youtube"));

        assert_eq!("TINY".parse::<Scale>().unwrap(), Scale::Tiny);
        assert_eq!("x0.125".parse::<Scale>().unwrap(), Scale::Custom(0.125));
        assert_eq!(Scale::Custom(0.125).to_string(), "x0.125");
        assert_eq!("x2.0".parse::<Scale>().unwrap(), Scale::Custom(2.0));
        assert!("x65".parse::<Scale>().is_err());
        assert!("galactic".parse::<Scale>().is_err());
    }

    #[test]
    fn census_is_imbalanced() {
        let ds = generate(DatasetId::Census, Scale::Tiny, 3).unwrap();
        let b = ds.train.class_balance();
        assert!(b[0] > 0.6, "balance {:?}", b);
    }
}
