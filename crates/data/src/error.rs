//! Error type for dataset construction.

use std::fmt;

/// Errors produced while building or validating datasets.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A generator spec is internally inconsistent.
    InvalidSpec {
        /// What was wrong.
        reason: String,
    },
    /// Labels and features disagree in length.
    LengthMismatch {
        /// Number of feature rows.
        features: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A split ratio set does not sum to 1 or contains non-positives.
    BadSplit {
        /// The offending ratios.
        ratios: (f64, f64, f64),
    },
    /// Requested dataset is empty after scaling.
    EmptyDataset {
        /// Dataset name.
        name: String,
    },
    /// A name failed to parse as one of a known set of choices
    /// (`DatasetId`/`Scale` `FromStr`); lists the valid options.
    UnknownName {
        /// What kind of name was being parsed.
        what: &'static str,
        /// The name that did not match.
        given: String,
        /// Comma-separated valid options.
        expected: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidSpec { reason } => write!(f, "invalid generator spec: {reason}"),
            DataError::LengthMismatch { features, labels } => {
                write!(f, "{features} feature rows but {labels} labels")
            }
            DataError::BadSplit { ratios } => write!(
                f,
                "split ratios must be positive and sum to 1, got {:?}",
                ratios
            ),
            DataError::EmptyDataset { name } => write!(f, "dataset {name} is empty after scaling"),
            DataError::UnknownName {
                what,
                given,
                expected,
            } => write!(f, "unknown {what} {given:?}; expected one of {expected}"),
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DataError::LengthMismatch {
            features: 3,
            labels: 5,
        };
        assert_eq!(e.to_string(), "3 feature rows but 5 labels");
        assert!(DataError::EmptyDataset {
            name: "youtube".into()
        }
        .to_string()
        .contains("youtube"));
    }
}
