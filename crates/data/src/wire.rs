//! Wire encoding of dataset identity: [`DatasetId`], [`Scale`] and
//! [`DatasetSpec`] on the `adp-wire` codec.
//!
//! These impls are the *single* source of the dataset tags every encoded
//! artefact shares — session spill files, scenario specs, and snapshots
//! all embed a `DatasetSpec` through them, so the byte layout can never
//! drift between layers. Tags are explicit and stable — never derived from
//! [`DatasetId::all`] ordering — so inserting or reordering datasets can
//! never silently remap existing files; new datasets append new tags.

use crate::registry::{DatasetId, DatasetSpec, Scale};
use adp_wire::{Decode, Encode, Reader, WireError, Writer};

/// Stable wire tag per dataset.
fn dataset_tag(id: DatasetId) -> u8 {
    match id {
        DatasetId::Youtube => 0,
        DatasetId::Imdb => 1,
        DatasetId::Yelp => 2,
        DatasetId::Amazon => 3,
        DatasetId::BiosPT => 4,
        DatasetId::BiosJP => 5,
        DatasetId::Occupancy => 6,
        DatasetId::Census => 7,
    }
}

impl Encode for DatasetId {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(dataset_tag(*self));
    }
}

impl Decode for DatasetId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => DatasetId::Youtube,
            1 => DatasetId::Imdb,
            2 => DatasetId::Yelp,
            3 => DatasetId::Amazon,
            4 => DatasetId::BiosPT,
            5 => DatasetId::BiosJP,
            6 => DatasetId::Occupancy,
            7 => DatasetId::Census,
            tag => {
                return Err(WireError::BadTag {
                    what: "dataset id",
                    tag,
                })
            }
        })
    }
}

impl Encode for Scale {
    fn encode(&self, w: &mut Writer) {
        match self {
            Scale::Paper => w.put_u8(0),
            Scale::Reduced => w.put_u8(1),
            Scale::Tiny => w.put_u8(2),
            Scale::Custom(f) => {
                w.put_u8(3);
                w.put_f64(*f);
            }
        }
    }
}

impl Decode for Scale {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => Scale::Paper,
            1 => Scale::Reduced,
            2 => Scale::Tiny,
            3 => Scale::Custom(r.get_f64()?),
            tag => return Err(WireError::BadTag { what: "scale", tag }),
        })
    }
}

impl Encode for DatasetSpec {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.id);
        w.put(&self.scale);
        w.put_u64(self.seed);
    }
}

impl Decode for DatasetSpec {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(DatasetSpec {
            id: r.get()?,
            scale: r.get()?,
            seed: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(spec: DatasetSpec) {
        let mut w = Writer::new();
        w.put(&spec);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back: DatasetSpec = r.get().unwrap();
        r.finish().unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn specs_roundtrip_every_dataset_and_scale() {
        for id in DatasetId::all() {
            for scale in [
                Scale::Paper,
                Scale::Reduced,
                Scale::Tiny,
                Scale::Custom(0.125),
            ] {
                roundtrip(DatasetSpec { id, scale, seed: 7 });
            }
        }
    }

    #[test]
    fn tags_are_pinned() {
        // The explicit tag table is a format contract; renumbering it
        // corrupts every file in the wild.
        let expected: Vec<(DatasetId, u8)> = DatasetId::all().into_iter().zip(0u8..).collect();
        for (id, tag) in expected {
            assert_eq!(dataset_tag(id), tag, "{id}");
        }
    }

    #[test]
    fn bad_tags_are_typed_errors() {
        let mut r = Reader::new(&[9u8]);
        assert!(matches!(
            DatasetId::decode(&mut r),
            Err(WireError::BadTag {
                what: "dataset id",
                tag: 9
            })
        ));
        let mut r = Reader::new(&[4u8]);
        assert!(matches!(
            Scale::decode(&mut r),
            Err(WireError::BadTag { what: "scale", .. })
        ));
    }
}
