//! Datasets for the ActiveDP reproduction.
//!
//! The paper evaluates on six textual datasets (Youtube Spam, IMDB, Yelp,
//! Amazon, Bios-PT, Bios-JP) and two tabular ones (Occupancy, Census).
//! Those corpora are not shippable here, so this crate provides *synthetic
//! equivalents*: generators that control exactly the two interfaces the
//! algorithms consume — the feature matrix and the label-function space —
//! and are tuned per dataset so the induced difficulty ordering matches the
//! paper (see DESIGN.md §1 for the substitution argument).
//!
//! Public surface:
//! * [`Dataset`] / [`SplitDataset`] — features (dense or TF-IDF sparse),
//!   ground-truth labels, raw texts and encoded token ids for textual data;
//! * [`registry::generate`] — the eight named datasets of Table 2 at any
//!   scale factor;
//! * [`split::split_indices`] — the 80/10/10 shuffled partition helper.

pub mod dataset;
pub mod drift;
pub mod error;
pub mod registry;
pub mod split;
pub mod synth;
pub mod wire;

pub use dataset::{Dataset, FeatureSet, SharedDataset, SplitDataset, Task};
pub use drift::{DriftSpec, UnknownDrift};
pub use error::DataError;
pub use registry::{generate, DatasetId, DatasetSpec, Scale};
pub use split::split_indices;
