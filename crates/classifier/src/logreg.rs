//! Multinomial logistic regression.

use crate::error::ClassifierError;
use adp_linalg::parallel::{self, Execution};
use adp_linalg::{Features, Matrix};

/// Rows per parallel gradient chunk. Fixed (machine-independent): the
/// gradient is always accumulated chunk-wise and reduced in chunk order, so
/// the fitted weights are bitwise identical whether the chunks run on one
/// thread or eight.
const GRAD_CHUNK: usize = 1024;
/// Minimum batch size before threads pay for themselves.
const MIN_PARALLEL_ROWS: usize = 2048;
/// Minimum prediction count before threads pay for themselves.
const MIN_PARALLEL_PREDICT: usize = 4096;

/// Training targets: hard class labels or soft distributions, one entry per
/// training row (parallel to the `rows` argument of
/// [`LogisticRegression::fit`]).
#[derive(Debug, Clone, Copy)]
pub enum Targets<'a> {
    /// Class indices in `0..n_classes`.
    Hard(&'a [usize]),
    /// Probability distributions over classes.
    Soft(&'a [Vec<f64>]),
}

impl Targets<'_> {
    fn len(&self) -> usize {
        match self {
            Targets::Hard(t) => t.len(),
            Targets::Soft(t) => t.len(),
        }
    }
}

/// Hyperparameters for [`LogisticRegression`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogRegConfig {
    /// L2 penalty on the weights (not the intercept).
    pub l2: f64,
    /// Maximum gradient-descent iterations.
    pub max_iters: usize,
    /// Stop when the gradient's max-norm falls below this.
    pub tol: f64,
    /// Run batch-gradient accumulation and bulk prediction on scoped
    /// threads when the batch is large enough. The result is bitwise
    /// identical either way (chunk-wise accumulation is always used); this
    /// switch only controls scheduling.
    pub parallel: bool,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        LogRegConfig {
            l2: 1e-3,
            max_iters: 200,
            tol: 1e-4,
            parallel: true,
        }
    }
}

/// Convergence report from a `fit` call.
#[derive(Debug, Clone, Copy)]
pub struct FitSummary {
    /// Iterations performed.
    pub iterations: usize,
    /// Max-norm of the final gradient.
    pub grad_norm: f64,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

/// Multinomial (softmax) logistic regression with intercepts.
///
/// Optimised by full-batch Nesterov-accelerated gradient descent with a step
/// size derived from the softmax loss's Lipschitz constant — deterministic
/// and tuning-free, which matters for reproducible experiment protocols.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    n_classes: usize,
    n_features: usize,
    weights: Matrix,
    bias: Vec<f64>,
    config: LogRegConfig,
}

impl LogisticRegression {
    /// An untrained model (zero weights ⇒ uniform predictions).
    pub fn new(n_classes: usize, n_features: usize, config: LogRegConfig) -> Self {
        LogisticRegression {
            n_classes,
            n_features,
            weights: Matrix::zeros(n_classes, n_features),
            bias: vec![0.0; n_classes],
            config,
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Borrow the weight matrix (classes × features).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Resets to the untrained state.
    pub fn reset(&mut self) {
        self.weights = Matrix::zeros(self.n_classes, self.n_features);
        self.bias = vec![0.0; self.n_classes];
    }

    /// Fits on the rows `rows` of `x`; `targets` (and `weights`, if given)
    /// run parallel to `rows`. Refitting restarts from zero weights so a
    /// session's model at iteration `t` is a pure function of its inputs.
    pub fn fit<F: Features + ?Sized>(
        &mut self,
        x: &F,
        rows: &[usize],
        targets: Targets<'_>,
        weights: Option<&[f64]>,
    ) -> Result<FitSummary, ClassifierError> {
        let exec = if self.config.parallel {
            parallel::auto(rows.len(), MIN_PARALLEL_ROWS)
        } else {
            Execution::Serial
        };
        self.fit_with(x, rows, targets, weights, exec)
    }

    /// [`LogisticRegression::fit`] under an explicit execution policy.
    /// Serial and parallel runs are bitwise identical (gradients are always
    /// accumulated over fixed chunks and reduced in chunk order).
    pub fn fit_with<F: Features + ?Sized>(
        &mut self,
        x: &F,
        rows: &[usize],
        targets: Targets<'_>,
        weights: Option<&[f64]>,
        exec: Execution,
    ) -> Result<FitSummary, ClassifierError> {
        self.validate(x, rows, &targets, weights)?;
        self.reset();
        let n = rows.len();
        let k = self.n_classes;
        let d = self.n_features;

        // Normalised sample weights (mean 1).
        let w: Vec<f64> = match weights {
            None => vec![1.0; n],
            Some(ws) => {
                let total: f64 = ws.iter().sum();
                if total <= 0.0 {
                    return Err(ClassifierError::BadTarget {
                        reason: "sample weights must have positive mass".into(),
                    });
                }
                ws.iter().map(|&wi| wi * n as f64 / total).collect()
            }
        };

        // Lipschitz bound for the mean softmax CE gradient:
        //   L <= 0.5 * mean ||x||^2 (+1 for the intercept) + l2.
        let mean_sq: f64 = rows.iter().map(|&r| x.row_sq_norm(r) + 1.0).sum::<f64>() / n as f64;
        let lipschitz = 0.5 * mean_sq + self.config.l2;
        let step = 1.0 / lipschitz.max(1e-12);

        // Nesterov: v is the look-ahead point, params live in self.
        let mut v_w = self.weights.clone();
        let mut v_b = self.bias.clone();
        let mut prev_w = self.weights.clone();
        let mut prev_b = self.bias.clone();
        let mut grad_w = Matrix::zeros(k, d);
        let mut grad_b = vec![0.0; k];
        let mut summary = FitSummary {
            iterations: 0,
            grad_norm: f64::INFINITY,
            converged: false,
        };
        for iter in 1..=self.config.max_iters {
            // Gradient at the look-ahead point (v_w, v_b), accumulated over
            // fixed-size row chunks and reduced in chunk order (bitwise
            // deterministic regardless of thread count).
            let (v_w_ref, v_b_ref, w_ref) = (&v_w, &v_b, &w);
            let parts = parallel::map_chunks(n, GRAD_CHUNK, exec, |range| {
                let mut gw = vec![0.0; k * d];
                let mut gb = vec![0.0; k];
                let mut scores = vec![0.0; k];
                for pos in range {
                    let r = rows[pos];
                    for c in 0..k {
                        scores[c] = x.row_dot(r, v_w_ref.row(c)) + v_b_ref[c];
                    }
                    adp_linalg::softmax_inplace(&mut scores);
                    let wi = w_ref[pos] / n as f64;
                    for c in 0..k {
                        let target_c = match &targets {
                            Targets::Hard(t) => {
                                if t[pos] == c {
                                    1.0
                                } else {
                                    0.0
                                }
                            }
                            Targets::Soft(t) => t[pos][c],
                        };
                        let delta = wi * (scores[c] - target_c);
                        if delta != 0.0 {
                            x.row_axpy(r, delta, &mut gw[c * d..(c + 1) * d]);
                            gb[c] += delta;
                        }
                    }
                }
                (gw, gb)
            });
            grad_w.scale(0.0);
            grad_b.iter_mut().for_each(|g| *g = 0.0);
            for (gw, gb) in parts {
                for c in 0..k {
                    for (acc, g) in grad_w.row_mut(c).iter_mut().zip(&gw[c * d..(c + 1) * d]) {
                        *acc += g;
                    }
                    grad_b[c] += gb[c];
                }
            }
            // L2 on weights.
            grad_w.scaled_add(self.config.l2, &v_w).expect("same shape");

            let grad_norm = grad_w
                .max_abs()
                .max(grad_b.iter().fold(0.0_f64, |m, g| m.max(g.abs())));
            summary = FitSummary {
                iterations: iter,
                grad_norm,
                converged: grad_norm < self.config.tol,
            };

            // Gradient step from the look-ahead point.
            let mut new_w = v_w.clone();
            new_w.scaled_add(-step, &grad_w).expect("same shape");
            let new_b: Vec<f64> = v_b.iter().zip(&grad_b).map(|(b, g)| b - step * g).collect();

            // Nesterov momentum.
            let momentum = (iter as f64 - 1.0) / (iter as f64 + 2.0);
            v_w = new_w.clone();
            v_w.scaled_add(momentum, &new_w).expect("same shape");
            v_w.scaled_add(-momentum, &prev_w).expect("same shape");
            v_b = new_b
                .iter()
                .zip(&prev_b)
                .map(|(nb, pb)| nb + momentum * (nb - pb))
                .collect();

            prev_w = new_w.clone();
            prev_b = new_b.clone();
            self.weights = new_w;
            self.bias = new_b;

            if summary.converged {
                break;
            }
        }
        Ok(summary)
    }

    /// Class-probability vector for row `i` of `x`.
    pub fn predict_proba<F: Features + ?Sized>(&self, x: &F, i: usize) -> Vec<f64> {
        let mut scores: Vec<f64> = (0..self.n_classes)
            .map(|c| x.row_dot(i, self.weights.row(c)) + self.bias[c])
            .collect();
        adp_linalg::softmax_inplace(&mut scores);
        scores
    }

    /// Probabilities for every row of `x`. Rows are independent, so this
    /// runs chunk-parallel on large inputs (identical output either way).
    pub fn predict_proba_all<F: Features + ?Sized>(&self, x: &F) -> Vec<Vec<f64>> {
        let exec = if self.config.parallel {
            parallel::auto(x.nrows(), MIN_PARALLEL_PREDICT)
        } else {
            Execution::Serial
        };
        self.predict_proba_all_with(x, exec)
    }

    /// [`LogisticRegression::predict_proba_all`] under an explicit
    /// execution policy (bitwise identical either way).
    pub fn predict_proba_all_with<F: Features + ?Sized>(
        &self,
        x: &F,
        exec: Execution,
    ) -> Vec<Vec<f64>> {
        let n = x.nrows();
        parallel::map_chunks(n, GRAD_CHUNK, exec, |range| {
            range.map(|i| self.predict_proba(x, i)).collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Hard prediction for row `i`.
    pub fn predict<F: Features + ?Sized>(&self, x: &F, i: usize) -> usize {
        adp_linalg::argmax(&self.predict_proba(x, i)).expect("n_classes >= 1")
    }

    fn validate<F: Features + ?Sized>(
        &self,
        x: &F,
        rows: &[usize],
        targets: &Targets<'_>,
        weights: Option<&[f64]>,
    ) -> Result<(), ClassifierError> {
        if rows.is_empty() {
            return Err(ClassifierError::EmptyTrainingSet);
        }
        if self.config.max_iters == 0 {
            return Err(ClassifierError::BadConfig {
                reason: "max_iters must be positive".into(),
            });
        }
        if self.config.l2 < 0.0 || !self.config.l2.is_finite() {
            return Err(ClassifierError::BadConfig {
                reason: "l2 must be finite and non-negative".into(),
            });
        }
        if x.ncols() != self.n_features {
            return Err(ClassifierError::LengthMismatch {
                what: "feature dimension",
                expected: self.n_features,
                actual: x.ncols(),
            });
        }
        if targets.len() != rows.len() {
            return Err(ClassifierError::LengthMismatch {
                what: "targets",
                expected: rows.len(),
                actual: targets.len(),
            });
        }
        if let Some(ws) = weights {
            if ws.len() != rows.len() {
                return Err(ClassifierError::LengthMismatch {
                    what: "weights",
                    expected: rows.len(),
                    actual: ws.len(),
                });
            }
            if ws.iter().any(|w| *w < 0.0 || !w.is_finite()) {
                return Err(ClassifierError::BadTarget {
                    reason: "weights must be finite and non-negative".into(),
                });
            }
        }
        for &r in rows {
            if r >= x.nrows() {
                return Err(ClassifierError::RowOutOfRange {
                    row: r,
                    nrows: x.nrows(),
                });
            }
        }
        match targets {
            Targets::Hard(t) => {
                if let Some(&bad) = t.iter().find(|&&l| l >= self.n_classes) {
                    return Err(ClassifierError::BadTarget {
                        reason: format!("label {bad} out of range"),
                    });
                }
            }
            Targets::Soft(t) => {
                for dist in *t {
                    if dist.len() != self.n_classes {
                        return Err(ClassifierError::BadTarget {
                            reason: format!(
                                "distribution has {} entries, expected {}",
                                dist.len(),
                                self.n_classes
                            ),
                        });
                    }
                    let sum: f64 = dist.iter().sum();
                    if (sum - 1.0).abs() > 1e-6 || dist.iter().any(|&p| p < 0.0) {
                        return Err(ClassifierError::BadTarget {
                            reason: "soft targets must be probability distributions".into(),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_linalg::CsrBuilder;

    /// Linearly separable 2-D blobs: class = sign(x0 + x1).
    fn blobs(n: usize) -> (Matrix, Vec<usize>) {
        let x = Matrix::from_fn(n, 2, |i, j| {
            let base = if i % 2 == 0 { 1.0 } else { -1.0 };
            base + 0.1 * ((i * (j + 3)) % 7) as f64 / 7.0
        });
        let labels = (0..n).map(|i| i % 2).collect();
        (x, labels)
    }

    fn all_rows(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn untrained_model_is_uniform() {
        let (x, _) = blobs(4);
        let m = LogisticRegression::new(2, 2, LogRegConfig::default());
        assert_eq!(m.predict_proba(&x, 0), vec![0.5, 0.5]);
    }

    #[test]
    fn fits_separable_data() {
        let (x, y) = blobs(40);
        let mut m = LogisticRegression::new(2, 2, LogRegConfig::default());
        let s = m.fit(&x, &all_rows(40), Targets::Hard(&y), None).unwrap();
        assert!(s.iterations > 0);
        let correct = (0..40).filter(|&i| m.predict(&x, i) == y[i]).count();
        assert_eq!(correct, 40);
        // Confident on a clearly positive point.
        assert!(m.predict_proba(&x, 0)[0] > 0.8);
    }

    #[test]
    fn soft_one_hot_matches_hard() {
        let (x, y) = blobs(30);
        let soft: Vec<Vec<f64>> = y
            .iter()
            .map(|&l| {
                let mut d = vec![0.0; 2];
                d[l] = 1.0;
                d
            })
            .collect();
        let mut hard = LogisticRegression::new(2, 2, LogRegConfig::default());
        hard.fit(&x, &all_rows(30), Targets::Hard(&y), None)
            .unwrap();
        let mut softm = LogisticRegression::new(2, 2, LogRegConfig::default());
        softm
            .fit(&x, &all_rows(30), Targets::Soft(&soft), None)
            .unwrap();
        for i in 0..30 {
            let (ph, ps) = (hard.predict_proba(&x, i), softm.predict_proba(&x, i));
            assert!((ph[0] - ps[0]).abs() < 1e-6);
        }
    }

    #[test]
    fn uncertain_soft_targets_temper_confidence() {
        let (x, y) = blobs(30);
        let soft: Vec<Vec<f64>> = y
            .iter()
            .map(|&l| {
                let mut d = vec![0.3; 2];
                d[l] = 0.7;
                d
            })
            .collect();
        let mut m = LogisticRegression::new(2, 2, LogRegConfig::default());
        m.fit(&x, &all_rows(30), Targets::Soft(&soft), None)
            .unwrap();
        // Prediction should match the majority side but stay close to 0.7.
        let p = m.predict_proba(&x, 0);
        assert!(p[0] > 0.5);
        assert!(p[0] < 0.85, "over-confident: {}", p[0]);
    }

    #[test]
    fn sample_weights_shift_decisions() {
        // Conflicting labels at the same point: weights decide.
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0]]).unwrap();
        let y = vec![0usize, 1usize];
        let mut m = LogisticRegression::new(2, 1, LogRegConfig::default());
        m.fit(&x, &[0, 1], Targets::Hard(&y), Some(&[5.0, 1.0]))
            .unwrap();
        assert_eq!(m.predict(&x, 0), 0);
        m.fit(&x, &[0, 1], Targets::Hard(&y), Some(&[1.0, 5.0]))
            .unwrap();
        assert_eq!(m.predict(&x, 0), 1);
    }

    #[test]
    fn row_subset_training_ignores_other_rows() {
        let (mut x_data, y) = blobs(20);
        // Poison rows 10.. with opposite labels; train only on 0..10.
        for i in 10..20 {
            for j in 0..2 {
                x_data[(i, j)] = -x_data[(i, j)];
            }
        }
        let rows: Vec<usize> = (0..10).collect();
        let labels: Vec<usize> = rows.iter().map(|&i| y[i]).collect();
        let mut m = LogisticRegression::new(2, 2, LogRegConfig::default());
        m.fit(&x_data, &rows, Targets::Hard(&labels), None).unwrap();
        for &i in &rows {
            assert_eq!(m.predict(&x_data, i), y[i]);
        }
    }

    #[test]
    fn sparse_and_dense_agree() {
        let (x, y) = blobs(24);
        let mut b = CsrBuilder::new(2);
        for i in 0..24 {
            b.push_row(vec![(0, x[(i, 0)]), (1, x[(i, 1)])]);
        }
        let xs = b.finish();
        let mut md = LogisticRegression::new(2, 2, LogRegConfig::default());
        md.fit(&x, &all_rows(24), Targets::Hard(&y), None).unwrap();
        let mut ms = LogisticRegression::new(2, 2, LogRegConfig::default());
        ms.fit(&xs, &all_rows(24), Targets::Hard(&y), None).unwrap();
        for i in 0..24 {
            let (pd, ps) = (md.predict_proba(&x, i), ms.predict_proba(&xs, i));
            assert!((pd[0] - ps[0]).abs() < 1e-9);
        }
    }

    #[test]
    fn stronger_l2_shrinks_weights() {
        let (x, y) = blobs(30);
        let fit_norm = |l2: f64| {
            let mut m = LogisticRegression::new(
                2,
                2,
                LogRegConfig {
                    l2,
                    ..LogRegConfig::default()
                },
            );
            m.fit(&x, &all_rows(30), Targets::Hard(&y), None).unwrap();
            m.weights().frob_norm()
        };
        assert!(fit_norm(1.0) < fit_norm(1e-4));
    }

    #[test]
    fn deterministic_refit() {
        let (x, y) = blobs(30);
        let mut m = LogisticRegression::new(2, 2, LogRegConfig::default());
        m.fit(&x, &all_rows(30), Targets::Hard(&y), None).unwrap();
        let w1 = m.weights().clone();
        m.fit(&x, &all_rows(30), Targets::Hard(&y), None).unwrap();
        assert_eq!(&w1, m.weights());
    }

    #[test]
    fn validation_errors() {
        let (x, y) = blobs(10);
        let mut m = LogisticRegression::new(2, 2, LogRegConfig::default());
        assert!(matches!(
            m.fit(&x, &[], Targets::Hard(&[]), None).unwrap_err(),
            ClassifierError::EmptyTrainingSet
        ));
        assert!(m.fit(&x, &[0, 99], Targets::Hard(&[0, 1]), None).is_err());
        assert!(m.fit(&x, &[0], Targets::Hard(&y), None).is_err());
        assert!(m.fit(&x, &[0], Targets::Hard(&[7]), None).is_err());
        assert!(m
            .fit(&x, &[0], Targets::Soft(&[vec![0.9, 0.3]]), None)
            .is_err());
        assert!(m.fit(&x, &[0], Targets::Hard(&[0]), Some(&[-1.0])).is_err());
        assert!(m
            .fit(&x, &[0, 1], Targets::Hard(&[0, 1]), Some(&[0.0, 0.0]))
            .is_err());
        let mut wrong_dim = LogisticRegression::new(2, 5, LogRegConfig::default());
        assert!(wrong_dim.fit(&x, &[0], Targets::Hard(&[0]), None).is_err());
    }

    #[test]
    fn parallel_fit_is_bitwise_identical_to_serial() {
        // Several gradient chunks, awkward (non-multiple) length.
        let n = 3 * super::GRAD_CHUNK + 77;
        let (x, y) = blobs(n);
        let fit_with = |parallel: bool| {
            let mut m = LogisticRegression::new(
                2,
                2,
                LogRegConfig {
                    parallel,
                    max_iters: 40,
                    ..LogRegConfig::default()
                },
            );
            m.fit(&x, &all_rows(n), Targets::Hard(&y), None).unwrap();
            m
        };
        let serial = fit_with(false);
        let parallel = fit_with(true);
        for c in 0..2 {
            for (a, b) in serial
                .weights()
                .row(c)
                .iter()
                .zip(parallel.weights().row(c))
            {
                assert!(a.to_bits() == b.to_bits(), "{a:e} vs {b:e}");
            }
        }
        let (ps, pp) = (serial.predict_proba_all(&x), parallel.predict_proba_all(&x));
        assert_eq!(ps, pp);
    }

    #[test]
    fn single_class_training_is_stable() {
        let (x, _) = blobs(10);
        let y = vec![1usize; 10];
        let mut m = LogisticRegression::new(2, 2, LogRegConfig::default());
        m.fit(&x, &all_rows(10), Targets::Hard(&y), None).unwrap();
        let p = m.predict_proba(&x, 0);
        assert!(p[1] > 0.5);
        assert!(p.iter().all(|pi| pi.is_finite()));
    }
}
