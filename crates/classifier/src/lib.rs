//! Logistic regression and evaluation metrics.
//!
//! The paper trains logistic regression in two places: the *active-learning
//! model* `f_a` on the pseudo-labelled subset, and the *downstream model* on
//! aggregated (possibly probabilistic) labels over TF-IDF features. This
//! crate provides one implementation for both, generic over
//! [`adp_linalg::Features`] so dense tabular data and sparse TF-IDF matrices
//! share a code path, with:
//!
//! * hard or soft (probabilistic) targets — training on soft labels is the
//!   "train the end model with probabilistic labels" path of §2.1;
//! * optional per-sample weights;
//! * training restricted to a row subset without copying the matrix
//!   (the labelled pool grows one instance per iteration);
//! * deterministic full-batch gradient descent with Nesterov momentum and a
//!   Lipschitz-derived step size (no learning-rate tuning, reproducible
//!   across runs).

pub mod error;
pub mod logreg;
pub mod metrics;

pub use error::ClassifierError;
pub use logreg::{FitSummary, LogRegConfig, LogisticRegression, Targets};
pub use metrics::{accuracy, confusion_matrix, f1_binary, log_loss, macro_f1};
