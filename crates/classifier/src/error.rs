//! Error type for classifier training.

use std::fmt;

/// Errors produced by `adp-classifier`.
#[derive(Debug, Clone, PartialEq)]
pub enum ClassifierError {
    /// Training set is empty.
    EmptyTrainingSet,
    /// Targets/weights/rows lengths disagree.
    LengthMismatch {
        /// What disagreed.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A label or distribution is invalid.
    BadTarget {
        /// Reason.
        reason: String,
    },
    /// A row index exceeds the feature matrix.
    RowOutOfRange {
        /// Offending row.
        row: usize,
        /// Number of rows available.
        nrows: usize,
    },
    /// Configuration invalid (non-positive l2, zero iterations, ...).
    BadConfig {
        /// Reason.
        reason: String,
    },
}

impl fmt::Display for ClassifierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassifierError::EmptyTrainingSet => write!(f, "empty training set"),
            ClassifierError::LengthMismatch {
                what,
                expected,
                actual,
            } => write!(f, "{what}: expected length {expected}, got {actual}"),
            ClassifierError::BadTarget { reason } => write!(f, "bad target: {reason}"),
            ClassifierError::RowOutOfRange { row, nrows } => {
                write!(f, "row {row} out of range ({nrows} rows)")
            }
            ClassifierError::BadConfig { reason } => write!(f, "bad config: {reason}"),
        }
    }
}

impl std::error::Error for ClassifierError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            ClassifierError::EmptyTrainingSet.to_string(),
            "empty training set"
        );
        assert!(ClassifierError::RowOutOfRange { row: 9, nrows: 3 }
            .to_string()
            .contains("9"));
    }
}
