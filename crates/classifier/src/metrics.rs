//! Classification metrics.

/// Fraction of positions where `preds[i] == labels[i]`.
///
/// # Panics
/// Panics when the slices differ in length (caller bug, not data).
pub fn accuracy(preds: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(preds.len(), labels.len(), "accuracy: length mismatch");
    if preds.is_empty() {
        return 0.0;
    }
    preds.iter().zip(labels).filter(|(p, l)| p == l).count() as f64 / preds.len() as f64
}

/// `counts[t][p]` = number of instances with true class `t` predicted `p`.
pub fn confusion_matrix(preds: &[usize], labels: &[usize], n_classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(
        preds.len(),
        labels.len(),
        "confusion_matrix: length mismatch"
    );
    let mut counts = vec![vec![0usize; n_classes]; n_classes];
    for (&p, &t) in preds.iter().zip(labels) {
        counts[t][p] += 1;
    }
    counts
}

/// F1 of the positive class (class 1) for binary tasks; 0 when the positive
/// class never appears in predictions or labels.
pub fn f1_binary(preds: &[usize], labels: &[usize]) -> f64 {
    let cm = confusion_matrix(preds, labels, 2);
    let tp = cm[1][1] as f64;
    let fp = cm[0][1] as f64;
    let fneg = cm[1][0] as f64;
    if 2.0 * tp + fp + fneg == 0.0 {
        0.0
    } else {
        2.0 * tp / (2.0 * tp + fp + fneg)
    }
}

/// Unweighted mean of per-class F1 scores.
pub fn macro_f1(preds: &[usize], labels: &[usize], n_classes: usize) -> f64 {
    let cm = confusion_matrix(preds, labels, n_classes);
    let mut total = 0.0;
    for c in 0..n_classes {
        let tp = cm[c][c] as f64;
        let fp: f64 = (0..n_classes)
            .filter(|&t| t != c)
            .map(|t| cm[t][c] as f64)
            .sum();
        let fneg: f64 = (0..n_classes)
            .filter(|&p| p != c)
            .map(|p| cm[c][p] as f64)
            .sum();
        total += if 2.0 * tp + fp + fneg == 0.0 {
            0.0
        } else {
            2.0 * tp / (2.0 * tp + fp + fneg)
        };
    }
    total / n_classes as f64
}

/// Mean negative log-likelihood of the true class; probabilities clamped to
/// `1e-15` so certain-but-wrong predictions stay finite.
pub fn log_loss(probas: &[Vec<f64>], labels: &[usize]) -> f64 {
    assert_eq!(probas.len(), labels.len(), "log_loss: length mismatch");
    if probas.is_empty() {
        return 0.0;
    }
    probas
        .iter()
        .zip(labels)
        .map(|(p, &l)| -p[l].max(1e-15).ln())
        .sum::<f64>()
        / probas.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[1, 0, 1], &[1, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_check() {
        accuracy(&[1], &[1, 0]);
    }

    #[test]
    fn confusion_matrix_cells() {
        let cm = confusion_matrix(&[1, 0, 1, 1], &[1, 0, 0, 1], 2);
        assert_eq!(cm[1][1], 2); // tp
        assert_eq!(cm[0][0], 1); // tn
        assert_eq!(cm[0][1], 1); // fp
        assert_eq!(cm[1][0], 0); // fn
    }

    #[test]
    fn f1_binary_known_value() {
        // tp=2, fp=1, fn=0 => F1 = 4/5.
        assert!((f1_binary(&[1, 0, 1, 1], &[1, 0, 0, 1]) - 0.8).abs() < 1e-12);
        // No positives anywhere.
        assert_eq!(f1_binary(&[0, 0], &[0, 0]), 0.0);
        // Perfect prediction.
        assert_eq!(f1_binary(&[1, 0], &[1, 0]), 1.0);
    }

    #[test]
    fn macro_f1_symmetric() {
        // Perfect prediction => macro F1 = 1.
        assert_eq!(macro_f1(&[0, 1, 2], &[0, 1, 2], 3), 1.0);
        // All wrong => 0.
        assert_eq!(macro_f1(&[1, 2, 0], &[0, 1, 2], 3), 0.0);
    }

    #[test]
    fn log_loss_values() {
        let probas = vec![vec![0.9, 0.1], vec![0.2, 0.8]];
        let ll = log_loss(&probas, &[0, 1]);
        let expect = -(0.9_f64.ln() + 0.8_f64.ln()) / 2.0;
        assert!((ll - expect).abs() < 1e-12);
        // Zero-probability truth is clamped, not infinite.
        assert!(log_loss(&[vec![0.0, 1.0]], &[0]).is_finite());
        assert_eq!(log_loss(&[], &[]), 0.0);
    }
}
