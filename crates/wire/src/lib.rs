//! A small, dependency-free, versioned binary codec for session snapshots.
//!
//! The workspace must build offline, so instead of serde + bincode this
//! crate provides exactly the encoding the durable-session layer needs:
//!
//! * explicit **little-endian** byte order for every primitive, on every
//!   platform — an encoded snapshot is a portable artefact;
//! * **deterministic** output: encoding the same value twice yields the
//!   same bytes (no maps, no pointers, no padding), which is what lets the
//!   golden-bytes fixture pin the format;
//! * a **versioned envelope** ([`write_envelope`] / [`read_envelope`]):
//!   an 8-byte magic plus a `u32` format version, so a decoder can reject
//!   foreign files and future format bumps with a typed error instead of
//!   misparsing them;
//! * typed, non-panicking errors ([`WireError`]) for truncation, bad tags,
//!   bad lengths and trailing garbage.
//!
//! [`Writer`] appends to a byte buffer; [`Reader`] consumes one. The
//! [`Encode`]/[`Decode`] traits cover the primitives plus `Vec`, `Option`,
//! `String`, fixed `[u64; 4]` RNG states and nested combinations thereof
//! (`Vec<Vec<f64>>` is the probability-matrix encoding). Domain types
//! (e.g. the engine's `SessionSnapshot`) encode themselves field-by-field
//! through these building blocks in their own crates.

use std::fmt;

pub mod atomic;

/// Errors surfaced while decoding (encoding is infallible).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before a value was complete.
    UnexpectedEof {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were left.
        remaining: usize,
    },
    /// An enum tag byte had no matching variant.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A declared length cannot fit in memory / `usize`.
    BadLength {
        /// What was being decoded.
        what: &'static str,
        /// The declared length.
        len: u64,
    },
    /// A bool byte was neither 0 nor 1.
    BadBool(u8),
    /// The envelope's magic bytes did not match.
    BadMagic {
        /// The magic the decoder expected.
        expected: [u8; 8],
        /// The magic found in the buffer.
        found: [u8; 8],
    },
    /// The envelope's format version is not supported by this decoder.
    UnknownVersion {
        /// The version found in the buffer.
        found: u32,
        /// The newest version this decoder understands.
        supported: u32,
    },
    /// Bytes were left over after the value was fully decoded.
    TrailingBytes {
        /// How many bytes remained.
        remaining: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, remaining } => {
                write!(f, "unexpected EOF: needed {needed} bytes, {remaining} left")
            }
            WireError::BadTag { what, tag } => write!(f, "bad tag {tag} for {what}"),
            WireError::BadLength { what, len } => write!(f, "bad length {len} for {what}"),
            WireError::BadBool(b) => write!(f, "bad bool byte {b}"),
            WireError::BadMagic { expected, found } => {
                write!(f, "bad magic {found:02x?}, expected {expected:02x?}")
            }
            WireError::UnknownVersion { found, supported } => {
                write!(
                    f,
                    "unknown format version {found} (decoder supports <= {supported})"
                )
            }
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after value")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Appends encoded values to a growable byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` as a little-endian `u64` (portable across word sizes).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// `i8` as its two's-complement byte.
    pub fn put_i8(&mut self, v: i8) {
        self.buf.push(v as u8);
    }

    /// `f64` as the little-endian bytes of its IEEE-754 bit pattern —
    /// bitwise-exact roundtrips, NaN payloads and signed zeros included.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Raw bytes, no length prefix (caller encodes the framing).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// A length-prefixed `i8` slice — byte-identical to encoding the
    /// equivalent `Vec<i8>`, without materialising one (vote matrices are
    /// the bulk of a snapshot, so the copy the generic path would make is
    /// worth avoiding).
    pub fn put_i8_slice(&mut self, values: &[i8]) {
        self.put_usize(values.len());
        self.buf.extend(values.iter().map(|&v| v as u8));
    }

    /// Any [`Encode`] value.
    pub fn put<T: Encode + ?Sized>(&mut self, v: &T) {
        v.encode(self);
    }
}

/// Consumes encoded values from a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// One raw byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// A `u64` that must fit a `usize` (and, as a sanity bound against
    /// corrupt buffers, cannot exceed the bytes remaining when `bounded`
    /// is the per-element minimum size — see [`Reader::get_len`]).
    pub fn get_usize(&mut self) -> Result<usize, WireError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| WireError::BadLength {
            what: "usize",
            len: v,
        })
    }

    /// A collection length declared in the buffer. Rejects lengths that
    /// could not possibly be backed by the remaining bytes (each element
    /// needs at least `min_elem_bytes`), so a corrupt length cannot trigger
    /// a huge allocation.
    pub fn get_len(
        &mut self,
        what: &'static str,
        min_elem_bytes: usize,
    ) -> Result<usize, WireError> {
        let v = self.get_u64()?;
        let n = usize::try_from(v).map_err(|_| WireError::BadLength { what, len: v })?;
        match n.checked_mul(min_elem_bytes.max(1)) {
            Some(bytes) if bytes <= self.remaining() => Ok(n),
            _ => Err(WireError::BadLength { what, len: v }),
        }
    }

    /// `i8` from its two's-complement byte.
    pub fn get_i8(&mut self) -> Result<i8, WireError> {
        Ok(self.get_u8()? as i8)
    }

    /// `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// `bool` from a 0/1 byte; anything else is [`WireError::BadBool`].
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::BadBool(b)),
        }
    }

    /// Exactly `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Any [`Decode`] value.
    pub fn get<T: Decode>(&mut self) -> Result<T, WireError> {
        T::decode(self)
    }

    /// Asserts the buffer is fully consumed — a complete value followed by
    /// garbage is corruption, not success.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

/// A value with a canonical byte encoding.
pub trait Encode {
    /// Appends the value's encoding to `w`.
    fn encode(&self, w: &mut Writer);
}

/// A value decodable from its canonical encoding.
pub trait Decode: Sized {
    /// Reads one value from `r`.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

macro_rules! primitive_codec {
    ($($t:ty => $put:ident / $get:ident),* $(,)?) => {$(
        impl Encode for $t {
            fn encode(&self, w: &mut Writer) {
                w.$put(*self);
            }
        }
        impl Decode for $t {
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                r.$get()
            }
        }
    )*};
}

primitive_codec!(
    u8 => put_u8 / get_u8,
    u32 => put_u32 / get_u32,
    u64 => put_u64 / get_u64,
    usize => put_usize / get_usize,
    i8 => put_i8 / get_i8,
    f64 => put_f64 / get_f64,
    bool => put_bool / get_bool,
);

impl Encode for [u64; 4] {
    fn encode(&self, w: &mut Writer) {
        for v in self {
            w.put_u64(*v);
        }
    }
}

impl Decode for [u64; 4] {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok([r.get_u64()?, r.get_u64()?, r.get_u64()?, r.get_u64()?])
    }
}

impl Encode for str {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.len());
        w.put_bytes(self.as_bytes());
    }
}

impl Encode for String {
    fn encode(&self, w: &mut Writer) {
        self.as_str().encode(w);
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.get_len("string", 1)?;
        let bytes = r.get_bytes(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadTag {
            what: "utf-8 string",
            tag: 0xff,
        })
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.len());
        for v in self {
            v.encode(w);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        // Every element costs at least one byte on the wire, which bounds
        // the pre-allocation by the buffer size.
        let n = r.get_len("vec", 1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::BadTag {
                what: "option",
                tag,
            }),
        }
    }
}

/// Starts an encoded artefact with its 8-byte magic and `u32` format
/// version; the caller appends the payload to the returned writer.
pub fn write_envelope(magic: &[u8; 8], version: u32) -> Writer {
    let mut w = Writer::new();
    w.put_bytes(magic);
    w.put_u32(version);
    w
}

/// Opens an encoded artefact: checks the magic, reads the version, and
/// rejects versions newer than `supported` with
/// [`WireError::UnknownVersion`]. Returns the payload reader and the
/// version actually found (≤ `supported`), so decoders can branch on old
/// formats.
pub fn read_envelope<'a>(
    buf: &'a [u8],
    magic: &[u8; 8],
    supported: u32,
) -> Result<(Reader<'a>, u32), WireError> {
    let mut r = Reader::new(buf);
    let found = r.get_bytes(8)?;
    if found != magic {
        return Err(WireError::BadMagic {
            expected: *magic,
            found: found.try_into().expect("8 bytes"),
        });
    }
    let version = r.get_u32()?;
    if version > supported || version == 0 {
        return Err(WireError::UnknownVersion {
            found: version,
            supported,
        });
    }
    Ok((r, version))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let mut w = Writer::new();
        w.put(&v);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back: T = r.get().expect("decodes");
        r.finish().expect("fully consumed");
        assert_eq!(v, back);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(-128i8);
        roundtrip(127i8);
        roundtrip(true);
        roundtrip(false);
        roundtrip(0.0f64);
        roundtrip(-0.0f64);
        roundtrip(f64::MIN_POSITIVE);
        roundtrip(f64::INFINITY);
        roundtrip(f64::NEG_INFINITY);
        roundtrip(1.0f64 / 3.0);
        roundtrip([1u64, 2, 3, u64::MAX]);
    }

    #[test]
    fn f64_roundtrip_is_bitwise() {
        // NaN payloads survive (PartialEq can't see this, bits can).
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let mut w = Writer::new();
        w.put_f64(weird);
        let bytes = w.into_bytes();
        let back = Reader::new(&bytes).get_f64().unwrap();
        assert_eq!(weird.to_bits(), back.to_bits());
    }

    #[test]
    fn negative_zero_keeps_its_sign() {
        let mut w = Writer::new();
        w.put_f64(-0.0);
        let back = Reader::new(&w.into_bytes()).get_f64().unwrap();
        assert_eq!(back.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(String::new());
        roundtrip("hello, wörld".to_string());
        roundtrip(Vec::<u64>::new());
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(vec![vec![1.0f64, 2.0], vec![], vec![3.5]]);
        roundtrip(Option::<u32>::None);
        roundtrip(Some(42u32));
        roundtrip(Some(vec![Some(1i8), None, Some(-1)]));
        roundtrip(vec![true, false, true]);
    }

    #[test]
    fn i8_slice_matches_the_generic_vec_encoding() {
        let votes: Vec<i8> = vec![-1, 0, 1, 127, -128];
        let mut a = Writer::new();
        a.put_i8_slice(&votes);
        let mut b = Writer::new();
        b.put(&votes);
        let bytes = a.into_bytes();
        assert_eq!(bytes, b.into_bytes());
        let mut r = Reader::new(&bytes);
        let back: Vec<i8> = r.get().unwrap();
        r.finish().unwrap();
        assert_eq!(back, votes);
    }

    #[test]
    fn encoding_is_little_endian_and_deterministic() {
        let mut w = Writer::new();
        w.put_u32(0x0102_0304);
        w.put_u64(0x1122_3344_5566_7788);
        assert_eq!(
            w.into_bytes(),
            vec![0x04, 0x03, 0x02, 0x01, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11]
        );
        let enc = |v: &Vec<f64>| {
            let mut w = Writer::new();
            w.put(v);
            w.into_bytes()
        };
        let v = vec![0.1, 0.2, 0.3];
        assert_eq!(enc(&v), enc(&v.clone()));
    }

    #[test]
    fn truncation_is_a_typed_error_everywhere() {
        let mut w = Writer::new();
        w.put(&vec![1u64, 2, 3]);
        let bytes = w.into_bytes();
        // Chop the buffer at every prefix: decode must error, never panic.
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let res: Result<Vec<u64>, _> = r.get();
            assert!(res.is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn huge_length_is_rejected_without_allocation() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // declared length
        let bytes = w.into_bytes();
        let res: Result<Vec<u8>, _> = Reader::new(&bytes).get();
        assert!(matches!(res, Err(WireError::BadLength { .. })));
        // A length that fits u64 but not the remaining bytes.
        let mut w = Writer::new();
        w.put_u64(10);
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let res: Result<Vec<u8>, _> = Reader::new(&bytes).get();
        assert!(matches!(res, Err(WireError::BadLength { .. })));
    }

    #[test]
    fn bad_tags_are_typed_errors() {
        let res: Result<Option<u8>, _> = Reader::new(&[7]).get();
        assert!(matches!(
            res,
            Err(WireError::BadTag {
                what: "option",
                tag: 7
            })
        ));
        let res = Reader::new(&[2]).get_bool();
        assert!(matches!(res, Err(WireError::BadBool(2))));
        // Invalid UTF-8 in a string body.
        let mut w = Writer::new();
        w.put_u64(2);
        w.put_bytes(&[0xff, 0xfe]);
        let res: Result<String, _> = Reader::new(&w.into_bytes()).get();
        assert!(res.is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = Writer::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let _: u8 = r.get().unwrap();
        assert!(matches!(
            r.finish(),
            Err(WireError::TrailingBytes { remaining: 1 })
        ));
    }

    const MAGIC: &[u8; 8] = b"ADPTEST\0";

    #[test]
    fn envelope_roundtrip() {
        let mut w = write_envelope(MAGIC, 3);
        w.put_u64(99);
        let bytes = w.into_bytes();
        let (mut r, version) = read_envelope(&bytes, MAGIC, 3).unwrap();
        assert_eq!(version, 3);
        assert_eq!(r.get_u64().unwrap(), 99);
        r.finish().unwrap();
        // Older versions still open (decoder branches on the version).
        let old = write_envelope(MAGIC, 2).into_bytes();
        let (_, v) = read_envelope(&old, MAGIC, 3).unwrap();
        assert_eq!(v, 2);
    }

    #[test]
    fn envelope_rejects_wrong_magic_and_future_versions() {
        let bytes = write_envelope(b"NOTADP!\0", 1).into_bytes();
        assert!(matches!(
            read_envelope(&bytes, MAGIC, 1),
            Err(WireError::BadMagic { .. })
        ));
        let bytes = write_envelope(MAGIC, 9).into_bytes();
        assert!(matches!(
            read_envelope(&bytes, MAGIC, 1),
            Err(WireError::UnknownVersion {
                found: 9,
                supported: 1
            })
        ));
        // Version 0 is reserved/invalid.
        let bytes = write_envelope(MAGIC, 0).into_bytes();
        assert!(matches!(
            read_envelope(&bytes, MAGIC, 1),
            Err(WireError::UnknownVersion { .. })
        ));
        // Truncated before the version.
        assert!(matches!(
            read_envelope(&MAGIC[..5], MAGIC, 1),
            Err(WireError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn error_messages_render() {
        let errs: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(WireError::UnexpectedEof {
                needed: 8,
                remaining: 3,
            }),
            Box::new(WireError::BadTag {
                what: "option",
                tag: 9,
            }),
            Box::new(WireError::BadLength {
                what: "vec",
                len: 1 << 60,
            }),
            Box::new(WireError::BadBool(3)),
            Box::new(WireError::UnknownVersion {
                found: 2,
                supported: 1,
            }),
            Box::new(WireError::TrailingBytes { remaining: 4 }),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
