//! One copy of the durable atomic-write discipline.
//!
//! Every on-disk artefact in the workspace — hub spill files, WAL
//! segments, WAL manifests — must survive a crash mid-write: a reader
//! finds either the previous complete file or the new complete file,
//! never a torn one. The recipe is the classic tmp-file dance:
//!
//! 1. write the bytes to a staging file whose name is unique to this
//!    call (pid + process-wide sequence number, so concurrent writers
//!    targeting the same path never clobber each other's staging file);
//! 2. `fsync` the staging file so the bytes are on the platter before
//!    the rename can make them visible;
//! 3. `rename` it over the destination — atomic on POSIX filesystems;
//! 4. on any failure, best-effort remove the staging file so retries
//!    and directory listings never see stale `.tmp` debris.
//!
//! The parent directory is fsynced best-effort after the rename (the
//! rename itself is what crash-consistency depends on; the directory
//! sync narrows the window in which the new name could be lost).

use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide staging-name disambiguator: two concurrent writes of the
/// same destination (e.g. `save_all` racing a per-session snapshot
/// request) must each stage their own bytes, or one could rename the
/// other's half-written file into place.
static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Atomically replaces `path` with `bytes` (write tmp → fsync → rename).
///
/// The destination's directory must already exist. On error the staging
/// file is removed; `path` is untouched (either absent or still holding
/// its previous complete contents).
///
/// ```no_run
/// # fn main() -> std::io::Result<()> {
/// let path = std::path::Path::new("/tmp/manifest.bin");
/// adp_wire::atomic::atomic_write(path, b"payload")?;
/// # Ok(())
/// # }
/// ```
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let seq = WRITE_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(format!(".{}-{seq}.tmp", std::process::id()));
    let tmp = path.with_file_name(name);
    let staged = (|| {
        let mut file = fs::File::create(&tmp)?;
        io::Write::write_all(&mut file, bytes)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)
    })();
    if staged.is_err() {
        let _ = fs::remove_file(&tmp);
        return staged;
    }
    // Durability of the *name*: sync the containing directory so the
    // rename itself survives power loss. Best-effort — not every
    // platform lets a directory be opened for sync, and the atomicity
    // guarantee above does not depend on it.
    if let Some(parent) = path.parent() {
        if let Ok(dir) = fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn unique_tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "adp-atomic-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_overwrites_without_tmp_debris() {
        let dir = unique_tempdir("write");
        let path = dir.join("artefact.bin");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer payload").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer payload");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp files left: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failure_leaves_destination_untouched() {
        let dir = unique_tempdir("fail");
        let path = dir.join("artefact.bin");
        atomic_write(&path, b"durable").unwrap();
        // A destination whose parent is missing cannot stage its tmp file;
        // the call must fail without touching anything else.
        let bad = dir.join("missing-subdir").join("artefact.bin");
        assert!(atomic_write(&bad, b"nope").is_err());
        assert_eq!(fs::read(&path).unwrap(), b"durable");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_each_land_a_complete_file() {
        let dir = unique_tempdir("race");
        let path = dir.join("artefact.bin");
        let payloads: Vec<Vec<u8>> = (0u8..8).map(|i| vec![i; 64 + i as usize]).collect();
        std::thread::scope(|scope| {
            for payload in &payloads {
                let path = path.clone();
                scope.spawn(move || atomic_write(&path, payload).unwrap());
            }
        });
        // Whoever renamed last wins, but the survivor is one writer's
        // *complete* payload — never an interleaving.
        let found = fs::read(&path).unwrap();
        assert!(payloads.contains(&found));
        let _ = fs::remove_dir_all(&dir);
    }
}
