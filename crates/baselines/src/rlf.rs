//! Revising LF (Nashaat et al., IEEE Big Data 2018): hybrid AL + DP that
//! corrects LF outputs on user-labelled instances.
//!
//! Each iteration: the instance where the current label model is most
//! uncertain is shown to the user, who reveals its true label; every LF
//! vote on that instance that disagrees with the truth is overwritten (the
//! "revision"); the label model refits on the revised matrix. Following the
//! paper's protocol (§4.1.3), the pre-specified LF set RLF requires is
//! grown with the same coverage-proportional user model ActiveDP uses, one
//! LF per iteration, so `Λ_t` matches ActiveDP's at every budget.

use crate::{Framework, FrameworkEval};
use activedp::ActiveDpError;
use adp_classifier::LogRegConfig;
use adp_data::SplitDataset;
use adp_labelmodel::{make_model, LabelModel, LabelModelKind};
use adp_lf::{CandidateSpace, LabelFunction, LabelMatrix, SimulatedUser, UserConfig, ABSTAIN};
use adp_sampler::{Sampler, SamplerContext, Uncertainty};

/// The Revising-LF baseline.
pub struct RevisingLf<'a> {
    data: &'a SplitDataset,
    space: CandidateSpace,
    sampler: Uncertainty,
    user: SimulatedUser,
    label_model: Box<dyn LabelModel>,
    class_balance: Vec<f64>,
    lfs: Vec<LabelFunction>,
    train_matrix: LabelMatrix,
    queried: Vec<bool>,
    /// User-revealed ground truth `(instance, label)`, re-applied to every
    /// new LF column.
    corrections: Vec<(usize, usize)>,
    lm_probs: Option<Vec<Vec<f64>>>,
    downstream_cfg: LogRegConfig,
}

impl<'a> RevisingLf<'a> {
    /// An RLF run over `data`, deterministic in `seed`.
    pub fn new(data: &'a SplitDataset, seed: u64) -> Self {
        RevisingLf {
            space: CandidateSpace::build(&data.train),
            sampler: Uncertainty::new(seed ^ 0x0F1F_0001),
            user: SimulatedUser::new(UserConfig::default(), seed ^ 0x0F1F_0002),
            label_model: make_model(LabelModelKind::Triplet, data.train.n_classes),
            class_balance: data.valid.class_balance(),
            lfs: vec![],
            train_matrix: LabelMatrix::empty(data.train.len()),
            queried: vec![false; data.train.len()],
            corrections: vec![],
            lm_probs: None,
            downstream_cfg: LogRegConfig {
                max_iters: 150,
                ..LogRegConfig::default()
            },
            data,
        }
    }

    /// Instances whose LF outputs have been revised.
    pub fn n_corrections(&self) -> usize {
        self.corrections.len()
    }

    /// LFs collected so far.
    pub fn lfs(&self) -> &[LabelFunction] {
        &self.lfs
    }

    /// Overwrites misfiring votes on instance `i` with the true label.
    fn revise_instance(&mut self, i: usize, y: usize) -> Result<(), ActiveDpError> {
        for j in 0..self.train_matrix.n_lfs() {
            let v = self.train_matrix.get(i, j);
            if v != ABSTAIN && v as usize != y {
                self.train_matrix.set(i, j, y as i8)?;
            }
        }
        Ok(())
    }

    fn refit(&mut self) -> Result<(), ActiveDpError> {
        if self.train_matrix.n_lfs() == 0 {
            self.lm_probs = None;
            return Ok(());
        }
        self.label_model
            .fit(&self.train_matrix, Some(&self.class_balance))?;
        self.lm_probs = Some(adp_labelmodel::predict_all(
            self.label_model.as_ref(),
            &self.train_matrix,
        ));
        Ok(())
    }
}

impl Framework for RevisingLf<'_> {
    fn name(&self) -> &'static str {
        "RLF"
    }

    fn step(&mut self) -> Result<(), ActiveDpError> {
        let pick = {
            let ctx = SamplerContext {
                train: &self.data.train,
                queried: &self.queried,
                al_probs: None,
                lm_probs: self.lm_probs.as_deref(),
                n_labeled: self.corrections.len(),
                space: None,
                seen_lfs: None,
                candidates: None,
            };
            self.sampler.select(&ctx)
        };
        let Some(i) = pick else {
            return Ok(());
        };
        self.queried[i] = true;
        let y = self.user.label_instance(&self.data.train, i);
        self.corrections.push((i, y));

        // Grow Λ_t exactly like ActiveDP (protocol requirement, §4.1.3):
        // one coverage-proportional LF from the revealed instance.
        if let Some(lf) = self
            .user
            .respond(&self.space, &self.data.train, &self.data.train, i)
        {
            self.train_matrix.push_lf(&lf, &self.data.train)?;
            self.lfs.push(lf);
            // New column must respect all past revisions.
            let j = self.train_matrix.n_lfs() - 1;
            for &(ci, cy) in &self.corrections {
                let v = self.train_matrix.get(ci, j);
                if v != ABSTAIN && v as usize != cy {
                    self.train_matrix.set(ci, j, cy as i8)?;
                }
            }
        }
        self.revise_instance(i, y)?;
        self.refit()
    }

    fn evaluate(&self) -> Result<FrameworkEval, ActiveDpError> {
        let n = self.data.train.len();
        let labels: Vec<Option<Vec<f64>>> = match &self.lm_probs {
            None => vec![None; n],
            Some(probs) => (0..n)
                .map(|i| self.train_matrix.has_vote(i).then(|| probs[i].clone()))
                .collect(),
        };
        crate::downstream_eval(self.data, &labels, self.downstream_cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn revisions_fix_votes() {
        let data = tiny_text();
        let mut rlf = RevisingLf::new(&data, 1);
        for _ in 0..20 {
            rlf.step().unwrap();
        }
        assert_eq!(rlf.n_corrections(), 20);
        // Every corrected instance's votes agree with the truth.
        for &(i, y) in &rlf.corrections {
            for j in 0..rlf.train_matrix.n_lfs() {
                let v = rlf.train_matrix.get(i, j);
                assert!(
                    v == ABSTAIN || v as usize == y,
                    "unrevised vote at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn learns_on_text() {
        let data = tiny_text();
        let mut rlf = RevisingLf::new(&data, 2);
        let eval = drive(&mut rlf, 25);
        assert!(eval.test_accuracy > 0.55, "{}", eval.test_accuracy);
        assert!(rlf.lfs().len() > 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = tiny_text();
        let run = |seed| {
            let mut rlf = RevisingLf::new(&data, seed);
            drive(&mut rlf, 10).test_accuracy
        };
        assert_eq!(run(7).to_bits(), run(7).to_bits());
    }

    #[test]
    fn evaluate_before_steps_is_defined() {
        let data = tiny_text();
        let rlf = RevisingLf::new(&data, 3);
        let eval = rlf.evaluate().unwrap();
        assert_eq!(eval.label_coverage, 0.0);
    }
}
