//! Baseline interactive labelling frameworks (paper §4.1.2).
//!
//! Each baseline implements the [`Framework`] trait — one supervision query
//! per `step`, downstream evaluation on demand — so the protocol in
//! `adp-experiments` drives ActiveDP and every baseline identically:
//!
//! * [`UncertaintySampling`] — classic AL: label the most-entropic instance,
//!   train the downstream model on the labelled pool only (Lewis 1995);
//! * [`Nemo`] — interactive data programming: SEU query selection, user LFs,
//!   MeTaL-style label model over *all* returned LFs (Hsieh et al. 2022);
//! * [`Iws`] — interactive weak supervision (IWS-LSE-a): the system proposes
//!   candidate LFs for expert verification and keeps every LF predicted
//!   accurate (Boecking et al. 2020);
//! * [`RevisingLf`] — hybrid AL+DP of Nashaat et al. 2018: label-model
//!   uncertainty sampling, user labels the instance, LF votes on labelled
//!   instances are overwritten with the truth.
//!
//! The per-iteration supervision cost follows §4.1.3: one instance label
//! (US, RLF), one LF verification (IWS) or one LF creation (Nemo, ActiveDP)
//! per iteration.
//!
//! For comparability every framework trains the same downstream model
//! (logistic regression on the dataset features) and receives the same
//! validation-split class balance its label model may use as a prior.

pub mod iws;
pub mod nemo;
pub mod rlf;
pub mod us;

pub use iws::Iws;
pub use nemo::Nemo;
pub use rlf::RevisingLf;
pub use us::UncertaintySampling;

use activedp::{ActiveDpError, ActiveDpSession};
use adp_classifier::{LogRegConfig, LogisticRegression, Targets};
use adp_data::SplitDataset;

/// Downstream evaluation common to every framework.
#[derive(Debug, Clone)]
pub struct FrameworkEval {
    /// Downstream test accuracy (the protocol's metric).
    pub test_accuracy: f64,
    /// Fraction of training instances that received a label.
    pub label_coverage: f64,
    /// Accuracy of the generated labels over covered training instances.
    pub label_accuracy: Option<f64>,
}

/// One interactive labelling framework under the paper's protocol.
pub trait Framework: Send {
    /// The name used in figures/tables.
    fn name(&self) -> &'static str;

    /// Performs one iteration of human supervision.
    fn step(&mut self) -> Result<(), ActiveDpError>;

    /// Trains the downstream model from the current supervision state and
    /// evaluates it on the test split.
    fn evaluate(&self) -> Result<FrameworkEval, ActiveDpError>;
}

impl Framework for ActiveDpSession {
    fn name(&self) -> &'static str {
        "ActiveDP"
    }

    fn step(&mut self) -> Result<(), ActiveDpError> {
        ActiveDpSession::step(self).map(|_| ())
    }

    fn evaluate(&self) -> Result<FrameworkEval, ActiveDpError> {
        let report = self.evaluate_downstream()?;
        Ok(FrameworkEval {
            test_accuracy: report.test_accuracy,
            label_coverage: report.label_coverage,
            label_accuracy: report.label_accuracy,
        })
    }
}

/// Trains the shared downstream model on (soft) labels for the training
/// pool and reports its test accuracy plus label-quality statistics.
/// `labels[i] = None` drops instance `i`, as in ConFusion's reject option.
pub(crate) fn downstream_eval(
    data: &SplitDataset,
    labels: &[Option<Vec<f64>>],
    cfg: LogRegConfig,
) -> Result<FrameworkEval, ActiveDpError> {
    let rows: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter_map(|(i, l)| l.is_some().then_some(i))
        .collect();
    let coverage = if labels.is_empty() {
        0.0
    } else {
        rows.len() as f64 / labels.len() as f64
    };
    let mut correct = 0usize;
    for &i in &rows {
        let dist = labels[i].as_ref().expect("row filtered as covered");
        if adp_linalg::argmax(dist).expect("non-empty distribution") == data.train.labels[i] {
            correct += 1;
        }
    }
    let label_accuracy = (!rows.is_empty()).then(|| correct as f64 / rows.len() as f64);

    let preds: Vec<usize> = if rows.is_empty() {
        vec![0; data.test.len()]
    } else {
        let targets: Vec<Vec<f64>> = rows
            .iter()
            .map(|&i| labels[i].clone().expect("row filtered as covered"))
            .collect();
        let mut model = LogisticRegression::new(
            data.train.n_classes,
            adp_linalg::Features::ncols(&data.train.features),
            cfg,
        );
        model.fit(&data.train.features, &rows, Targets::Soft(&targets), None)?;
        (0..data.test.len())
            .map(|i| model.predict(&data.test.features, i))
            .collect()
    };
    Ok(FrameworkEval {
        test_accuracy: adp_classifier::accuracy(&preds, &data.test.labels),
        label_coverage: coverage,
        label_accuracy,
    })
}

#[cfg(test)]
pub(crate) mod testutil {
    use adp_data::{generate, DatasetId, Scale, SplitDataset};

    pub fn tiny_text() -> SplitDataset {
        // Seed 7: a representative draw. Seed 42's draw is degenerate at
        // Tiny scale (fully supervised logreg on half the split only
        // reaches 0.60 test accuracy), which says nothing about the
        // frameworks under test.
        generate(DatasetId::Youtube, Scale::Tiny, 7).expect("tiny dataset generates")
    }

    pub fn tiny_tabular() -> SplitDataset {
        generate(DatasetId::Occupancy, Scale::Tiny, 42).expect("tiny dataset generates")
    }

    /// Runs a framework for `iters` steps and returns its evaluation.
    pub fn drive(fw: &mut dyn super::Framework, iters: usize) -> super::FrameworkEval {
        for _ in 0..iters {
            fw.step().expect("step succeeds");
        }
        fw.evaluate().expect("evaluate succeeds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use activedp::SessionConfig;
    use testutil::*;

    #[test]
    fn activedp_session_implements_framework() {
        let data = tiny_text();
        let cfg = SessionConfig::paper_defaults(true, 1);
        let mut session = ActiveDpSession::new(data, cfg).unwrap();
        assert_eq!(Framework::name(&session), "ActiveDP");
        let eval = drive(&mut session, 10);
        assert!(eval.test_accuracy > 0.4);
    }

    #[test]
    fn downstream_eval_rejects_uncovered() {
        let data = tiny_text();
        let n = data.train.len();
        // Only class-consistent labels on the first half.
        let labels: Vec<Option<Vec<f64>>> = (0..n)
            .map(|i| {
                (i < n / 2).then(|| {
                    let mut d = vec![0.0; 2];
                    d[data.train.labels[i]] = 1.0;
                    d
                })
            })
            .collect();
        let eval = downstream_eval(&data, &labels, LogRegConfig::default()).unwrap();
        assert!((eval.label_coverage - 0.5).abs() < 0.01);
        assert_eq!(eval.label_accuracy, Some(1.0));
        assert!(eval.test_accuracy > 0.6, "{}", eval.test_accuracy);
    }

    #[test]
    fn downstream_eval_with_no_labels_is_defined() {
        let data = tiny_text();
        let labels = vec![None; data.train.len()];
        let eval = downstream_eval(&data, &labels, LogRegConfig::default()).unwrap();
        assert_eq!(eval.label_coverage, 0.0);
        assert_eq!(eval.label_accuracy, None);
        assert!(eval.test_accuracy > 0.0); // majority-ish degenerate predictions
    }
}
