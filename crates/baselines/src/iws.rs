//! Interactive Weak Supervision (Boecking et al., ICLR 2021), variant
//! IWS-LSE-a — the "unbounded" setting the paper evaluates (§4.1.2).
//!
//! The system maintains a pool of candidate LFs (keyword LFs with their
//! majority labels for text; a per-feature quantile grid of stumps for
//! tabular data) and a regression model predicting each candidate's
//! probability of being accurate. Each iteration it shows the expert the
//! most promising unverified candidate; the simulated expert accepts iff
//! the LF's true accuracy exceeds τ_acc. The final LF set contains every
//! accepted LF plus every unverified LF the model predicts accurate
//! ("a": all-above-threshold), which feeds the label model and the
//! downstream classifier.
//!
//! The accuracy model sees only information a real IWS system would have:
//! candidate coverage and each candidate's agreement/overlap with the LFs
//! accepted *so far*. Early on that signal barely exists, which reproduces
//! the paper's observation that IWS starts slowly ("the system fails to
//! provide good candidate LFs ... when the labelled data is scarce").

use crate::{Framework, FrameworkEval};
use activedp::ActiveDpError;
use adp_classifier::LogRegConfig;
use adp_data::SplitDataset;
use adp_labelmodel::{make_model, LabelModelKind};
use adp_lf::{Candidate, CandidateSpace, LabelMatrix, SimulatedUser, UserConfig};
use adp_linalg::{ridge_regression, Matrix};
use rand::{Rng, SeedableRng};

/// The IWS-LSE-a baseline.
pub struct Iws<'a> {
    data: &'a SplitDataset,
    user: SimulatedUser,
    rng: rand::rngs::StdRng,
    candidates: Vec<Candidate>,
    /// Training instances covered by each candidate (an LF's vote is its
    /// fixed label, so the covered set fully describes its behaviour).
    covered: Vec<Vec<u32>>,
    /// Per-instance accepted-LF vote counts.
    accepted_counts: Vec<Vec<u32>>,
    verified: Vec<Option<bool>>,
    n_verified: usize,
    weights: Option<Vec<f64>>,
    class_balance: Vec<f64>,
    downstream_cfg: LogRegConfig,
    /// Cap on the final LF set, keeping label-model fitting tractable.
    pub max_final_lfs: usize,
}

impl<'a> Iws<'a> {
    /// An IWS run over `data`, deterministic in `seed`. The candidate pool
    /// is capped at the `max_pool` highest-coverage candidates (real IWS
    /// likewise restricts the proposal family by support).
    pub fn new(data: &'a SplitDataset, seed: u64) -> Self {
        Self::with_pool_cap(data, seed, 800)
    }

    /// `new` with an explicit candidate-pool cap.
    pub fn with_pool_cap(data: &'a SplitDataset, seed: u64, max_pool: usize) -> Self {
        let space = CandidateSpace::build(&data.train);
        let mut candidates = space.global_pool(&data.train, 8);
        // Unbiased deterministic subsample when the family is huge: ranking
        // by coverage would stack the pool with frequent-but-uninformative
        // words, which is not how IWS's n-gram family behaves.
        if candidates.len() > max_pool {
            use rand::seq::SliceRandom;
            let mut pool_rng = rand::rngs::StdRng::seed_from_u64(0x1050_900D);
            candidates.shuffle(&mut pool_rng);
            candidates.truncate(max_pool);
        }
        let covered: Vec<Vec<u32>> = candidates
            .iter()
            .map(|c| {
                (0..data.train.len() as u32)
                    .filter(|&i| c.lf.apply(&data.train, i as usize) != adp_lf::ABSTAIN)
                    .collect()
            })
            .collect();
        Iws {
            user: SimulatedUser::new(UserConfig::default(), seed ^ 0x1050_0001),
            rng: rand::rngs::StdRng::seed_from_u64(seed ^ 0x1050_0002),
            accepted_counts: vec![vec![0; data.train.n_classes]; data.train.len()],
            verified: vec![None; candidates.len()],
            n_verified: 0,
            weights: None,
            class_balance: data.valid.class_balance(),
            downstream_cfg: LogRegConfig {
                max_iters: 150,
                ..LogRegConfig::default()
            },
            max_final_lfs: 300,
            candidates,
            covered,
            data,
        }
    }

    /// Number of verification queries answered so far.
    pub fn n_verified(&self) -> usize {
        self.n_verified
    }

    /// Number of candidates in the pool.
    pub fn pool_size(&self) -> usize {
        self.candidates.len()
    }

    /// Features of candidate `j` given the current accepted set: bias,
    /// coverage, agreement with the accepted majority on overlapping
    /// instances (0.5 when there is no overlap), and overlap fraction.
    fn feature_of(&self, j: usize) -> Vec<f64> {
        let label = self.candidates[j].lf.label();
        let mut overlap = 0usize;
        let mut agree = 0.0f64;
        for &i in &self.covered[j] {
            let counts = &self.accepted_counts[i as usize];
            let total: u32 = counts.iter().sum();
            if total == 0 {
                continue;
            }
            overlap += 1;
            let max = *counts.iter().max().expect("non-empty counts");
            let winners = counts.iter().filter(|&&c| c == max).count();
            if counts[label] == max {
                // Ties contribute fractionally.
                agree += 1.0 / winners as f64;
            }
        }
        let agreement = if overlap > 0 {
            agree / overlap as f64
        } else {
            0.5
        };
        let overlap_frac = if self.covered[j].is_empty() {
            0.0
        } else {
            overlap as f64 / self.covered[j].len() as f64
        };
        vec![1.0, self.candidates[j].coverage, agreement, overlap_frac]
    }

    /// Predicted accuracy probability for candidate `j` (0.5 prior before
    /// the regression has both outcome classes).
    fn predicted(&self, j: usize) -> f64 {
        match &self.weights {
            Some(w) => adp_linalg::dot(w, &self.feature_of(j)).clamp(0.0, 1.0),
            None => 0.5,
        }
    }

    /// Refits the accept-probability regression on the verdicts so far.
    fn refit(&mut self) {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for (j, v) in self.verified.iter().enumerate() {
            if let Some(ok) = v {
                rows.push(self.feature_of(j));
                ys.push(if *ok { 1.0 } else { 0.0 });
            }
        }
        // Need both outcomes before the regression is meaningful.
        if ys.contains(&1.0) && ys.contains(&0.0) {
            if let Ok(x) = Matrix::from_rows(&rows) {
                self.weights = ridge_regression(&x, &ys, 1e-2).ok();
            }
        }
    }

    /// The final LF set (indices into the candidate pool): accepted LFs plus
    /// unverified ones predicted accurate.
    pub fn final_set(&self) -> Vec<usize> {
        let mut scored: Vec<(usize, f64)> = (0..self.candidates.len())
            .filter_map(|j| match self.verified[j] {
                Some(true) => Some((j, 2.0)), // accepted always in front
                Some(false) => None,
                None => {
                    let p = self.predicted(j);
                    (self.weights.is_some() && p > 0.5).then_some((j, p))
                }
            })
            .collect();
        scored.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite scores")
                .then(a.0.cmp(&b.0))
        });
        scored.truncate(self.max_final_lfs);
        let mut out: Vec<usize> = scored.into_iter().map(|(j, _)| j).collect();
        out.sort_unstable();
        out
    }
}

impl Framework for Iws<'_> {
    fn name(&self) -> &'static str {
        "IWS"
    }

    fn step(&mut self) -> Result<(), ActiveDpError> {
        // Pick the unverified candidate with the highest expected utility
        // (predicted accuracy × coverage); before the regression exists,
        // explore randomly.
        let unverified: Vec<usize> = (0..self.candidates.len())
            .filter(|&j| self.verified[j].is_none())
            .collect();
        if unverified.is_empty() {
            return Ok(()); // every candidate verified; budget still consumed
        }
        let pick = if self.weights.is_none() || self.n_verified < 4 {
            unverified[self.rng.gen_range(0..unverified.len())]
        } else {
            unverified
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    let ua = self.predicted(a) * self.candidates[a].coverage;
                    let ub = self.predicted(b) * self.candidates[b].coverage;
                    ua.partial_cmp(&ub)
                        .expect("finite utilities")
                        .then(b.cmp(&a))
                })
                .expect("non-empty unverified set")
        };
        let verdict = self.user.verify(&self.candidates[pick]);
        self.verified[pick] = Some(verdict);
        self.n_verified += 1;
        if verdict {
            let label = self.candidates[pick].lf.label();
            for &i in &self.covered[pick] {
                self.accepted_counts[i as usize][label] += 1;
            }
        }
        self.refit();
        Ok(())
    }

    fn evaluate(&self) -> Result<FrameworkEval, ActiveDpError> {
        let set = self.final_set();
        let n = self.data.train.len();
        if set.is_empty() {
            return crate::downstream_eval(self.data, &vec![None; n], self.downstream_cfg);
        }
        let lfs: Vec<_> = set.iter().map(|&j| self.candidates[j].lf.clone()).collect();
        let matrix = LabelMatrix::from_lfs(&lfs, &self.data.train);
        let mut model = make_model(LabelModelKind::Triplet, self.data.train.n_classes);
        model.fit(&matrix, Some(&self.class_balance))?;
        let labels: Vec<Option<Vec<f64>>> = (0..n)
            .map(|i| {
                matrix
                    .has_vote(i)
                    .then(|| model.predict_proba(matrix.row(i)))
            })
            .collect();
        crate::downstream_eval(self.data, &labels, self.downstream_cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn verification_grows_accepted_set() {
        let data = tiny_text();
        let mut iws = Iws::new(&data, 1);
        for _ in 0..25 {
            iws.step().unwrap();
        }
        assert_eq!(iws.n_verified(), 25.min(iws.pool_size()));
        let set = iws.final_set();
        assert!(!set.is_empty());
        // Every *verified* member of the final set was accepted.
        for &j in &set {
            if let Some(v) = iws.verified[j] {
                assert!(v);
            }
        }
    }

    #[test]
    fn learns_on_text() {
        // IWS is the weakest framework in the paper (ActiveDP +13.5% on
        // average); expect above-chance behaviour, not strength, once a
        // reasonable number of verifications accumulated.
        let data = tiny_text();
        let mut iws = Iws::new(&data, 2);
        let eval = drive(&mut iws, 60);
        assert!(eval.test_accuracy > 0.45, "{}", eval.test_accuracy);
        assert!(eval.label_coverage > 0.1, "{}", eval.label_coverage);
    }

    #[test]
    fn tabular_candidate_grid_works() {
        let data = tiny_tabular();
        let mut iws = Iws::new(&data, 3);
        let eval = drive(&mut iws, 20);
        assert!(eval.test_accuracy > 0.5, "{}", eval.test_accuracy);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = tiny_text();
        let run = |seed| {
            let mut iws = Iws::new(&data, seed);
            drive(&mut iws, 10).test_accuracy
        };
        assert_eq!(run(4).to_bits(), run(4).to_bits());
    }

    #[test]
    fn exhausting_candidates_is_graceful() {
        let data = tiny_tabular();
        let mut iws = Iws::with_pool_cap(&data, 5, 30);
        let total = iws.pool_size();
        for _ in 0..total + 10 {
            iws.step().unwrap();
        }
        assert_eq!(iws.n_verified(), total);
        assert!(iws.evaluate().is_ok());
    }

    #[test]
    fn final_set_respects_cap() {
        let data = tiny_text();
        let mut iws = Iws::new(&data, 6);
        iws.max_final_lfs = 3;
        for _ in 0..15 {
            iws.step().unwrap();
        }
        assert!(iws.final_set().len() <= 3);
    }

    #[test]
    fn pool_cap_limits_candidates() {
        let data = tiny_text();
        let iws = Iws::with_pool_cap(&data, 7, 10);
        assert!(iws.pool_size() <= 10);
    }

    #[test]
    fn agreement_features_start_uninformative() {
        let data = tiny_text();
        let iws = Iws::new(&data, 8);
        // Before any acceptance, agreement defaults to 0.5 and overlap to 0.
        let f = iws.feature_of(0);
        assert_eq!(f[2], 0.5);
        assert_eq!(f[3], 0.0);
    }
}
