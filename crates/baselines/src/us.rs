//! Uncertainty sampling (Lewis 1995) — the pure active-learning baseline.
//!
//! Each iteration labels the instance with the highest predictive entropy
//! under the current model; the downstream model *is* that model, trained
//! on the labelled pool only (§4.2: "uncertain sampling can only use a
//! small labelled subset of data to train the downstream model").

use crate::{Framework, FrameworkEval};
use activedp::ActiveDpError;
use adp_classifier::{LogRegConfig, LogisticRegression, Targets};
use adp_data::SplitDataset;
use adp_lf::{SimulatedUser, UserConfig};
use adp_sampler::{Sampler, SamplerContext, Uncertainty};

/// The US baseline.
pub struct UncertaintySampling<'a> {
    data: &'a SplitDataset,
    model: LogisticRegression,
    sampler: Uncertainty,
    user: SimulatedUser,
    labeled: Vec<usize>,
    labels: Vec<usize>,
    queried: Vec<bool>,
    probs: Option<Vec<Vec<f64>>>,
    downstream_cfg: LogRegConfig,
}

impl<'a> UncertaintySampling<'a> {
    /// A US baseline over `data`, deterministic in `seed`.
    pub fn new(data: &'a SplitDataset, seed: u64) -> Self {
        let cfg = LogRegConfig::default();
        UncertaintySampling {
            model: LogisticRegression::new(
                data.train.n_classes,
                adp_linalg::Features::ncols(&data.train.features),
                cfg,
            ),
            sampler: Uncertainty::new(seed ^ 0x0500_0001),
            user: SimulatedUser::new(UserConfig::default(), seed ^ 0x0500_0002),
            labeled: vec![],
            labels: vec![],
            queried: vec![false; data.train.len()],
            probs: None,
            downstream_cfg: cfg,
            data,
        }
    }

    /// Number of labelled instances so far.
    pub fn n_labeled(&self) -> usize {
        self.labeled.len()
    }
}

impl Framework for UncertaintySampling<'_> {
    fn name(&self) -> &'static str {
        "US"
    }

    fn step(&mut self) -> Result<(), ActiveDpError> {
        let pick = {
            let ctx = SamplerContext {
                train: &self.data.train,
                queried: &self.queried,
                al_probs: self.probs.as_deref(),
                lm_probs: None,
                n_labeled: self.labeled.len(),
                space: None,
                seen_lfs: None,
                candidates: None,
            };
            self.sampler.select(&ctx)
        };
        let Some(i) = pick else {
            return Ok(()); // pool exhausted; budget still consumed
        };
        self.queried[i] = true;
        let y = self.user.label_instance(&self.data.train, i);
        self.labeled.push(i);
        self.labels.push(y);
        self.model.fit(
            &self.data.train.features,
            &self.labeled,
            Targets::Hard(&self.labels),
            None,
        )?;
        self.probs = Some(self.model.predict_proba_all(&self.data.train.features));
        Ok(())
    }

    fn evaluate(&self) -> Result<FrameworkEval, ActiveDpError> {
        let n = self.data.train.len();
        let mut labels: Vec<Option<Vec<f64>>> = vec![None; n];
        for (&i, &y) in self.labeled.iter().zip(&self.labels) {
            let mut d = vec![0.0; self.data.train.n_classes];
            d[y] = 1.0;
            labels[i] = Some(d);
        }
        crate::downstream_eval(self.data, &labels, self.downstream_cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn learns_on_easy_tabular_data() {
        let data = tiny_tabular();
        let mut us = UncertaintySampling::new(&data, 1);
        let eval = drive(&mut us, 30);
        assert_eq!(us.n_labeled(), 30);
        assert!(eval.test_accuracy > 0.8, "{}", eval.test_accuracy);
        // Human labels are exact.
        assert_eq!(eval.label_accuracy, Some(1.0));
        let expected_cov = 30.0 / data.train.len() as f64;
        assert!((eval.label_coverage - expected_cov).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = tiny_text();
        let run = |seed| {
            let mut us = UncertaintySampling::new(&data, seed);
            drive(&mut us, 10).test_accuracy
        };
        assert_eq!(run(5).to_bits(), run(5).to_bits());
    }

    #[test]
    fn pool_exhaustion_is_graceful() {
        let data = tiny_text();
        let n = data.train.len();
        let mut us = UncertaintySampling::new(&data, 2);
        for _ in 0..n + 5 {
            us.step().unwrap();
        }
        assert_eq!(us.n_labeled(), n);
        assert!(us.evaluate().is_ok());
    }
}
