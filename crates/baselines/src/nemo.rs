//! Nemo (Hsieh, Zhang & Ratner, VLDB 2022): interactive data programming
//! with SEU query selection.
//!
//! Each iteration the SEU sampler picks the instance whose prospective LFs
//! carry the most expected utility; the user writes an LF from it; the
//! label model aggregates *all* returned LFs; the downstream model trains
//! on the label model's probabilistic labels. Nemo uses no instance-level
//! labels and no LF selection — the properties ActiveDP's ablation study
//! isolates (§4.2: "they only use label functions for prediction").

use crate::{Framework, FrameworkEval};
use activedp::ActiveDpError;
use adp_classifier::LogRegConfig;
use adp_data::SplitDataset;
use adp_labelmodel::{make_model, LabelModel, LabelModelKind};
use adp_lf::{CandidateSpace, LabelFunction, LabelMatrix, LfKey, SimulatedUser, UserConfig};
use adp_sampler::{Sampler, SamplerContext, Seu};
use std::collections::HashSet;

/// The Nemo baseline.
pub struct Nemo<'a> {
    data: &'a SplitDataset,
    space: CandidateSpace,
    sampler: Seu,
    user: SimulatedUser,
    label_model: Box<dyn LabelModel>,
    class_balance: Vec<f64>,
    lfs: Vec<LabelFunction>,
    train_matrix: LabelMatrix,
    queried: Vec<bool>,
    seen: HashSet<LfKey>,
    lm_probs: Option<Vec<Vec<f64>>>,
    downstream_cfg: LogRegConfig,
}

impl<'a> Nemo<'a> {
    /// A Nemo run over `data`, deterministic in `seed`.
    pub fn new(data: &'a SplitDataset, seed: u64) -> Self {
        Nemo {
            space: CandidateSpace::build(&data.train),
            sampler: Seu::new(seed ^ 0x0E00_0001),
            user: SimulatedUser::new(UserConfig::default(), seed ^ 0x0E00_0002),
            label_model: make_model(LabelModelKind::Triplet, data.train.n_classes),
            class_balance: data.valid.class_balance(),
            lfs: vec![],
            train_matrix: LabelMatrix::empty(data.train.len()),
            queried: vec![false; data.train.len()],
            seen: HashSet::new(),
            lm_probs: None,
            downstream_cfg: LogRegConfig {
                max_iters: 150,
                ..LogRegConfig::default()
            },
            data,
        }
    }

    /// LFs collected so far.
    pub fn lfs(&self) -> &[LabelFunction] {
        &self.lfs
    }
}

impl Framework for Nemo<'_> {
    fn name(&self) -> &'static str {
        "Nemo"
    }

    fn step(&mut self) -> Result<(), ActiveDpError> {
        let pick = {
            let ctx = SamplerContext {
                train: &self.data.train,
                queried: &self.queried,
                al_probs: None,
                lm_probs: self.lm_probs.as_deref(),
                n_labeled: 0,
                space: Some(&self.space),
                seen_lfs: Some(&self.seen),
                candidates: None,
            };
            self.sampler.select(&ctx)
        };
        let Some(i) = pick else {
            return Ok(());
        };
        self.queried[i] = true;
        if let Some(lf) = self
            .user
            .respond(&self.space, &self.data.train, &self.data.train, i)
        {
            self.seen.insert(lf.key());
            self.train_matrix.push_lf(&lf, &self.data.train)?;
            self.lfs.push(lf);
            self.label_model
                .fit(&self.train_matrix, Some(&self.class_balance))?;
            self.lm_probs = Some(adp_labelmodel::predict_all(
                self.label_model.as_ref(),
                &self.train_matrix,
            ));
        }
        Ok(())
    }

    fn evaluate(&self) -> Result<FrameworkEval, ActiveDpError> {
        let n = self.data.train.len();
        let labels: Vec<Option<Vec<f64>>> = match &self.lm_probs {
            None => vec![None; n],
            Some(probs) => (0..n)
                .map(|i| self.train_matrix.has_vote(i).then(|| probs[i].clone()))
                .collect(),
        };
        crate::downstream_eval(self.data, &labels, self.downstream_cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn collects_lfs_and_learns() {
        let data = tiny_text();
        let mut nemo = Nemo::new(&data, 1);
        let eval = drive(&mut nemo, 25);
        assert!(nemo.lfs().len() > 5, "only {} LFs", nemo.lfs().len());
        assert!(eval.label_coverage > 0.2, "{}", eval.label_coverage);
        assert!(eval.test_accuracy > 0.55, "{}", eval.test_accuracy);
    }

    #[test]
    fn no_duplicate_lfs() {
        let data = tiny_text();
        let mut nemo = Nemo::new(&data, 2);
        for _ in 0..20 {
            nemo.step().unwrap();
        }
        let mut keys = HashSet::new();
        for lf in nemo.lfs() {
            assert!(keys.insert(lf.key()), "duplicate LF {lf:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = tiny_text();
        let run = |seed| {
            let mut nemo = Nemo::new(&data, seed);
            drive(&mut nemo, 12).test_accuracy
        };
        assert_eq!(run(9).to_bits(), run(9).to_bits());
    }

    #[test]
    fn evaluate_before_any_lf_is_defined() {
        let data = tiny_text();
        let nemo = Nemo::new(&data, 3);
        let eval = nemo.evaluate().unwrap();
        assert_eq!(eval.label_coverage, 0.0);
    }
}
