//! Eviction parity: a session evicted to its spill file and transparently
//! resumed must be indistinguishable — bit for bit, including its post-run
//! snapshot bytes — from one that was never evicted.
//!
//! These tests drive the hot/cold tiering introduced with
//! `SessionHub::with_memory_budget` through every seam: explicit `evict`
//! at every possible cut point, implicit LRU churn under a tight budget,
//! eviction racing `save_all`/`close` from other threads, and the
//! `Saturated` backpressure path over the network front end.

use activedp::{Engine, SessionConfig};
use adp_data::{generate, DatasetId, DatasetSpec, Scale};
use adp_serve::{Client, ClientError, ServeError, Server, SessionHub, SessionId};
use std::path::PathBuf;
use std::sync::Arc;

const DATA_SEED: u64 = 7;
const ITERS: usize = 8;

fn unique_tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "adp-evict-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec_of(seed: u64) -> DatasetSpec {
    DatasetSpec {
        id: DatasetId::Youtube,
        scale: Scale::Tiny,
        seed,
    }
}

fn config_of(seed: u64, parallel: bool) -> SessionConfig {
    let mut config = SessionConfig::paper_defaults(true, seed);
    config.parallel = parallel;
    config
}

/// The uninterrupted reference: query sequence, final accuracy bits, and
/// the post-run snapshot bytes of a solo engine run.
fn golden(seed: u64, parallel: bool, iters: usize) -> (Vec<Option<usize>>, u64, Vec<u8>) {
    let data = generate(DatasetId::Youtube, Scale::Tiny, DATA_SEED).unwrap();
    let mut engine = Engine::builder(data)
        .config(config_of(seed, parallel))
        .build()
        .unwrap();
    let queries = (0..iters).map(|_| engine.step().unwrap().query).collect();
    let accuracy = engine
        .evaluate_downstream()
        .unwrap()
        .test_accuracy
        .to_bits();
    let snapshot = engine.snapshot().unwrap().to_bytes();
    (queries, accuracy, snapshot)
}

fn hub_with_spill(shards: usize, dir: &PathBuf) -> SessionHub {
    SessionHub::with_spill_dir(shards, dir)
}

/// Runs a hub session to `iters` steps with an explicit eviction after
/// step `k`, and returns the same fingerprint as [`golden`].
fn evicted_run(
    hub: &SessionHub,
    seed: u64,
    parallel: bool,
    k: usize,
    iters: usize,
) -> (Vec<Option<usize>>, u64, Vec<u8>) {
    let id = hub
        .open_spec(spec_of(DATA_SEED), config_of(seed, parallel))
        .unwrap();
    let mut queries = Vec::with_capacity(iters);
    for _ in 0..k {
        queries.push(hub.step(id).unwrap().query);
    }
    assert!(
        matches!(hub.evict(id), Ok(true)),
        "evict after step {k} should spill the session"
    );
    assert_eq!(hub.cold_ids(), vec![id]);
    for _ in k..iters {
        queries.push(hub.step(id).unwrap().query);
    }
    let accuracy = hub.evaluate(id).unwrap().test_accuracy.to_bits();
    let snapshot = hub.snapshot(id).unwrap().to_bytes();
    hub.close(id).unwrap();
    (queries, accuracy, snapshot)
}

#[test]
fn eviction_at_every_cut_point_is_bitwise_invisible_serial() {
    // Evict after k steps for every k in 0..=ITERS: the full trajectory,
    // the evaluation, and the post-run snapshot bytes must all equal the
    // uninterrupted solo run's.
    let dir = unique_tempdir("every-k-serial");
    let reference = golden(1, false, ITERS);
    for k in 0..=ITERS {
        let hub = hub_with_spill(1, &dir);
        let run = evicted_run(&hub, 1, false, k, ITERS);
        assert_eq!(run.0, reference.0, "queries diverged with eviction at {k}");
        assert_eq!(run.1, reference.1, "accuracy diverged with eviction at {k}");
        assert_eq!(
            run.2, reference.2,
            "post-run snapshot bytes diverged with eviction at {k}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eviction_at_every_cut_point_is_bitwise_invisible_parallel() {
    // Same cut-point sweep with the data-parallel refit kernels on — the
    // resume path must preserve determinism under either execution policy.
    let dir = unique_tempdir("every-k-parallel");
    let reference = golden(2, true, ITERS);
    for k in 0..=ITERS {
        let hub = hub_with_spill(2, &dir);
        let run = evicted_run(&hub, 2, true, k, ITERS);
        assert_eq!(run.0, reference.0, "queries diverged with eviction at {k}");
        assert_eq!(run.1, reference.1, "accuracy diverged with eviction at {k}");
        assert_eq!(
            run.2, reference.2,
            "post-run snapshot bytes diverged with eviction at {k}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budget_churn_preserves_every_interleaved_trajectory() {
    // Six sessions behind a budget of two: round-robin stepping keeps
    // every touch evicting someone else, so each session crosses the
    // evict/resume boundary many times mid-trajectory. All six runs must
    // match their uninterrupted references, and the LRU order must follow
    // the interleaved touch order.
    const SESSIONS: u64 = 6;
    let dir = unique_tempdir("churn");
    let hub = hub_with_spill(2, &dir).with_memory_budget(2);
    let ids: Vec<SessionId> = (0..SESSIONS)
        .map(|seed| {
            hub.open_spec(spec_of(DATA_SEED), config_of(seed, false))
                .unwrap()
        })
        .collect();
    let mut queries = vec![Vec::new(); ids.len()];
    for _round in 0..ITERS {
        for (k, &id) in ids.iter().enumerate() {
            queries[k].push(hub.step(id).unwrap().query);
        }
    }
    // After the final round the two most recently touched sessions are
    // hot, everyone else cold — LRU by interleaved touch order.
    assert_eq!(hub.resident_ids(), vec![ids[4], ids[5]]);
    assert_eq!(
        hub.cold_ids(),
        vec![ids[0], ids[1], ids[2], ids[3]],
        "the four stalest sessions should be cold"
    );
    for (k, &id) in ids.iter().enumerate() {
        let seed = k as u64;
        let reference = golden(seed, false, ITERS);
        assert_eq!(queries[k], reference.0, "session {seed} diverged");
        assert_eq!(
            hub.evaluate(id).unwrap().test_accuracy.to_bits(),
            reference.1,
            "session {seed} evaluation diverged"
        );
        assert_eq!(
            hub.snapshot(id).unwrap().to_bytes(),
            reference.2,
            "session {seed} post-run snapshot bytes diverged"
        );
    }
    assert!(hub.metrics().evicted_total.get() >= SESSIONS);
    assert!(hub.metrics().resumed_total.get() >= SESSIONS);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eviction_races_save_all_and_close_without_corruption() {
    // Three threads hammer the same hub: one evicts random sessions, one
    // loops save_all, one closes sessions from the tail. Races may surface
    // as UnknownSession (closed underneath a caller) but never as a panic,
    // a poisoned hub, or a corrupted survivor trajectory.
    const SESSIONS: u64 = 6;
    const KEEP: usize = 2; // sessions the closer thread never touches
    let dir = unique_tempdir("races");
    let hub = hub_with_spill(2, &dir);
    let ids: Vec<SessionId> = (0..SESSIONS)
        .map(|seed| {
            hub.open_spec(spec_of(DATA_SEED), config_of(seed, false))
                .unwrap()
        })
        .collect();

    std::thread::scope(|scope| {
        let evictor = scope.spawn(|| {
            let mut state = 9u64;
            for _ in 0..60 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let id = ids[(state >> 16) as usize % ids.len()];
                match hub.evict(id) {
                    Ok(_) | Err(ServeError::UnknownSession(_)) => {}
                    Err(e) => panic!("evict race surfaced {e}"),
                }
            }
        });
        let saver = scope.spawn(|| {
            for _ in 0..20 {
                // save_all skips nothing silently: a session closed mid-walk
                // is the only acceptable miss.
                match hub.save_all() {
                    Ok(_) | Err(ServeError::UnknownSession(_)) => {}
                    Err(e) => panic!("save_all race surfaced {e}"),
                }
            }
        });
        let closer = scope.spawn(|| {
            for &id in &ids[KEEP..] {
                match hub.close(id) {
                    Ok(()) | Err(ServeError::UnknownSession(_)) => {}
                    Err(e) => panic!("close race surfaced {e}"),
                }
            }
        });
        evictor.join().expect("evictor thread");
        saver.join().expect("saver thread");
        closer.join().expect("closer thread");
    });

    // The survivors still serve and still match their references.
    for (k, &id) in ids[..KEEP].iter().enumerate() {
        let seed = k as u64;
        let reference = golden(seed, false, ITERS);
        let queries: Vec<Option<usize>> = (0..ITERS).map(|_| hub.step(id).unwrap().query).collect();
        assert_eq!(queries, reference.0, "survivor {seed} diverged after races");
        assert_eq!(
            hub.snapshot(id).unwrap().to_bytes(),
            reference.2,
            "survivor {seed} snapshot diverged after races"
        );
    }
    assert_eq!(hub.session_count().unwrap(), KEEP);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn saturation_backpressure_reaches_clients_over_the_wire() {
    // A budget-1 hub with no spill directory cannot evict, so the second
    // create must be refused with the typed Saturated error — and the
    // refusal must ride the protocol as a server error naming saturation,
    // leaving both the connection and the admitted session serving.
    let hub = SessionHub::in_memory(1).with_memory_budget(1);
    assert!(hub.spill_dir().is_none(), "test requires a spill-free hub");
    let server = Server::bind("127.0.0.1:0", Arc::new(hub)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let admitted = client
        .create("Youtube", "tiny", DATA_SEED, 1, None)
        .unwrap();
    let err = client
        .create("Youtube", "tiny", DATA_SEED, 2, None)
        .unwrap_err();
    assert!(
        matches!(&err, ClientError::Server(e) if e.contains("saturated")),
        "expected saturation backpressure, got {err}"
    );
    // Backpressure is not failure: the connection and session both live.
    assert_eq!(client.step(admitted).unwrap().iteration, 1);
    let health = client.health().unwrap();
    assert_eq!(health.max_resident, Some(1));
    assert_eq!(health.resident, 1);
    // Closing the admitted session frees the budget slot.
    client.close_session(admitted).unwrap();
    let replacement = client
        .create("Youtube", "tiny", DATA_SEED, 3, None)
        .unwrap();
    assert_ne!(replacement, admitted);
}
