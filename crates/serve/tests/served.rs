//! End-to-end tests of the `adp-served` network front end: real TCP
//! sockets, concurrent clients, and the kill/reload/resume cycle durable
//! sessions exist for.

use activedp::{Engine, SessionConfig};
use adp_data::{generate, DatasetId, Scale};
use adp_serve::{Client, ClientError, Server, SessionHub, StepReply};
use std::path::PathBuf;
use std::sync::Arc;

const DATASET: &str = "Youtube";
const DATA_SEED: u64 = 7;
const ITERS: u64 = 10;

fn unique_tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "adp-served-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The solo-engine reference for a session seed: query sequence and the
/// bit pattern of the final test accuracy.
fn solo_fingerprint(seed: u64, iters: u64) -> (Vec<Option<u64>>, u64) {
    let data = generate(DatasetId::Youtube, Scale::Tiny, DATA_SEED).unwrap();
    let mut engine = Engine::builder(data)
        .config(SessionConfig::paper_defaults(true, seed))
        .build()
        .unwrap();
    let queries = (0..iters)
        .map(|_| engine.step().unwrap().query.map(|q| q as u64))
        .collect();
    let report = engine.evaluate_downstream().unwrap();
    (queries, report.test_accuracy.to_bits())
}

fn served_fingerprint(outcomes: &[StepReply], accuracy: f64) -> (Vec<Option<u64>>, u64) {
    (
        outcomes.iter().map(|o| o.query).collect(),
        accuracy.to_bits(),
    )
}

#[test]
fn concurrent_clients_reproduce_solo_trajectories() {
    // ≥ 4 clients, each its own socket and session, stepped concurrently:
    // every served trajectory must equal the solo engine run bit for bit.
    const CLIENTS: u64 = 5;
    let server = Server::bind("127.0.0.1:0", Arc::new(SessionHub::new(3))).unwrap();
    let addr = server.addr();

    let served: Vec<(Vec<Option<u64>>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|seed| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connects");
                    let session = client
                        .create(DATASET, "tiny", DATA_SEED, seed, None)
                        .expect("creates");
                    let outcomes: Vec<StepReply> = (0..ITERS)
                        .map(|_| client.step(session).expect("steps"))
                        .collect();
                    let eval = client.evaluate(session).expect("evaluates");
                    served_fingerprint(&outcomes, eval.test_accuracy)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    for (seed, fingerprint) in served.into_iter().enumerate() {
        assert_eq!(
            fingerprint,
            solo_fingerprint(seed as u64, ITERS),
            "client seed {seed} diverged from the solo engine"
        );
    }
    assert_eq!(server.hub().session_count().unwrap(), CLIENTS as usize);
}

#[test]
fn kill_reload_resume_cycle_is_bitwise_transparent() {
    // Four sessions run half their trajectory against server #1, which is
    // then shut down and replaced by a fresh server over the same spill
    // directory ("process killed, restarted"). Clients reconnect, find
    // their sessions under the *same ids* at the right iteration, run the
    // second half, and the full trajectories match uninterrupted solo runs
    // bit for bit.
    const CLIENTS: u64 = 4;
    const SPLIT: u64 = 5;
    let dir = unique_tempdir("cycle");

    let first = Server::bind("127.0.0.1:0", Arc::new(SessionHub::with_spill_dir(2, &dir))).unwrap();
    let addr1 = first.addr();
    let mut sessions = Vec::new();
    let mut first_halves = Vec::new();
    for seed in 0..CLIENTS {
        let mut client = Client::connect(addr1).unwrap();
        let session = client
            .create(DATASET, "tiny", DATA_SEED, seed, None)
            .unwrap();
        let outcomes: Vec<StepReply> = (0..SPLIT).map(|_| client.step(session).unwrap()).collect();
        sessions.push(session);
        first_halves.push(outcomes);
    }
    // Durable shutdown: spill every session, then kill the server.
    let mut admin = Client::connect(addr1).unwrap();
    let saved = admin.save_all().unwrap();
    assert_eq!(saved, sessions);
    drop(admin);
    let hub = first.shutdown();
    drop(hub);

    // "Restart": a brand-new hub + server over the same spill directory.
    let reloaded = SessionHub::with_spill_dir(2, &dir);
    let loaded = reloaded.load_all().unwrap();
    assert_eq!(
        loaded.iter().map(|id| id.raw()).collect::<Vec<_>>(),
        sessions
    );
    let second = Server::bind("127.0.0.1:0", Arc::new(reloaded)).unwrap();
    let addr2 = second.addr();

    for (k, (&session, first_half)) in sessions.iter().zip(&first_halves).enumerate() {
        let seed = k as u64;
        let mut client = Client::connect(addr2).unwrap();
        let opened = client.open(session).expect("reloaded session answers");
        assert_eq!(opened.iteration, SPLIT, "session {session}");
        let second_half: Vec<StepReply> = (SPLIT..ITERS)
            .map(|_| client.step(session).unwrap())
            .collect();
        let eval = client.evaluate(session).unwrap();
        let mut all = first_half.clone();
        all.extend(second_half);
        assert_eq!(
            served_fingerprint(&all, eval.test_accuracy),
            solo_fingerprint(seed, ITERS),
            "resumed session {session} diverged from the uninterrupted run"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A real `adp-served` child process; killed hard (SIGKILL, no shutdown
/// path) when dropped so a failing assertion never leaks a server.
struct ServedProc {
    child: std::process::Child,
    addr: String,
}

impl ServedProc {
    fn spawn(spill_dir: &std::path::Path) -> ServedProc {
        use std::io::BufRead;
        let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_adp-served"))
            .args(["--addr", "127.0.0.1:0", "--shards", "2", "--spill-dir"])
            .arg(spill_dir)
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawns adp-served");
        // The binary prints its bound address once it is serving.
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("adp-served exited before listening")
                .expect("readable stdout");
            if let Some(addr) = line.strip_prefix("adp-served listening on ") {
                break addr.to_string();
            }
        };
        // Keep draining stdout so the child never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        ServedProc { child, addr }
    }

    fn kill(mut self) {
        let _ = self.child.kill(); // SIGKILL: no destructors, no final save
        let _ = self.child.wait();
    }
}

impl Drop for ServedProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn sigkill_crash_recovers_to_the_durable_tip() {
    // The hard-crash sibling of the kill/reload test above: the server is
    // SIGKILLed with NO save_all — the write-ahead log alone must carry
    // the session. A restarted server over the same spill directory
    // replays the journal, serves the session under the same id at the
    // last committed iteration, and the completed trajectory matches an
    // uninterrupted solo run bit for bit.
    const SPLIT: u64 = 4;
    const SEED: u64 = 3;
    let dir = unique_tempdir("sigkill");
    std::fs::create_dir_all(&dir).unwrap();

    let first = ServedProc::spawn(&dir);
    let mut client = Client::connect(&first.addr).unwrap();
    let session = client
        .create(DATASET, "tiny", DATA_SEED, SEED, None)
        .unwrap();
    let first_half: Vec<StepReply> = (0..SPLIT).map(|_| client.step(session).unwrap()).collect();
    // Every single step is a durable commit point; the client confirms.
    let opened = client.open(session).unwrap();
    assert_eq!(
        opened.durability.expect("journalled").durable_iteration,
        SPLIT
    );
    drop(client);
    first.kill(); // no graceful path: snapshot never written

    let second = ServedProc::spawn(&dir);
    let mut client = Client::connect(&second.addr).unwrap();
    let opened = client.open(session).expect("crashed session came back");
    assert_eq!(opened.iteration, SPLIT, "recovered to the durable tip");
    let second_half: Vec<StepReply> = (SPLIT..ITERS)
        .map(|_| client.step(session).unwrap())
        .collect();
    let eval = client.evaluate(session).unwrap();
    let mut all = first_half;
    all.extend(second_half);
    assert_eq!(
        served_fingerprint(&all, eval.test_accuracy),
        solo_fingerprint(SEED, ITERS),
        "recovered trajectory diverged from the uninterrupted run"
    );

    // Point-in-time recovery over the wire: any pre-crash commit point is
    // still reachable as a new session.
    let rec = client.recover(session, 2).unwrap();
    assert_ne!(rec, session);
    assert_eq!(client.open(rec).unwrap().iteration, 2);

    second.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn one_connection_can_multiplex_sessions_and_batches() {
    let server = Server::bind("127.0.0.1:0", Arc::new(SessionHub::new(2))).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let a = client.create(DATASET, "tiny", DATA_SEED, 1, None).unwrap();
    let b = client
        .create(DATASET, "tiny", DATA_SEED, 2, Some(false))
        .unwrap();
    assert_ne!(a, b);
    let outcomes = client.step_batch(a, 4).unwrap();
    assert_eq!(outcomes.len(), 4);
    client.run(b, 3).unwrap();
    assert_eq!(client.open(a).unwrap().iteration, 4);
    assert_eq!(client.open(b).unwrap().iteration, 3);
    client.close_session(a).unwrap();
    let err = client.step(a).unwrap_err();
    assert!(matches!(err, ClientError::Server(e) if e.contains("unknown")));
    // The connection survives server-side errors; session b still serves.
    assert_eq!(client.step(b).unwrap().iteration, 4);
}

#[test]
fn create_spec_over_the_wire_matches_the_flat_create() {
    use activedp::ScenarioSpec;
    use adp_data::{DatasetSpec, Scale};
    // The declarative request and the flat per-field one route through the
    // same hub path, so two sessions created either way from the same
    // description serve identical trajectories.
    let server = Server::bind("127.0.0.1:0", Arc::new(SessionHub::new(2))).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let mut spec = ScenarioSpec::new(DatasetSpec {
        id: DATASET.parse().unwrap(),
        scale: Scale::Tiny,
        seed: DATA_SEED,
    });
    spec.session.seed = 5;
    let declarative = client.create_spec(&spec).unwrap();
    let flat = client.create(DATASET, "tiny", DATA_SEED, 5, None).unwrap();
    assert_ne!(declarative, flat);
    let a = client.step_batch(declarative, 5).unwrap();
    let b = client.step_batch(flat, 5).unwrap();
    assert_eq!(a, b);
    let ea = client.evaluate(declarative).unwrap();
    let eb = client.evaluate(flat).unwrap();
    assert_eq!(ea.test_accuracy.to_bits(), eb.test_accuracy.to_bits());
}

#[test]
fn protocol_errors_do_not_poison_the_connection() {
    let server = Server::bind("127.0.0.1:0", Arc::new(SessionHub::new(1))).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    // Unknown dataset → server error reply…
    let err = client.create("Atlantis", "tiny", 1, 1, None).unwrap_err();
    assert!(matches!(err, ClientError::Server(_)));
    // …after which the same connection still works.
    let session = client.create(DATASET, "tiny", DATA_SEED, 3, None).unwrap();
    assert_eq!(client.step(session).unwrap().iteration, 1);
}
