//! Hand-rolled serving metrics: atomic counters, gauges and fixed-bucket
//! latency histograms, rendered in the Prometheus text exposition format.
//!
//! The offline-vendor constraint rules out the `prometheus` crate, and the
//! serving layer's needs are modest: per-operation request/error counters
//! and latency histograms (open/step/step_batch/evaluate/evict/resume),
//! plus residency gauges and eviction/resume/saturation totals for the
//! hub's hot/cold tiering. Everything here is `std::sync::atomic` —
//! recording a sample is a handful of relaxed atomic adds, cheap enough to
//! sit on every request path (benched as `metrics_overhead_*` in
//! `crates/bench`).
//!
//! [`HubMetrics::render`] produces the `/metrics` payload served by
//! `adp-served` (both as the `{"cmd":"metrics"}` JSON reply and the
//! plain-text HTTP shim for curl/Prometheus scrapes). Relaxed ordering
//! means a scrape is not a consistent point-in-time cut across metrics —
//! standard for Prometheus clients; each individual series is monotone.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Histogram bucket upper bounds, in microseconds. Spanning 50µs to 250ms
/// covers everything from a status probe to an evict/resume cycle at paper
/// scale; slower samples land in the implicit `+Inf` bucket.
pub const BUCKET_BOUNDS_US: [u64; 12] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
];

/// The bucket bounds as Prometheus `le` label values (seconds), kept as
/// literals so rendering never goes through float formatting.
const BUCKET_LABELS: [&str; 12] = [
    "0.00005", "0.0001", "0.00025", "0.0005", "0.001", "0.0025", "0.005", "0.01", "0.025", "0.05",
    "0.1", "0.25",
];

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An up/down gauge (e.g. resident session count). Stored as a signed
/// value inside a `u64` cell; reads clamp at zero so a transient
/// decrement-before-increment interleaving can never render as 2⁶⁴.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// The current value, clamped at zero.
    pub fn get(&self) -> u64 {
        let raw = self.0.load(Ordering::Relaxed) as i64;
        raw.max(0) as u64
    }
}

/// A fixed-bucket latency histogram. Buckets store per-interval counts;
/// rendering produces the cumulative form Prometheus expects.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_US.len()],
    /// Samples past the last bound (the `+Inf` bucket).
    overflow: AtomicU64,
    /// Total samples.
    count: AtomicU64,
    /// Sum of all samples, in microseconds (saturating).
    sum_us: AtomicU64,
}

impl Histogram {
    /// Records one latency sample.
    pub fn observe(&self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        match BUCKET_BOUNDS_US.iter().position(|&bound| us <= bound) {
            Some(idx) => self.buckets[idx].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating: ~584k years of accumulated latency before the sum
        // pins, but a tampered clock must not wrap it.
        let mut current = self.sum_us.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_add(us);
            match self.sum_us.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_us.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Upper bound (seconds) of the bucket containing the `q`-quantile
    /// (0 < q ≤ 1), `None` while empty, `f64::INFINITY` when the quantile
    /// falls in the overflow bucket. Coarse by construction — it answers
    /// "roughly how slow is the p95" from fixed buckets, which is all the
    /// load driver's summary needs.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= target {
                return Some(BUCKET_BOUNDS_US[idx] as f64 / 1e6);
            }
        }
        Some(f64::INFINITY)
    }

    fn render_into(&self, out: &mut String, name: &str, op: &str) {
        use std::fmt::Write;
        // An empty `op` renders an unlabelled family (`le` is still a
        // per-bucket label); a named one prefixes every series with it.
        let op_label = if op.is_empty() {
            String::new()
        } else {
            format!("op=\"{op}\",")
        };
        let plain = if op.is_empty() {
            String::new()
        } else {
            format!("{{op=\"{op}\"}}")
        };
        let mut cumulative = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            let _ = writeln!(
                out,
                "{name}_bucket{{{op_label}le=\"{}\"}} {cumulative}",
                BUCKET_LABELS[idx]
            );
        }
        cumulative += self.overflow.load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_bucket{{{op_label}le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{name}_sum{plain} {}", self.sum_seconds());
        let _ = writeln!(out, "{name}_count{plain} {}", self.count());
    }
}

/// The instrumented hub operations. `Open` covers session establishment
/// and the protocol's `open` status probe; `Evict`/`Resume` are the
/// tiering transitions, timed where they happen (on the shard worker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Session creation and the `open` status probe.
    Open,
    /// One training iteration.
    Step,
    /// Batched stepping.
    StepBatch,
    /// Downstream evaluation.
    Evaluate,
    /// Spilling a resident session cold.
    Evict,
    /// Bringing a cold session back on first touch.
    Resume,
    /// One `run_spec` slice: build-or-resume an ephemeral engine, run a
    /// bounded piece of its schedule (the distributed sweep's unit of
    /// work).
    RunSpec,
}

impl Op {
    /// Every instrumented operation, in render order.
    pub const ALL: [Op; 7] = [
        Op::Open,
        Op::Step,
        Op::StepBatch,
        Op::Evaluate,
        Op::Evict,
        Op::Resume,
        Op::RunSpec,
    ];

    /// The `op` label value.
    pub fn label(self) -> &'static str {
        match self {
            Op::Open => "open",
            Op::Step => "step",
            Op::StepBatch => "step_batch",
            Op::Evaluate => "evaluate",
            Op::Evict => "evict",
            Op::Resume => "resume",
            Op::RunSpec => "run_spec",
        }
    }

    fn index(self) -> usize {
        match self {
            Op::Open => 0,
            Op::Step => 1,
            Op::StepBatch => 2,
            Op::Evaluate => 3,
            Op::Evict => 4,
            Op::Resume => 5,
            Op::RunSpec => 6,
        }
    }
}

/// One operation's request/error counters and latency histogram.
#[derive(Debug, Default)]
pub struct OpMetrics {
    /// Requests routed through this operation, success or failure.
    pub requests: Counter,
    /// Requests that returned an error.
    pub errors: Counter,
    /// Wall-clock latency (queueing on the shard included — that is what
    /// callers feel).
    pub latency: Histogram,
}

/// The hub's whole metric surface; one instance lives inside each
/// `SessionHub` and is shared with the shard workers.
#[derive(Debug, Default)]
pub struct HubMetrics {
    ops: [OpMetrics; Op::ALL.len()],
    /// Sessions currently resident (engine in memory).
    pub resident: Gauge,
    /// Sessions currently cold (spilled to disk, resumable on touch).
    pub cold: Gauge,
    /// Evictions since the hub started.
    pub evicted_total: Counter,
    /// Cold-session resumes since the hub started.
    pub resumed_total: Counter,
    /// Creates rejected with `ServeError::Saturated`.
    pub saturated_total: Counter,
    /// Sweep cells completed by `run_spec` on this worker (a cell sliced
    /// across several `run_spec` calls counts once, at its final slice).
    pub sweep_cells_total: Counter,
    /// Whole-cell `run_spec` wall clock: engine build/resume through the
    /// final evaluation (or the boundary snapshot, for a partial slice).
    pub sweep_cell_latency: Histogram,
    /// Dual-oracle queries answered by the cheap noisy oracle, across the
    /// step/step_batch outcomes this hub served (escalated queries count
    /// under `routed_escalated_total` only).
    pub routed_cheap_total: Counter,
    /// Dual-oracle queries answered directly by the expensive simulated
    /// user.
    pub routed_expensive_total: Counter,
    /// Dual-oracle queries that consulted the cheap oracle first and
    /// escalated to the simulated user.
    pub routed_escalated_total: Counter,
}

impl HubMetrics {
    /// A zeroed metric surface.
    pub fn new() -> Self {
        Self::default()
    }

    /// The named operation's metrics.
    pub fn op(&self, op: Op) -> &OpMetrics {
        &self.ops[op.index()]
    }

    /// Records one completed operation.
    pub fn record(&self, op: Op, latency: Duration, failed: bool) {
        let metrics = self.op(op);
        metrics.requests.inc();
        if failed {
            metrics.errors.inc();
        }
        metrics.latency.observe(latency);
    }

    /// Renders the Prometheus text exposition payload.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(4096);
        out.push_str("# HELP adp_requests_total Hub requests by operation.\n");
        out.push_str("# TYPE adp_requests_total counter\n");
        for op in Op::ALL {
            let _ = writeln!(
                out,
                "adp_requests_total{{op=\"{}\"}} {}",
                op.label(),
                self.op(op).requests.get()
            );
        }
        out.push_str("# HELP adp_errors_total Hub requests that returned an error.\n");
        out.push_str("# TYPE adp_errors_total counter\n");
        for op in Op::ALL {
            let _ = writeln!(
                out,
                "adp_errors_total{{op=\"{}\"}} {}",
                op.label(),
                self.op(op).errors.get()
            );
        }
        out.push_str("# HELP adp_op_latency_seconds Hub request latency by operation.\n");
        out.push_str("# TYPE adp_op_latency_seconds histogram\n");
        for op in Op::ALL {
            self.op(op)
                .latency
                .render_into(&mut out, "adp_op_latency_seconds", op.label());
        }
        out.push_str("# HELP adp_sessions_resident Sessions with an engine in memory.\n");
        out.push_str("# TYPE adp_sessions_resident gauge\n");
        let _ = writeln!(out, "adp_sessions_resident {}", self.resident.get());
        out.push_str("# HELP adp_sessions_cold Sessions spilled cold, resumable on touch.\n");
        out.push_str("# TYPE adp_sessions_cold gauge\n");
        let _ = writeln!(out, "adp_sessions_cold {}", self.cold.get());
        out.push_str("# HELP adp_evictions_total Sessions evicted to their spill file.\n");
        out.push_str("# TYPE adp_evictions_total counter\n");
        let _ = writeln!(out, "adp_evictions_total {}", self.evicted_total.get());
        out.push_str("# HELP adp_resumes_total Cold sessions resumed on touch.\n");
        out.push_str("# TYPE adp_resumes_total counter\n");
        let _ = writeln!(out, "adp_resumes_total {}", self.resumed_total.get());
        out.push_str(
            "# HELP adp_saturated_total Creates rejected because the hub was saturated.\n",
        );
        out.push_str("# TYPE adp_saturated_total counter\n");
        let _ = writeln!(out, "adp_saturated_total {}", self.saturated_total.get());
        out.push_str("# HELP adp_routed_queries_total Dual-oracle queries by answering oracle.\n");
        out.push_str("# TYPE adp_routed_queries_total counter\n");
        for (label, counter) in [
            ("cheap", &self.routed_cheap_total),
            ("expensive", &self.routed_expensive_total),
            ("escalated", &self.routed_escalated_total),
        ] {
            let _ = writeln!(
                out,
                "adp_routed_queries_total{{oracle=\"{label}\"}} {}",
                counter.get()
            );
        }
        out.push_str("# HELP adp_sweep_cells_total Sweep cells completed via run_spec.\n");
        out.push_str("# TYPE adp_sweep_cells_total counter\n");
        let _ = writeln!(
            out,
            "adp_sweep_cells_total {}",
            self.sweep_cells_total.get()
        );
        out.push_str("# HELP adp_sweep_cell_seconds run_spec slice wall clock.\n");
        out.push_str("# TYPE adp_sweep_cell_seconds histogram\n");
        self.sweep_cell_latency
            .render_into(&mut out, "adp_sweep_cell_seconds", "");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_track() {
        let m = HubMetrics::new();
        m.record(Op::Step, Duration::from_micros(80), false);
        m.record(Op::Step, Duration::from_micros(800), true);
        assert_eq!(m.op(Op::Step).requests.get(), 2);
        assert_eq!(m.op(Op::Step).errors.get(), 1);
        assert_eq!(m.op(Op::Step).latency.count(), 2);
        assert_eq!(m.op(Op::Open).requests.get(), 0);

        m.resident.inc();
        m.resident.inc();
        m.resident.dec();
        assert_eq!(m.resident.get(), 1);
        // A transient dec-before-inc interleaving renders as 0, never 2⁶⁴.
        m.cold.dec();
        assert_eq!(m.cold.get(), 0);
        m.cold.inc();
        assert_eq!(m.cold.get(), 0, "recovers once the inc lands");
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_render() {
        let h = Histogram::default();
        h.observe(Duration::from_micros(40)); // ≤ 50µs
        h.observe(Duration::from_micros(60)); // ≤ 100µs
        h.observe(Duration::from_secs(10)); // +Inf
        let mut out = String::new();
        h.render_into(&mut out, "x", "step");
        assert!(
            out.contains("x_bucket{op=\"step\",le=\"0.00005\"} 1"),
            "{out}"
        );
        assert!(
            out.contains("x_bucket{op=\"step\",le=\"0.0001\"} 2"),
            "{out}"
        );
        assert!(out.contains("x_bucket{op=\"step\",le=\"0.25\"} 2"), "{out}");
        assert!(out.contains("x_bucket{op=\"step\",le=\"+Inf\"} 3"), "{out}");
        assert!(out.contains("x_count{op=\"step\"} 3"), "{out}");
        assert_eq!(h.count(), 3);
        assert!(h.sum_seconds() > 10.0);
    }

    #[test]
    fn quantiles_come_from_bucket_bounds() {
        let h = Histogram::default();
        assert_eq!(h.quantile_upper_bound(0.5), None);
        for _ in 0..9 {
            h.observe(Duration::from_micros(200)); // ≤ 250µs
        }
        h.observe(Duration::from_secs(1)); // +Inf
        assert_eq!(h.quantile_upper_bound(0.5), Some(0.00025));
        assert_eq!(h.quantile_upper_bound(1.0), Some(f64::INFINITY));
    }

    #[test]
    fn sweep_cell_counters_render_unlabelled() {
        let m = HubMetrics::new();
        m.sweep_cells_total.inc();
        m.sweep_cells_total.inc();
        m.sweep_cell_latency.observe(Duration::from_millis(2));
        let text = m.render();
        assert!(text.contains("adp_sweep_cells_total 2"), "{text}");
        // The histogram family has `le` buckets but no `op` label.
        assert!(
            text.contains("adp_sweep_cell_seconds_bucket{le=\"0.0025\"} 1"),
            "{text}"
        );
        assert!(text.contains("adp_sweep_cell_seconds_count 1"), "{text}");
        assert!(
            !text.contains("adp_sweep_cell_seconds_bucket{op="),
            "{text}"
        );
        // And run_spec shows up in the per-op request families.
        m.record(Op::RunSpec, Duration::from_micros(90), false);
        let text = m.render();
        assert!(
            text.contains("adp_requests_total{op=\"run_spec\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn render_is_prometheus_shaped() {
        let m = HubMetrics::new();
        m.record(Op::Evict, Duration::from_millis(3), false);
        m.evicted_total.inc();
        let text = m.render();
        // One TYPE line per family, families contiguous, all ops present.
        assert_eq!(
            text.matches("# TYPE adp_op_latency_seconds histogram")
                .count(),
            1
        );
        for op in Op::ALL {
            assert!(text.contains(&format!("adp_requests_total{{op=\"{}\"}}", op.label())));
        }
        assert!(text.contains("adp_op_latency_seconds_count{op=\"evict\"} 1"));
        assert!(text.contains("adp_evictions_total 1"));
        assert!(text.contains("adp_sessions_resident 0"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable value in {line:?}"
            );
            assert!(parts.next().is_some(), "no name in {line:?}");
        }
    }
}
