//! Hub persistence: spilling live sessions to disk and loading them back.
//!
//! Each persistable session becomes one file, `session-<id>.adpsnap`,
//! under the hub's spill directory:
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────┐
//! │ magic  "ADPHUBS\0"            8 bytes                    │
//! │ format version                u32 LE                     │
//! │ session id                    u64 LE                     │
//! │ dataset spec   id tag u8 · scale tag u8 [· factor f64]   │
//! │                · generator seed u64                      │
//! │ snapshot       length-prefixed `SessionSnapshot` bytes   │
//! │                (its own versioned envelope inside)       │
//! └──────────────────────────────────────────────────────────┘
//! ```
//!
//! Writes are **atomic** ([`adp_wire::atomic::atomic_write`], shared with
//! the WAL's segments and manifests): the bytes go to a unique `.tmp`
//! first, are fsynced, and are `rename`d into place, so a crash mid-save
//! leaves either the previous complete file or none — never a torn one. Loads reject foreign magic,
//! newer format versions, truncation and trailing bytes with typed errors
//! ([`ServeError::CorruptSnapshot`]); a corrupt spill file can fail a
//! `load_all`, never panic it or half-restore a session.
//!
//! The dataset itself is *not* spilled — only its [`DatasetSpec`], which
//! regenerates the identical split at load time (and is shared between all
//! loaded sessions naming the same spec). That is what keeps spill files
//! small (state + config + RNG streams) and restarts cheap.

use crate::hub::{ServeError, SessionHub, SessionId};
use crate::journal::{corrupt_journal, wal_dir};
use activedp::{ActiveDpError, Engine, SessionSnapshot};
use adp_data::DatasetSpec;
use adp_wal::Journal;
use adp_wire::{read_envelope, write_envelope};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Magic bytes opening every hub spill file.
pub const SPILL_MAGIC: &[u8; 8] = b"ADPHUBS\0";

/// Current spill-file format version.
pub const SPILL_VERSION: u32 = 1;

/// One decoded spill file: the session id it preserves, the dataset
/// provenance, and the session snapshot itself.
#[derive(Debug, Clone, PartialEq)]
pub struct SpillRecord {
    /// The id the session was served under (preserved across restarts).
    pub session: u64,
    /// How to regenerate the session's dataset split.
    pub spec: DatasetSpec,
    /// The resumable session state.
    pub snapshot: SessionSnapshot,
}

impl SpillRecord {
    /// Encodes the record into its canonical spill-file bytes. The
    /// dataset-spec layout comes from `adp_data::wire` — the same stable
    /// tags every encoded artefact shares.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = write_envelope(SPILL_MAGIC, SPILL_VERSION);
        w.put_u64(self.session);
        w.put(&self.spec);
        w.put(&self.snapshot.to_bytes());
        w.into_bytes()
    }

    /// Decodes a spill file, rejecting corruption with typed errors — a
    /// header spec that contradicts the provenance embedded in the nested
    /// snapshot included (the file was tampered with; restoring it would
    /// serve a session whose spec misdescribes its data).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ActiveDpError> {
        let (mut r, _version) = read_envelope(bytes, SPILL_MAGIC, SPILL_VERSION)?;
        let session = r.get_u64()?;
        let spec: DatasetSpec = r.get()?;
        let snapshot_bytes: Vec<u8> = r.get()?;
        r.finish()?;
        let snapshot = SessionSnapshot::from_bytes(&snapshot_bytes)?;
        if snapshot.spec.dataset != spec {
            return Err(ActiveDpError::BadConfig {
                reason: format!(
                    "spill header names dataset {spec:?} but the snapshot was taken over {:?}",
                    snapshot.spec.dataset
                ),
            });
        }
        Ok(SpillRecord {
            session,
            spec,
            snapshot,
        })
    }
}

/// File name of one session's spill file.
pub(crate) fn spill_file(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("session-{id}.adpsnap"))
}

/// Writes one session's spill file (atomic write; creates the directory).
/// Shared by [`SessionHub::save`] and the shard workers' eviction path.
pub(crate) fn write_spill_record(
    dir: &Path,
    id: u64,
    snapshot: SessionSnapshot,
) -> Result<PathBuf, ServeError> {
    let record = SpillRecord {
        session: id,
        spec: snapshot.spec.dataset,
        snapshot,
    };
    fs::create_dir_all(dir).map_err(|source| ServeError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    let path = spill_file(dir, id);
    // One copy of the staging + fsync + rename discipline, shared with
    // the WAL's segments and manifests.
    adp_wire::atomic::atomic_write(&path, &record.to_bytes()).map_err(|source| ServeError::Io {
        path: path.clone(),
        source,
    })?;
    Ok(path)
}

/// Advances a journal's checkpoint to `iteration` after its covering
/// snapshot landed on disk, compacting covered segments. A checkpoint
/// already further ahead (a concurrent save won the race) is fine; an
/// empty slot (degraded journal) is a no-op.
pub(crate) fn checkpoint_behind(
    slot: &crate::journal::SharedJournal,
    iteration: usize,
) -> Result<(), ServeError> {
    let mut guard = crate::hub::lock_clean(slot);
    if let Some(journal) = guard.as_mut() {
        match journal.checkpoint(iteration) {
            // A concurrent save already checkpointed further ahead; its
            // snapshot covers ours, nothing to record.
            Err(adp_wal::WalError::OutOfOrder { .. }) | Ok(()) => {}
            Err(e) => return Err(ServeError::Wal(e)),
        }
    }
    Ok(())
}

impl SessionHub {
    pub(crate) fn require_spill_dir(&self) -> Result<PathBuf, ServeError> {
        self.spill_dir()
            .map(Path::to_path_buf)
            .ok_or(ServeError::NoSpillDir)
    }

    /// Spills one session to `session-<id>.adpsnap` in the spill directory
    /// (atomic write; the session keeps running). The dataset provenance
    /// travels inside the snapshot's embedded `ScenarioSpec`; sessions
    /// that cannot be described as one — hand-built datasets, stateless
    /// custom oracles — fail with [`ServeError::NotPersistable`].
    pub fn save(&self, id: SessionId) -> Result<PathBuf, ServeError> {
        let dir = self.require_spill_dir()?;
        // A cold session's spill file IS its current state — eviction
        // wrote it and a cold session cannot step — so saving it again
        // must not drag the engine back into memory. (If the session
        // resumes between this check and the snapshot call below, the
        // normal path simply takes over.)
        if self.cold_ids().contains(&id) {
            let path = spill_file(&dir, id.raw());
            if path.is_file() {
                return Ok(path);
            }
        }
        let snapshot = match self.snapshot(id) {
            Ok(snapshot) => snapshot,
            Err(ServeError::Engine(ActiveDpError::SnapshotUnsupported { .. })) => {
                return Err(ServeError::NotPersistable(id))
            }
            Err(e) => return Err(e),
        };
        let iteration = snapshot.state.iteration;
        let path = write_spill_record(&dir, id.raw(), snapshot)?;
        // The snapshot on disk now covers the log prefix: advance the
        // session's journal checkpoint, compacting covered segments. The
        // order (snapshot first, checkpoint second) means a crash between
        // the two leaves a snapshot *ahead* of the checkpoint — recovery
        // replays from the snapshot and simply skips the covered events.
        if let Some(slot) = self.journal_slot(id.raw()) {
            checkpoint_behind(&slot, iteration)?;
        }
        Ok(path)
    }

    /// Spills every persistable session (see [`SessionHub::save`]) and
    /// returns the ids written, ascending. Sessions without a scenario
    /// description are skipped — they could not be restored at load time —
    /// so a mixed hub still saves everything it can.
    pub fn save_all(&self) -> Result<Vec<SessionId>, ServeError> {
        self.require_spill_dir()?;
        let mut saved = Vec::new();
        for id in self.session_ids() {
            match self.save(id) {
                Ok(_) => saved.push(id),
                // Skipped, not fatal: no dataset provenance, or the session
                // was closed by another client between the id listing and
                // this save — the rest of the sweep must still land.
                Err(ServeError::NotPersistable(_)) | Err(ServeError::UnknownSession(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(saved)
    }

    /// Loads everything recoverable under the spill directory and brings
    /// each session back **under its original id**, so pre-restart client
    /// handles keep working. Returns the ids restored, ascending.
    ///
    /// Three on-disk shapes are recognised:
    ///
    /// * **snapshot + journal** (`session-<id>.adpsnap` and `wal-<id>/`):
    ///   the engine resumes from the snapshot, then the journal's tail past
    ///   it is **replayed**, so the session comes back at its last durable
    ///   *committed* iteration — not merely the last explicit save;
    /// * **journal only**: the iteration-0 state is rebuilt from the spec
    ///   in the journal's manifest and the whole log is replayed — a
    ///   session that was never saved still survives a crash;
    /// * **snapshot only** (a pre-WAL spill directory): resumes exactly as
    ///   before; a fresh journal is started so the session is durable from
    ///   here on.
    ///
    /// A missing spill directory loads nothing (a fresh deployment); a
    /// corrupt file or journal fails the load with a typed error, and
    /// everything this call had already restored is rolled back.
    pub fn load_all(&self) -> Result<Vec<SessionId>, ServeError> {
        let dir = self.require_spill_dir()?;
        let entries = match fs::read_dir(&dir) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(vec![]),
            other => other.map_err(|source| ServeError::Io {
                path: dir.clone(),
                source,
            })?,
        };
        let mut snap_paths: Vec<PathBuf> = Vec::new();
        let mut wal_dirs: BTreeMap<u64, PathBuf> = BTreeMap::new();
        for path in entries.filter_map(|entry| entry.ok().map(|e| e.path())) {
            if path.is_file() && path.extension().is_some_and(|ext| ext == "adpsnap") {
                snap_paths.push(path);
            } else if path.is_dir() {
                let id = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .and_then(|n| n.strip_prefix("wal-"))
                    .and_then(|n| n.parse::<u64>().ok());
                if let Some(id) = id {
                    wal_dirs.insert(id, path);
                }
            }
        }
        snap_paths.sort();
        // All-or-nothing: if anything fails, the sessions already inserted
        // by this call are rolled back, so the operator can delete the bad
        // file and retry without SessionExists collisions against the
        // half-loaded state.
        let mut loaded = Vec::with_capacity(snap_paths.len() + wal_dirs.len());
        let mut run = || -> Result<(), ServeError> {
            for path in &snap_paths {
                loaded.push(self.load_spilled(path, &mut wal_dirs)?);
            }
            // Journals whose session was never snapshot to disk.
            for (id, wal_path) in &wal_dirs {
                loaded.push(self.load_wal_only(*id, wal_path)?);
            }
            Ok(())
        };
        if let Err(e) = run() {
            for &id in &loaded {
                let _ = self.close(id);
            }
            return Err(e);
        }
        loaded.sort_unstable();
        Ok(loaded)
    }

    /// Restores one spilled session, replaying its journal tail when one
    /// exists (the journal is consumed from `wal_dirs` so the wal-only
    /// sweep does not see it again).
    fn load_spilled(
        &self,
        path: &Path,
        wal_dirs: &mut BTreeMap<u64, PathBuf>,
    ) -> Result<SessionId, ServeError> {
        let bytes = fs::read(path).map_err(|source| ServeError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let record =
            SpillRecord::from_bytes(&bytes).map_err(|source| ServeError::CorruptSnapshot {
                path: path.to_path_buf(),
                source,
            })?;
        if record.session == u64::MAX {
            // Unreachable for files we wrote (ids allocate upward from
            // 0); a tampered id this large would saturate the allocator.
            return Err(ServeError::CorruptSnapshot {
                path: path.to_path_buf(),
                source: activedp::ActiveDpError::BadConfig {
                    reason: "session id u64::MAX is reserved".into(),
                },
            });
        }
        let id = record.session;
        let wal_path = wal_dirs.remove(&id);
        // A live session with this id already owns its journal directory
        // (single-writer); reject the collision *before* opening — and
        // thereby recovering over — the live journal's open segment.
        if self.journal_slot(id).is_some() {
            return Err(ServeError::SessionExists(SessionId::from_raw(id)));
        }
        let data = self.dataset_for(record.spec)?;
        let snap_iter = record.snapshot.state.iteration;
        let (engine, journal) = match wal_path {
            None => {
                // A pre-WAL spill directory: resume as always, and start a
                // fresh journal (checkpointed at the snapshot) going
                // forward.
                let spec = record.snapshot.spec.clone();
                let engine = Engine::builder(data)
                    .resume(record.snapshot)
                    .map_err(|source| ServeError::CorruptSnapshot {
                        path: path.to_path_buf(),
                        source,
                    })?;
                let journal = Journal::create(
                    &wal_dir(&self.require_spill_dir()?, id),
                    id,
                    spec,
                    snap_iter,
                )
                .map_err(ServeError::Wal)?;
                (engine, journal)
            }
            Some(wal_path) => {
                let mut journal = Journal::open(&wal_path).map_err(ServeError::Wal)?;
                if journal.session() != id {
                    return Err(corrupt_journal(
                        &wal_path,
                        format!("manifest belongs to session {}", journal.session()),
                    ));
                }
                if journal.spec() != &record.snapshot.spec {
                    return Err(corrupt_journal(
                        &wal_path,
                        "manifest spec disagrees with the spill snapshot's".to_string(),
                    ));
                }
                if journal.checkpoint_iteration() > snap_iter {
                    return Err(corrupt_journal(
                        &wal_path,
                        format!(
                            "checkpoint {} is past the spill snapshot at iteration {snap_iter}",
                            journal.checkpoint_iteration()
                        ),
                    ));
                }
                let durable = journal.durable_iteration();
                let engine = if durable > snap_iter {
                    // The log is ahead of the snapshot (a crash before a
                    // final save): fold the tail to the durable tip.
                    let events = journal.events().map_err(ServeError::Wal)?;
                    Engine::replay_to_over(&record.snapshot, &events, durable, data).map_err(
                        |e| {
                            corrupt_journal(
                                &wal_path,
                                format!("replaying the tail to iteration {durable} failed: {e}"),
                            )
                        },
                    )?
                } else {
                    // The snapshot is at (or past) the durable tip: plain
                    // resume; re-checkpointing aligns a journal that never
                    // saw the final save.
                    let engine =
                        Engine::builder(data)
                            .resume(record.snapshot)
                            .map_err(|source| ServeError::CorruptSnapshot {
                                path: path.to_path_buf(),
                                source,
                            })?;
                    journal.checkpoint(snap_iter).map_err(ServeError::Wal)?;
                    engine
                };
                (engine, journal)
            }
        };
        self.adopt_loaded(id, engine, Some(journal))
    }

    /// Restores a session that has a journal but no spill snapshot: the
    /// manifest's spec rebuilds the iteration-0 state and the whole log is
    /// replayed to the durable tip.
    fn load_wal_only(&self, id: u64, wal_path: &Path) -> Result<SessionId, ServeError> {
        if id == u64::MAX {
            return Err(corrupt_journal(
                wal_path,
                "session id u64::MAX is reserved".to_string(),
            ));
        }
        if self.journal_slot(id).is_some() {
            return Err(ServeError::SessionExists(SessionId::from_raw(id)));
        }
        let journal = Journal::open(wal_path).map_err(ServeError::Wal)?;
        if journal.session() != id {
            return Err(corrupt_journal(
                wal_path,
                format!("manifest belongs to session {}", journal.session()),
            ));
        }
        if journal.checkpoint_iteration() != 0 {
            return Err(corrupt_journal(
                wal_path,
                format!(
                    "checkpoint {} has no covering snapshot on disk",
                    journal.checkpoint_iteration()
                ),
            ));
        }
        let spec = journal.spec().clone();
        let data = self.dataset_for(spec.dataset)?;
        let durable = journal.durable_iteration();
        let engine = if durable > 0 {
            let base = Engine::from_spec_over(spec, data.clone())?.snapshot()?;
            let events = journal.events().map_err(ServeError::Wal)?;
            Engine::replay_to_over(&base, &events, durable, data).map_err(|e| {
                corrupt_journal(
                    wal_path,
                    format!("replaying the log to iteration {durable} failed: {e}"),
                )
            })?
        } else {
            Engine::from_spec_over(spec, data)?
        };
        self.adopt_loaded(id, engine, Some(journal))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use activedp::SessionConfig;
    use adp_data::{DatasetId, Scale};

    fn unique_tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "adp-spill-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn spec(seed: u64) -> DatasetSpec {
        DatasetSpec {
            id: DatasetId::Youtube,
            scale: Scale::Tiny,
            seed,
        }
    }

    #[test]
    fn spill_record_roundtrips() {
        let hub = SessionHub::new(1);
        let id = hub
            .open_spec(spec(7), SessionConfig::paper_defaults(true, 7))
            .unwrap();
        hub.run(id, 3).unwrap();
        let snapshot = hub.snapshot(id).unwrap();
        let record = SpillRecord {
            session: 42,
            spec: snapshot.spec.dataset,
            snapshot,
        };
        let back = SpillRecord::from_bytes(&record.to_bytes()).unwrap();
        assert_eq!(record, back);
    }

    #[test]
    fn spill_header_spec_must_match_the_snapshot() {
        // A tampered header naming a different dataset than the embedded
        // snapshot would restore a session whose spec misdescribes its
        // data; the decoder rejects it with a typed error.
        let hub = SessionHub::new(1);
        let id = hub
            .open_spec(spec(7), SessionConfig::paper_defaults(true, 7))
            .unwrap();
        hub.run(id, 2).unwrap();
        let snapshot = hub.snapshot(id).unwrap();
        let record = SpillRecord {
            session: 1,
            spec: DatasetSpec {
                seed: 999,
                ..snapshot.spec.dataset
            },
            snapshot,
        };
        assert!(matches!(
            SpillRecord::from_bytes(&record.to_bytes()),
            Err(ActiveDpError::BadConfig { .. })
        ));
    }

    #[test]
    fn save_load_cycle_preserves_ids_and_trajectories() {
        let dir = unique_tempdir("cycle");
        let first = SessionHub::with_spill_dir(2, &dir);
        let ids: Vec<SessionId> = (0..3)
            .map(|seed| {
                let id = first
                    .open_spec(spec(seed), SessionConfig::paper_defaults(true, seed))
                    .unwrap();
                first.run(id, 4).unwrap();
                id
            })
            .collect();
        let saved = first.save_all().unwrap();
        assert_eq!(saved, ids);
        drop(first); // "process dies"

        let second = SessionHub::with_spill_dir(2, &dir);
        let loaded = second.load_all().unwrap();
        assert_eq!(loaded, ids);
        // Old handles keep working, trajectories continue bit-for-bit: an
        // uninterrupted solo run over the same spec/seed must agree.
        for (k, &id) in ids.iter().enumerate() {
            let seed = k as u64;
            second.run(id, 4).unwrap();
            let report = second.evaluate(id).unwrap();
            let mut solo = Engine::builder(spec(seed).generate().unwrap())
                .config(SessionConfig::paper_defaults(true, seed))
                .build()
                .unwrap();
            solo.run(8).unwrap();
            assert_eq!(
                report.test_accuracy.to_bits(),
                solo.evaluate_downstream().unwrap().test_accuracy.to_bits(),
                "session {id}"
            );
        }
        // New sessions never collide with restored ids.
        let fresh = second
            .open_spec(spec(9), SessionConfig::paper_defaults(true, 9))
            .unwrap();
        assert!(ids.iter().all(|&old| old != fresh));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unpersistable_sessions_are_skipped_not_fatal() {
        let dir = unique_tempdir("mixed");
        let hub = SessionHub::with_spill_dir(1, &dir);
        let durable = hub
            .open_spec(spec(1), SessionConfig::paper_defaults(true, 1))
            .unwrap();
        // A hand-built split (provenance stripped) cannot be described as
        // a scenario, so its session cannot spill.
        let mut adhoc = spec(2).generate().unwrap();
        adhoc.provenance = None;
        let ephemeral = hub
            .create(Engine::builder(adhoc).seed(2).build().unwrap())
            .unwrap();
        let saved = hub.save_all().unwrap();
        assert_eq!(saved, vec![durable]);
        assert!(matches!(
            hub.save(ephemeral),
            Err(ServeError::NotPersistable(id)) if id == ephemeral
        ));
        // Raw engines over *generated* splits carry provenance in the
        // data itself, so `create` no longer loses durability.
        let generated = hub
            .create(
                Engine::builder(spec(3).generate().unwrap())
                    .seed(3)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        assert!(hub.save(generated).is_ok());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scenario_spec_roundtrips_through_the_spill_cycle() {
        use activedp::{BudgetSchedule, ScenarioSpec};
        // spec → create_from_spec → snapshot → save → (new hub) load_all →
        // resume: the spec that comes back out is the one that went in,
        // schedule and budget included.
        let dir = unique_tempdir("speccycle");
        let first = SessionHub::with_spill_dir(1, &dir);
        let mut spec = ScenarioSpec::new(spec(4));
        spec.session.seed = 9;
        spec.schedule = BudgetSchedule::Doubling { cap: 4 };
        spec.budget = 12;
        let id = first.create_from_spec(spec.clone()).unwrap();
        first.run(id, 3).unwrap();
        first.save(id).unwrap();
        drop(first);

        let second = SessionHub::with_spill_dir(1, &dir);
        assert_eq!(second.load_all().unwrap(), vec![id]);
        let restored = second.snapshot(id).unwrap();
        assert_eq!(restored.spec, spec);
        assert_eq!(restored.state.iteration, 3);
        // And the restored session still serves.
        second.run(id, 1).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_spill_dir_is_a_typed_error() {
        // Constructed directly so the assertion holds even when the test
        // process itself runs under ADP_SPILL_DIR (the CI persistence leg).
        let hub = SessionHub::with_shards_and_spill(1, None);
        assert!(matches!(hub.save_all(), Err(ServeError::NoSpillDir)));
        assert!(matches!(hub.load_all(), Err(ServeError::NoSpillDir)));
    }

    #[test]
    fn missing_directory_loads_nothing() {
        let dir = unique_tempdir("missing");
        let hub = SessionHub::with_spill_dir(1, &dir);
        assert_eq!(hub.load_all().unwrap(), vec![]);
    }

    #[test]
    fn corrupt_files_are_rejected_with_typed_errors() {
        let dir = unique_tempdir("corrupt");
        let hub = SessionHub::with_spill_dir(1, &dir);
        let id = hub
            .open_spec(spec(3), SessionConfig::paper_defaults(true, 3))
            .unwrap();
        hub.run(id, 3).unwrap();
        let path = hub.save(id).unwrap();
        let good = fs::read(&path).unwrap();

        let check_rejected = |bytes: &[u8]| {
            fs::write(&path, bytes).unwrap();
            let fresh = SessionHub::with_spill_dir(1, &dir);
            assert!(matches!(
                fresh.load_all(),
                Err(ServeError::CorruptSnapshot { .. })
            ));
        };
        // Truncated at several depths (envelope, record, nested snapshot).
        check_rejected(&good[..4]);
        check_rejected(&good[..20]);
        check_rejected(&good[..good.len() - 1]);
        // Foreign magic.
        let mut foreign = good.clone();
        foreign[0] ^= 0xff;
        check_rejected(&foreign);
        // A future format version.
        let mut future = good.clone();
        future[8..12].copy_from_slice(&77u32.to_le_bytes());
        check_rejected(&future);
        // Trailing garbage.
        let mut padded = good.clone();
        padded.push(0xAA);
        check_rejected(&padded);

        // The original bytes still load (the rejection is the file, not us).
        fs::write(&path, &good).unwrap();
        let fresh = SessionHub::with_spill_dir(1, &dir);
        assert_eq!(fresh.load_all().unwrap(), vec![id]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_load_rolls_back_and_is_retryable() {
        let dir = unique_tempdir("retry");
        let hub = SessionHub::with_spill_dir(2, &dir);
        for seed in 0..2 {
            let id = hub
                .open_spec(spec(seed), SessionConfig::paper_defaults(true, seed))
                .unwrap();
            hub.run(id, 2).unwrap();
        }
        hub.save_all().unwrap();
        drop(hub);
        // Corrupt one file; a fresh hub's load must fail *atomically*…
        let bad = dir.join("session-1.adpsnap");
        let good_bytes = fs::read(&bad).unwrap();
        fs::write(&bad, &good_bytes[..10]).unwrap();
        let fresh = SessionHub::with_spill_dir(2, &dir);
        assert!(matches!(
            fresh.load_all(),
            Err(ServeError::CorruptSnapshot { .. })
        ));
        assert_eq!(
            fresh.session_count().unwrap(),
            0,
            "partial load must roll back"
        );
        // …so that fixing the file and retrying on the SAME hub succeeds.
        fs::write(&bad, &good_bytes).unwrap();
        let loaded = fresh.load_all().unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(fresh.session_count().unwrap(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn loading_over_a_live_id_is_rejected() {
        let dir = unique_tempdir("collide");
        let hub = SessionHub::with_spill_dir(1, &dir);
        let id = hub
            .open_spec(spec(4), SessionConfig::paper_defaults(true, 4))
            .unwrap();
        hub.run(id, 2).unwrap();
        hub.save(id).unwrap();
        // The session is still live in this hub; loading its file back
        // would shadow it.
        assert!(matches!(
            hub.load_all(),
            Err(ServeError::SessionExists(existing)) if existing == id
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sessions_are_journalled_by_default() {
        let dir = unique_tempdir("journal");
        let hub = SessionHub::with_spill_dir(1, &dir);
        let id = hub
            .open_spec(spec(6), SessionConfig::paper_defaults(true, 6))
            .unwrap();
        hub.run(id, 3).unwrap();
        // No explicit save has happened, yet the steps are durable.
        let d = hub.status(id).unwrap().durability.expect("journalled");
        assert_eq!(d.checkpoint_iteration, 0);
        assert_eq!(d.durable_iteration, 3);
        assert!(d.live_segments >= 1);
        let wal = wal_dir(&dir, id.raw());
        assert!(wal.join("manifest.adpwman").is_file());
        // Saving advances the checkpoint and compacts the log behind it.
        hub.save(id).unwrap();
        let d = hub.status(id).unwrap().durability.unwrap();
        assert_eq!(d.checkpoint_iteration, 3);
        assert_eq!(d.durable_iteration, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_all_replays_the_journal_tail_past_the_snapshot() {
        let dir = unique_tempdir("tail");
        let seed = 11;
        let first = SessionHub::with_spill_dir(1, &dir);
        let id = first
            .open_spec(spec(seed), SessionConfig::paper_defaults(true, seed))
            .unwrap();
        first.run(id, 2).unwrap();
        first.save(id).unwrap(); // checkpoint at iteration 2…
        first.run(id, 3).unwrap(); // …then 3 more steps, never saved again
        drop(first); // "process dies" with the snapshot 3 steps stale

        let second = SessionHub::with_spill_dir(1, &dir);
        assert_eq!(second.load_all().unwrap(), vec![id]);
        // The journal tail brought the session to the durable tip, not the
        // snapshot.
        assert_eq!(second.status(id).unwrap().iteration, 5);
        // And the recovered trajectory continues bit-for-bit: finishing the
        // run must agree with an uninterrupted solo run.
        second.run(id, 3).unwrap();
        let report = second.evaluate(id).unwrap();
        let mut solo = Engine::builder(spec(seed).generate().unwrap())
            .config(SessionConfig::paper_defaults(true, seed))
            .build()
            .unwrap();
        solo.run(8).unwrap();
        assert_eq!(
            report.test_accuracy.to_bits(),
            solo.evaluate_downstream().unwrap().test_accuracy.to_bits()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn never_saved_sessions_survive_on_the_journal_alone() {
        let dir = unique_tempdir("walonly");
        let seed = 12;
        let first = SessionHub::with_spill_dir(1, &dir);
        let id = first
            .open_spec(spec(seed), SessionConfig::paper_defaults(true, seed))
            .unwrap();
        first.run(id, 4).unwrap();
        drop(first); // no save_all, no snapshot — only wal-<id>/ exists

        let second = SessionHub::with_spill_dir(1, &dir);
        assert_eq!(second.load_all().unwrap(), vec![id]);
        assert_eq!(second.status(id).unwrap().iteration, 4);
        second.run(id, 2).unwrap();
        let report = second.evaluate(id).unwrap();
        let mut solo = Engine::builder(spec(seed).generate().unwrap())
            .config(SessionConfig::paper_defaults(true, seed))
            .build()
            .unwrap();
        solo.run(6).unwrap();
        assert_eq!(
            report.test_accuracy.to_bits(),
            solo.evaluate_downstream().unwrap().test_accuracy.to_bits()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pre_wal_spill_dirs_still_load_and_become_journalled() {
        // MIGRATION guarantee: a spill directory written before the WAL
        // existed (snapshot files only) keeps working; loading starts a
        // fresh journal checkpointed at the snapshot.
        let dir = unique_tempdir("prewal");
        let first = SessionHub::with_spill_dir(1, &dir);
        let id = first
            .open_spec(spec(13), SessionConfig::paper_defaults(true, 13))
            .unwrap();
        first.run(id, 3).unwrap();
        first.save(id).unwrap();
        drop(first);
        fs::remove_dir_all(wal_dir(&dir, id.raw())).unwrap(); // pre-WAL layout

        let second = SessionHub::with_spill_dir(1, &dir);
        assert_eq!(second.load_all().unwrap(), vec![id]);
        assert_eq!(second.status(id).unwrap().iteration, 3);
        let d = second.status(id).unwrap().durability.expect("journalled");
        assert_eq!(d.checkpoint_iteration, 3);
        second.run(id, 1).unwrap();
        assert_eq!(
            second
                .status(id)
                .unwrap()
                .durability
                .unwrap()
                .durable_iteration,
            4
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_rebuilds_any_commit_point_live_or_dead() {
        let dir = unique_tempdir("recover");
        let seed = 14;
        let hub = SessionHub::with_spill_dir(1, &dir);
        let id = hub
            .open_spec(spec(seed), SessionConfig::paper_defaults(true, seed))
            .unwrap();
        hub.run(id, 6).unwrap();

        // Live source: rebuild iteration 3 as a new session, step it to 6,
        // and the full snapshot must be identical to the original's.
        let rec = hub.recover(id, 3).unwrap();
        assert_ne!(rec, id);
        assert_eq!(hub.status(rec).unwrap().iteration, 3);
        hub.run(rec, 3).unwrap();
        assert_eq!(hub.snapshot(rec).unwrap(), hub.snapshot(id).unwrap());
        // The source session is untouched.
        assert_eq!(hub.status(id).unwrap().iteration, 6);

        // Dead source: close the original; its files remain, so any of its
        // commit points is still recoverable from disk.
        hub.close(id).unwrap();
        let ghost = hub.recover(id, 5).unwrap();
        assert_eq!(hub.status(ghost).unwrap().iteration, 5);

        // A mid-nothing iteration is a typed replay error.
        assert!(hub.recover(ghost, 99).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_journals_are_rejected_with_typed_errors() {
        let dir = unique_tempdir("badwal");
        let hub = SessionHub::with_spill_dir(1, &dir);
        let id = hub
            .open_spec(spec(15), SessionConfig::paper_defaults(true, 15))
            .unwrap();
        hub.run(id, 3).unwrap();
        hub.save(id).unwrap();
        hub.run(id, 2).unwrap();
        drop(hub);

        // A flipped byte in the manifest magic is WAL corruption.
        let manifest = wal_dir(&dir, id.raw()).join("manifest.adpwman");
        let good = fs::read(&manifest).unwrap();
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        fs::write(&manifest, &bad).unwrap();
        let fresh = SessionHub::with_spill_dir(1, &dir);
        assert!(matches!(fresh.load_all(), Err(ServeError::Wal(_))));
        assert_eq!(
            fresh.session_count().unwrap(),
            0,
            "partial load must roll back"
        );
        fs::write(&manifest, &good).unwrap();

        // A checkpoint with no covering snapshot on disk cannot recover.
        let snap = spill_file(&dir, id.raw());
        let snap_bytes = fs::read(&snap).unwrap();
        fs::remove_file(&snap).unwrap();
        assert!(matches!(
            fresh.load_all(),
            Err(ServeError::CorruptJournal { .. })
        ));
        fs::write(&snap, &snap_bytes).unwrap();

        // Intact again: the rejection was the files, not the loader.
        assert_eq!(fresh.load_all().unwrap(), vec![id]);
        assert_eq!(fresh.status(id).unwrap().iteration, 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_writes_leave_no_tmp_files() {
        let dir = unique_tempdir("atomic");
        let hub = SessionHub::with_spill_dir(1, &dir);
        let id = hub
            .open_spec(spec(5), SessionConfig::paper_defaults(true, 5))
            .unwrap();
        hub.run(id, 2).unwrap();
        hub.save(id).unwrap();
        hub.save(id).unwrap(); // overwrite path
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp files left: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
