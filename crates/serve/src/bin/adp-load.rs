//! `adp-load` — a closed-loop load driver for the session hub.
//!
//! Drives one in-process [`SessionHub`] with a seeded, configurable mix of
//! open/step/evict operations, then prints a one-line summary and the
//! hub's full Prometheus metrics dump. CI's smoke job runs it under a
//! memory budget and asserts that the histograms filled, evictions
//! happened, and nothing errored; it is also the quickest way to eyeball
//! eviction/resume behaviour and latency buckets locally.
//!
//! ```text
//! adp-load [--ops 400] [--sessions 12] [--shards 2] [--max-resident 4]
//!          [--mix OPEN:STEP:EVICT] [--seed 42] [--spill-dir DIR]
//! ```
//!
//! `--mix` weights the three operations (default `1:6:1`). `--max-resident 0`
//! removes the budget. Exits non-zero when any operation fails — saturation
//! backpressure (`ServeError::Saturated`) is expected under a tight budget
//! and is tallied separately, not as an error.

use activedp::SessionConfig;
use adp_data::{DatasetId, DatasetSpec, Scale};
use adp_serve::metrics::Op;
use adp_serve::{ServeError, SessionHub, SessionId};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    ops: u64,
    sessions: u64,
    shards: usize,
    max_resident: usize,
    mix: (u64, u64, u64),
    seed: u64,
    spill_dir: Option<PathBuf>,
}

fn parse_mix(text: &str) -> Result<(u64, u64, u64), String> {
    let parts: Vec<u64> = text
        .split(':')
        .map(|p| p.trim().parse::<u64>())
        .collect::<Result<_, _>>()
        .map_err(|e| format!("--mix: {e}"))?;
    match parts.as_slice() {
        [open, step, evict] if open + step + evict > 0 => Ok((*open, *step, *evict)),
        [_, _, _] => Err("--mix: at least one weight must be non-zero".into()),
        _ => Err("--mix expects OPEN:STEP:EVICT, e.g. 1:6:1".into()),
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ops: 400,
        sessions: 12,
        shards: 2,
        max_resident: 4,
        mix: (1, 6, 1),
        seed: 42,
        spill_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--ops" => args.ops = value("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--sessions" => {
                args.sessions = value("--sessions")?
                    .parse()
                    .map_err(|e| format!("--sessions: {e}"))?
            }
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--max-resident" => {
                args.max_resident = value("--max-resident")?
                    .parse()
                    .map_err(|e| format!("--max-resident: {e}"))?
            }
            "--mix" => args.mix = parse_mix(&value("--mix")?)?,
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--spill-dir" => args.spill_dir = Some(PathBuf::from(value("--spill-dir")?)),
            "--help" | "-h" => {
                return Err("usage: adp-load [--ops N] [--sessions N] [--shards N] \
                     [--max-resident N] [--mix OPEN:STEP:EVICT] [--seed S] [--spill-dir DIR]"
                    .into())
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if args.sessions == 0 {
        return Err("--sessions must be at least 1".into());
    }
    Ok(args)
}

/// The splitmix-style step of a 64-bit LCG; dependency-free and seeded,
/// so a given `--seed` replays the same op sequence.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 16
}

fn spec_of(seed: u64) -> DatasetSpec {
    DatasetSpec {
        id: DatasetId::Youtube,
        scale: Scale::Tiny,
        seed,
    }
}

fn open_session(hub: &SessionHub, n: u64, seed: u64) -> Result<SessionId, ServeError> {
    // A handful of distinct data seeds exercises the dataset cache without
    // regenerating a dataset per session.
    hub.open_spec(
        spec_of(seed ^ (n % 3)),
        SessionConfig::paper_defaults(true, seed.wrapping_add(n)),
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let (spill_dir, scratch) = match &args.spill_dir {
        Some(dir) => (dir.clone(), false),
        None => (
            std::env::temp_dir().join(format!("adp-load-{}", std::process::id())),
            true,
        ),
    };
    let hub = SessionHub::with_spill_dir(args.shards, &spill_dir);
    hub.set_memory_budget((args.max_resident > 0).then_some(args.max_resident));

    let mut rng = args.seed.wrapping_mul(2862933555777941757).wrapping_add(1);
    let mut ids: Vec<SessionId> = Vec::new();
    let mut opened = 0u64;
    let mut errors = 0u64;
    let mut saturated = 0u64;
    let mut counts = (0u64, 0u64, 0u64); // (open, step, evict) issued

    // Warm pool: the steady-state mix assumes sessions to step and evict.
    for _ in 0..args.sessions {
        match open_session(&hub, opened, args.seed) {
            Ok(id) => {
                ids.push(id);
                opened += 1;
            }
            Err(ServeError::Saturated { .. }) => saturated += 1,
            Err(e) => {
                eprintln!("open failed during warmup: {e}");
                errors += 1;
            }
        }
    }

    let (w_open, w_step, w_evict) = args.mix;
    let total_weight = w_open + w_step + w_evict;
    for _ in 0..args.ops {
        let roll = lcg(&mut rng) % total_weight;
        if roll < w_open {
            counts.0 += 1;
            match open_session(&hub, opened, args.seed) {
                Ok(id) => {
                    ids.push(id);
                    opened += 1;
                }
                Err(ServeError::Saturated { .. }) => saturated += 1,
                Err(e) => {
                    eprintln!("open failed: {e}");
                    errors += 1;
                }
            }
        } else if roll < w_open + w_step || ids.is_empty() {
            counts.1 += 1;
            if ids.is_empty() {
                continue;
            }
            let id = ids[(lcg(&mut rng) as usize) % ids.len()];
            if let Err(e) = hub.step(id) {
                eprintln!("step failed on {id:?}: {e}");
                errors += 1;
            }
        } else {
            counts.2 += 1;
            let id = ids[(lcg(&mut rng) as usize) % ids.len()];
            if let Err(e) = hub.evict(id) {
                eprintln!("evict failed on {id:?}: {e}");
                errors += 1;
            }
        }
    }

    let metrics = hub.metrics();
    let step = metrics.op(Op::Step);
    let p50 = step
        .latency
        .quantile_upper_bound(0.50)
        .map_or("n/a".into(), |s| format!("{:.1}us", s * 1e6));
    let p99 = step
        .latency
        .quantile_upper_bound(0.99)
        .map_or("n/a".into(), |s| format!("{:.1}us", s * 1e6));
    println!(
        "adp-load summary: ops={} (open={} step={} evict={}) sessions={} \
         errors={errors} saturated={saturated} evicted={} resumed={} \
         step_p50<={p50} step_p99<={p99}",
        args.ops,
        counts.0,
        counts.1,
        counts.2,
        ids.len(),
        metrics.evicted_total.get(),
        metrics.resumed_total.get(),
    );
    println!("--- metrics dump ---");
    print!("{}", metrics.render());

    drop(hub);
    if scratch {
        let _ = std::fs::remove_dir_all(&spill_dir);
    }
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
